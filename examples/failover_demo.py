#!/usr/bin/env python3
"""A fibre cut mid-call: fault injection and failover on the VNS overlay.

An Amsterdam user is mid-conference with a bridge in Ashburn when the
trans-Atlantic circuit their traffic rides is cut.  The demo walks the
failure the way the overlay experiences it: the IGP reroutes, BGP
re-shuffles hot-potato egresses message by message, the in-flight stream
eats a bounded outage, and the repair puts everything back exactly as it
was.

Run:
    python examples/failover_demo.py
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import build_world
from repro.faults import (
    FaultInjector,
    ImpactMeter,
    LinkDown,
    LinkUp,
    MediaImpact,
    failover_window_s,
    measure_event,
    overlay_outage,
    prefix_sample,
    resolve_corridor,
)


def route(service, src: str, dst: str) -> str:
    return " -> ".join(service.network.pop_l2_path(src, dst))


def main() -> None:
    world = build_world("small", seed=42)
    service = world.service
    rng = np.random.default_rng(7)

    src, dst = "AMS", "ASH"
    a, b = resolve_corridor(service, src, dst)  # AMS->ASH rides LON==ASH
    print(f"Conference corridor {src} -> {dst}; circuit to cut: {a}=={b}")
    print(f"  route before the cut: {route(service, src, dst)}")

    injector = FaultInjector(service)
    meter = ImpactMeter(
        service, prefix_sample(tuple(service.topology.prefix_location), limit=32)
    )

    # The call is up and clean.
    steady = service.simulate_internal_stream(src, dst, rng=rng)
    print(f"  steady state: loss {steady.loss_percent:.2f}%, RTT {steady.rtt_ms:.1f} ms")

    # --- the cut ---------------------------------------------------------
    cut = measure_event(injector, meter, LinkDown(time_s=60.0, a=a, b=b))
    window = failover_window_s(cut.messages)
    print(f"\nt=60s  {a}=={b} goes dark")
    print(f"  BGP reconverges in {cut.messages} messages "
          f"(failover window ~{window:.2f} s)")
    print(f"  cells blackholed mid-failover: {len(cut.blackholes_during)}, "
          f"after convergence: {len(cut.blackholes_after)}")
    print(f"  egress shifted for {len(cut.shifted)} (entry, prefix) cells")
    print(f"  route during the outage: {route(service, src, dst)}")

    failover = overlay_outage(
        service.simulate_internal_stream(src, dst, rng=rng), window
    )

    # --- the repair ------------------------------------------------------
    repair = measure_event(injector, meter, LinkUp(time_s=660.0, a=a, b=b))
    print(f"\nt=660s {a}=={b} restored "
          f"({repair.messages} messages to reconverge)")
    print(f"  route after repair: {route(service, src, dst)}")

    recovered = service.simulate_internal_stream(src, dst, rng=rng)
    media = MediaImpact(
        steady=steady, failover=failover, recovered=recovered, window_s=window
    )
    print(f"\n{media.summary()}")
    print(
        "\nThe overlay healed on its own: the L2 mesh rerouted around the"
        "\ncut, no prefix was left blackholed, and the stream's loss spike"
        "\nlasted only the failover window — then steady state again."
    )


if __name__ == "__main__":
    main()
