#!/usr/bin/env python3
"""Hybrid VNS/Internet steering: three policies over one campaign.

The paper carries every call across the dedicated backbone
(``always_vns``).  This demo probes every region corridor over *both*
transports (the Sec. 5 measurement machinery feeding a
``PathHealthTable``), then replays the same seeded day of calls under
three steering stances — always-VNS, QoE-threshold offload, and a
backbone-byte budget — and prints what each one trades: offload rate,
backbone bytes saved, and the mean QoE delta against the paper's
stance.  Everything is seeded; with ``--workers N`` each campaign runs
sharded and the reports stay byte-identical.

Run:
    python examples/steering_demo.py [--workers N]
"""

from __future__ import annotations

import argparse

from repro.experiments import build_world
from repro.experiments import steering


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="shard each policy's campaign across N worker processes",
    )
    args = parser.parse_args()

    world = build_world("small", seed=42)
    print("World built; probing corridors and running one campaign per policy...\n")

    comparison = steering.run(
        world,
        n_users=150,
        calls_per_user_day=4.0,
        days=1,
        seed=7,
        workers=args.workers,
    )
    print(steering.render(comparison))

    # The telemetry the decisions ran on: per-corridor EWMAs on both
    # transports (all-day aggregates; the table also keeps 4 h buckets).
    print("\nCorridor health (EWMA RTT ms / loss %, internet vs vns):")
    view = comparison.health.to_dict()
    for corridor in sorted(view):
        transports = view[corridor]
        cells = []
        for name in ("internet", "vns"):
            entry = transports.get(name)
            if entry is None:
                cells.append(f"{name}: —")
            else:
                cells.append(
                    f"{name}: {entry['rtt_ms']:6.1f} ms"
                    f" / {entry['loss_pct']:.3f}%"
                )
            # Confidence comes from sample counts; stale entries expire.
        print(f"  {corridor:<8} {'   '.join(cells)}")

    threshold = comparison.report("threshold_offload")
    budgeted = comparison.report("cost_budgeted")
    print(
        f"\nThreshold policy: {threshold['offloaded_calls']} of"
        f" {threshold['steered_calls']} calls offloaded"
        f" ({threshold['detour_calls']} via a PoP detour),"
        f" saving {threshold['backbone_bytes_saved'] / 1e9:.2f} GB of"
        f" backbone traffic at"
        f" {threshold['qoe_delta_vs_vns']['delay_ms_mean']:+.2f} ms mean delay."
    )
    print(
        f"Budget policy: planned against {comparison.budget_bytes / 1e9:.2f} GB"
        f" of backbone budget, realised"
        f" {budgeted['backbone_saved_fraction']:.1%} of bytes saved."
    )
    print("\nSame seed, same table: comparison.to_json() is byte-stable.")


if __name__ == "__main__":
    main()
