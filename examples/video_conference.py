#!/usr/bin/env python3
"""A full video conference over VNS: TURN, SIP, RTP, instrumentation.

Walks the application-layer path the paper describes: a user requests a
TURN allocation against the anycast address (routing decides which PoP
answers), SIP sets up a call to an echo server, and a bidirectional HD
stream runs with the client instrumenting loss per five-second slot —
first through VNS, then through the transit providers, side by side.

Run:
    python examples/video_conference.py
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import build_world
from repro.media.client import InstrumentedClient
from repro.media.codec import PROFILE_1080P, PROFILE_720P
from repro.media.sip import EchoServer
from repro.media.turn import TurnService
from repro.net.asn import ASType


def main() -> None:
    world = build_world("small", seed=5)
    service = world.service
    rng = np.random.default_rng(6)

    # --- TURN allocation over anycast -----------------------------------
    turn = TurnService(service)
    user = next(
        s
        for s in world.topology.ases.values()
        if s.as_type is ASType.EC
        and s.home.city.region.value == "Oceania"
        and s.prefixes
    )
    location = world.topology.host_location(user.prefixes[0], rng)
    allocation, entry_pop = turn.request("carol", user.asn, location)
    print(f"User in {user.home.city.name} asks {turn.anycast_address} for a relay")
    print(f"  anycast routing lands on PoP {entry_pop.code}; allocation {allocation}")

    # --- SIP + RTP echo session through VNS and through transit ---------
    echo_pop = "AMS"  # conference bridge on another continent
    server = EchoServer(f"sip:echo-{echo_pop.lower()}@vns", echo_pop)
    client = InstrumentedClient("carol", rng=rng)

    last_mile = service.last_mile_path(user.prefixes[0], location, entry_pop.code)
    via_vns = last_mile.concat(service.vns_internal_path(entry_pop.code, echo_pop))
    via_transit = last_mile.concat(
        service.path_between_pops_via_upstream(entry_pop.code, echo_pop)
    )

    print(f"\nEcho session {user.home.city.name} -> {echo_pop}:")
    print(f"  via VNS     RTT {via_vns.rtt_ms():6.1f} ms over {len(via_vns)} segments")
    print(f"  via transit RTT {via_transit.rtt_ms():6.1f} ms over {len(via_transit)} segments")

    for profile in (PROFILE_1080P, PROFILE_720P):
        print(f"\n  {profile.name} ({profile.packets_per_second:.0f} packets/s):")
        for label, path in (("VNS", via_vns), ("transit", via_transit)):
            sessions = [
                client.run_session(server, path, profile, hour_cet=float(h % 24))
                for h in range(20)
            ]
            ok = [s for s in sessions if s is not None]
            losses = [s.loss_percent_out for s in ok]
            jitters = [s.jitter_p95_ms for s in ok]
            slots = [s.lossy_slots_out for s in ok]
            print(
                f"    {label:<8} {len(ok)}/20 calls up | "
                f"mean loss {np.mean(losses):7.4f}% | "
                f"worst lossy slots {max(slots):2d}/24 | "
                f"p95 jitter {np.mean(jitters):5.2f} ms"
            )

    print(
        "\nThe dedicated circuits remove the bursty long-haul loss; the last"
        "\nmile is the same either way — exactly the paper's Fig. 9/10 story."
    )


if __name__ == "__main__":
    main()
