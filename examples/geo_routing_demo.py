#!/usr/bin/env python3
"""Geo-routing demo: watch the route reflector change a network's mind.

Builds the same synthetic Internet twice — once with classic hot-potato
routing (full-mesh iBGP, relationship preferences) and once with the
paper's geo-based route reflectors — and shows, for a handful of
prefixes, where traffic entering at London leaves the network.  Then
demonstrates the management overrides: pinning an egress, exempting a
prefix, and steering a subnet with a no-export more-specific.

Run:
    python examples/geo_routing_demo.py
"""

from __future__ import annotations

from repro.experiments.common import build_world
from repro.geo.coords import great_circle_km
from repro.vns.builder import VnsConfig
from repro.vns.pop import POPS
from repro.vns.service import VideoNetworkService


def nearest_pop_code(service, prefix) -> str:
    location = service.geoip.reported_location(prefix)
    return min(POPS, key=lambda p: great_circle_km(p.location, location)).code


def main() -> None:
    print("Building the world with geo-based routing (the 'after' network) ...")
    world = build_world("small", seed=3)
    after = world.service
    print("Building the hot-potato baseline on the same Internet ('before') ...")
    before = world.require_before()

    print(f"\n{'prefix':<18} {'origin':<26} {'nearest':<8} {'before':<7} {'after':<6}")
    moved = 0
    shown = 0
    for prefix in world.topology.prefixes():
        decision_before = before.egress_decision("LON", prefix)
        decision_after = after.egress_decision("LON", prefix)
        if decision_before is None or decision_after is None:
            continue
        if shown < 12:
            origin = world.topology.origin_as(prefix)
            print(
                f"{str(prefix):<18} {str(origin):<26} "
                f"{nearest_pop_code(after, prefix):<8} "
                f"{decision_before.egress_pop:<7} {decision_after.egress_pop:<6}"
            )
            shown += 1
        moved += decision_before.egress_pop != decision_after.egress_pop
    total = len(world.topology.prefixes())
    print(f"\nGeo-routing moved the egress for {moved}/{total} prefixes.")

    # ------------------------------------------------------------------ #
    # Management overrides (Sec. 3.2)
    # ------------------------------------------------------------------ #
    print("\nManagement overrides:")
    target = world.topology.prefixes()[8]
    current = after.egress_decision("LON", target).egress_pop
    pinned = "SYD" if current != "SYD" else "SJS"
    print(f"  {target}: geo egress is {current}; operator pins it to {pinned} ...")
    after.management.force_exit(target, pinned)
    # Overrides act at reflector-import time; rebuild the control plane
    # the way an operator would bounce the sessions.
    rebuilt = VideoNetworkService.build(
        vns_config=VnsConfig(max_peers=8),
        seed=3,
        topology=world.topology,
        routing=world.routing,
        management=after.management,
    )
    print(f"    -> egress is now {rebuilt.egress_decision('LON', target).egress_pop}")

    parent = world.topology.prefixes()[0]
    subnet = parent.subnets(parent.length + 2)[1]
    print(f"  advertising {subnet} statically at SIN (no-export) ...")
    rebuilt.apply_static_more_specific(subnet, "SIN")
    print(
        f"    -> {subnet} exits {rebuilt.egress_decision('LON', subnet).egress_pop}, "
        f"covering {parent} still exits "
        f"{rebuilt.egress_decision('LON', parent).egress_pop}"
    )
    leaked = [
        m
        for m in rebuilt.network.engine.external_outbox
        if getattr(m, "route", None) is not None and m.route.prefix == subnet
    ]
    print(f"    -> external announcements of the more-specific: {len(leaked)} (no-export)")


if __name__ == "__main__":
    main()
