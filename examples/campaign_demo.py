#!/usr/bin/env python3
"""A day of conferencing traffic: the campaign subsystem end to end.

Samples a geo-weighted user population from the synthetic Internet,
draws a day of diurnally modulated call arrivals (with a TURN-relayed
multiparty share), runs them through the batched campaign engine, and
prints the per-corridor QoE table plus the engine's cache/batching
numbers.  Everything is seeded: re-running prints the same report —
including with ``--workers N``, which shards the campaign across a
process pool (the report is byte-identical to the sequential run).

Run:
    python examples/campaign_demo.py [--workers N]
"""

from __future__ import annotations

import argparse

from repro.experiments import build_world
from repro.experiments import campaign
from repro.workload import REGION_CODE


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="shard the campaign across N worker processes (default: in-process)",
    )
    args = parser.parse_args()

    world = build_world("small", seed=42)
    print("World built; sampling a population and a day of calls...\n")

    run = campaign.run(
        world,
        n_users=150,
        calls_per_user_day=4.0,
        days=1,
        multiparty_fraction=0.15,
        seed=7,
        workers=args.workers,
    )
    print(campaign.render(run))
    shards = getattr(run, "shards", None)
    if shards:
        detail = ", ".join(
            f"#{o.index}: {o.n_calls} calls in {o.elapsed_s:.2f}s" for o in shards
        )
        print(f"  shards ({len(shards)} x {args.workers} workers): {detail}")

    # Where did multiparty traffic land?  The TURN relays sit at every
    # PoP behind one anycast address; allocations follow the callers.
    report = run.report
    print(f"\nTURN allocations: {report.turn_allocations}")

    # One corridor close up: EU-to-EU calls should make the VNS case
    # plainly (short last miles, everything else on dedicated circuits).
    eu = report.pair("EU", "EU")
    if eu is not None:
        vns, inet = eu["vns"], eu["internet"]
        print(
            f"\nEU->EU ({eu['calls']} calls):\n"
            f"  via VNS:      p95 loss {vns['loss_pct']['p95']:.2f}%,"
            f" lossy slots {vns['lossy_slot_fraction']:.1%}\n"
            f"  via Internet: p95 loss {inet['loss_pct']['p95']:.2f}%,"
            f" lossy slots {inet['lossy_slot_fraction']:.1%}"
        )

    codes = ", ".join(sorted(set(REGION_CODE.values())))
    print(f"\nRegion codes: {codes}")
    print("Same seed, same report: run.report.to_json() is byte-stable.")


if __name__ == "__main__":
    main()
