#!/usr/bin/env python3
"""Regenerate every paper figure/table in one run and print the report.

The full reproduction harness, end to end: builds the world(s), runs all
ten figure experiments (Figs. 3-7, 9-12, Table 1) plus the sharded
population campaign and the failover suite, and prints each one's rows.
Experiments ported to the uniform API are driven through
``repro.experiments.run(world, RunConfig.of(...)).render()``.  This is
the same code the benchmarks time — here it runs at a smaller scale by
default so the whole report takes a few minutes.

Run:
    python examples/paper_report.py [small|medium]
"""

from __future__ import annotations

import sys
import time

from repro.experiments import (
    RunConfig,
    build_world,
    fig3_precision,
    fig4_egress,
    fig5_neighbors,
    fig7_incoming,
    fig9_video_loss,
    fig10_loss_nature,
    fig11_lastmile,
    fig12_diurnal,
    table1_astype,
)
from repro.experiments import run as run_experiment
from repro.experiments.lastmile import run_lastmile_campaign


def banner(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)


def main() -> None:
    scale = sys.argv[1] if len(sys.argv) > 1 else "small"
    t0 = time.time()
    print(f"Building {scale} world (geo routing + GeoIP error injection) ...")
    error_world = build_world(scale, seed=42, geoip_errors=True)
    print(f"Building {scale} world (exact GeoIP, with hot-potato baseline) ...")
    world = build_world(scale, seed=42, with_before=True)
    print(f"  worlds ready in {time.time() - t0:.0f}s")

    banner("Section 4.1 — Fig 3: geo-based routing precision")
    result3 = fig3_precision.run(error_world)
    print(fig3_precision.render(result3))
    congruence = fig3_precision.as_congruence(error_world, result3)
    print(
        f"  AS congruence: >=25% agreement in "
        f"{congruence.fraction_of_ases_with_agreement(0.25) * 100:.0f}% of ASes "
        f"(paper: 99%); >=90% in "
        f"{congruence.fraction_of_ases_with_agreement(0.9) * 100:.0f}% (paper: 60%)"
    )

    banner("Section 4.2.1 — Fig 4: egress selection before/after")
    print(fig4_egress.render(fig4_egress.run(world)))

    banner("Section 4.2.2 — Fig 5: transit vs peer routes")
    print(fig5_neighbors.render(fig5_neighbors.run(world)))

    # Experiments ported to the uniform API run through one entry point:
    # run_experiment(world, RunConfig.of(name, ...)).render().
    banner("Section 4.3 — Fig 6: delay difference VNS vs upstreams")
    print(run_experiment(world, RunConfig.of("fig6")).render())

    banner("Section 4.4 — Fig 7: incoming anycast traffic")
    print(fig7_incoming.render(fig7_incoming.run(world, requests=2000)))

    banner("Section 5.1 — Fig 9: video loss, VNS vs transit")
    result9 = fig9_video_loss.run(
        world, days=2, minutes_between_rounds=60.0, include_720p=True
    )
    print(fig9_video_loss.render(result9))

    banner("Section 5.1.2 — Fig 10: the nature of loss")
    print(fig10_loss_nature.render(fig10_loss_nature.analyze(result9.campaign)))

    banner("Section 5.2 — last-mile campaign (Figs 11-12, Table 1)")
    data = run_lastmile_campaign(
        world, hosts_per_type_per_region=8, days=2, minutes_between_rounds=60.0
    )
    print(f"  observations: {len(data.observations)}")
    print()
    print(fig11_lastmile.render(fig11_lastmile.run(world, data=data)))
    print()
    print(table1_astype.render(table1_astype.run(world, data=data)))
    print()
    print(fig12_diurnal.render(fig12_diurnal.run(world, data=data)))

    banner("Section 5 at scale — population campaign (sharded, 2 workers)")
    print(
        run_experiment(
            world, RunConfig.of("campaign", n_users=120, seed=7, workers=2)
        ).render()
    )

    banner("Beyond the paper — failover under injected faults")
    print(run_experiment(world, RunConfig.of("failover")).render())

    print()
    print(f"Full report regenerated in {time.time() - t0:.0f}s.")


if __name__ == "__main__":
    main()
