#!/usr/bin/env python3
"""Declarative scenarios and the sharded scenario matrix.

A scenario is a frozen, JSON-round-trippable spec: which world, what
arrival profile, which faults, which last-mile model, which steering
policy.  This demo

1. prints a canned spec's JSON (the committed-file format),
2. runs one scenario end to end (faults applied through the real BGP
   machinery, impairments applied at simulate time, world restored),
3. runs a (scenario x seed) matrix sharded over a persistent 2-worker
   pool, writes golden reports to a temp dir, perturbs one, and shows
   the regression diff the golden gate produces.

Run:
    python examples/scenario_matrix_demo.py [--workers N]
"""

from __future__ import annotations

import argparse
import tempfile
from dataclasses import replace

from repro.scenarios import (
    GoldenStore,
    canned_names,
    canned_scenario,
    run_matrix,
    run_scenario,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--workers",
        type=int,
        default=2,
        metavar="N",
        help="worker processes for the sharded matrix run",
    )
    args = parser.parse_args()

    print("Canned scenarios:", ", ".join(canned_names()))
    spec = canned_scenario("regional_outage")
    print("\nThe committed-file format (regional_outage):")
    print(spec.to_json())

    # --- one scenario end to end -------------------------------------
    small = replace(spec, n_users=60, calls_per_user_day=2.0)
    print("\nRunning regional_outage (faults applied, then rolled back)...")
    run = run_scenario(small)
    print(
        f"  {run.stats.calls_resolved} calls resolved, "
        f"{run.stats.calls_failed} unroutable"
    )

    # --- the matrix, sharded, with a golden gate ---------------------
    grid = [
        replace(canned_scenario(name), n_users=60, calls_per_user_day=2.0)
        for name in ("baseline", "geo_satellite", "pop_exhaustion")
    ]
    with tempfile.TemporaryDirectory() as tmp:
        store = GoldenStore(tmp)
        print(
            f"\nMatrix: {len(grid)} scenarios x 2 seeds, "
            f"sharded over a {args.workers}-worker pool..."
        )
        result = run_matrix(
            grid,
            seeds=(0, 1),
            workers=args.workers,
            golden=store,
            update_golden=True,  # first run commits the goldens
        )
        print(result.render())

        # Perturb one committed golden: the gate must catch it.
        key = result.cells[0].key
        golden = store.load(key)
        pair = next(iter(golden["pairs"]))
        golden["pairs"][pair]["vns"]["delay_ms"]["p50"] *= 1.5
        store.save(key, golden)
        print(f"\nPerturbed {key}'s golden by +50% on one QoE float; re-checking...")
        recheck = run_matrix(grid, seeds=(0, 1), sharded=False, golden=store)
        for cell in recheck.regressions():
            print(cell.golden.render())


if __name__ == "__main__":
    main()
