#!/usr/bin/env python3
"""Quickstart: build a world, route a video call, compare transports.

Builds a small synthetic Internet, deploys VNS on it (11 PoPs, geo-based
route reflectors), picks two video users on different continents, and
compares their call quality over VNS against the plain Internet path —
the paper's headline comparison, in ~30 lines of API use.

Run:
    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.dataplane.transmit import simulate_stream
from repro.experiments.common import build_world
from repro.media.codec import PROFILE_1080P
from repro.net.asn import ASType


def pick_user(topology, region_name: str):
    """An enterprise user in the given world region."""
    for system in topology.ases.values():
        if (
            system.as_type is ASType.EC
            and system.home.city.region.value == region_name
            and system.prefixes
        ):
            return system
    raise LookupError(f"no enterprise user in {region_name}")


def main() -> None:
    print("Building a synthetic Internet and deploying VNS on it ...")
    world = build_world("small", seed=1)
    service = world.service
    print(
        f"  {len(world.topology.ases)} ASes, "
        f"{len(world.topology.prefixes())} prefixes, "
        f"{len(service.deployment.upstreams)} upstreams, "
        f"{len(service.deployment.peers)} peers, "
        f"{service.deployment.messages_delivered} BGP messages to converge"
    )

    rng = np.random.default_rng(2)
    alice = pick_user(world.topology, "Europe")
    bob = pick_user(world.topology, "Asia Pacific")
    print(f"\nCall: {alice} ({alice.home.city.name})  <->  {bob} ({bob.home.city.name})")

    call = service.call_paths(
        alice.prefixes[0],
        world.topology.host_location(alice.prefixes[0], rng),
        bob.prefixes[0],
        world.topology.host_location(bob.prefixes[0], rng),
    )
    assert call is not None
    print(f"  enters VNS at {call.entry_pop}, exits at {call.exit_pop}")
    print(f"  RTT via VNS:      {call.via_vns.rtt_ms():7.1f} ms")
    print(f"  RTT via Internet: {call.via_internet.rtt_ms():7.1f} ms")

    def stream_stats(path, sessions=40):
        losses = [
            simulate_stream(
                path,
                packets_per_second=PROFILE_1080P.packets_per_second,
                hour_cet=float(h % 24),
                rng=rng,
            ).loss_percent
            for h in range(sessions)
        ]
        return float(np.mean(losses)), sum(1 for loss in losses if loss > 0.15)

    print("\nEnd-to-end (includes both users' last miles, Fig. 8's A-D):")
    for label, path in (("VNS", call.via_vns), ("Internet", call.via_internet)):
        mean, over = stream_stats(path)
        print(
            f"  {label:<9} mean loss {mean:7.4f}%   "
            f"sessions over 0.15% threshold: {over}/40"
        )

    # The paper separates the long haul (B-C) from the last mile: that is
    # where VNS's dedicated circuits make the dramatic difference.
    long_haul_vns = service.vns_internal_path(call.entry_pop, call.exit_pop)
    long_haul_transit = service.path_between_pops_via_upstream(
        call.entry_pop, call.exit_pop
    )
    print(f"\nLong haul only ({call.entry_pop} -> {call.exit_pop}, Fig. 8's B-C):")
    for label, path in (("VNS", long_haul_vns), ("transit", long_haul_transit)):
        mean, over = stream_stats(path)
        print(
            f"  {label:<9} mean loss {mean:7.4f}%   "
            f"sessions over 0.15% threshold: {over}/40"
        )

    print(
        "\nDone — the last mile is what it is, but the long haul is where"
        "\nthe overlay wins (and what Sec. 5.1 measures)."
    )


if __name__ == "__main__":
    main()
