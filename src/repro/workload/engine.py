"""The campaign engine: resolve, simulate, aggregate — at population scale.

The paper's evidence is a two-week production campaign over millions of
calls; per-call path resolution and per-stream scalar simulation do not
get anywhere near that volume.  The engine exploits the two kinds of
redundancy a real campaign has:

* **Paths repeat.**  Anycast entry depends only on the caller's prefix;
  the VNS onward leg only on ``(entry_pop, dst_prefix)``; the Internet
  leg only on the prefix pair.  Each is memoised, so a campaign touching
  P prefixes resolves O(P²) paths once for O(calls) uses — the
  ``(entry_pop, dst_prefix)`` cache hit rate is the headline number in
  ``BENCH_workload.json``.
* **Streams over one path are exchangeable.**  Calls sharing a path
  signature (prefix pair, hour bin, duration) are exchangeable and can
  be simulated together.  The default ``"columnar"`` kernel goes
  further: *all* groups are gathered into campaign-wide
  struct-of-arrays columns and simulated in a handful of wide numpy
  passes (:mod:`repro.dataplane.columnar`) — real campaigns have ~1
  call per exact signature, so per-group batching alone barely helps.
  The legacy ``"grouped"`` kernel (one
  :func:`~repro.dataplane.transmit.simulate_stream_batch` call per
  group) remains as the scipy-free fallback.

**Determinism contract.**  Every simulation draw is keyed by
``(campaign seed, group signature)`` via a stable blake2b hash
(:func:`group_digest`) — never by the order groups were encountered.
The grouped kernel seeds a per-group generator from it
(:func:`group_rng`); the columnar kernel goes one level finer and keys
each *individual* draw by ``(digest, transport, stream index, purpose,
slot)`` counters, so its results are additionally independent of how
streams were chunked into array passes.  A campaign's measurements
therefore depend only on the seed and on *which* calls ran, not on how
the call list was chunked, shuffled, or sharded across worker
processes.  This is what lets
:class:`~repro.workload.sharded.ShardedCampaignRunner` fan a campaign
out over a process pool and still reproduce the sequential report
byte for byte.  (The two kernels are distribution-identical but not
bit-identical to each other: pick one per campaign, which
:class:`CampaignConfig` pins.)

The three phases are instrumented with :mod:`repro.perf` timers
(``workload.resolve`` / ``workload.simulate`` / ``workload.aggregate``)
and counters; the engine also keeps its own :class:`CampaignStats` so
hit rates are available without enabling perf.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass
from functools import lru_cache
from typing import TYPE_CHECKING, Protocol

import numpy as np

from repro import perf
from repro.dataplane import columnar
from repro.dataplane.columnar import StreamColumnSpec, simulate_stream_columns
from repro.dataplane.path import DataPath, internet_path
from repro.dataplane.link import SegmentKind
from repro.dataplane.transmit import StreamResult, simulate_stream_batch
from repro.media.turn import TurnService
from repro.net.addressing import Prefix
from repro.vns.network import EgressDecision
from repro.vns.service import VideoNetworkService
from repro.workload.arrivals import CallSpec
from repro.workload.report import REGION_CODE, CampaignAggregator, CampaignReport

if TYPE_CHECKING:  # pragma: no cover - typing only (steering imports us back)
    from repro.steering.engine import SteeringEngine
    from repro.steering.policies import PathCandidates, SteeringDecision

#: Cache-miss sentinel (``None`` is a legitimate cached value).
_MISS: object = object()


class PathModel(Protocol):
    """A pure, picklable transform applied to paths at simulate time.

    Implementations model scenario-level data-plane conditions — e.g. a
    GEO-satellite last mile, corridor transit degradation, or PoP
    congestion — without touching the engine's shared path caches.

    ``transform`` receives the cached path, the transport it serves
    (``"vns"`` / ``"internet"`` / ``"detour"``) and the call group's
    anycast entry PoP, and returns either the path unchanged or a new
    :class:`~repro.dataplane.path.DataPath`.  It must be a pure function
    of its arguments (no hidden state, no randomness) so shard workers
    reproduce the parent's transformed paths exactly.  ``fingerprint``
    is a stable string folded into shard checkpoints' campaign
    fingerprints.
    """

    def transform(
        self, path: DataPath, transport: str, *, entry_pop: str
    ) -> DataPath: ...  # pragma: no cover - protocol

    def fingerprint(self) -> str: ...  # pragma: no cover - protocol


@dataclass(frozen=True, slots=True)
class CampaignConfig:
    """Frozen configuration for one campaign run.

    Replaces the growing keyword list of ``CampaignEngine.__init__`` —
    one value object travels from the caller through shard workers
    (it pickles) and into reports.

    Parameters
    ----------
    seed:
        Drives all simulation draws, via per-group keying (see the
        module docstring; arrival randomness lives in the
        :class:`~repro.workload.arrivals.CallArrivalProcess`).
    packets_per_second / slot_s:
        Stream shape, as for
        :func:`~repro.dataplane.transmit.simulate_stream`.
    kernel:
        Phase-2 simulation kernel: ``"columnar"`` (default — the
        campaign-wide struct-of-arrays kernel of
        :mod:`repro.dataplane.columnar`) or ``"grouped"`` (the legacy
        per-group :func:`~repro.dataplane.transmit.simulate_stream_batch`
        loop, also the automatic fallback when scipy is unavailable).
        The kernels are distribution-identical, not bit-identical:
        reports are reproducible within a kernel, not across them.
    """

    seed: int = 0
    packets_per_second: float = 420.0
    slot_s: float = 5.0
    kernel: str = "columnar"

    def __post_init__(self) -> None:
        if self.packets_per_second <= 0 or self.slot_s <= 0:
            raise ValueError("packets_per_second and slot_s must be positive")
        if self.kernel not in ("columnar", "grouped"):
            raise ValueError(
                f"unknown kernel {self.kernel!r}; use 'columnar' or 'grouped'"
            )


#: A simulation-group signature: calls sharing one are exchangeable and
#: simulate as a single vectorised batch.
GroupKey = tuple[Prefix, Prefix, int, float]


def group_key(spec: CallSpec) -> GroupKey:
    """The simulation-group signature of one call.

    Hour is binned to whole hours (the diurnal models change slowly) so
    calls across a campaign day share batches.
    """
    return (
        spec.caller.prefix,
        spec.callee.prefix,
        int(spec.start_hour_cet),
        spec.duration_s,
    )


def group_digest(seed: int, key: GroupKey) -> tuple[int, int]:
    """The 128-bit signature of one simulation group, as two 64-bit words.

    A stable blake2b hash of ``(campaign seed, group signature)`` —
    deliberately **not** Python's ``hash()``, whose string salting
    differs between (worker) processes.  Identical inputs yield
    identical words in any process, which is the foundation of the
    sequential-vs-sharded equivalence guarantee.  Both kernels key off
    these bytes: the grouped kernel seeds a generator from them
    (:func:`group_rng`), the columnar kernel feeds them into per-draw
    counters (:class:`~repro.dataplane.columnar.StreamColumnSpec`).
    """
    src, dst, hour_bin, duration_s = key
    text = f"{seed}|{_prefix_text(src)}|{_prefix_text(dst)}|{hour_bin}|{duration_s:.6f}"
    digest = hashlib.blake2b(text.encode("ascii"), digest_size=16).digest()
    return (
        int.from_bytes(digest[0:8], "little"),
        int.from_bytes(digest[8:16], "little"),
    )


@lru_cache(maxsize=None)
def _prefix_text(prefix: Prefix) -> str:
    """``str(prefix)`` memoised — one group digest per group renders two."""
    return str(prefix)


def group_rng(seed: int, key: GroupKey) -> np.random.Generator:
    """The grouped kernel's dedicated generator for one simulation group."""
    return np.random.default_rng(list(group_digest(seed, key)))


#: Transport salts separating a group's stream columns under the
#: columnar kernel.  Baseline draws never depend on whether a detour
#: column exists, so the baseline report columns stay bit-equal with
#: and without steering.
_SALT_VNS = 0
_SALT_INTERNET = 1
_SALT_DETOUR = 2


@dataclass(slots=True)
class CallResult:
    """One completed call: the spec plus both transports' measurements.

    Under a steering engine the call additionally carries its
    :class:`~repro.steering.policies.SteeringDecision`, the stream it
    actually rode (``steered`` — one of the two baseline streams, or a
    third PoP-detour draw), and the media bytes the VNS transport would
    have pushed across the backbone (``backbone_bytes``, the quantity a
    policy's offload saves).
    """

    spec: CallSpec
    entry_pop: str
    egress_pop: str
    via_vns: StreamResult
    via_internet: StreamResult
    decision: "SteeringDecision | None" = None
    steered: StreamResult | None = None
    backbone_bytes: int = 0


@dataclass(slots=True)
class CampaignStats:
    """Engine-side accounting for one campaign run."""

    calls_total: int = 0
    calls_failed: int = 0  #: routing failed to resolve either transport
    onward_hits: int = 0
    onward_misses: int = 0
    internet_hits: int = 0
    internet_misses: int = 0
    batches: int = 0
    largest_batch: int = 0
    turn_allocations: int = 0
    elapsed_s: float = 0.0

    @property
    def calls_resolved(self) -> int:
        return self.calls_total - self.calls_failed

    @property
    def onward_hit_rate(self) -> float:
        """Hit rate of the ``(entry_pop, dst_prefix)`` path cache."""
        lookups = self.onward_hits + self.onward_misses
        return self.onward_hits / lookups if lookups else 0.0

    @property
    def calls_per_second(self) -> float:
        return self.calls_resolved / self.elapsed_s if self.elapsed_s > 0 else 0.0

    def merge(self, other: "CampaignStats") -> None:
        """Fold another run's (shard's) accounting into this one.

        Counts sum; ``largest_batch`` takes the max.  ``elapsed_s`` sums
        too — for shards running concurrently that is aggregate busy
        time, and the sharded runner overwrites it with the observed
        wall clock after reducing.
        """
        self.calls_total += other.calls_total
        self.calls_failed += other.calls_failed
        self.onward_hits += other.onward_hits
        self.onward_misses += other.onward_misses
        self.internet_hits += other.internet_hits
        self.internet_misses += other.internet_misses
        self.batches += other.batches
        self.largest_batch = max(self.largest_batch, other.largest_batch)
        self.turn_allocations += other.turn_allocations
        self.elapsed_s += other.elapsed_s

    def to_snapshot(self) -> perf.PerfSnapshot:
        """The integer counts as a mergeable ``workload.stats.*`` snapshot.

        Routes engine accounting through the same
        :class:`~repro.perf.counters.PerfSnapshot` merge path shard
        reducers use for timers, so one aggregation mechanism covers
        both.
        """
        return perf.PerfSnapshot.of_counters(
            {
                "workload.stats.calls_total": self.calls_total,
                "workload.stats.calls_failed": self.calls_failed,
                "workload.stats.onward_hits": self.onward_hits,
                "workload.stats.onward_misses": self.onward_misses,
                "workload.stats.internet_hits": self.internet_hits,
                "workload.stats.internet_misses": self.internet_misses,
                "workload.stats.batches": self.batches,
                "workload.stats.turn_allocations": self.turn_allocations,
            }
        )


@dataclass(slots=True)
class CampaignRun:
    """Everything a campaign produces.

    ``aggregator`` is the streaming state the report was frozen from;
    shard reducers merge these (see
    :meth:`~repro.workload.report.CampaignAggregator.merge`) instead of
    re-folding every call.
    """

    results: list[CallResult]
    report: CampaignReport
    stats: CampaignStats
    aggregator: CampaignAggregator

    def render(self) -> str:
        """The campaign summary as rows (one per directed region pair)."""
        stats = self.stats
        report = self.report
        lines = ["Campaign — population-scale QoE, VNS vs native Internet"]
        lines.append(
            f"  calls: {stats.calls_resolved} completed, {stats.calls_failed} unroutable;"
            f" {report.turn_allocations} TURN-relayed multiparty legs"
        )
        # No wall-clock figures here: render output is deterministic under
        # the seed (throughput lives in BENCH_workload.json).
        lines.append(
            f"  engine: {stats.batches} batches (largest {stats.largest_batch}),"
            f" onward path-cache hit rate {stats.onward_hit_rate:.1%}"
        )
        steering = report.steering
        if steering is not None:
            delta = steering["qoe_delta_vs_vns"]
            lines.append(
                f"  steering[{steering['policy']}]:"
                f" offload {steering['offload_rate']:.1%}"
                f" ({steering['offloaded_calls']}/{steering['steered_calls']} calls,"
                f" {steering['detour_calls']} via PoP detour),"
                f" backbone bytes saved {steering['backbone_bytes_saved']:,}"
                f" of {steering['backbone_bytes']:,}"
                f" ({steering['backbone_saved_fraction']:.1%}),"
                f" QoE delta vs always-VNS {delta['delay_ms_mean']:+.2f} ms"
                f" / {delta['loss_pct_mean']:+.4f}% loss"
            )
        lines.append(
            "  corridor   calls   vns p50/p95 delay      loss"
            "      inet p50/p95 delay      loss   delay-win  loss-win"
        )
        for key in sorted(report.pairs):
            pair = report.pairs[key]
            vns, inet = pair["vns"], pair["internet"]
            lines.append(
                f"  {key:<9} {pair['calls']:5d}"
                f"   {vns['delay_ms']['p50']:6.1f}/{vns['delay_ms']['p95']:6.1f} ms"
                f" {vns['loss_pct']['p95']:6.2f}%"
                f"   {inet['delay_ms']['p50']:6.1f}/{inet['delay_ms']['p95']:6.1f} ms"
                f" {inet['loss_pct']['p95']:6.2f}%"
                f"   {pair['vns_delay_win_rate']:8.1%}  {pair['vns_loss_win_rate']:8.1%}"
            )
        return "\n".join(lines)

    def to_row(self) -> dict:
        """Flat scalar summary (seed-deterministic; no wall clock)."""
        stats = self.stats
        row = {
            "calls": stats.calls_total,
            "calls_failed": stats.calls_failed,
            "batches": stats.batches,
            "largest_batch": stats.largest_batch,
            "onward_cache_hit_rate": stats.onward_hit_rate,
            "turn_allocations": self.report.turn_allocations,
            "pairs": len(self.report.pairs),
        }
        steering = self.report.steering
        if steering is not None:
            row["steering.offload_rate"] = steering["offload_rate"]
            row["steering.detour_calls"] = steering["detour_calls"]
            row["steering.backbone_saved_fraction"] = steering[
                "backbone_saved_fraction"
            ]
        return row

    def to_json(self, indent: int | None = 2) -> str:
        """Canonical JSON: the full report plus the flat summary row."""
        payload = {"report": self.report.to_dict(), "row": self.to_row()}
        return json.dumps(payload, indent=indent, sort_keys=True)


@dataclass(slots=True)
class _ResolvedPair:
    """Cached end-to-end paths for one (src_prefix, dst_prefix) pair."""

    entry_pop: str
    egress_pop: str
    via_vns: DataPath
    via_internet: DataPath


class CampaignEngine:
    """Runs call campaigns against a :class:`VideoNetworkService`.

    Parameters
    ----------
    service:
        The VNS under test.
    config:
        The frozen :class:`CampaignConfig` (defaults when omitted).
    steering:
        An optional :class:`~repro.steering.engine.SteeringEngine`.
        When present, every resolved call gets a per-call transport
        verdict (VNS / direct Internet / one-hop PoP detour) and the
        report grows offload-rate, backbone-byte and QoE-delta columns.
        Decisions are pure in the call's identity and the engine's
        (static) health table, so steering preserves the sequential-vs-
        sharded byte-identity contract.
    path_model:
        An optional :class:`PathModel` applied to each resolved path in
        the *simulate* phase only — the shared path caches stay pure
        (they depend only on the service's converged state) and steering
        decisions keep seeing the unmodelled candidate RTTs.  The
        transform must be a pure function of the path value, so shard
        workers reproduce the parent's transformed paths exactly and the
        sequential-vs-sharded byte-identity contract holds.
    """

    def __init__(
        self,
        service: VideoNetworkService,
        config: CampaignConfig | None = None,
        *,
        steering: "SteeringEngine | None" = None,
        path_model: "PathModel | None" = None,
    ) -> None:
        self.service = service
        self.config = config if config is not None else CampaignConfig()
        self.steering = steering
        self.path_model = path_model
        self.turn = TurnService(service)
        # Transformed-path memo for ``path_model``; keyed by the cached
        # path object (pinned by the path caches for this engine's
        # lifetime), so each distinct path is transformed once per run.
        self._modeled: dict[tuple[str, int], DataPath] = {}
        # Path caches, each keyed at the coarsest granularity that is
        # still exact (see module docstring).
        self._entry: dict[Prefix, str | None] = {}
        self._lastmile: dict[tuple[Prefix, str], DataPath] = {}
        self._onward: dict[tuple[str, Prefix], tuple[DataPath, EgressDecision] | None] = {}
        self._internet: dict[tuple[Prefix, Prefix], DataPath | None] = {}
        # Pair cache values carry which per-leg caches the original miss
        # actually consulted, so cache hits only re-count those legs (an
        # entry-PoP failure short-circuits before either leg).
        self._pairs: dict[
            tuple[Prefix, Prefix], tuple[_ResolvedPair | None, bool, bool]
        ] = {}
        # Steering-only caches: the forced local exit at a PoP, the full
        # per-pair detour path and the per-pair candidate RTTs.
        self._local_exit: dict[tuple[str, Prefix], DataPath | None] = {}
        self._detour_paths: dict[tuple[Prefix, Prefix], DataPath | None] = {}
        self._candidates: dict[tuple[Prefix, Prefix], "PathCandidates"] = {}

    # ------------------------------------------------------------------ #
    # path-cache export / import / warmup
    # ------------------------------------------------------------------ #

    #: The engine's path-cache layers, by export name (see
    #: :meth:`export_path_caches`).
    PATH_CACHE_NAMES = (
        "entry",
        "lastmile",
        "onward",
        "internet",
        "pairs",
        "local_exit",
        "detour_paths",
        "candidates",
    )

    def export_path_caches(self) -> dict[str, dict]:
        """The live path-cache dicts, by name (references, not copies).

        Cache contents depend only on the service's converged state —
        never on the campaign config, seed, or steering policy — so a
        cache set exported from one engine can be adopted by any other
        engine over the *same* service.  This is how persistent shard
        workers keep their caches warm across campaigns: each new
        engine adopts the worker's long-lived cache set by reference.
        """
        return {
            "entry": self._entry,
            "lastmile": self._lastmile,
            "onward": self._onward,
            "internet": self._internet,
            "pairs": self._pairs,
            "local_exit": self._local_exit,
            "detour_paths": self._detour_paths,
            "candidates": self._candidates,
        }

    def adopt_path_caches(self, caches: dict[str, dict]) -> None:
        """Share ``caches`` (from :meth:`export_path_caches`) by reference.

        Entries this engine resolves are visible to every other adopter;
        report output is unaffected (warm caches change *when* work
        happens, never what is resolved — see the determinism contract).
        Missing names keep this engine's own (empty) dict, so cache sets
        from older exports stay adoptable.
        """
        self._entry = caches.get("entry", self._entry)
        self._lastmile = caches.get("lastmile", self._lastmile)
        self._onward = caches.get("onward", self._onward)
        self._internet = caches.get("internet", self._internet)
        self._pairs = caches.get("pairs", self._pairs)
        self._local_exit = caches.get("local_exit", self._local_exit)
        self._detour_paths = caches.get("detour_paths", self._detour_paths)
        self._candidates = caches.get("candidates", self._candidates)

    def warm_pairs(self, pairs: "Iterable[tuple[Prefix, Prefix]]") -> int:
        """Pre-resolve prefix pairs into the path caches.

        The shard warmup hook: workers run this once over a campaign's
        unique pair manifest before the first shard lands, so the
        per-shard resolve phase is all cache hits.  Counts nothing into
        any campaign's :class:`CampaignStats` (a scratch instance absorbs
        the miss accounting) and therefore cannot perturb reports.
        Returns the number of pairs that resolved to usable paths.
        """
        scratch = CampaignStats()
        resolved = 0
        with perf.timer("workload.warmup"):
            for src_prefix, dst_prefix in pairs:
                if self.resolve_pair(src_prefix, dst_prefix, scratch) is not None:
                    resolved += 1
        return resolved

    # ------------------------------------------------------------------ #
    # resolution (cached)
    # ------------------------------------------------------------------ #

    def _entry_pop(self, prefix: Prefix) -> str | None:
        entry = self._entry.get(prefix, _MISS)
        if entry is not _MISS:
            return entry
        asn = self.service.topology.origin_of[prefix]
        location = self.service.topology.prefix_location[prefix]
        pop = self.service.anycast.entry_pop(asn, location)
        code = None if pop is None else pop.code
        self._entry[prefix] = code
        return code

    def _onward_leg(
        self, entry_pop: str, dst_prefix: Prefix, stats: CampaignStats
    ) -> tuple[DataPath, EgressDecision] | None:
        key = (entry_pop, dst_prefix)
        cached = self._onward.get(key, _MISS)
        if cached is not _MISS:
            stats.onward_hits += 1
            perf.incr("workload.cache.onward_hit")
            return cached
        stats.onward_misses += 1
        perf.incr("workload.cache.onward_miss")
        decision = self.service.egress_decision(entry_pop, dst_prefix)
        if decision is None:
            self._onward[key] = None
            return None
        path = self.service.path_via_vns(entry_pop, dst_prefix, decision=decision)
        assert path is not None  # decision already resolved
        resolved = (path, decision)
        self._onward[key] = resolved
        return resolved

    def _lastmile_leg(self, src_prefix: Prefix, entry_pop: str) -> DataPath:
        key = (src_prefix, entry_pop)
        path = self._lastmile.get(key)
        if path is None:
            location = self.service.topology.prefix_location[src_prefix]
            path = self.service.last_mile_path(src_prefix, location, entry_pop)
            self._lastmile[key] = path
        return path

    def _internet_leg(
        self, src_prefix: Prefix, dst_prefix: Prefix, stats: CampaignStats
    ) -> DataPath | None:
        key = (src_prefix, dst_prefix)
        cached = self._internet.get(key, _MISS)
        if cached is not _MISS:
            stats.internet_hits += 1
            perf.incr("workload.cache.internet_hit")
            return cached
        stats.internet_misses += 1
        perf.incr("workload.cache.internet_miss")
        topology = self.service.topology
        src_origin = topology.origin_as(src_prefix)
        dst_origin = topology.origin_as(dst_prefix)
        native = self.service.routing.path(src_origin.asn, dst_origin.asn)
        if native is None:
            self._internet[key] = None
            return None
        path = internet_path(
            topology,
            native[1:] if len(native) > 1 else native,
            topology.prefix_location[src_prefix],
            topology.prefix_location[dst_prefix],
            destination_as_type=dst_origin.as_type,
            first_segment_kind=SegmentKind.ACCESS,
            description=f"call-inet:{src_prefix}->{dst_prefix}",
        )
        self._internet[key] = path
        return path

    def resolve_pair(
        self, src_prefix: Prefix, dst_prefix: Prefix, stats: CampaignStats | None = None
    ) -> _ResolvedPair | None:
        """Both transports for a prefix pair, through every cache layer.

        Matches :meth:`VideoNetworkService.call_paths` for users at the
        prefixes' true locations; returns ``None`` when routing fails
        either way, as ``call_paths`` does.
        """
        if stats is None:
            stats = CampaignStats()
        key = (src_prefix, dst_prefix)
        cached = self._pairs.get(key, _MISS)
        if cached is not _MISS:
            # The pair cache short-circuits the per-leg caches; re-count
            # exactly the lookups the original miss performed, so hit
            # rates reflect reuse without inflating legs a failed
            # resolution never consulted.
            pair, counted_onward, counted_internet = cached
            if counted_onward:
                stats.onward_hits += 1
                perf.incr("workload.cache.onward_hit")
            if counted_internet:
                stats.internet_hits += 1
                perf.incr("workload.cache.internet_hit")
            return pair
        entry = self._entry_pop(src_prefix)
        if entry is None:
            self._pairs[key] = (None, False, False)
            return None
        onward = self._onward_leg(entry, dst_prefix, stats)
        if onward is None:
            self._pairs[key] = (None, True, False)
            return None
        onward_path, decision = onward
        via_internet = self._internet_leg(src_prefix, dst_prefix, stats)
        if via_internet is None:
            self._pairs[key] = (None, True, True)
            return None
        via_vns = self._lastmile_leg(src_prefix, entry).concat(onward_path)
        via_vns.description = f"call-vns:{src_prefix}->{dst_prefix}"
        pair = _ResolvedPair(
            entry_pop=entry,
            egress_pop=decision.egress_pop,
            via_vns=via_vns,
            via_internet=via_internet,
        )
        self._pairs[key] = (pair, True, True)
        return pair

    # ------------------------------------------------------------------ #
    # steering support (cached like the transport legs)
    # ------------------------------------------------------------------ #

    def _detour_exit(self, entry_pop: str, dst_prefix: Prefix) -> DataPath | None:
        key = (entry_pop, dst_prefix)
        cached = self._local_exit.get(key, _MISS)
        if cached is not _MISS:
            return cached
        path = self.service.path_local_exit(entry_pop, dst_prefix)
        self._local_exit[key] = path
        return path

    def candidates_for(
        self, src_prefix: Prefix, dst_prefix: Prefix, pair: _ResolvedPair
    ) -> "PathCandidates":
        """The call's candidate-transport RTTs (path delay is exact).

        The one-hop detour — last mile to the anycast entry PoP, then
        forced out of VNS onto the Internet there (Sec. 4.1's "local
        exit"), zero backbone circuits — is resolved and cached here; the
        simulate phase reuses the same path for detoured streams.
        """
        key = (src_prefix, dst_prefix)
        cached = self._candidates.get(key)
        if cached is not None:
            return cached
        from repro.steering.policies import PathCandidates

        exit_leg = self._detour_exit(pair.entry_pop, dst_prefix)
        detour = None
        if exit_leg is not None:
            detour = self._lastmile_leg(src_prefix, pair.entry_pop).concat(exit_leg)
            detour.description = f"call-detour:{src_prefix}->{dst_prefix}"
        self._detour_paths[key] = detour
        candidates = PathCandidates(
            vns_rtt_ms=pair.via_vns.rtt_ms(),
            internet_rtt_ms=pair.via_internet.rtt_ms(),
            detour_rtt_ms=None if detour is None else detour.rtt_ms(),
            detour_pop=None if detour is None else pair.entry_pop,
        )
        self._candidates[key] = candidates
        return candidates

    # ------------------------------------------------------------------ #
    # phase 2: the simulation kernels
    # ------------------------------------------------------------------ #

    def _modeled_path(
        self, path: DataPath, transport: str, entry_pop: str
    ) -> DataPath:
        """``path`` through the path model (identity without one).

        Memoised per cached-path object: the path caches pin each
        resolved path for the engine's lifetime, so ``(transport,
        id(path))`` is a stable key and each distinct path is
        transformed at most once per engine.
        """
        model = self.path_model
        if model is None:
            return path
        key = (transport, id(path))
        modeled = self._modeled.get(key)
        if modeled is None:
            modeled = model.transform(path, transport, entry_pop=entry_pop)
            self._modeled[key] = modeled
        return modeled

    def _group_detour_path(
        self,
        key: GroupKey,
        indices: list[int],
        decisions: list["SteeringDecision"],
    ) -> DataPath | None:
        """The detour path to simulate for a group, if any call needs it."""
        if self.steering is None:
            return None
        from repro.steering.policies import PathChoice

        detour_path = self._detour_paths.get((key[0], key[1]))
        if detour_path is not None and any(
            decisions[i].choice is PathChoice.POP_DETOUR for i in indices
        ):
            return detour_path
        return None

    def _emit_group(
        self,
        indices: list[int],
        resolved: list[tuple[CallSpec, _ResolvedPair]],
        decisions: list["SteeringDecision"],
        results: list["CallResult | None"],
        vns_streams: list[StreamResult],
        inet_streams: list[StreamResult],
        detour_streams: list[StreamResult] | None,
    ) -> None:
        """Scatter one group's simulated streams into per-call results."""
        steering = self.steering
        if steering is not None:
            from repro.steering.policies import MEDIA_PACKET_BYTES, PathChoice

        _, pair = resolved[indices[0]]
        for slot, index in enumerate(indices):
            spec, _ = resolved[index]
            decision = None
            steered = None
            backbone = 0
            if steering is not None:
                decision = decisions[index]
                if decision.choice is PathChoice.VNS:
                    steered = vns_streams[slot]
                elif (
                    decision.choice is PathChoice.POP_DETOUR
                    and detour_streams is not None
                ):
                    steered = detour_streams[slot]
                else:
                    steered = inet_streams[slot]
                backbone = vns_streams[slot].packets_sent * MEDIA_PACKET_BYTES
            results[index] = CallResult(
                spec=spec,
                entry_pop=pair.entry_pop,
                egress_pop=pair.egress_pop,
                via_vns=vns_streams[slot],
                via_internet=inet_streams[slot],
                decision=decision,
                steered=steered,
                backbone_bytes=backbone,
            )

    def _simulate_columnar(
        self,
        groups: dict[GroupKey, list[int]],
        resolved: list[tuple[CallSpec, _ResolvedPair]],
        decisions: list["SteeringDecision"],
        results: list["CallResult | None"],
        stats: CampaignStats,
    ) -> None:
        """Gather all groups into stream columns, simulate, scatter back.

        Per group: a vns column (salt 0), an internet column (salt 1),
        and — only for groups where some call's steering decision is a
        PoP detour — a detour column (salt 2).  Draw keying is per
        ``(group digest, salt, stream)``, so column order and co-resident
        groups cannot affect any stream's outcome.
        """
        specs: list[StreamColumnSpec] = []
        plan: list[tuple[list[int], bool]] = []
        for key, indices in groups.items():
            _, _, hour_bin, duration_s = key
            _, pair = resolved[indices[0]]
            hour = hour_bin + 0.5
            digest = group_digest(self.config.seed, key)
            detour_path = self._group_detour_path(key, indices, decisions)
            if detour_path is not None:
                detour_path = self._modeled_path(detour_path, "detour", pair.entry_pop)
            vns_path = self._modeled_path(pair.via_vns, "vns", pair.entry_pop)
            inet_path = self._modeled_path(pair.via_internet, "internet", pair.entry_pop)
            n = len(indices)
            specs.append(
                StreamColumnSpec(vns_path, n, duration_s, hour, digest, _SALT_VNS)
            )
            specs.append(
                StreamColumnSpec(
                    inet_path, n, duration_s, hour, digest, _SALT_INTERNET
                )
            )
            if detour_path is not None:
                specs.append(
                    StreamColumnSpec(
                        detour_path, n, duration_s, hour, digest, _SALT_DETOUR
                    )
                )
            plan.append((indices, detour_path is not None))
            stats.batches += 1
            stats.largest_batch = max(stats.largest_batch, n)
        streams = simulate_stream_columns(
            specs,
            packets_per_second=self.config.packets_per_second,
            slot_s=self.config.slot_s,
        )
        cursor = 0
        for indices, has_detour in plan:
            vns_streams = streams[cursor]
            inet_streams = streams[cursor + 1]
            detour_streams = streams[cursor + 2] if has_detour else None
            cursor += 3 if has_detour else 2
            self._emit_group(
                indices,
                resolved,
                decisions,
                results,
                vns_streams,
                inet_streams,
                detour_streams,
            )

    def _simulate_grouped(
        self,
        groups: dict[GroupKey, list[int]],
        resolved: list[tuple[CallSpec, _ResolvedPair]],
        decisions: list["SteeringDecision"],
        results: list["CallResult | None"],
        stats: CampaignStats,
    ) -> None:
        """Legacy kernel: one batched draw per (signature, transport)."""
        for key, indices in groups.items():
            _, _, hour_bin, duration_s = key
            _, pair = resolved[indices[0]]
            hour = hour_bin + 0.5
            rng = group_rng(self.config.seed, key)
            vns_streams = simulate_stream_batch(
                self._modeled_path(pair.via_vns, "vns", pair.entry_pop),
                len(indices),
                duration_s=duration_s,
                packets_per_second=self.config.packets_per_second,
                slot_s=self.config.slot_s,
                hour_cet=hour,
                rng=rng,
            )
            inet_streams = simulate_stream_batch(
                self._modeled_path(pair.via_internet, "internet", pair.entry_pop),
                len(indices),
                duration_s=duration_s,
                packets_per_second=self.config.packets_per_second,
                slot_s=self.config.slot_s,
                hour_cet=hour,
                rng=rng,
            )
            # Detoured streams need a third draw over the detour path.
            # Drawn strictly AFTER the two baseline batches on the same
            # group generator, so the vns/internet draws — and hence the
            # baseline report columns — are bit-equal with and without
            # steering.
            detour_streams = None
            detour_path = self._group_detour_path(key, indices, decisions)
            if detour_path is not None:
                detour_streams = simulate_stream_batch(
                    self._modeled_path(detour_path, "detour", pair.entry_pop),
                    len(indices),
                    duration_s=duration_s,
                    packets_per_second=self.config.packets_per_second,
                    slot_s=self.config.slot_s,
                    hour_cet=hour,
                    rng=rng,
                )
            self._emit_group(
                indices,
                resolved,
                decisions,
                results,
                vns_streams,
                inet_streams,
                detour_streams,
            )
            stats.batches += 1
            stats.largest_batch = max(stats.largest_batch, len(indices))

    # ------------------------------------------------------------------ #
    # the campaign
    # ------------------------------------------------------------------ #

    def run(self, calls: list[CallSpec]) -> CampaignRun:
        """Run a campaign: resolve every call, simulate in batches, aggregate.

        Calls whose routing fails either way are counted in
        ``stats.calls_failed`` and carry no measurement (the paper's
        campaign likewise only reports completed calls).  Deterministic:
        the same seed and call *set* produce an identical
        :meth:`CampaignReport.to_json`, regardless of call order or of
        how the list was sharded (per-group generators, see
        :func:`group_rng`).
        """
        stats = CampaignStats(calls_total=len(calls))
        started = time.perf_counter()
        steering = self.steering
        if steering is not None:
            from repro.steering.policies import stream_payload_bytes

        # Phase 1: resolve paths (and, under steering, decide each call's
        # transport) and group calls by simulation signature.
        resolved: list[tuple[CallSpec, _ResolvedPair]] = []
        decisions: list["SteeringDecision"] = []  # parallel to ``resolved``
        groups: dict[GroupKey, list[int]] = {}
        with perf.timer("workload.resolve"):
            for spec in calls:
                pair = self.resolve_pair(spec.caller.prefix, spec.callee.prefix, stats)
                if pair is None:
                    stats.calls_failed += 1
                    perf.incr("workload.calls.failed")
                    continue
                if spec.multiparty:
                    # Multiparty legs relay via the TURN service at the
                    # caller's (already resolved) anycast entry PoP.
                    allocation = self.turn.relays[pair.entry_pop].allocate(
                        f"user-{spec.caller.user_id}"
                    )
                    if allocation is not None:
                        stats.turn_allocations += 1
                if steering is not None:
                    decisions.append(
                        steering.decide_for_regions(
                            REGION_CODE[spec.caller.region],
                            REGION_CODE[spec.callee.region],
                            spec.day * 24.0 + spec.start_hour_cet,
                            candidates=self.candidates_for(
                                spec.caller.prefix, spec.callee.prefix, pair
                            ),
                            call_id=spec.call_id,
                            payload_bytes=stream_payload_bytes(
                                spec.duration_s,
                                self.config.packets_per_second,
                                self.config.slot_s,
                            ),
                        )
                    )
                index = len(resolved)
                resolved.append((spec, pair))
                groups.setdefault(group_key(spec), []).append(index)
        perf.incr("workload.calls", len(calls))

        # Phase 2: simulate every group's streams.  The columnar kernel
        # gathers all groups into campaign-wide array passes; the grouped
        # kernel makes one batched draw per (signature, transport).
        results: list[CallResult | None] = [None] * len(resolved)
        with perf.timer("workload.simulate"):
            if self.config.kernel == "columnar" and columnar.available():
                self._simulate_columnar(groups, resolved, decisions, results, stats)
            else:
                self._simulate_grouped(groups, resolved, decisions, results, stats)
        perf.incr("workload.batches", stats.batches)

        # Phase 3: fold into the per-region-pair report.
        aggregator = CampaignAggregator()
        with perf.timer("workload.aggregate"):
            for result in results:
                assert result is not None  # every resolved index is filled
                aggregator.add(result)
        stats.elapsed_s = time.perf_counter() - started
        report = aggregator.report(
            seed=self.config.seed,
            n_failed=stats.calls_failed,
            turn_allocations=stats.turn_allocations,
            steering_policy=None if steering is None else steering.policy.name,
        )
        return CampaignRun(
            results=[result for result in results if result is not None],
            report=report,
            stats=stats,
            aggregator=aggregator,
        )
