"""The campaign engine: resolve, simulate, aggregate — at population scale.

The paper's evidence is a two-week production campaign over millions of
calls; per-call path resolution and per-stream scalar simulation do not
get anywhere near that volume.  The engine exploits the two kinds of
redundancy a real campaign has:

* **Paths repeat.**  Anycast entry depends only on the caller's prefix;
  the VNS onward leg only on ``(entry_pop, dst_prefix)``; the Internet
  leg only on the prefix pair.  Each is memoised, so a campaign touching
  P prefixes resolves O(P²) paths once for O(calls) uses — the
  ``(entry_pop, dst_prefix)`` cache hit rate is the headline number in
  ``BENCH_workload.json``.
* **Streams over one path are exchangeable.**  Calls sharing a path
  signature (prefix pair, hour bin, duration) are simulated as one
  vectorised :func:`~repro.dataplane.transmit.simulate_stream_batch`
  draw instead of a Python loop of scalar draws.

The three phases are instrumented with :mod:`repro.perf` timers
(``workload.resolve`` / ``workload.simulate`` / ``workload.aggregate``)
and counters; the engine also keeps its own :class:`CampaignStats` so
hit rates are available without enabling perf.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro import perf
from repro.dataplane.path import DataPath, internet_path
from repro.dataplane.link import SegmentKind
from repro.dataplane.transmit import StreamResult, simulate_stream_batch
from repro.media.turn import TurnService
from repro.net.addressing import Prefix
from repro.vns.network import EgressDecision
from repro.vns.service import VideoNetworkService
from repro.workload.arrivals import CallSpec
from repro.workload.report import CampaignAggregator, CampaignReport

#: Cache-miss sentinel (``None`` is a legitimate cached value).
_MISS: object = object()


@dataclass(slots=True)
class CallResult:
    """One completed call: the spec plus both transports' measurements."""

    spec: CallSpec
    entry_pop: str
    egress_pop: str
    via_vns: StreamResult
    via_internet: StreamResult


@dataclass(slots=True)
class CampaignStats:
    """Engine-side accounting for one campaign run."""

    calls_total: int = 0
    calls_failed: int = 0  #: routing failed to resolve either transport
    onward_hits: int = 0
    onward_misses: int = 0
    internet_hits: int = 0
    internet_misses: int = 0
    batches: int = 0
    largest_batch: int = 0
    turn_allocations: int = 0
    elapsed_s: float = 0.0

    @property
    def calls_resolved(self) -> int:
        return self.calls_total - self.calls_failed

    @property
    def onward_hit_rate(self) -> float:
        """Hit rate of the ``(entry_pop, dst_prefix)`` path cache."""
        lookups = self.onward_hits + self.onward_misses
        return self.onward_hits / lookups if lookups else 0.0

    @property
    def calls_per_second(self) -> float:
        return self.calls_resolved / self.elapsed_s if self.elapsed_s > 0 else 0.0


@dataclass(slots=True)
class CampaignRun:
    """Everything a campaign produces."""

    results: list[CallResult]
    report: CampaignReport
    stats: CampaignStats


@dataclass(slots=True)
class _ResolvedPair:
    """Cached end-to-end paths for one (src_prefix, dst_prefix) pair."""

    entry_pop: str
    egress_pop: str
    via_vns: DataPath
    via_internet: DataPath


class CampaignEngine:
    """Runs call campaigns against a :class:`VideoNetworkService`.

    Parameters
    ----------
    service:
        The VNS under test.
    seed:
        Drives the simulation draws (arrival randomness lives in the
        :class:`~repro.workload.arrivals.CallArrivalProcess`).
    packets_per_second / slot_s:
        Stream shape, as for
        :func:`~repro.dataplane.transmit.simulate_stream`.
    """

    def __init__(
        self,
        service: VideoNetworkService,
        *,
        seed: int = 0,
        packets_per_second: float = 420.0,
        slot_s: float = 5.0,
    ) -> None:
        self.service = service
        self.seed = seed
        self.packets_per_second = packets_per_second
        self.slot_s = slot_s
        self.turn = TurnService(service)
        # Path caches, each keyed at the coarsest granularity that is
        # still exact (see module docstring).
        self._entry: dict[Prefix, str | None] = {}
        self._lastmile: dict[tuple[Prefix, str], DataPath] = {}
        self._onward: dict[tuple[str, Prefix], tuple[DataPath, EgressDecision] | None] = {}
        self._internet: dict[tuple[Prefix, Prefix], DataPath | None] = {}
        self._pairs: dict[tuple[Prefix, Prefix], _ResolvedPair | None] = {}

    # ------------------------------------------------------------------ #
    # resolution (cached)
    # ------------------------------------------------------------------ #

    def _entry_pop(self, prefix: Prefix) -> str | None:
        entry = self._entry.get(prefix, _MISS)
        if entry is not _MISS:
            return entry
        asn = self.service.topology.origin_of[prefix]
        location = self.service.topology.prefix_location[prefix]
        pop = self.service.anycast.entry_pop(asn, location)
        code = None if pop is None else pop.code
        self._entry[prefix] = code
        return code

    def _onward_leg(
        self, entry_pop: str, dst_prefix: Prefix, stats: CampaignStats
    ) -> tuple[DataPath, EgressDecision] | None:
        key = (entry_pop, dst_prefix)
        cached = self._onward.get(key, _MISS)
        if cached is not _MISS:
            stats.onward_hits += 1
            perf.incr("workload.cache.onward_hit")
            return cached
        stats.onward_misses += 1
        perf.incr("workload.cache.onward_miss")
        decision = self.service.egress_decision(entry_pop, dst_prefix)
        if decision is None:
            self._onward[key] = None
            return None
        path = self.service.path_via_vns(entry_pop, dst_prefix, decision=decision)
        assert path is not None  # decision already resolved
        resolved = (path, decision)
        self._onward[key] = resolved
        return resolved

    def _lastmile_leg(self, src_prefix: Prefix, entry_pop: str) -> DataPath:
        key = (src_prefix, entry_pop)
        path = self._lastmile.get(key)
        if path is None:
            location = self.service.topology.prefix_location[src_prefix]
            path = self.service.last_mile_path(src_prefix, location, entry_pop)
            self._lastmile[key] = path
        return path

    def _internet_leg(
        self, src_prefix: Prefix, dst_prefix: Prefix, stats: CampaignStats
    ) -> DataPath | None:
        key = (src_prefix, dst_prefix)
        cached = self._internet.get(key, _MISS)
        if cached is not _MISS:
            stats.internet_hits += 1
            return cached
        stats.internet_misses += 1
        topology = self.service.topology
        src_origin = topology.origin_as(src_prefix)
        dst_origin = topology.origin_as(dst_prefix)
        native = self.service.routing.path(src_origin.asn, dst_origin.asn)
        if native is None:
            self._internet[key] = None
            return None
        path = internet_path(
            topology,
            native[1:] if len(native) > 1 else native,
            topology.prefix_location[src_prefix],
            topology.prefix_location[dst_prefix],
            destination_as_type=dst_origin.as_type,
            first_segment_kind=SegmentKind.ACCESS,
            description=f"call-inet:{src_prefix}->{dst_prefix}",
        )
        self._internet[key] = path
        return path

    def resolve_pair(
        self, src_prefix: Prefix, dst_prefix: Prefix, stats: CampaignStats | None = None
    ) -> _ResolvedPair | None:
        """Both transports for a prefix pair, through every cache layer.

        Matches :meth:`VideoNetworkService.call_paths` for users at the
        prefixes' true locations; returns ``None`` when routing fails
        either way, as ``call_paths`` does.
        """
        if stats is None:
            stats = CampaignStats()
        key = (src_prefix, dst_prefix)
        cached = self._pairs.get(key, _MISS)
        if cached is not _MISS:
            # The pair cache short-circuits the per-leg caches; count the
            # onward lookup it absorbed so hit rates reflect reuse.
            stats.onward_hits += 1
            stats.internet_hits += 1
            perf.incr("workload.cache.onward_hit")
            return cached
        entry = self._entry_pop(src_prefix)
        if entry is None:
            self._pairs[key] = None
            return None
        onward = self._onward_leg(entry, dst_prefix, stats)
        if onward is None:
            self._pairs[key] = None
            return None
        onward_path, decision = onward
        via_internet = self._internet_leg(src_prefix, dst_prefix, stats)
        if via_internet is None:
            self._pairs[key] = None
            return None
        via_vns = self._lastmile_leg(src_prefix, entry).concat(onward_path)
        via_vns.description = f"call-vns:{src_prefix}->{dst_prefix}"
        pair = _ResolvedPair(
            entry_pop=entry,
            egress_pop=decision.egress_pop,
            via_vns=via_vns,
            via_internet=via_internet,
        )
        self._pairs[key] = pair
        return pair

    # ------------------------------------------------------------------ #
    # the campaign
    # ------------------------------------------------------------------ #

    def run(self, calls: list[CallSpec]) -> CampaignRun:
        """Run a campaign: resolve every call, simulate in batches, aggregate.

        Calls whose routing fails either way are counted in
        ``stats.calls_failed`` and carry no measurement (the paper's
        campaign likewise only reports completed calls).  Deterministic:
        the same engine seed and call list produce an identical
        :meth:`CampaignReport.to_json`.
        """
        stats = CampaignStats(calls_total=len(calls))
        started = time.perf_counter()
        rng = np.random.default_rng(self.seed)

        # Phase 1: resolve paths and group calls by simulation signature.
        # Hour is binned to whole hours (the diurnal models change slowly)
        # so calls across a campaign day share batches.
        resolved: list[tuple[CallSpec, _ResolvedPair]] = []
        groups: dict[tuple[Prefix, Prefix, int, float], list[int]] = {}
        with perf.timer("workload.resolve"):
            for spec in calls:
                pair = self.resolve_pair(spec.caller.prefix, spec.callee.prefix, stats)
                if pair is None:
                    stats.calls_failed += 1
                    perf.incr("workload.calls.failed")
                    continue
                if spec.multiparty:
                    # Multiparty legs relay via the TURN service at the
                    # caller's (already resolved) anycast entry PoP.
                    allocation = self.turn.relays[pair.entry_pop].allocate(
                        f"user-{spec.caller.user_id}"
                    )
                    if allocation is not None:
                        stats.turn_allocations += 1
                index = len(resolved)
                resolved.append((spec, pair))
                key = (
                    spec.caller.prefix,
                    spec.callee.prefix,
                    int(spec.start_hour_cet),
                    spec.duration_s,
                )
                groups.setdefault(key, []).append(index)
        perf.incr("workload.calls", len(calls))

        # Phase 2: one batched draw per (path signature, transport).
        results: list[CallResult | None] = [None] * len(resolved)
        with perf.timer("workload.simulate"):
            for (_, _, hour_bin, duration_s), indices in groups.items():
                _, pair = resolved[indices[0]]
                hour = hour_bin + 0.5
                vns_streams = simulate_stream_batch(
                    pair.via_vns,
                    len(indices),
                    duration_s=duration_s,
                    packets_per_second=self.packets_per_second,
                    slot_s=self.slot_s,
                    hour_cet=hour,
                    rng=rng,
                )
                inet_streams = simulate_stream_batch(
                    pair.via_internet,
                    len(indices),
                    duration_s=duration_s,
                    packets_per_second=self.packets_per_second,
                    slot_s=self.slot_s,
                    hour_cet=hour,
                    rng=rng,
                )
                for slot, index in enumerate(indices):
                    spec, _ = resolved[index]
                    results[index] = CallResult(
                        spec=spec,
                        entry_pop=pair.entry_pop,
                        egress_pop=pair.egress_pop,
                        via_vns=vns_streams[slot],
                        via_internet=inet_streams[slot],
                    )
                stats.batches += 1
                stats.largest_batch = max(stats.largest_batch, len(indices))
        perf.incr("workload.batches", stats.batches)

        # Phase 3: fold into the per-region-pair report.
        aggregator = CampaignAggregator()
        with perf.timer("workload.aggregate"):
            for result in results:
                assert result is not None  # every resolved index is filled
                aggregator.add(result)
        stats.elapsed_s = time.perf_counter() - started
        report = aggregator.report(
            seed=self.seed,
            n_failed=stats.calls_failed,
            turn_allocations=stats.turn_allocations,
        )
        return CampaignRun(
            results=[result for result in results if result is not None],
            report=report,
            stats=stats,
        )
