"""Population-scale call campaigns with batched QoE aggregation.

The paper's results come from a two-week production measurement campaign
(Sec. 5): real users placing real calls, aggregated per corridor.  This
subpackage is that campaign's synthetic counterpart:

* :mod:`~repro.workload.population` — a geo-weighted user base sampled
  from the topology's prefixes;
* :mod:`~repro.workload.arrivals` — diurnally modulated Poisson call
  arrivals with Zipf callee popularity;
* :mod:`~repro.workload.engine` — the cached/batched campaign runner;
* :mod:`~repro.workload.report` — per-region-pair QoE aggregation with a
  byte-stable JSON report.
"""

from repro.workload.arrivals import (
    CALLEE_ZIPF_EXPONENT,
    DURATION_CHOICES_S,
    DURATION_WEIGHTS,
    CallArrivalProcess,
    CallSpec,
    call_rate_profile,
)
from repro.workload.engine import (
    CallResult,
    CampaignEngine,
    CampaignRun,
    CampaignStats,
)
from repro.workload.population import (
    DEFAULT_REGION_WEIGHTS,
    User,
    UserPopulation,
)
from repro.workload.report import (
    LOSSY_SLOT_THRESHOLD,
    REGION_CODE,
    CampaignAggregator,
    CampaignReport,
    PairAccumulator,
)

__all__ = [
    "CALLEE_ZIPF_EXPONENT",
    "DURATION_CHOICES_S",
    "DURATION_WEIGHTS",
    "DEFAULT_REGION_WEIGHTS",
    "LOSSY_SLOT_THRESHOLD",
    "REGION_CODE",
    "CallArrivalProcess",
    "CallResult",
    "CallSpec",
    "CampaignAggregator",
    "CampaignEngine",
    "CampaignReport",
    "CampaignRun",
    "CampaignStats",
    "PairAccumulator",
    "User",
    "UserPopulation",
    "call_rate_profile",
]
