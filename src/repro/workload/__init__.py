"""Population-scale call campaigns with batched QoE aggregation.

The paper's results come from a two-week production measurement campaign
(Sec. 5): real users placing real calls, aggregated per corridor.  This
subpackage is that campaign's synthetic counterpart:

* :mod:`~repro.workload.population` — a geo-weighted user base sampled
  from the topology's prefixes;
* :mod:`~repro.workload.arrivals` — diurnally modulated Poisson call
  arrivals with Zipf callee popularity;
* :mod:`~repro.workload.engine` — the cached/batched campaign runner;
* :mod:`~repro.workload.sharded` — shard-and-reduce multi-process
  execution, byte-identical in report output to the sequential engine;
* :mod:`~repro.workload.report` — per-region-pair QoE aggregation with a
  byte-stable JSON report.
"""

from repro.workload.arrivals import (
    CALLEE_ZIPF_EXPONENT,
    DURATION_CHOICES_S,
    DURATION_WEIGHTS,
    CallArrivalProcess,
    CallSpec,
    call_rate_profile,
    flash_crowd_calls,
)
from repro.workload.engine import (
    CallResult,
    CampaignConfig,
    CampaignEngine,
    CampaignRun,
    CampaignStats,
    PathModel,
    group_key,
    group_rng,
)
from repro.workload.population import (
    DEFAULT_REGION_WEIGHTS,
    User,
    UserPopulation,
)
from repro.workload.report import (
    LOSSY_SLOT_THRESHOLD,
    REGION_CODE,
    CampaignAggregator,
    CampaignReport,
    PairAccumulator,
)
from repro.workload.sharded import (
    CampaignWorkerPool,
    PoolStats,
    ShardCheckpointStore,
    ShardedCampaignRun,
    ShardedCampaignRunner,
    ShardExecutionError,
    ShardOutcome,
    ShardPlan,
    ShardTask,
    ShardWorldTransportSpec,
    campaign_fingerprint,
    default_workers,
    partition_calls,
    predicted_shard_cost,
    shard_seed,
    warmup_manifest,
)

__all__ = [
    "CALLEE_ZIPF_EXPONENT",
    "DURATION_CHOICES_S",
    "DURATION_WEIGHTS",
    "DEFAULT_REGION_WEIGHTS",
    "LOSSY_SLOT_THRESHOLD",
    "REGION_CODE",
    "CallArrivalProcess",
    "CallResult",
    "CallSpec",
    "CampaignAggregator",
    "CampaignConfig",
    "CampaignEngine",
    "CampaignReport",
    "CampaignRun",
    "CampaignStats",
    "CampaignWorkerPool",
    "PairAccumulator",
    "PathModel",
    "PoolStats",
    "ShardCheckpointStore",
    "ShardExecutionError",
    "ShardOutcome",
    "ShardPlan",
    "ShardTask",
    "ShardWorldTransportSpec",
    "ShardedCampaignRun",
    "ShardedCampaignRunner",
    "User",
    "UserPopulation",
    "call_rate_profile",
    "campaign_fingerprint",
    "default_workers",
    "flash_crowd_calls",
    "group_key",
    "group_rng",
    "partition_calls",
    "predicted_shard_cost",
    "shard_seed",
    "warmup_manifest",
]


def __getattr__(name: str) -> object:
    # Deprecated alias, kept for one release after the rename to
    # ShardWorldTransportSpec; the sharded module emits the warning.
    if name == "WorldSpec":
        from repro.workload import sharded

        return sharded.WorldSpec
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
