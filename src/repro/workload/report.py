"""Campaign QoE aggregation per (source region, destination region).

The paper reports its two-week campaign as per-corridor aggregates:
loss CCDF thresholds (Fig. 9), VNS-vs-Internet dominance (Figs. 6/7),
lossy-slot accounting (Sec. 5.1.2).  A campaign run reduces to the same
shapes here — per directed region pair: delay and loss percentiles,
the fraction of 5-second slots losing at least 2% of their packets, and
the rate at which the VNS transport beats the native Internet path.

Aggregation is streaming: an accumulator folds calls one at a time and
two accumulators :meth:`merge <PairAccumulator.merge>` (shard-friendly,
via :meth:`OnlineStats.merge`).  The final :class:`CampaignReport` is a
plain dataclass whose :meth:`~CampaignReport.to_json` is byte-stable for
a given campaign — seeded runs diff clean.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.geo.regions import WorldRegion
from repro.measurement.stats import OnlineStats, percentile

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (engine imports us)
    from repro.workload.engine import CallResult

#: Short region codes for report keys ("AP->EU").
REGION_CODE: dict[WorldRegion, str] = {
    WorldRegion.OCEANIA: "OC",
    WorldRegion.ASIA_PACIFIC: "AP",
    WorldRegion.MIDDLE_EAST: "ME",
    WorldRegion.AFRICA: "AF",
    WorldRegion.EUROPE: "EU",
    WorldRegion.NORTH_CENTRAL_AMERICA: "NA",
    WorldRegion.SOUTH_AMERICA: "SA",
}

#: A slot is "lossy" when it loses at least this fraction of its packets
#: (the campaign-scale analogue of the Fig. 9 slot accounting).
LOSSY_SLOT_THRESHOLD = 0.02


@dataclass(slots=True)
class PairAccumulator:
    """Streaming QoE accumulator for one directed region pair."""

    src: str
    dst: str
    calls: int = 0
    multiparty: int = 0
    vns_delay: OnlineStats = field(default_factory=OnlineStats)
    inet_delay: OnlineStats = field(default_factory=OnlineStats)
    vns_loss: OnlineStats = field(default_factory=OnlineStats)
    inet_loss: OnlineStats = field(default_factory=OnlineStats)
    #: Raw per-call samples, kept for percentiles (the OnlineStats
    #: moments alone merge sample-free; percentiles cannot).
    vns_delay_samples: list[float] = field(default_factory=list)
    inet_delay_samples: list[float] = field(default_factory=list)
    vns_loss_samples: list[float] = field(default_factory=list)
    inet_loss_samples: list[float] = field(default_factory=list)
    vns_slots: int = 0
    vns_lossy_slots: int = 0
    inet_slots: int = 0
    inet_lossy_slots: int = 0
    vns_delay_wins: int = 0
    vns_loss_wins: int = 0
    # Steering accounting (all zero / empty when no steering engine ran).
    steered_calls: int = 0
    offloaded_calls: int = 0
    detour_calls: int = 0
    backbone_bytes: int = 0
    backbone_bytes_saved: int = 0
    steered_delay_samples: list[float] = field(default_factory=list)
    steered_loss_samples: list[float] = field(default_factory=list)

    def add(self, result: "CallResult") -> None:
        """Fold one call into the pair."""
        self.calls += 1
        if result.spec.multiparty:
            self.multiparty += 1
        vns, inet = result.via_vns, result.via_internet
        # loss_percent reduces the slot-loss vector; compute each once.
        vns_rtt, vns_loss = vns.rtt_ms, vns.loss_percent
        inet_rtt, inet_loss = inet.rtt_ms, inet.loss_percent
        self.vns_delay.add(vns_rtt)
        self.vns_loss.add(vns_loss)
        self.vns_delay_samples.append(vns_rtt)
        self.vns_loss_samples.append(vns_loss)
        self.inet_delay.add(inet_rtt)
        self.inet_loss.add(inet_loss)
        self.inet_delay_samples.append(inet_rtt)
        self.inet_loss_samples.append(inet_loss)
        self.vns_slots += vns.n_slots
        self.vns_lossy_slots += _lossy_slots(vns)
        self.inet_slots += inet.n_slots
        self.inet_lossy_slots += _lossy_slots(inet)
        if vns_rtt <= inet_rtt:
            self.vns_delay_wins += 1
        if vns_loss <= inet_loss:
            self.vns_loss_wins += 1
        decision = result.decision
        if decision is not None:
            self.steered_calls += 1
            self.backbone_bytes += result.backbone_bytes
            steered = result.steered if result.steered is not None else result.via_vns
            self.steered_delay_samples.append(steered.rtt_ms)
            self.steered_loss_samples.append(steered.loss_percent)
            if decision.offloaded:
                self.offloaded_calls += 1
                self.backbone_bytes_saved += result.backbone_bytes
                if decision.choice.value == "pop_detour":
                    self.detour_calls += 1

    def merge(self, other: "PairAccumulator") -> None:
        """Fold another shard's accumulator for the same pair into this one.

        Raises
        ------
        ValueError
            If the pairs differ.
        """
        if (self.src, self.dst) != (other.src, other.dst):
            raise ValueError(
                f"cannot merge pair {other.src}->{other.dst} into {self.src}->{self.dst}"
            )
        self.calls += other.calls
        self.multiparty += other.multiparty
        self.vns_delay.merge(other.vns_delay)
        self.inet_delay.merge(other.inet_delay)
        self.vns_loss.merge(other.vns_loss)
        self.inet_loss.merge(other.inet_loss)
        self.vns_delay_samples.extend(other.vns_delay_samples)
        self.inet_delay_samples.extend(other.inet_delay_samples)
        self.vns_loss_samples.extend(other.vns_loss_samples)
        self.inet_loss_samples.extend(other.inet_loss_samples)
        self.vns_slots += other.vns_slots
        self.vns_lossy_slots += other.vns_lossy_slots
        self.inet_slots += other.inet_slots
        self.inet_lossy_slots += other.inet_lossy_slots
        self.vns_delay_wins += other.vns_delay_wins
        self.vns_loss_wins += other.vns_loss_wins
        self.steered_calls += other.steered_calls
        self.offloaded_calls += other.offloaded_calls
        self.detour_calls += other.detour_calls
        self.backbone_bytes += other.backbone_bytes
        self.backbone_bytes_saved += other.backbone_bytes_saved
        self.steered_delay_samples.extend(other.steered_delay_samples)
        self.steered_loss_samples.extend(other.steered_loss_samples)

    def summary(self) -> dict:
        """The pair's JSON-ready aggregate (floats rounded for stability).

        Every float here is *permutation-invariant*: means and percentiles
        are computed over the sorted sample arrays, so any shard partition
        and merge order of the same calls reproduces the summary — and
        hence :meth:`CampaignReport.to_json` — byte for byte.  (The
        :class:`OnlineStats` moments are kept for sample-free consumers;
        sequential Welford and Chan-merged means agree only to float
        rounding, which is why the report does not read them.)
        """

        def transport(
            delay: OnlineStats,
            loss: OnlineStats,
            delay_samples: list[float],
            loss_samples: list[float],
            lossy: int,
            slots: int,
        ) -> dict:
            del delay, loss  # moments stay available on the accumulator
            return {
                "delay_ms": {
                    "mean": round(_stable_mean(delay_samples), 4),
                    "p50": round(percentile(delay_samples, 50), 4),
                    "p95": round(percentile(delay_samples, 95), 4),
                },
                "loss_pct": {
                    "mean": round(_stable_mean(loss_samples), 6),
                    "p50": round(percentile(loss_samples, 50), 6),
                    "p95": round(percentile(loss_samples, 95), 6),
                },
                "lossy_slot_fraction": round(lossy / slots, 6) if slots else 0.0,
            }

        summary = {
            "calls": self.calls,
            "multiparty": self.multiparty,
            "vns": transport(
                self.vns_delay,
                self.vns_loss,
                self.vns_delay_samples,
                self.vns_loss_samples,
                self.vns_lossy_slots,
                self.vns_slots,
            ),
            "internet": transport(
                self.inet_delay,
                self.inet_loss,
                self.inet_delay_samples,
                self.inet_loss_samples,
                self.inet_lossy_slots,
                self.inet_slots,
            ),
            "vns_delay_win_rate": round(self.vns_delay_wins / self.calls, 6),
            "vns_loss_win_rate": round(self.vns_loss_wins / self.calls, 6),
        }
        if self.steered_calls:
            # Reports without steering keep their exact historical shape;
            # the block appears only when a steering engine decided calls.
            summary["steering"] = {
                "steered_calls": self.steered_calls,
                "offloaded_calls": self.offloaded_calls,
                "detour_calls": self.detour_calls,
                "offload_rate": round(self.offloaded_calls / self.steered_calls, 6),
                "backbone_bytes": self.backbone_bytes,
                "backbone_bytes_saved": self.backbone_bytes_saved,
                "steered": {
                    "delay_ms": {
                        "mean": round(_stable_mean(self.steered_delay_samples), 4),
                        "p50": round(percentile(self.steered_delay_samples, 50), 4),
                        "p95": round(percentile(self.steered_delay_samples, 95), 4),
                    },
                    "loss_pct": {
                        "mean": round(_stable_mean(self.steered_loss_samples), 6),
                        "p50": round(percentile(self.steered_loss_samples, 50), 6),
                        "p95": round(percentile(self.steered_loss_samples, 95), 6),
                    },
                },
                "qoe_delta_vs_vns": {
                    "delay_ms_mean": round(
                        _stable_mean(self.steered_delay_samples)
                        - _stable_mean(self.vns_delay_samples),
                        4,
                    ),
                    "loss_pct_mean": round(
                        _stable_mean(self.steered_loss_samples)
                        - _stable_mean(self.vns_loss_samples),
                        6,
                    ),
                },
            }
        return summary


def _stable_mean(samples: list[float]) -> float:
    """Mean over the sorted samples: identical for any sample ordering."""
    if not samples:
        return 0.0
    return float(np.sort(np.asarray(samples, dtype=float)).mean())


def _lossy_slots(stream) -> int:
    """Slots losing at least :data:`LOSSY_SLOT_THRESHOLD` of their packets."""
    if stream.n_slots == 0 or stream.packets_sent == 0:
        return 0
    slot_packets = stream.packets_sent / stream.n_slots
    return int(
        (np.asarray(stream.slot_losses) / slot_packets >= LOSSY_SLOT_THRESHOLD).sum()
    )


class CampaignAggregator:
    """Folds :class:`CallResult`s into per-region-pair accumulators."""

    def __init__(self) -> None:
        self.pairs: dict[tuple[str, str], PairAccumulator] = {}

    def add(self, result: "CallResult") -> None:
        src = REGION_CODE[result.spec.caller.region]
        dst = REGION_CODE[result.spec.callee.region]
        accumulator = self.pairs.get((src, dst))
        if accumulator is None:
            accumulator = PairAccumulator(src=src, dst=dst)
            self.pairs[(src, dst)] = accumulator
        accumulator.add(result)

    def merge(self, other: "CampaignAggregator") -> None:
        """Fold another shard's aggregator into this one."""
        for key, accumulator in other.pairs.items():
            mine = self.pairs.get(key)
            if mine is None:
                self.pairs[key] = accumulator
            else:
                mine.merge(accumulator)

    def report(
        self,
        *,
        seed: int,
        n_failed: int = 0,
        turn_allocations: int = 0,
        steering_policy: str | None = None,
    ) -> "CampaignReport":
        """Freeze the accumulated state into a :class:`CampaignReport`.

        ``steering_policy`` names the policy that decided the campaign's
        calls; passing it adds the campaign-wide ``steering`` block
        (offload rate, backbone bytes saved, QoE delta vs always-VNS).
        """
        pair_summaries = {
            f"{src}->{dst}": accumulator.summary()
            for (src, dst), accumulator in self.pairs.items()
        }
        steering = None
        if steering_policy is not None:
            steering = self._steering_summary(steering_policy)
        return CampaignReport(
            seed=seed,
            n_calls=sum(a.calls for a in self.pairs.values()),
            n_failed=n_failed,
            turn_allocations=turn_allocations,
            pairs=pair_summaries,
            steering=steering,
        )

    def _steering_summary(self, policy: str) -> dict:
        """The campaign-wide steering aggregate (permutation-invariant:
        counts sum, means run over sorted concatenated samples)."""
        accumulators = list(self.pairs.values())
        steered = sum(a.steered_calls for a in accumulators)
        offloaded = sum(a.offloaded_calls for a in accumulators)
        total_bytes = sum(a.backbone_bytes for a in accumulators)
        saved_bytes = sum(a.backbone_bytes_saved for a in accumulators)
        steered_delay = [s for a in accumulators for s in a.steered_delay_samples]
        steered_loss = [s for a in accumulators for s in a.steered_loss_samples]
        vns_delay = [s for a in accumulators for s in a.vns_delay_samples]
        vns_loss = [s for a in accumulators for s in a.vns_loss_samples]
        return {
            "policy": policy,
            "steered_calls": steered,
            "offloaded_calls": offloaded,
            "detour_calls": sum(a.detour_calls for a in accumulators),
            "offload_rate": round(offloaded / steered, 6) if steered else 0.0,
            "backbone_bytes": total_bytes,
            "backbone_bytes_saved": saved_bytes,
            "backbone_saved_fraction": (
                round(saved_bytes / total_bytes, 6) if total_bytes else 0.0
            ),
            "qoe_delta_vs_vns": {
                "delay_ms_mean": round(
                    _stable_mean(steered_delay) - _stable_mean(vns_delay), 4
                ),
                "loss_pct_mean": round(
                    _stable_mean(steered_loss) - _stable_mean(vns_loss), 6
                ),
            },
        }


@dataclass(slots=True)
class CampaignReport:
    """The campaign's aggregate result, JSON-stable under a seed.

    ``steering`` is the campaign-wide policy aggregate (offload rate,
    backbone bytes saved, QoE delta vs always-VNS), present only when a
    steering engine decided the campaign's calls — reports without
    steering serialise exactly as before.
    """

    seed: int
    n_calls: int
    n_failed: int
    turn_allocations: int
    pairs: dict[str, dict]
    steering: dict | None = None

    def pair(self, src_code: str, dst_code: str) -> dict | None:
        """One directed pair's summary, or ``None`` if no calls matched."""
        return self.pairs.get(f"{src_code}->{dst_code}")

    def to_dict(self) -> dict:
        payload = {
            "seed": self.seed,
            "n_calls": self.n_calls,
            "n_failed": self.n_failed,
            "turn_allocations": self.turn_allocations,
            "pairs": self.pairs,
        }
        if self.steering is not None:
            payload["steering"] = self.steering
        return payload

    def to_json(self, indent: int | None = 2) -> str:
        """A stable serialisation: sorted keys, rounded floats."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)
