"""A geo-distributed user population sampled from the synthetic Internet.

The paper's measurement campaign rides on *production* conferencing
traffic — calls placed by a worldwide user base whose geography follows
Internet population.  This module supplies that base for campaign-scale
experiments: users are sampled from the topology's originated prefixes
(whose true locations the generator knows and the GeoIP database
reports), with configurable per-region weights, deterministically under
a seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.geo.cities import region_of_point
from repro.geo.coords import GeoPoint
from repro.geo.regions import WorldRegion
from repro.net.addressing import Prefix
from repro.net.topology import InternetTopology

#: Default share of users per world region, loosely following Internet
#: population (the paper's Fig. 7 request mix is dominated by AP, EU and
#: NA, with a visible Oceania/ME/SA/Africa tail).
DEFAULT_REGION_WEIGHTS: dict[WorldRegion, float] = {
    WorldRegion.ASIA_PACIFIC: 0.34,
    WorldRegion.EUROPE: 0.24,
    WorldRegion.NORTH_CENTRAL_AMERICA: 0.22,
    WorldRegion.SOUTH_AMERICA: 0.07,
    WorldRegion.MIDDLE_EAST: 0.05,
    WorldRegion.AFRICA: 0.04,
    WorldRegion.OCEANIA: 0.04,
}


@dataclass(frozen=True, slots=True)
class User:
    """One conferencing user, pinned to an originated prefix.

    The user's ``location`` is the prefix's true location — campaigns
    resolve and cache paths at prefix granularity, so per-user jitter
    inside a /20 would add noise without adding information.
    """

    user_id: int
    prefix: Prefix
    asn: int
    location: GeoPoint
    region: WorldRegion


@dataclass(slots=True)
class UserPopulation:
    """A sampled user base, deterministic under its seed."""

    seed: int
    users: list[User] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.users)

    def __iter__(self):
        return iter(self.users)

    def users_in_region(self, region: WorldRegion) -> list[User]:
        """All users whose prefix region is ``region``."""
        return [user for user in self.users if user.region is region]

    def by_region(self) -> dict[WorldRegion, int]:
        """User counts per world region (only regions with users)."""
        counts: dict[WorldRegion, int] = {}
        for user in self.users:
            counts[user.region] = counts.get(user.region, 0) + 1
        return counts

    def prefixes(self) -> set[Prefix]:
        """The distinct prefixes the population occupies."""
        return {user.prefix for user in self.users}

    @classmethod
    def sample(
        cls,
        topology: InternetTopology,
        n_users: int,
        *,
        seed: int = 0,
        region_weights: dict[WorldRegion, float] | None = None,
    ) -> "UserPopulation":
        """Sample ``n_users`` users from the topology's prefixes.

        Regions are drawn according to ``region_weights`` (default
        :data:`DEFAULT_REGION_WEIGHTS`), restricted to regions the
        topology actually covers and renormalised; the prefix within a
        region is uniform.  The same ``(topology, n_users, seed,
        weights)`` always yields the same population.

        Raises
        ------
        ValueError
            For a non-positive user count or all-zero weights.
        """
        if n_users <= 0:
            raise ValueError(f"n_users must be positive, got {n_users!r}")
        weights = dict(DEFAULT_REGION_WEIGHTS if region_weights is None else region_weights)

        by_region: dict[WorldRegion, list[Prefix]] = {}
        for prefix in topology.prefixes():
            region = region_of_point(topology.prefix_location[prefix])
            by_region.setdefault(region, []).append(prefix)

        covered = [region for region in by_region if weights.get(region, 0.0) > 0.0]
        if not covered:
            raise ValueError("no region has both prefixes and positive weight")
        covered.sort(key=lambda region: region.value)  # deterministic order
        probs = np.array([weights[region] for region in covered], dtype=float)
        probs /= probs.sum()

        rng = np.random.default_rng(seed)
        region_draws = rng.choice(len(covered), size=n_users, p=probs)
        users: list[User] = []
        for user_id, draw in enumerate(region_draws):
            region = covered[int(draw)]
            pool = by_region[region]
            prefix = pool[int(rng.integers(0, len(pool)))]
            users.append(
                User(
                    user_id=user_id,
                    prefix=prefix,
                    asn=topology.origin_of[prefix],
                    location=topology.prefix_location[prefix],
                    region=region,
                )
            )
        return cls(seed=seed, users=users)
