"""Poisson call arrivals, diurnally modulated per caller region.

Conferencing demand follows the clock: the paper's traffic peaks in each
region's business hours (its Fig. 12 loss cycles are driven by the same
local rhythms).  Arrivals here are an inhomogeneous Poisson process —
per caller region, the hourly rate is the regional mean scaled by a
:class:`~repro.dataplane.diurnal.DiurnalProfile` evaluated in that
region's local time, normalised so the daily volume matches the
configured calls-per-user-day exactly in expectation.

Callees are drawn from a Zipf popularity ranking over the whole
population (conference bridges and heavy users attract a dispropor-
tionate share of calls), which is also what gives the campaign engine's
``(entry_pop, dst_prefix)`` path cache its hit rate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dataplane.calibration import DIURNAL_REGION_AMPLITUDE
from repro.dataplane.diurnal import DiurnalProfile
from repro.geo.regions import WorldRegion
from repro.workload.population import User, UserPopulation

#: Call durations (seconds), quantised to whole 5 s slots so campaign
#: batches stay large; weights roughly follow conferencing session mixes
#: (many short 1:1 calls, a tail of long meetings).
DURATION_CHOICES_S: tuple[float, ...] = (60.0, 120.0, 300.0, 600.0)
DURATION_WEIGHTS: tuple[float, ...] = (0.35, 0.35, 0.2, 0.1)

#: Zipf exponent for callee popularity.
CALLEE_ZIPF_EXPONENT = 1.1


def call_rate_profile(region: WorldRegion) -> DiurnalProfile:
    """The diurnal shape of call demand in ``region``.

    Business hours dominate (it is a conferencing product), with a
    secondary evening bump; the swing amplitude reuses the calibrated
    regional diurnal amplitudes.
    """
    return DiurnalProfile(
        amplitude=DIURNAL_REGION_AMPLITUDE[region],
        business_weight=1.0,
        evening_weight=0.45,
        floor=0.25,
    )


@dataclass(frozen=True, slots=True)
class CallSpec:
    """One scheduled call: who, when, for how long, over what."""

    call_id: int
    caller: User
    callee: User
    day: int
    start_hour_cet: float
    duration_s: float
    multiparty: bool  #: relayed through the anycast TURN service


class CallArrivalProcess:
    """Generates :class:`CallSpec` sequences for a population.

    Parameters
    ----------
    population:
        The user base calls are drawn from (needs at least two users).
    calls_per_user_day:
        Mean calls placed per user per day (the Poisson intensity,
        before diurnal modulation).
    multiparty_fraction:
        Probability a call is a TURN-relayed multiparty leg.
    seed:
        Drives every draw; the same seed reproduces the same campaign.

    Raises
    ------
    ValueError
        For a population of fewer than two users, a non-positive rate,
        or a multiparty fraction outside [0, 1].
    """

    def __init__(
        self,
        population: UserPopulation,
        *,
        calls_per_user_day: float = 4.0,
        multiparty_fraction: float = 0.15,
        seed: int = 0,
    ) -> None:
        if len(population) < 2:
            raise ValueError("arrivals need at least two users (caller and callee)")
        if calls_per_user_day <= 0:
            raise ValueError(
                f"calls_per_user_day must be positive, got {calls_per_user_day!r}"
            )
        if not 0.0 <= multiparty_fraction <= 1.0:
            raise ValueError(
                f"multiparty_fraction must be in [0, 1], got {multiparty_fraction!r}"
            )
        self.population = population
        self.calls_per_user_day = calls_per_user_day
        self.multiparty_fraction = multiparty_fraction
        self.seed = seed
        # Zipf callee popularity over a seeded shuffle of the users, so
        # rank is independent of sampling order.
        rng = np.random.default_rng(seed ^ 0x5EEDC0DE)
        order = rng.permutation(len(population.users))
        ranks = np.empty(len(order), dtype=float)
        ranks[order] = np.arange(1, len(order) + 1)
        weights = ranks ** -CALLEE_ZIPF_EXPONENT
        self._callee_probs = weights / weights.sum()

    # ------------------------------------------------------------------ #

    def _hourly_rates(self, region: WorldRegion, n_users: int) -> np.ndarray:
        """Expected calls per CET hour bin for one region's users.

        Normalised so the 24-bin sum equals ``n_users *
        calls_per_user_day`` exactly — the diurnal profile shapes the
        day, it does not change the volume.
        """
        profile = call_rate_profile(region)
        factors = np.array(
            [profile.factor_cet(hour + 0.5, region) for hour in range(24)]
        )
        daily = n_users * self.calls_per_user_day
        return daily * factors / factors.sum()

    def _pick_callee(self, rng: np.random.Generator, caller: User) -> User:
        """A Zipf-popular callee distinct from the caller."""
        users = self.population.users
        while True:
            callee = users[int(rng.choice(len(users), p=self._callee_probs))]
            if callee.user_id != caller.user_id:
                return callee

    def generate(self, days: int = 1) -> list[CallSpec]:
        """All calls of a ``days``-long campaign, ordered by start time.

        Raises
        ------
        ValueError
            For a non-positive day count.
        """
        if days <= 0:
            raise ValueError(f"days must be positive, got {days!r}")
        rng = np.random.default_rng(self.seed)
        durations = np.array(DURATION_CHOICES_S)
        duration_probs = np.array(DURATION_WEIGHTS) / sum(DURATION_WEIGHTS)

        regions = sorted(self.population.by_region(), key=lambda r: r.value)
        calls: list[tuple[float, User]] = []  # (absolute start hour, caller)
        for region in regions:
            users = self.population.users_in_region(region)
            rates = self._hourly_rates(region, len(users))
            for day in range(days):
                for hour in range(24):
                    n_calls = int(rng.poisson(rates[hour]))
                    if n_calls == 0:
                        continue
                    offsets = rng.random(n_calls)
                    callers = rng.integers(0, len(users), size=n_calls)
                    for offset, caller_idx in zip(offsets, callers):
                        start = day * 24.0 + hour + float(offset)
                        calls.append((start, users[int(caller_idx)]))

        calls.sort(key=lambda item: item[0])
        specs: list[CallSpec] = []
        for call_id, (start, caller) in enumerate(calls):
            callee = self._pick_callee(rng, caller)
            duration = float(durations[int(rng.choice(len(durations), p=duration_probs))])
            specs.append(
                CallSpec(
                    call_id=call_id,
                    caller=caller,
                    callee=callee,
                    day=int(start // 24.0),
                    start_hour_cet=start % 24.0,
                    duration_s=duration,
                    multiparty=bool(rng.random() < self.multiparty_fraction),
                )
            )
        return specs


def flash_crowd_calls(
    population: UserPopulation,
    *,
    attendees: int,
    hosts: int = 2,
    day: int = 0,
    start_hour_cet: float = 18.0,
    window_h: float = 0.5,
    duration_s: float = 600.0,
    multiparty: bool = True,
    seed: int = 0,
    first_call_id: int = 0,
) -> list[CallSpec]:
    """A global-webinar flash crowd: ``attendees`` calls slam a few hosts.

    The anti-diurnal workload: instead of demand spread over each
    region's business day, every attendee dials one of ``hosts`` popular
    users inside a single ``window_h``-hour window, concentrating load on
    the hosts' corridors and (for ``multiparty`` legs) the entry PoPs'
    TURN relays.  Callers are drawn uniformly world-wide — a webinar
    audience ignores local time.

    Deterministic in ``seed``; returned calls are ordered by start time
    with sequential ids from ``first_call_id`` (pass the length of an
    already generated call list to overlay the crowd on top of it).

    Raises
    ------
    ValueError
        For a non-positive attendee count/window/duration, or a host
        count that is not in ``[1, len(population) - 1]``.
    """
    if attendees <= 0:
        raise ValueError(f"attendees must be positive, got {attendees!r}")
    if not 1 <= hosts < len(population):
        raise ValueError(
            f"hosts must be in [1, {len(population) - 1}], got {hosts!r}"
        )
    if window_h <= 0:
        raise ValueError(f"window_h must be positive, got {window_h!r}")
    if duration_s <= 0:
        raise ValueError(f"duration_s must be positive, got {duration_s!r}")
    rng = np.random.default_rng(seed ^ 0xF1A5C0DE)
    users = population.users
    host_indices = rng.choice(len(users), size=hosts, replace=False)
    host_set = {int(index) for index in host_indices}
    offsets = np.sort(rng.random(attendees)) * window_h
    caller_indices = rng.integers(0, len(users), size=attendees)
    host_picks = rng.integers(0, hosts, size=attendees)
    specs: list[CallSpec] = []
    for slot, (offset, caller_index) in enumerate(zip(offsets, caller_indices)):
        callee = users[int(host_indices[int(host_picks[slot])])]
        caller_index = int(caller_index)
        while caller_index in host_set:  # hosts don't dial in
            caller_index = (caller_index + 1) % len(users)
        absolute = day * 24.0 + start_hour_cet + float(offset)
        specs.append(
            CallSpec(
                call_id=first_call_id + slot,
                caller=users[caller_index],
                callee=callee,
                day=int(absolute // 24.0),
                start_hour_cet=absolute % 24.0,
                duration_s=duration_s,
                multiparty=multiparty,
            )
        )
    return specs
