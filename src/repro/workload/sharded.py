"""Sharded multi-process campaign execution.

The paper's evaluation aggregates two weeks of production traffic across
11 PoPs; replaying that at population scale needs more than one core.
This module fans a campaign out with the shard-and-reduce shape of a
data-parallel training loop:

1. **Partition** the call list into cost-balanced per-shard slices
   (:func:`partition_calls`) that never split a simulation group — all
   calls of one ``(src_prefix, dst_prefix)`` pair land on one shard, so
   per-pair path caches stay warm and batch draws keep their size.
   Slices are balanced by *predicted work* — one cache-miss resolve per
   unique pair plus per-call and per-slot simulate cost — not by call
   duration alone.
2. **Execute** shards through a persistent :class:`CampaignWorkerPool`:
   spawn-safe workers that each receive the world exactly **once** (by
   default as a compact :mod:`frozen <repro.vns.frozen>` snapshot),
   pre-warm their path caches from the campaign's
   :func:`warmup_manifest`, and keep both world and caches alive across
   shards *and across campaigns*.  Shards **stream**: the planner emits
   more slices than workers and the runner collects them as they finish,
   so the resolve and simulate phases of different shards overlap.
3. **Reduce** by merging the shards'
   :class:`~repro.workload.report.CampaignAggregator`\\ s,
   :class:`~repro.workload.engine.CampaignStats` and
   :class:`~repro.perf.counters.PerfSnapshot`\\ s into one
   :class:`ShardedCampaignRun`.

**Determinism contract.**  Simulation draws are keyed by ``(campaign
seed, group signature)`` (:func:`~repro.workload.engine.group_rng`) and
every float in a report summary is permutation-invariant, so a sharded
run is *byte-identical* in :meth:`CampaignReport.to_json` to the
sequential run under the same seed — for any worker count, shard count,
scheduling order, retry history, cache warmth, or resume.  The per-shard
seeds carried by :class:`ShardTask` are derived deterministically from
the campaign seed for shard-local needs (retry backoff jitter today);
they deliberately do not feed the simulation draws.

**Robustness.**  Progress timeouts, failed-shard retry with a re-derived
shard seed, and graceful fallback to in-process execution when the pool
cannot be created (or a shard exhausts its retries and
``allow_inprocess_fallback`` is set).  Shard faults can be injected via
``ShardPlan.fail_injections`` for chaos-style testing, in the spirit of
:mod:`repro.faults`.  Long campaigns can checkpoint completed shards
(``ShardPlan.checkpoint_dir``) and resume, skipping finished work while
reproducing the identical merged report.

**Overhead attribution.**  Each :class:`ShardOutcome` carries, next to
the engine phases, the fan-out's own costs as separate columns:
``warmup_s`` (cache pre-warming), ``world_ship_s`` (world
pickle/unpickle into the worker) and ``queue_wait_s`` (time the shard
sat in the work queue).  ``BENCH_workload.json`` reports these instead
of letting them hide inside the simulate phase.
"""

from __future__ import annotations

import os
import pickle
import time
import warnings
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    Future,
    ProcessPoolExecutor,
    wait,
)
from dataclasses import dataclass, field, replace
from hashlib import blake2b
from multiprocessing import get_context
from pathlib import Path
from typing import TYPE_CHECKING

from repro import perf
from repro.net.addressing import Prefix
from repro.vns.service import VideoNetworkService
from repro.workload.arrivals import CallSpec
from repro.workload.engine import (
    CampaignConfig,
    CampaignEngine,
    CampaignRun,
    CampaignStats,
    PathModel,
)
from repro.workload.report import CampaignAggregator

if TYPE_CHECKING:  # pragma: no cover - typing only (steering imports us back)
    from repro.steering.engine import SteeringEngine

#: The engine phases whose per-shard timings shards report.
PHASES = ("resolve", "simulate", "aggregate")

#: Fan-out overhead columns reported next to the engine phases in
#: :attr:`ShardOutcome.phase_s` (wall-clock only; their ``cpu_s`` is 0).
OVERHEAD_COLUMNS = ("warmup_s", "world_ship_s", "queue_wait_s")

#: Accepted ``ShardPlan.world_transport`` values.
WORLD_TRANSPORTS = ("frozen", "pickle", "rebuild")

# Predicted-work model for shard balancing, in slot-equivalents (one
# unit = simulating one 5 s slot).  Calibrated from BENCH_workload.json
# on the medium world: a cold resolve_pair miss costs ~0.44 ms, a
# simulated slot ~6.7 us, and per-call fixed work ~0.03 ms.
COST_RESOLVE_MISS = 65.0
COST_PER_CALL = 4.5
DEFAULT_SLOT_S = 5.0

#: Predicted campaign cost (slot-equivalents, ~6.7 us each) below which
#: the auto shard count stays at one slice per worker: oversplitting a
#: small campaign pays more in per-shard fixed overhead (engine set-up,
#: result pickling) than phase overlap recovers.
STREAM_MIN_COST = 200_000.0


class ShardExecutionError(RuntimeError):
    """A shard kept failing after every permitted retry.

    Carries the per-attempt failure log so the caller can see what the
    pool saw (``str(exc)`` includes it).
    """

    def __init__(self, shard_index: int, failures: list[str]) -> None:
        self.shard_index = shard_index
        self.failures = list(failures)
        attempts = "; ".join(failures) or "no attempts recorded"
        super().__init__(f"shard {shard_index} failed permanently: {attempts}")


@dataclass(frozen=True, slots=True)
class ShardWorldTransportSpec:
    """A recipe for rebuilding a world inside a worker process.

    The ``rebuild`` transport ships this tiny value instead of a pickled
    service — slower to start (each worker rebuilds) but immune to any
    unpicklable state a future world might carry.
    """

    scale: str = "small"
    seed: int = 42
    geoip_errors: bool = False

    def build_service(self) -> VideoNetworkService:
        # Imported here: experiments.common imports perf and is not needed
        # in workers that receive a pickled world.
        from repro.experiments.common import build_world

        return build_world(
            self.scale, seed=self.seed, geoip_errors=self.geoip_errors
        ).service


def default_workers() -> int:
    """The default pool size: ``min(4, os.cpu_count())``."""
    return min(4, os.cpu_count() or 1)


@dataclass(frozen=True, slots=True)
class ShardPlan:
    """How to cut and execute a campaign.

    Parameters
    ----------
    n_workers:
        Pool size.  ``None`` (the default) resolves to
        :func:`default_workers` — ``min(4, os.cpu_count())``.  ``1`` (or
        ``force_inprocess``) runs the shards sequentially in this
        process — same partition, same reduce, no pool.
    n_shards:
        Number of slices.  ``None`` defaults to ``2 × workers`` when a
        pool runs (so shards stream through the queue and phases of
        different shards overlap) and to the worker count in-process;
        the runner clamps the auto value back to one slice per worker
        for campaigns whose predicted cost is under
        :data:`STREAM_MIN_COST` (oversplitting tiny campaigns costs
        more than streaming recovers).
    world_transport:
        ``"frozen"`` (default) ships a compact read-only snapshot of the
        converged world (:func:`repro.vns.frozen.freeze_service`) — a
        fraction of the full pickle's bytes and unpickle time;
        ``"pickle"`` ships the full live service (the fallback when a
        worker must mutate its world); ``"rebuild"`` ships a
        :class:`ShardWorldTransportSpec` and each worker builds its own
        copy.
    shard_timeout_s:
        Upper bound on each wait for *progress*; ``None`` waits forever.
        When no shard completes within the window, every pending shard
        counts a failed attempt (the stuck workers cannot be reclaimed,
        so prefer generous bounds).
    max_retries:
        Failed-attempt budget per shard *beyond* the first try.
    force_inprocess:
        Skip the pool entirely (useful under debuggers and in tests).
    allow_inprocess_fallback:
        Run shards in this process when the pool cannot be created or a
        shard exhausts its retries; when ``False`` those conditions
        raise :class:`ShardExecutionError`.
    keep_results:
        Return per-call :class:`~repro.workload.engine.CallResult`\\ s.
        Switching this off saves the dominant share of worker→parent
        transfer at population scale; the report and stats are complete
        either way.
    warm_caches:
        Pre-warm worker path caches from the campaign's
        :func:`warmup_manifest` before shards land.  Warmth never
        changes a report — only when resolution work happens.
    checkpoint_dir:
        When set, completed shards are persisted here (atomically, keyed
        by a campaign fingerprint) and skipped on rerun; the resumed
        merged report is identical.
    fail_injections:
        ``((shard_index, n_attempts), ...)`` — make the shard's first
        ``n_attempts`` executions raise, exercising the retry path.
    """

    n_workers: int | None = None
    n_shards: int | None = None
    world_transport: str = "frozen"
    shard_timeout_s: float | None = None
    max_retries: int = 1
    force_inprocess: bool = False
    allow_inprocess_fallback: bool = True
    keep_results: bool = True
    warm_caches: bool = True
    checkpoint_dir: str | None = None
    fail_injections: tuple[tuple[int, int], ...] = ()

    def __post_init__(self) -> None:
        if self.n_workers is not None and self.n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {self.n_workers!r}")
        if self.n_shards is not None and self.n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {self.n_shards!r}")
        if self.world_transport not in WORLD_TRANSPORTS:
            raise ValueError(
                f"world_transport must be one of {WORLD_TRANSPORTS}, "
                f"got {self.world_transport!r}"
            )
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries!r}")

    @property
    def effective_workers(self) -> int:
        return self.n_workers if self.n_workers is not None else default_workers()

    @property
    def effective_shards(self) -> int:
        if self.n_shards is not None:
            return self.n_shards
        workers = self.effective_workers
        if self.force_inprocess or workers <= 1:
            return max(workers, 1)
        # Streaming default: twice as many slices as workers, so a
        # finished worker always has another shard to pull and phases of
        # different shards overlap.
        return 2 * workers


@dataclass(slots=True)
class ShardTask:
    """One shard's work order (pickled to a worker).

    ``steering`` rides along as plain data (health table, policy,
    prefix-region map); every worker gets its own copy, which is safe
    because decisions are pure per call — no cross-shard state.
    ``submitted_at`` is stamped (``time.time()``) just before the task
    enters the pool queue so the worker can report ``queue_wait_s``.
    """

    index: int
    calls: list[CallSpec]
    config: CampaignConfig
    shard_seed: int
    attempt: int = 0
    fail_attempts: int = 0  #: injected fault: raise on the first N attempts
    keep_results: bool = True
    steering: "SteeringEngine | None" = None
    #: Optional :class:`~repro.workload.engine.PathModel` (picklable,
    #: pure), applied by every worker at simulate time — never written
    #: into the shared path caches.
    path_model: "PathModel | None" = None
    submitted_at: float | None = None


@dataclass(slots=True)
class ShardOutcome:
    """Observability record for one executed shard."""

    index: int
    n_calls: int
    attempts: int
    in_process: bool
    shard_seed: int
    elapsed_s: float
    #: ``phase -> {"total_s": wall, "cpu_s": cpu}`` from the worker's
    #: perf timers (CPU seconds are what speedup is judged on: they are
    #: immune to core contention on oversubscribed hosts).  Beside the
    #: engine phases this carries the fan-out's own overheads
    #: (:data:`OVERHEAD_COLUMNS`): ``warmup_s`` / ``world_ship_s``
    #: appear once per worker (on its first completed shard),
    #: ``queue_wait_s`` on every pooled shard.
    phase_s: dict[str, dict[str, float]]
    stats: CampaignStats
    failures: list[str] = field(default_factory=list)
    #: Restored from a checkpoint instead of executed this run.
    resumed: bool = False


@dataclass(slots=True)
class _ShardResult:
    """What a worker sends back for one shard."""

    index: int
    run: CampaignRun
    perf: perf.PerfSnapshot
    elapsed_s: float
    #: Fan-out overheads measured worker-side (column -> wall seconds).
    overhead: dict[str, float] = field(default_factory=dict)


@dataclass(slots=True)
class PoolStats:
    """Parent-side accounting for one :class:`CampaignWorkerPool`."""

    workers: int
    world_transport: str
    #: Bytes of the world payload shipped to each worker.
    world_bytes: int = 0
    #: Parent-side seconds spent pickling the world payload.
    world_dump_s: float = 0.0
    #: Seconds from :meth:`CampaignWorkerPool.start` entry to executor up.
    setup_s: float = 0.0
    #: Unique prefix pairs covered by warmup manifests so far.
    warmed_pairs: int = 0
    #: Campaign runs served (incremented by the runner).
    runs: int = 0


@dataclass(slots=True)
class ShardedCampaignRun(CampaignRun):
    """A :class:`CampaignRun` plus the shard fan-out's observability.

    ``stats.elapsed_s`` is the reducer's wall clock; per-shard busy time
    lives in each :class:`ShardOutcome`.  ``perf_snapshot`` merges every
    shard's timers/counters (including the engines'
    ``workload.stats.*`` counts routed through
    :meth:`CampaignStats.to_snapshot`) plus the fan-out's overhead rows
    (``workload.pool.*``).
    """

    shards: list[ShardOutcome] = field(default_factory=list)
    perf_snapshot: perf.PerfSnapshot = field(default_factory=perf.PerfSnapshot)
    pool_stats: PoolStats | None = None

    def simulate_critical_path_s(self, *, cpu: bool = True) -> float:
        """The slowest shard's simulate-phase seconds.

        The fan-out's lower bound on simulate wall time given enough
        cores; ``BENCH_workload.json`` reports sequential simulate time
        divided by this as the speedup per worker count.
        """
        kind = "cpu_s" if cpu else "total_s"
        return max(
            (outcome.phase_s.get("simulate", {}).get(kind, 0.0) for outcome in self.shards),
            default=0.0,
        )

    def overhead_s(self, column: str) -> float:
        """Total wall seconds of one :data:`OVERHEAD_COLUMNS` column."""
        return sum(
            outcome.phase_s.get(column, {}).get("total_s", 0.0)
            for outcome in self.shards
        )

    def to_row(self) -> dict:
        """The sequential row plus the fan-out's deterministic shape."""
        row = super().to_row()
        row["shards"] = len(self.shards)
        row["shard_retries"] = sum(
            outcome.attempts for outcome in self.shards
        ) - len(self.shards)
        return row


# --------------------------------------------------------------------- #
# partitioning and warmup manifests
# --------------------------------------------------------------------- #


def predicted_group_cost(
    n_calls: int, total_duration_s: float, *, slot_s: float = DEFAULT_SLOT_S
) -> float:
    """Predicted work of one pair group, in slot-equivalents.

    One cache-miss resolve per unique pair (``COST_RESOLVE_MISS``), a
    fixed per-call cost (``COST_PER_CALL``), and one unit per simulated
    slot (``duration / slot_s``).  This — not raw duration — is what
    :func:`partition_calls` balances; duration-only balancing left the
    2-worker medium run split 4.13 s / 2.28 s because resolve misses
    concentrate on whichever shard drew the most *unique* pairs.
    """
    return COST_RESOLVE_MISS + COST_PER_CALL * n_calls + total_duration_s / slot_s


def partition_calls(
    calls: list[CallSpec], n_shards: int, *, slot_s: float = DEFAULT_SLOT_S
) -> list[list[CallSpec]]:
    """Cut ``calls`` into at most ``n_shards`` group-preserving slices.

    All calls of one ``(src_prefix, dst_prefix)`` pair stay together —
    a simulation group is a refinement of the pair, so no batch is ever
    split and the sequential draws are reproduced exactly.  Pairs are
    balanced greedily by :func:`predicted_group_cost` (largest first,
    deterministic tie-break), and each slice preserves the original call
    order.  Slices are never empty; fewer pairs than shards yields fewer
    slices.
    """
    if n_shards <= 1 or len(calls) <= 1:
        return [list(calls)] if calls else []
    buckets: dict[tuple[str, str], list[int]] = {}
    durations: dict[tuple[str, str], float] = {}
    for position, spec in enumerate(calls):
        key = (str(spec.caller.prefix), str(spec.callee.prefix))
        buckets.setdefault(key, []).append(position)
        durations[key] = durations.get(key, 0.0) + spec.duration_s
    weights = {
        key: predicted_group_cost(len(positions), durations[key], slot_s=slot_s)
        for key, positions in buckets.items()
    }
    ordered = sorted(buckets.items(), key=lambda item: (-weights[item[0]], item[0]))
    loads = [0.0] * n_shards
    members: list[list[int]] = [[] for _ in range(n_shards)]
    for key, positions in ordered:
        target = loads.index(min(loads))
        members[target].extend(positions)
        loads[target] += weights[key]
    shards = []
    for positions in members:
        if positions:
            positions.sort()
            shards.append([calls[position] for position in positions])
    return shards


def predicted_shard_cost(
    calls: list[CallSpec], *, slot_s: float = DEFAULT_SLOT_S
) -> float:
    """Predicted work of one shard slice (sum over its pair groups)."""
    groups: dict[tuple[str, str], list[float]] = {}
    for spec in calls:
        key = (str(spec.caller.prefix), str(spec.callee.prefix))
        groups.setdefault(key, []).append(spec.duration_s)
    return sum(
        predicted_group_cost(len(durations), sum(durations), slot_s=slot_s)
        for durations in groups.values()
    )


def warmup_manifest(calls: list[CallSpec]) -> list[tuple[Prefix, Prefix]]:
    """The campaign's unique ``(src, dst)`` prefix pairs, sorted.

    This is what workers pre-resolve before the first shard lands: the
    resolve phase's only super-linear cost is the per-pair cache miss,
    so covering the manifest up front turns shard resolves into pure
    cache hits.
    """
    seen: dict[tuple[str, str], tuple[Prefix, Prefix]] = {}
    for spec in calls:
        key = (str(spec.caller.prefix), str(spec.callee.prefix))
        if key not in seen:
            seen[key] = (spec.caller.prefix, spec.callee.prefix)
    return [seen[key] for key in sorted(seen)]


def shard_seed(campaign_seed: int, index: int, attempt: int = 0) -> int:
    """The deterministic per-shard (and per-attempt) seed."""
    text = f"{campaign_seed}|shard|{index}|attempt|{attempt}"
    return int.from_bytes(blake2b(text.encode("ascii"), digest_size=8).digest(), "little")


# --------------------------------------------------------------------- #
# worker side
# --------------------------------------------------------------------- #

#: The worker's world, installed once per process by :func:`_init_worker`.
_WORKER_SERVICE: VideoNetworkService | None = None
#: The worker's persistent path caches, shared by reference with every
#: engine the worker runs — warm across shards *and* campaigns.
_WORKER_CACHES: dict[str, dict] | None = None
#: Install-time costs, reported to the parent once (first shard result).
_WORKER_INIT: dict = {"world_ship_s": 0.0, "warmup_s": 0.0, "reported": True}


def _fresh_caches() -> dict[str, dict]:
    return {name: {} for name in CampaignEngine.PATH_CACHE_NAMES}


def _warm_into_caches(
    service: VideoNetworkService,
    caches: dict[str, dict],
    pairs: list[tuple[Prefix, Prefix]],
) -> int:
    """Resolve ``pairs`` into ``caches`` (idempotent; report-invisible)."""
    engine = CampaignEngine(service, CampaignConfig())
    engine.adopt_path_caches(caches)
    return engine.warm_pairs(pairs)


def _init_worker(payload: tuple[str, object, object]) -> None:
    """Install the world (and optionally warm caches) once per worker."""
    global _WORKER_SERVICE, _WORKER_CACHES, _WORKER_INIT
    kind, data, manifest = payload
    started = time.perf_counter()
    if kind in ("pickle", "frozen"):
        service = pickle.loads(data)  # type: ignore[arg-type]
    else:
        assert isinstance(data, ShardWorldTransportSpec)
        service = data.build_service()
    ship_s = time.perf_counter() - started
    caches = _fresh_caches()
    warm_s = 0.0
    if manifest:
        started = time.perf_counter()
        _warm_into_caches(service, caches, manifest)  # type: ignore[arg-type]
        warm_s = time.perf_counter() - started
    _WORKER_SERVICE = service
    _WORKER_CACHES = caches
    _WORKER_INIT = {"world_ship_s": ship_s, "warmup_s": warm_s, "reported": False}


def _warm_worker(pairs: list[tuple[Prefix, Prefix]]) -> float:
    """Warm this worker's persistent caches; returns wall seconds spent.

    Best-effort: the pool cannot target a specific worker, so duplicate
    deliveries land on already-warm caches and cost nearly nothing.
    """
    if _WORKER_SERVICE is None or _WORKER_CACHES is None:
        raise RuntimeError("warm task reached a worker with no installed world")
    started = time.perf_counter()
    _warm_into_caches(_WORKER_SERVICE, _WORKER_CACHES, pairs)
    return time.perf_counter() - started


def _execute_shard(
    service: VideoNetworkService,
    task: ShardTask,
    caches: dict[str, dict] | None = None,
) -> _ShardResult:
    """Run one shard on ``service`` (in a worker or in-process).

    Captures the engine's perf timers as a delta against the process's
    registry and leaves the registry exactly as found when perf was off
    (:func:`repro.perf.counters.restore`), so in-process shards do not
    leak timings into a caller that never enabled instrumentation.
    ``caches`` (from :meth:`CampaignEngine.export_path_caches`) are
    adopted by reference, keeping them warm for the next shard.
    """
    if task.attempt < task.fail_attempts:
        raise RuntimeError(
            f"injected shard fault: shard {task.index} attempt {task.attempt}"
        )
    started = time.perf_counter()
    was_enabled = perf.is_enabled()
    before = perf.snapshot()
    perf.enable()
    try:
        engine = CampaignEngine(
            service, task.config, steering=task.steering, path_model=task.path_model
        )
        if caches is not None:
            engine.adopt_path_caches(caches)
        run = engine.run(task.calls)
    finally:
        after = perf.snapshot()
        if not was_enabled:
            perf.restore(before)
            perf.disable()
    shard_perf = after.diff(before).merge(run.stats.to_snapshot())
    if not task.keep_results:
        run.results = []
    return _ShardResult(
        index=task.index,
        run=run,
        perf=shard_perf,
        elapsed_s=time.perf_counter() - started,
    )


def _run_shard_worker(task: ShardTask) -> _ShardResult:
    if _WORKER_SERVICE is None:
        raise RuntimeError("shard worker used before _init_worker installed a world")
    picked_up = time.time()
    result = _execute_shard(_WORKER_SERVICE, task, caches=_WORKER_CACHES)
    overhead: dict[str, float] = {}
    if task.submitted_at is not None:
        overhead["queue_wait_s"] = max(0.0, picked_up - task.submitted_at)
    if not _WORKER_INIT.get("reported", True):
        _WORKER_INIT["reported"] = True
        overhead["world_ship_s"] = float(_WORKER_INIT["world_ship_s"])
        overhead["warmup_s"] = float(_WORKER_INIT["warmup_s"])
    result.overhead = overhead
    return result


# --------------------------------------------------------------------- #
# the persistent pool
# --------------------------------------------------------------------- #


class CampaignWorkerPool:
    """A persistent pool of campaign workers with the world pre-installed.

    Create one, run many campaigns through it (via
    ``ShardedCampaignRunner(pool=...)`` or
    :meth:`repro.experiments.common.World.campaign_pool`), and every
    campaign after the first skips the spawn, the world shipping and —
    thanks to worker-side persistent path caches — most of the resolve
    work.  The pool is lazy: workers spawn on :meth:`start` (implicitly
    on first submit), each installing the world exactly once via
    :func:`_init_worker`.

    Parameters
    ----------
    service:
        The live world; required for the ``"frozen"`` and ``"pickle"``
        transports.  ``"frozen"`` (default) ships
        :meth:`service.freeze() <repro.vns.service.VideoNetworkService.freeze>`
        — a read-only snapshot a fraction of the full pickle's size.
    workers:
        Pool size; ``None`` resolves to :func:`default_workers`.
    world_transport:
        One of :data:`WORLD_TRANSPORTS`.
    world_spec:
        Recipe for the ``"rebuild"`` transport.
    """

    def __init__(
        self,
        service: VideoNetworkService | None = None,
        *,
        workers: int | None = None,
        world_transport: str = "frozen",
        world_spec: ShardWorldTransportSpec | None = None,
    ) -> None:
        if world_transport not in WORLD_TRANSPORTS:
            raise ValueError(
                f"world_transport must be one of {WORLD_TRANSPORTS}, "
                f"got {world_transport!r}"
            )
        if world_transport in ("frozen", "pickle") and service is None:
            raise ValueError(
                f"world_transport={world_transport!r} needs a built service"
            )
        if world_transport == "rebuild" and world_spec is None:
            raise ValueError("world_transport='rebuild' needs a world_spec")
        self._service = service
        self._world_spec = world_spec
        self._executor: ProcessPoolExecutor | None = None
        self._closed = False
        #: Digests of warmup manifests already delivered to the workers;
        #: a repeat campaign over the same pairs skips the broadcast.
        self._warm_digests: set[str] = set()
        self.world_transport = world_transport
        self.workers = workers if workers is not None else default_workers()
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers!r}")
        self.stats = PoolStats(workers=self.workers, world_transport=world_transport)

    # ------------------------------------------------------------------ #

    @property
    def started(self) -> bool:
        return self._executor is not None

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def broken(self) -> bool:
        """Whether the underlying executor can no longer run tasks."""
        return bool(getattr(self._executor, "_broken", False))

    def _payload(
        self, warm_pairs: list[tuple[Prefix, Prefix]] | None
    ) -> tuple[str, object, object]:
        """The per-worker init payload, with dump cost booked to stats."""
        manifest = list(warm_pairs) if warm_pairs else None
        if self.world_transport == "rebuild":
            return ("rebuild", self._world_spec, manifest)
        assert self._service is not None
        started = time.perf_counter()
        world = (
            self._service.freeze()
            if self.world_transport == "frozen"
            else self._service
        )
        blob = pickle.dumps(world, protocol=pickle.HIGHEST_PROTOCOL)
        self.stats.world_dump_s += time.perf_counter() - started
        self.stats.world_bytes = len(blob)
        return (self.world_transport, blob, manifest)

    def start(
        self, warm_pairs: list[tuple[Prefix, Prefix]] | None = None
    ) -> "CampaignWorkerPool":
        """Create the executor (idempotent); workers spawn on demand.

        ``warm_pairs`` rides in the init payload so each worker warms
        its caches right after installing the world — no extra IPC.
        """
        if self._closed:
            raise RuntimeError("pool has been shut down")
        if self._executor is not None:
            return self
        started = time.perf_counter()
        self._executor = ProcessPoolExecutor(
            max_workers=self.workers,
            mp_context=get_context("spawn"),
            initializer=_init_worker,
            initargs=(self._payload(warm_pairs),),
        )
        self.stats.setup_s += time.perf_counter() - started
        if warm_pairs:
            self.stats.warmed_pairs = max(self.stats.warmed_pairs, len(warm_pairs))
        return self

    def submit_task(self, task: ShardTask) -> Future:
        """Submit one shard (starting the pool if needed)."""
        if self._executor is None:
            self.start()
        assert self._executor is not None
        return self._executor.submit(_run_shard_worker, task)

    def warm(self, pairs: list[tuple[Prefix, Prefix]]) -> float:
        """Best-effort cache warmup across workers; returns wall seconds.

        A fresh pool folds ``pairs`` into the worker init payload (zero
        extra IPC).  A running pool broadcasts one warm task per worker
        and waits; workers that draw a duplicate hit warm caches and
        return almost immediately.  Warmth never affects reports, so
        failures here are swallowed.
        """
        if not pairs:
            return 0.0
        digest = blake2b(
            "|".join(f"{a}>{b}" for a, b in pairs).encode("ascii"), digest_size=8
        ).hexdigest()
        if digest in self._warm_digests:
            return 0.0
        if self._executor is None:
            self.start(warm_pairs=pairs)
            self._warm_digests.add(digest)
            return 0.0
        started = time.perf_counter()
        futures = [
            self._executor.submit(_warm_worker, list(pairs))
            for _ in range(self.workers)
        ]
        for future in futures:
            try:
                future.result()
            except Exception:  # noqa: BLE001 - warmth is best-effort
                break
        self._warm_digests.add(digest)
        self.stats.warmed_pairs = max(self.stats.warmed_pairs, len(pairs))
        return time.perf_counter() - started

    def shutdown(self, wait: bool = True) -> None:
        """Stop the workers; the pool cannot be restarted afterwards."""
        self._closed = True
        if self._executor is not None:
            self._executor.shutdown(wait=wait)
            self._executor = None

    def __enter__(self) -> "CampaignWorkerPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown(wait=True)


# --------------------------------------------------------------------- #
# shard checkpoints
# --------------------------------------------------------------------- #


def campaign_fingerprint(
    config: CampaignConfig,
    slices: list[list[CallSpec]],
    *,
    steering_policy: str | None = None,
    keep_results: bool = True,
    path_model_fingerprint: str | None = None,
) -> str:
    """A digest identifying one exact campaign partition.

    Checkpoint files are keyed by it, so resuming with a different seed,
    kernel, call set, shard count, steering policy or path model never
    picks up stale shards.
    """
    digest = blake2b(digest_size=8)
    digest.update(
        f"{config.seed}|{config.packets_per_second}|{config.slot_s}|"
        f"{config.kernel}|{steering_policy or '-'}|{int(keep_results)}|"
        f"{path_model_fingerprint or '-'}|"
        f"{len(slices)}".encode("ascii")
    )
    for index, slice_ in enumerate(slices):
        digest.update(f"|{index}:".encode("ascii"))
        for spec in slice_:
            digest.update(f"{spec.call_id},".encode("ascii"))
    return digest.hexdigest()


class ShardCheckpointStore:
    """Atomic per-shard result persistence for checkpoint/resume.

    One pickle per completed shard, named by the campaign fingerprint
    and shard index.  Loads are defensive: an unreadable or mismatched
    file is treated as absent (the shard simply re-executes).
    """

    def __init__(self, directory: str | os.PathLike, fingerprint: str) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.fingerprint = fingerprint

    def path(self, index: int) -> Path:
        return self.directory / f"shard-{self.fingerprint}-{index:04d}.pkl"

    def load(self, index: int) -> tuple[_ShardResult, ShardOutcome] | None:
        path = self.path(index)
        try:
            with path.open("rb") as handle:
                result, outcome = pickle.load(handle)
        except (OSError, pickle.UnpicklingError, EOFError, ValueError,
                AttributeError, TypeError):
            return None
        outcome.resumed = True
        return result, outcome

    def save(self, result: _ShardResult, outcome: ShardOutcome) -> None:
        path = self.path(result.index)
        tmp = path.with_suffix(".tmp")
        with tmp.open("wb") as handle:
            pickle.dump((result, outcome), handle, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, path)


# --------------------------------------------------------------------- #
# the runner
# --------------------------------------------------------------------- #


class ShardedCampaignRunner:
    """Executes campaigns across a worker pool and reduces the shards.

    Parameters
    ----------
    service:
        The live world.  Required for the ``"frozen"`` and ``"pickle"``
        transports and used directly by in-process execution.
    config:
        The campaign's :class:`CampaignConfig` (defaults to seed 0).
    plan:
        The :class:`ShardPlan`; the default ships a frozen world to
        :func:`default_workers` workers and streams ``2 ×`` that many
        shards.
    world_spec:
        Recipe for the ``"rebuild"`` transport (and for in-process
        execution when no ``service`` was given).
    steering:
        Optional :class:`~repro.steering.engine.SteeringEngine`, shipped
        to every shard; the reduced report carries the same steering
        columns, byte-identical to the sequential engine's.
    path_model:
        Optional :class:`~repro.workload.engine.PathModel`, shipped to
        every shard and applied at simulate time only.  Must be pure and
        picklable; the reduced report stays byte-identical to a
        sequential engine run with the same model.
    pool:
        A :class:`CampaignWorkerPool` to run on.  Passing one amortises
        worker spawn, world shipping and cache warmup across every
        campaign that shares it.  Without one the runner builds an
        ephemeral pool per run — the old behaviour, now deprecated.
    """

    def __init__(
        self,
        service: VideoNetworkService | None = None,
        config: CampaignConfig | None = None,
        plan: ShardPlan | None = None,
        *,
        world_spec: ShardWorldTransportSpec | None = None,
        steering: "SteeringEngine | None" = None,
        path_model: "PathModel | None" = None,
        pool: CampaignWorkerPool | None = None,
    ) -> None:
        self.config = config if config is not None else CampaignConfig()
        self.plan = plan if plan is not None else ShardPlan()
        if service is None and world_spec is None:
            raise ValueError("need a service, a world_spec, or both")
        if self.plan.world_transport in ("frozen", "pickle") and service is None:
            raise ValueError(
                f"world_transport={self.plan.world_transport!r} needs a built service"
            )
        if self.plan.world_transport == "rebuild" and world_spec is None:
            raise ValueError("world_transport='rebuild' needs a world_spec")
        self._service = service
        self._world_spec = world_spec
        self._fail_map = dict(self.plan.fail_injections)
        self.steering = steering
        self.path_model = path_model
        self.pool = pool
        #: Persistent caches for in-process shards (and salvage), warm
        #: across every run of this runner.
        self._inproc_caches = _fresh_caches()
        self._checkpoints: ShardCheckpointStore | None = None
        self._run_overhead: dict[str, float] = {}

    # ------------------------------------------------------------------ #

    def run(self, calls: list[CallSpec]) -> ShardedCampaignRun:
        """Run ``calls`` sharded; the report is byte-identical to
        ``CampaignEngine(service, config).run(calls).report``."""
        started = time.perf_counter()
        self._run_overhead = {}
        self._pool_stats: PoolStats | None = None
        n_shards = self.plan.effective_shards
        if n_shards > self.plan.effective_workers and self.plan.n_shards is None:
            # Auto-streaming clamp: oversplit only campaigns big enough
            # to amortise the per-shard fixed costs.
            total_cost = predicted_shard_cost(calls, slot_s=self.config.slot_s)
            if total_cost < STREAM_MIN_COST:
                n_shards = self.plan.effective_workers
        slices = partition_calls(calls, n_shards, slot_s=self.config.slot_s)
        tasks = [
            ShardTask(
                index=index,
                calls=slice_,
                config=self.config,
                shard_seed=shard_seed(self.config.seed, index),
                fail_attempts=self._fail_map.get(index, 0),
                keep_results=self.plan.keep_results,
                steering=self.steering,
                path_model=self.path_model,
            )
            for index, slice_ in enumerate(slices)
        ]
        self._checkpoints = None
        executed: list[tuple[_ShardResult, ShardOutcome]] = []
        if self.plan.checkpoint_dir is not None:
            fingerprint = campaign_fingerprint(
                self.config,
                slices,
                steering_policy=None if self.steering is None else self.steering.policy.name,
                keep_results=self.plan.keep_results,
                path_model_fingerprint=(
                    None if self.path_model is None else self.path_model.fingerprint()
                ),
            )
            self._checkpoints = ShardCheckpointStore(
                self.plan.checkpoint_dir, fingerprint
            )
            fresh = []
            for task in tasks:
                restored = self._checkpoints.load(task.index)
                if restored is not None:
                    executed.append(restored)
                else:
                    fresh.append(task)
            tasks = fresh
        use_pool = not (
            self.plan.force_inprocess
            or (self.pool is None and self.plan.effective_workers <= 1)
            or len(tasks) <= 1
        )
        if use_pool:
            executed.extend(self._run_pool(tasks))
        else:
            for task in tasks:
                executed.append(self._checkpointed(self._run_task_inprocess(task)))
        return self._reduce(executed, time.perf_counter() - started)

    # ------------------------------------------------------------------ #
    # execution paths
    # ------------------------------------------------------------------ #

    def _local_service(self) -> VideoNetworkService:
        if self._service is None:
            assert self._world_spec is not None
            self._service = self._world_spec.build_service()
        return self._service

    def _checkpointed(
        self, pair: tuple[_ShardResult, ShardOutcome]
    ) -> tuple[_ShardResult, ShardOutcome]:
        if self._checkpoints is not None:
            self._checkpoints.save(*pair)
        return pair

    def _run_task_inprocess(
        self, task: ShardTask, failures: list[str] | None = None
    ) -> tuple[_ShardResult, ShardOutcome]:
        failures = list(failures or [])
        first_attempt = task.attempt
        attempt = task.attempt
        while True:
            try:
                result = _execute_shard(
                    self._local_service(), task, caches=self._inproc_caches
                )
                break
            except Exception as exc:  # noqa: BLE001 - retry budget decides
                failures.append(f"in-process attempt {attempt}: {exc}")
                if attempt - first_attempt >= self.plan.max_retries:
                    raise ShardExecutionError(task.index, failures) from exc
                attempt += 1
                task = replace(
                    task,
                    attempt=attempt,
                    shard_seed=shard_seed(self.config.seed, task.index, attempt),
                )
        outcome = self._outcome(
            result, task, attempts=attempt - first_attempt + 1, in_process=True
        )
        outcome.failures = failures
        return result, outcome

    def _run_pool(
        self, tasks: list[ShardTask]
    ) -> list[tuple[_ShardResult, ShardOutcome]]:
        pool = self.pool
        ephemeral = pool is None
        if pool is None:
            warnings.warn(
                "spawning a worker pool per run is deprecated; build a "
                "CampaignWorkerPool once and pass it to "
                "ShardedCampaignRunner(pool=...) (or use "
                "World.campaign_pool()) so spawn, world shipping and "
                "cache warmup amortise across campaigns",
                DeprecationWarning,
                stacklevel=3,
            )
            try:
                pool = CampaignWorkerPool(
                    self._service,
                    workers=min(self.plan.effective_workers, len(tasks)),
                    world_transport=self.plan.world_transport,
                    world_spec=self._world_spec,
                )
            except Exception as exc:  # noqa: BLE001 - pool genuinely unavailable
                return self._pool_unavailable(tasks, exc)
        try:
            manifest = (
                warmup_manifest([spec for task in tasks for spec in task.calls])
                if self.plan.warm_caches
                else None
            )
            freshly_started = not pool.started
            try:
                if manifest:
                    warm_wall = pool.warm(manifest)
                    if warm_wall > 0.0:
                        self._run_overhead["workload.pool.rewarm"] = warm_wall
                else:
                    pool.start()
            except Exception as exc:  # noqa: BLE001 - pool genuinely unavailable
                return self._pool_unavailable(tasks, exc)
            pool.stats.runs += 1
            if freshly_started:
                self._run_overhead["workload.pool.setup"] = pool.stats.setup_s
                self._run_overhead["workload.pool.world_dump"] = pool.stats.world_dump_s
            self._pool_stats = pool.stats
            return self._stream(pool, tasks)
        finally:
            if ephemeral:
                pool.shutdown(wait=True)

    def _pool_unavailable(
        self, tasks: list[ShardTask], exc: Exception
    ) -> list[tuple[_ShardResult, ShardOutcome]]:
        if not self.plan.allow_inprocess_fallback:
            raise ShardExecutionError(-1, [f"pool unavailable: {exc}"]) from exc
        return [
            self._checkpointed(self._run_task_inprocess(task)) for task in tasks
        ]

    def _stream(
        self, pool: CampaignWorkerPool, tasks: list[ShardTask]
    ) -> list[tuple[_ShardResult, ShardOutcome]]:
        """Collect shards as they finish; retry, salvage, checkpoint.

        Shards stream: with more shards than workers, a worker that
        finishes its slice immediately pulls the next one off the queue,
        so the resolve phase of one shard overlaps the simulate phase of
        another.  The wait loop preserves the retry/timeout/salvage
        semantics of the sequential collector it replaced.
        """
        executed: list[tuple[_ShardResult, ShardOutcome]] = []
        state: dict[Future, tuple[ShardTask, int, list[str]]] = {}
        pool_broken = False

        def submit(task: ShardTask, attempts: int, failures: list[str]) -> bool:
            task.submitted_at = time.time()
            try:
                future = pool.submit_task(task)
            except (BrokenExecutor, RuntimeError) as exc:
                failures.append(f"attempt {task.attempt}: submit failed: {exc}")
                return False
            state[future] = (task, attempts, failures)
            return True

        def retry_of(task: ShardTask) -> ShardTask:
            return replace(
                task,
                attempt=task.attempt + 1,
                shard_seed=shard_seed(self.config.seed, task.index, task.attempt + 1),
            )

        for task in tasks:
            if not submit(task, 1, failures := []):
                pool_broken = True
                executed.append(self._salvage_task(task, 1, failures))
        while state and not pool_broken:
            done, _ = wait(
                set(state), timeout=self.plan.shard_timeout_s,
                return_when=FIRST_COMPLETED,
            )
            if not done:
                # No progress inside the window: every pending shard has
                # now waited >= shard_timeout_s — each burns an attempt.
                for future in list(state):
                    task, attempts, failures = state.pop(future)
                    failures.append(
                        f"attempt {task.attempt}: timed out after "
                        f"{self.plan.shard_timeout_s}s"
                    )
                    future.cancel()
                    if attempts > self.plan.max_retries:
                        executed.append(self._salvage_task(task, attempts, failures))
                    else:
                        retry = retry_of(task)
                        if not submit(retry, attempts + 1, failures):
                            pool_broken = True
                            executed.append(
                                self._salvage_task(retry, attempts + 1, failures)
                            )
                continue
            for future in done:
                task, attempts, failures = state.pop(future)
                try:
                    result = future.result()
                except BrokenExecutor as exc:
                    failures.append(f"attempt {task.attempt}: pool broke: {exc}")
                    pool_broken = True
                    executed.append(self._salvage_task(task, attempts, failures))
                except Exception as exc:  # noqa: BLE001 - retry budget decides
                    failures.append(f"attempt {task.attempt}: {exc}")
                    if attempts > self.plan.max_retries:
                        executed.append(self._salvage_task(task, attempts, failures))
                    else:
                        retry = retry_of(task)
                        if not submit(retry, attempts + 1, failures):
                            pool_broken = True
                            executed.append(
                                self._salvage_task(retry, attempts + 1, failures)
                            )
                else:
                    executed.append(
                        self._checkpointed(
                            self._finish_pool_task(result, task, attempts, failures)
                        )
                    )
        if pool_broken and state:
            # Salvage everything still in flight on this side of the pool.
            for future in list(state):
                task, attempts, failures = state.pop(future)
                executed.append(self._salvage_task(task, attempts, failures))
        return executed

    def _finish_pool_task(
        self, result: _ShardResult, task: ShardTask, attempts: int, failures: list[str]
    ) -> tuple[_ShardResult, ShardOutcome]:
        outcome = self._outcome(result, task, attempts=attempts, in_process=False)
        outcome.failures = failures
        return result, outcome

    def _salvage_task(
        self, task: ShardTask, attempts: int, failures: list[str]
    ) -> tuple[_ShardResult, ShardOutcome]:
        """Last resort for a shard the pool could not finish."""
        if not self.plan.allow_inprocess_fallback:
            raise ShardExecutionError(task.index, failures)
        # The injected-fault budget is attempt-indexed; continue counting
        # so a fault spanning all pool attempts still clears in-process.
        salvage = replace(
            task,
            attempt=task.attempt + 1,
            shard_seed=shard_seed(self.config.seed, task.index, task.attempt + 1),
        )
        result, outcome = self._run_task_inprocess(salvage, failures)
        outcome.attempts += attempts
        return self._checkpointed((result, outcome))

    # ------------------------------------------------------------------ #
    # reduce
    # ------------------------------------------------------------------ #

    def _outcome(
        self, result: _ShardResult, task: ShardTask, *, attempts: int, in_process: bool
    ) -> ShardOutcome:
        phase_s = {}
        for phase in PHASES:
            entry = result.perf.timers.get(f"workload.{phase}")
            if entry is not None:
                phase_s[phase] = {
                    "total_s": entry["total_s"],
                    "cpu_s": entry["cpu_s"],
                }
        for column in OVERHEAD_COLUMNS:
            seconds = result.overhead.get(column)
            if seconds is not None:
                phase_s[column] = {"total_s": seconds, "cpu_s": 0.0}
        return ShardOutcome(
            index=result.index,
            n_calls=len(task.calls),
            attempts=attempts,
            in_process=in_process,
            shard_seed=task.shard_seed,
            elapsed_s=result.elapsed_s,
            phase_s=phase_s,
            stats=result.run.stats,
        )

    def _reduce(
        self, executed: list[tuple[_ShardResult, ShardOutcome]], wall_s: float
    ) -> ShardedCampaignRun:
        executed.sort(key=lambda pair: pair[0].index)
        aggregator = CampaignAggregator()
        stats = CampaignStats()
        merged_perf = perf.PerfSnapshot()
        results = []
        outcomes = []
        for result, outcome in executed:
            aggregator.merge(result.run.aggregator)
            stats.merge(result.run.stats)
            merged_perf = merged_perf.merge(result.perf)
            results.extend(result.run.results)
            outcomes.append(outcome)
        stats.elapsed_s = wall_s
        results.sort(key=lambda call_result: call_result.spec.call_id)
        overhead_rows = dict(self._run_overhead)
        for column, row in (
            ("warmup_s", "workload.pool.warmup"),
            ("world_ship_s", "workload.pool.world_ship"),
            ("queue_wait_s", "workload.pool.queue_wait"),
        ):
            total = sum(
                outcome.phase_s.get(column, {}).get("total_s", 0.0)
                for outcome in outcomes
            )
            if total > 0.0:
                overhead_rows[row] = total
        if overhead_rows:
            merged_perf = merged_perf.merge(
                perf.PerfSnapshot.of_timers(overhead_rows, cpu=False)
            )
        report = aggregator.report(
            seed=self.config.seed,
            n_failed=stats.calls_failed,
            turn_allocations=stats.turn_allocations,
            steering_policy=None if self.steering is None else self.steering.policy.name,
        )
        return ShardedCampaignRun(
            results=results,
            report=report,
            stats=stats,
            aggregator=aggregator,
            shards=outcomes,
            perf_snapshot=merged_perf,
            pool_stats=getattr(self, "_pool_stats", None),
        )


def __getattr__(name: str) -> object:
    # Deprecated alias, kept for one release: the canonical
    # ``repro.WorldSpec`` is now the scenarios value object
    # (``repro.scenarios.spec.WorldSpec``); this module's recipe class is
    # ``ShardWorldTransportSpec``.
    if name == "WorldSpec":
        import warnings

        warnings.warn(
            "repro.workload.sharded.WorldSpec was renamed to"
            " ShardWorldTransportSpec (repro.WorldSpec is now the"
            " scenarios world spec); the alias will be removed next"
            " release",
            DeprecationWarning,
            stacklevel=2,
        )
        return ShardWorldTransportSpec
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
