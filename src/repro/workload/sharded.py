"""Sharded multi-process campaign execution.

The paper's evaluation aggregates two weeks of production traffic across
11 PoPs; replaying that at population scale needs more than one core.
This module fans a campaign out with the shard-and-reduce shape of a
data-parallel training loop:

1. **Partition** the call list into per-shard slices
   (:func:`partition_calls`) that never split a simulation group — all
   calls of one ``(src_prefix, dst_prefix)`` pair land on one shard, so
   per-pair path caches stay warm and batch draws keep their size.
2. **Execute** each shard in a worker of a spawn-safe
   ``multiprocessing`` pool.  Workers receive the world either as a
   pickled :class:`~repro.vns.service.VideoNetworkService` or as a
   :class:`WorldSpec` recipe they rebuild locally (configurable via
   :class:`ShardPlan`), then run an ordinary
   :class:`~repro.workload.engine.CampaignEngine` over their slice.
3. **Reduce** by merging the shards'
   :class:`~repro.workload.report.CampaignAggregator`\\ s,
   :class:`~repro.workload.engine.CampaignStats` and
   :class:`~repro.perf.counters.PerfSnapshot`\\ s into one
   :class:`ShardedCampaignRun`.

**Determinism contract.**  Simulation draws are keyed by ``(campaign
seed, group signature)`` (:func:`~repro.workload.engine.group_rng`) and
every float in a report summary is permutation-invariant, so a sharded
run is *byte-identical* in :meth:`CampaignReport.to_json` to the
sequential run under the same seed — for any worker count, shard count,
scheduling order, or retry history.  The per-shard seeds carried by
:class:`ShardTask` are derived deterministically from the campaign seed
for shard-local needs (retry backoff jitter today); they deliberately do
not feed the simulation draws.

**Robustness.**  Per-shard wait timeouts, failed-shard retry with a
re-derived shard seed, and graceful fallback to in-process execution
when the pool cannot be created (or a shard exhausts its retries and
``allow_inprocess_fallback`` is set).  Shard faults can be injected via
``ShardPlan.fail_injections`` for chaos-style testing, in the spirit of
:mod:`repro.faults`.
"""

from __future__ import annotations

import pickle
import time
from concurrent.futures import BrokenExecutor, Future, ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass, field, replace
from hashlib import blake2b
from multiprocessing import get_context
from typing import TYPE_CHECKING

from repro import perf
from repro.vns.service import VideoNetworkService
from repro.workload.arrivals import CallSpec
from repro.workload.engine import (
    CampaignConfig,
    CampaignEngine,
    CampaignRun,
    CampaignStats,
)
from repro.workload.report import CampaignAggregator

if TYPE_CHECKING:  # pragma: no cover - typing only (steering imports us back)
    from repro.steering.engine import SteeringEngine

#: The engine phases whose per-shard timings shards report.
PHASES = ("resolve", "simulate", "aggregate")


class ShardExecutionError(RuntimeError):
    """A shard kept failing after every permitted retry.

    Carries the per-attempt failure log so the caller can see what the
    pool saw (``str(exc)`` includes it).
    """

    def __init__(self, shard_index: int, failures: list[str]) -> None:
        self.shard_index = shard_index
        self.failures = list(failures)
        attempts = "; ".join(failures) or "no attempts recorded"
        super().__init__(f"shard {shard_index} failed permanently: {attempts}")


@dataclass(frozen=True, slots=True)
class WorldSpec:
    """A recipe for rebuilding a world inside a worker process.

    The ``rebuild`` transport ships this tiny value instead of a pickled
    service — slower to start (each worker rebuilds) but immune to any
    unpicklable state a future world might carry.
    """

    scale: str = "small"
    seed: int = 42
    geoip_errors: bool = False

    def build_service(self) -> VideoNetworkService:
        # Imported here: experiments.common imports perf and is not needed
        # in workers that receive a pickled world.
        from repro.experiments.common import build_world

        return build_world(
            self.scale, seed=self.seed, geoip_errors=self.geoip_errors
        ).service


@dataclass(frozen=True, slots=True)
class ShardPlan:
    """How to cut and execute a campaign.

    Parameters
    ----------
    n_workers:
        Pool size.  ``1`` (or ``force_inprocess``) runs the shards
        sequentially in this process — same partition, same reduce, no
        pool.
    n_shards:
        Number of slices; defaults to ``n_workers``.  More shards than
        workers gives finer rebalancing after a straggler.
    world_transport:
        ``"pickle"`` ships the built service to each worker;
        ``"rebuild"`` ships a :class:`WorldSpec` and each worker builds
        its own copy.
    shard_timeout_s:
        Upper bound on each wait for a shard result; ``None`` waits
        forever.  A timed-out shard counts as a failed attempt (the
        stuck worker cannot be reclaimed, so prefer generous bounds).
    max_retries:
        Failed-attempt budget per shard *beyond* the first try.
    force_inprocess:
        Skip the pool entirely (useful under debuggers and in tests).
    allow_inprocess_fallback:
        Run shards in this process when the pool cannot be created or a
        shard exhausts its retries; when ``False`` those conditions
        raise :class:`ShardExecutionError`.
    keep_results:
        Return per-call :class:`~repro.workload.engine.CallResult`\\ s.
        Switching this off saves the dominant share of worker→parent
        transfer at population scale; the report and stats are complete
        either way.
    fail_injections:
        ``((shard_index, n_attempts), ...)`` — make the shard's first
        ``n_attempts`` executions raise, exercising the retry path.
    """

    n_workers: int = 2
    n_shards: int | None = None
    world_transport: str = "pickle"
    shard_timeout_s: float | None = None
    max_retries: int = 1
    force_inprocess: bool = False
    allow_inprocess_fallback: bool = True
    keep_results: bool = True
    fail_injections: tuple[tuple[int, int], ...] = ()

    def __post_init__(self) -> None:
        if self.n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {self.n_workers!r}")
        if self.n_shards is not None and self.n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {self.n_shards!r}")
        if self.world_transport not in ("pickle", "rebuild"):
            raise ValueError(
                f"world_transport must be 'pickle' or 'rebuild', "
                f"got {self.world_transport!r}"
            )
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries!r}")

    @property
    def effective_shards(self) -> int:
        return self.n_shards if self.n_shards is not None else self.n_workers


@dataclass(slots=True)
class ShardTask:
    """One shard's work order (pickled to a worker).

    ``steering`` rides along as plain data (health table, policy,
    prefix-region map); every worker gets its own copy, which is safe
    because decisions are pure per call — no cross-shard state.
    """

    index: int
    calls: list[CallSpec]
    config: CampaignConfig
    shard_seed: int
    attempt: int = 0
    fail_attempts: int = 0  #: injected fault: raise on the first N attempts
    keep_results: bool = True
    steering: "SteeringEngine | None" = None


@dataclass(slots=True)
class ShardOutcome:
    """Observability record for one executed shard."""

    index: int
    n_calls: int
    attempts: int
    in_process: bool
    shard_seed: int
    elapsed_s: float
    #: ``phase -> {"total_s": wall, "cpu_s": cpu}`` from the worker's
    #: perf timers (CPU seconds are what speedup is judged on: they are
    #: immune to core contention on oversubscribed hosts).
    phase_s: dict[str, dict[str, float]]
    stats: CampaignStats
    failures: list[str] = field(default_factory=list)


@dataclass(slots=True)
class _ShardResult:
    """What a worker sends back for one shard."""

    index: int
    run: CampaignRun
    perf: perf.PerfSnapshot
    elapsed_s: float


@dataclass(slots=True)
class ShardedCampaignRun(CampaignRun):
    """A :class:`CampaignRun` plus the shard fan-out's observability.

    ``stats.elapsed_s`` is the reducer's wall clock; per-shard busy time
    lives in each :class:`ShardOutcome`.  ``perf_snapshot`` merges every
    shard's timers/counters (including the engines'
    ``workload.stats.*`` counts routed through
    :meth:`CampaignStats.to_snapshot`).
    """

    shards: list[ShardOutcome] = field(default_factory=list)
    perf_snapshot: perf.PerfSnapshot = field(default_factory=perf.PerfSnapshot)

    def simulate_critical_path_s(self, *, cpu: bool = True) -> float:
        """The slowest shard's simulate-phase seconds.

        The fan-out's lower bound on simulate wall time given enough
        cores; ``BENCH_workload.json`` reports sequential simulate time
        divided by this as the speedup per worker count.
        """
        kind = "cpu_s" if cpu else "total_s"
        return max(
            (outcome.phase_s.get("simulate", {}).get(kind, 0.0) for outcome in self.shards),
            default=0.0,
        )


# --------------------------------------------------------------------- #
# partitioning
# --------------------------------------------------------------------- #


def partition_calls(calls: list[CallSpec], n_shards: int) -> list[list[CallSpec]]:
    """Cut ``calls`` into at most ``n_shards`` group-preserving slices.

    All calls of one ``(src_prefix, dst_prefix)`` pair stay together —
    a simulation group is a refinement of the pair, so no batch is ever
    split and the sequential draws are reproduced exactly.  Pairs are
    balanced greedily by total call *duration* (the simulate phase costs
    one slot draw per 5 s of call, so duration — not call count — is the
    work proxy; largest first, deterministic tie-break), and each slice
    preserves the original call order.  Slices are never empty; fewer
    pairs than shards yields fewer slices.
    """
    if n_shards <= 1 or len(calls) <= 1:
        return [list(calls)] if calls else []
    buckets: dict[tuple[str, str], list[int]] = {}
    weights: dict[tuple[str, str], float] = {}
    for position, spec in enumerate(calls):
        key = (str(spec.caller.prefix), str(spec.callee.prefix))
        buckets.setdefault(key, []).append(position)
        weights[key] = weights.get(key, 0.0) + spec.duration_s
    ordered = sorted(buckets.items(), key=lambda item: (-weights[item[0]], item[0]))
    loads = [0.0] * n_shards
    members: list[list[int]] = [[] for _ in range(n_shards)]
    for key, positions in ordered:
        target = loads.index(min(loads))
        members[target].extend(positions)
        loads[target] += weights[key]
    shards = []
    for positions in members:
        if positions:
            positions.sort()
            shards.append([calls[position] for position in positions])
    return shards


def shard_seed(campaign_seed: int, index: int, attempt: int = 0) -> int:
    """The deterministic per-shard (and per-attempt) seed."""
    text = f"{campaign_seed}|shard|{index}|attempt|{attempt}"
    return int.from_bytes(blake2b(text.encode("ascii"), digest_size=8).digest(), "little")


# --------------------------------------------------------------------- #
# worker side
# --------------------------------------------------------------------- #

#: The worker's world, installed once per process by :func:`_init_worker`.
_WORKER_SERVICE: VideoNetworkService | None = None


def _init_worker(payload: tuple[str, object]) -> None:
    global _WORKER_SERVICE
    kind, data = payload
    if kind == "pickle":
        _WORKER_SERVICE = pickle.loads(data)  # type: ignore[arg-type]
    else:
        assert isinstance(data, WorldSpec)
        _WORKER_SERVICE = data.build_service()


def _execute_shard(service: VideoNetworkService, task: ShardTask) -> _ShardResult:
    """Run one shard on ``service`` (in a worker or in-process).

    Captures the engine's perf timers as a delta against the process's
    registry and leaves the registry exactly as found when perf was off
    (:func:`repro.perf.counters.restore`), so in-process shards do not
    leak timings into a caller that never enabled instrumentation.
    """
    if task.attempt < task.fail_attempts:
        raise RuntimeError(
            f"injected shard fault: shard {task.index} attempt {task.attempt}"
        )
    started = time.perf_counter()
    was_enabled = perf.is_enabled()
    before = perf.snapshot()
    perf.enable()
    try:
        engine = CampaignEngine(service, task.config, steering=task.steering)
        run = engine.run(task.calls)
    finally:
        after = perf.snapshot()
        if not was_enabled:
            perf.restore(before)
            perf.disable()
    shard_perf = after.diff(before).merge(run.stats.to_snapshot())
    if not task.keep_results:
        run.results = []
    return _ShardResult(
        index=task.index,
        run=run,
        perf=shard_perf,
        elapsed_s=time.perf_counter() - started,
    )


def _run_shard_worker(task: ShardTask) -> _ShardResult:
    if _WORKER_SERVICE is None:
        raise RuntimeError("shard worker used before _init_worker installed a world")
    return _execute_shard(_WORKER_SERVICE, task)


# --------------------------------------------------------------------- #
# the runner
# --------------------------------------------------------------------- #


class ShardedCampaignRunner:
    """Executes campaigns across a process pool and reduces the shards.

    Parameters
    ----------
    service:
        The live world.  Required for the ``"pickle"`` transport and
        used directly by in-process execution.
    config:
        The campaign's :class:`CampaignConfig` (defaults to seed 0).
    plan:
        The :class:`ShardPlan`; defaults to two pickled-world workers.
    world_spec:
        Recipe for the ``"rebuild"`` transport (and for in-process
        execution when no ``service`` was given).
    steering:
        Optional :class:`~repro.steering.engine.SteeringEngine`, shipped
        to every shard; the reduced report carries the same steering
        columns, byte-identical to the sequential engine's.
    """

    def __init__(
        self,
        service: VideoNetworkService | None = None,
        config: CampaignConfig | None = None,
        plan: ShardPlan | None = None,
        *,
        world_spec: WorldSpec | None = None,
        steering: "SteeringEngine | None" = None,
    ) -> None:
        self.config = config if config is not None else CampaignConfig()
        self.plan = plan if plan is not None else ShardPlan()
        if service is None and world_spec is None:
            raise ValueError("need a service, a world_spec, or both")
        if self.plan.world_transport == "pickle" and service is None:
            raise ValueError("world_transport='pickle' needs a built service")
        if self.plan.world_transport == "rebuild" and world_spec is None:
            raise ValueError("world_transport='rebuild' needs a world_spec")
        self._service = service
        self._world_spec = world_spec
        self._fail_map = dict(self.plan.fail_injections)
        self.steering = steering

    # ------------------------------------------------------------------ #

    def run(self, calls: list[CallSpec]) -> ShardedCampaignRun:
        """Run ``calls`` sharded; the report is byte-identical to
        ``CampaignEngine(service, config).run(calls).report``."""
        started = time.perf_counter()
        slices = partition_calls(calls, self.plan.effective_shards)
        tasks = [
            ShardTask(
                index=index,
                calls=slice_,
                config=self.config,
                shard_seed=shard_seed(self.config.seed, index),
                fail_attempts=self._fail_map.get(index, 0),
                keep_results=self.plan.keep_results,
                steering=self.steering,
            )
            for index, slice_ in enumerate(slices)
        ]
        if self.plan.force_inprocess or self.plan.n_workers <= 1 or len(tasks) <= 1:
            executed = [self._run_task_inprocess(task) for task in tasks]
        else:
            executed = self._run_pool(tasks)
        return self._reduce(executed, time.perf_counter() - started)

    # ------------------------------------------------------------------ #
    # execution paths
    # ------------------------------------------------------------------ #

    def _local_service(self) -> VideoNetworkService:
        if self._service is None:
            assert self._world_spec is not None
            self._service = self._world_spec.build_service()
        return self._service

    def _run_task_inprocess(
        self, task: ShardTask, failures: list[str] | None = None
    ) -> tuple[_ShardResult, ShardOutcome]:
        failures = list(failures or [])
        first_attempt = task.attempt
        attempt = task.attempt
        while True:
            try:
                result = _execute_shard(self._local_service(), task)
                break
            except Exception as exc:  # noqa: BLE001 - retry budget decides
                failures.append(f"in-process attempt {attempt}: {exc}")
                if attempt - first_attempt >= self.plan.max_retries:
                    raise ShardExecutionError(task.index, failures) from exc
                attempt += 1
                task = replace(
                    task,
                    attempt=attempt,
                    shard_seed=shard_seed(self.config.seed, task.index, attempt),
                )
        outcome = self._outcome(
            result, task, attempts=attempt - first_attempt + 1, in_process=True
        )
        outcome.failures = failures
        return result, outcome

    def _worker_payload(self) -> tuple[str, object]:
        if self.plan.world_transport == "pickle":
            return ("pickle", pickle.dumps(self._service, protocol=pickle.HIGHEST_PROTOCOL))
        return ("spec", self._world_spec)

    def _run_pool(self, tasks: list[ShardTask]) -> list[tuple[_ShardResult, ShardOutcome]]:
        try:
            executor = ProcessPoolExecutor(
                max_workers=min(self.plan.n_workers, len(tasks)),
                mp_context=get_context("spawn"),
                initializer=_init_worker,
                initargs=(self._worker_payload(),),
            )
        except Exception as exc:  # noqa: BLE001 - pool genuinely unavailable
            if not self.plan.allow_inprocess_fallback:
                raise ShardExecutionError(-1, [f"pool unavailable: {exc}"]) from exc
            return [self._run_task_inprocess(task) for task in tasks]

        executed: list[tuple[_ShardResult, ShardOutcome]] = []
        pool_broken = False
        with executor:
            pending: dict[int, tuple[Future, ShardTask, int, list[str]]] = {}
            for task in tasks:
                pending[task.index] = (
                    executor.submit(_run_shard_worker, task),
                    task,
                    1,
                    [],
                )
            remaining = list(pending)
            for index in remaining:
                while True:
                    future, task, attempts, failures = pending[index]
                    try:
                        result = future.result(timeout=self.plan.shard_timeout_s)
                        executed.append(
                            self._finish_pool_task(result, task, attempts, failures)
                        )
                        break
                    except FutureTimeoutError:
                        failures.append(
                            f"attempt {task.attempt}: timed out after "
                            f"{self.plan.shard_timeout_s}s"
                        )
                        future.cancel()
                    except BrokenExecutor as exc:
                        failures.append(f"attempt {task.attempt}: pool broke: {exc}")
                        pool_broken = True
                    except Exception as exc:  # noqa: BLE001 - retry budget decides
                        failures.append(f"attempt {task.attempt}: {exc}")
                    if pool_broken or attempts > self.plan.max_retries:
                        executed.append(self._salvage_task(task, attempts, failures))
                        break
                    retry = replace(
                        task,
                        attempt=task.attempt + 1,
                        shard_seed=shard_seed(
                            self.config.seed, task.index, task.attempt + 1
                        ),
                    )
                    pending[index] = (
                        executor.submit(_run_shard_worker, retry),
                        retry,
                        attempts + 1,
                        failures,
                    )
                if pool_broken:
                    break
            if pool_broken:
                # Salvage everything not yet reduced on this side of the pool.
                done = {outcome.index for _, outcome in executed}
                for index in remaining:
                    if index in done:
                        continue
                    _, task, attempts, failures = pending[index]
                    executed.append(self._salvage_task(task, attempts, failures))
        return executed

    def _finish_pool_task(
        self, result: _ShardResult, task: ShardTask, attempts: int, failures: list[str]
    ) -> tuple[_ShardResult, ShardOutcome]:
        outcome = self._outcome(result, task, attempts=attempts, in_process=False)
        outcome.failures = failures
        return result, outcome

    def _salvage_task(
        self, task: ShardTask, attempts: int, failures: list[str]
    ) -> tuple[_ShardResult, ShardOutcome]:
        """Last resort for a shard the pool could not finish."""
        if not self.plan.allow_inprocess_fallback:
            raise ShardExecutionError(task.index, failures)
        # The injected-fault budget is attempt-indexed; continue counting
        # so a fault spanning all pool attempts still clears in-process.
        salvage = replace(
            task,
            attempt=task.attempt + 1,
            shard_seed=shard_seed(self.config.seed, task.index, task.attempt + 1),
        )
        result, outcome = self._run_task_inprocess(salvage, failures)
        outcome.attempts += attempts
        return result, outcome

    # ------------------------------------------------------------------ #
    # reduce
    # ------------------------------------------------------------------ #

    def _outcome(
        self, result: _ShardResult, task: ShardTask, *, attempts: int, in_process: bool
    ) -> ShardOutcome:
        phase_s = {}
        for phase in PHASES:
            entry = result.perf.timers.get(f"workload.{phase}")
            if entry is not None:
                phase_s[phase] = {
                    "total_s": entry["total_s"],
                    "cpu_s": entry["cpu_s"],
                }
        return ShardOutcome(
            index=result.index,
            n_calls=len(task.calls),
            attempts=attempts,
            in_process=in_process,
            shard_seed=task.shard_seed,
            elapsed_s=result.elapsed_s,
            phase_s=phase_s,
            stats=result.run.stats,
        )

    def _reduce(
        self, executed: list[tuple[_ShardResult, ShardOutcome]], wall_s: float
    ) -> ShardedCampaignRun:
        executed.sort(key=lambda pair: pair[0].index)
        aggregator = CampaignAggregator()
        stats = CampaignStats()
        merged_perf = perf.PerfSnapshot()
        results = []
        outcomes = []
        for result, outcome in executed:
            aggregator.merge(result.run.aggregator)
            stats.merge(result.run.stats)
            merged_perf = merged_perf.merge(result.perf)
            results.extend(result.run.results)
            outcomes.append(outcome)
        stats.elapsed_s = wall_s
        results.sort(key=lambda call_result: call_result.spec.call_id)
        report = aggregator.report(
            seed=self.config.seed,
            n_failed=stats.calls_failed,
            turn_allocations=stats.turn_allocations,
            steering_policy=None if self.steering is None else self.steering.policy.name,
        )
        return ShardedCampaignRun(
            results=results,
            report=report,
            stats=stats,
            aggregator=aggregator,
            shards=outcomes,
            perf_snapshot=merged_perf,
        )
