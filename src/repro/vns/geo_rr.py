"""The geo-based route reflector — the modified Quagga of Sec. 3.2.

"Our Quagga RR is modified to assign a local preference value to each
route based on its geographic location.  When it receives an update
message from an egress router A concerning a network prefix p, it
calculates the geographic distance d between A and p [...] and computes
the corresponding local preference lp as a function of d, lp = f(d), the
lower the value of d the higher the value of lp.  The newly assigned
local preference is always much higher than the default value of 100."

The reflector consults a GeoIP database for p and knows its client
routers' locations a priori.  Management overrides (force-exit,
geo-exempt) hook in before the distance computation.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Callable
from dataclasses import replace

from repro.bgp.attributes import Route
from repro.bgp.reflector import RouteReflector
from repro.bgp.session import Session
from repro.geo.coords import (
    GeoPoint,
    TrigTerms,
    great_circle_km,
    great_circle_km_fast,
    trig_terms,
)
from repro.geo.geoip import GeoIPDatabase
from repro.perf import counters as perf

#: ``lp = f(d)`` signature: great-circle km → LOCAL_PREF.
LocalPrefFunction = Callable[[float], int]

#: Floor of all geo-assigned preferences: far above the default 100 and
#: above any relationship-based preference, so geo decisions dominate.
GEO_LP_BASE = 1_000
#: Distance at which the geo preference bottoms out (half the Earth's
#: circumference; nothing is farther away).
GEO_LP_MAX_KM = 20_037.0


def linear_lp(distance_km: float) -> int:
    """The default ``f(d)``: linear in distance, 10 km resolution.

    Ranges from ``GEO_LP_BASE`` (antipodal) to ``GEO_LP_BASE + 2003``
    (zero distance); always "much higher than the default value of 100".
    """
    clamped = min(max(distance_km, 0.0), GEO_LP_MAX_KM)
    return GEO_LP_BASE + int(round((GEO_LP_MAX_KM - clamped) / 10.0))


def stepped_lp(distance_km: float, step_km: float = 500.0) -> int:
    """A coarser ``f(d)``: one preference level per ``step_km`` bucket.

    Used by the ablation bench: coarse buckets let the later (hot-potato)
    decision stages break ties among near-equidistant egresses.
    """
    clamped = min(max(distance_km, 0.0), GEO_LP_MAX_KM)
    buckets = int(GEO_LP_MAX_KM / step_km)
    bucket = min(int(clamped / step_km), buckets)
    return GEO_LP_BASE + (buckets - bucket)


class GeoRouteReflector(RouteReflector):
    """A route reflector that rewrites LOCAL_PREF from geography.

    Parameters
    ----------
    geoip:
        The prefix-location database ("resides on the same server").
    router_locations:
        Known locations of the client border routers, keyed by router id
        ("the geographic location of A is known beforehand").
    lp_function:
        ``f(d)``; defaults to :func:`linear_lp`.
    management:
        Optional override interface (Sec. 3.2, "Overriding Geo-routing").
    """

    def __init__(
        self,
        router_id: str,
        asn: int,
        *,
        geoip: GeoIPDatabase,
        router_locations: dict[str, GeoPoint],
        lp_function: LocalPrefFunction = linear_lp,
        management: "ManagementHook | None" = None,
        memo_size: int = 1 << 16,
        **kwargs,
    ) -> None:
        super().__init__(router_id, asn, **kwargs)
        self.geoip = geoip
        self.router_locations = dict(router_locations)
        self.lp_function = lp_function
        self.management = management
        #: Counters for observability/tests.
        self.stats = {"assigned": 0, "no_geoip": 0, "no_location": 0, "exempt": 0, "forced": 0}
        # The egress set is small and fixed (the ~22 border routers), so
        # each egress's haversine trig terms are computed exactly once.
        self._egress_trig: dict[str, TrigTerms] = {
            rid: trig_terms(loc) for rid, loc in self.router_locations.items()
        }
        # LRU memo of computed LOCAL_PREFs keyed on (next_hop, prefix).
        # During convergence the same (egress, prefix) pair is re-imported
        # many times (reflection, refreshes, IGP notifications); the f(d)
        # result cannot change unless the GeoIP database does, which the
        # database version stamp detects.
        self._memo_size = memo_size
        self._lp_memo: OrderedDict[tuple[str, object], int] = OrderedDict()
        self._memo_version = geoip.version

    def stats_snapshot(self) -> perf.PerfSnapshot:
        """This reflector's :attr:`stats` as a mergeable perf snapshot.

        Counters are namespaced ``geo.rr.<router_id>.<stat>`` so snapshots
        from several reflectors (or shard processes) merge without
        colliding; :meth:`~repro.perf.counters.PerfSnapshot.merge` is the
        aggregation path the management tooling and campaign shards use.
        """
        return perf.PerfSnapshot.of_counters(
            {f"geo.rr.{self.router_id}.{key}": value for key, value in self.stats.items()}
        )

    def invalidate_geo_cache(self) -> None:
        """Drop all memoized LOCAL_PREFs and re-read egress locations.

        GeoIP mutations are detected automatically via the database
        version; call this only after mutating :attr:`router_locations`
        or :attr:`lp_function` in place.
        """
        self._lp_memo.clear()
        self._egress_trig = {
            rid: trig_terms(loc) for rid, loc in self.router_locations.items()
        }

    def transform_imported(self, route: Route, session: Session) -> Route | None:
        """Assign the geo LOCAL_PREF to routes arriving over iBGP.

        Routes from egress routers carry the egress as BGP next hop
        (borders apply next-hop-self), so the distance is computed from
        the next hop's location even for routes relayed by another
        reflector.
        """
        route = super().transform_imported(route, session)
        if route is None or not session.is_ibgp:
            return route
        if self.management is not None:
            handled = self.management.transform(self, route)
            if handled is not None:
                return handled
        return self.assign_geo_preference(route)

    def assign_geo_preference(self, route: Route) -> Route:
        """The core rewrite: ``lp = f(great_circle(egress, geoip(p)))``.

        Hot path: runs once per imported route during convergence.  Three
        optimisations over :meth:`assign_geo_preference_reference`, all
        decision-identical: per-egress trig terms are precomputed, the
        ``(next_hop, prefix) -> lp`` result is memoized (LRU, invalidated
        by GeoIP mutation), and the route is only copied when the computed
        preference actually differs from its current value.
        """
        if perf.enabled:
            perf.incr("geo.assign.calls")
        if self._memo_version != self.geoip.version:
            self._lp_memo.clear()
            self._memo_version = self.geoip.version
        key = (route.next_hop, route.prefix)
        memo = self._lp_memo
        lp = memo.get(key)
        if lp is not None:
            memo.move_to_end(key)
            if perf.enabled:
                perf.incr("geo.assign.memo_hits")
        else:
            trig = self._egress_trig.get(route.next_hop)
            if trig is None:
                egress = self.router_locations.get(route.next_hop)
                if egress is None:
                    self.stats["no_location"] += 1
                    return route
                trig = self._egress_trig[route.next_hop] = trig_terms(egress)
            entry = self.geoip.lookup(route.prefix)
            if entry is None:
                # Database miss: fall back to default BGP behaviour.
                self.stats["no_geoip"] += 1
                return route
            lp = self.lp_function(great_circle_km_fast(trig, entry.location))
            memo[key] = lp
            if len(memo) > self._memo_size:
                memo.popitem(last=False)
        self.stats["assigned"] += 1
        return route.with_local_pref(lp)

    def assign_geo_preference_reference(self, route: Route) -> Route:
        """The pre-optimisation implementation, preserved verbatim.

        Kept as the oracle for the decision-identity test and as the
        baseline side of the scale benchmark's geo-LP microbenchmark.
        Increments the same :attr:`stats` counters as the fast path.
        """
        egress = self.router_locations.get(route.next_hop)
        if egress is None:
            self.stats["no_location"] += 1
            return route
        entry = self.geoip.lookup(route.prefix)
        if entry is None:
            self.stats["no_geoip"] += 1
            return route
        distance = great_circle_km(egress, entry.location)
        self.stats["assigned"] += 1
        return replace(route, local_pref=self.lp_function(distance))


class ManagementHook:
    """Interface the management system implements to override geo-routing.

    See :class:`repro.vns.management.ManagementInterface` for the concrete
    implementation; this indirection keeps the reflector importable
    without the management module.
    """

    def transform(self, reflector: GeoRouteReflector, route: Route) -> Route | None:
        """Return a fully handled route, or ``None`` to let geo proceed."""
        raise NotImplementedError
