"""The VNS Autonomous System: routers, reflectors, iBGP, and IGP.

Assembles the intra-AS machinery: one or two border routers per PoP
(21 in total — "over 20 routers in 11 PoPs"), two route reflectors for
operational stability (the paper's footnote), an iBGP star from every
border to both reflectors (borders are clients; reflectors peer with each
other as non-clients), and a delay-tuned IGP over the L2 circuits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.bgp.attributes import Route
from repro.bgp.engine import BgpEngine
from repro.bgp.policy import (
    RelationshipExportPolicy,
    RelationshipImportPolicy,
)
from repro.bgp.reflector import RouteReflector
from repro.bgp.router import BgpRouter
from repro.bgp.session import Session, SessionType
from repro.geo.coords import GeoPoint
from repro.geo.geoip import GeoIPDatabase
from repro.igp.graph import IgpGraph
from repro.igp.spf import ShortestPaths, all_pairs_spf
from repro.net.addressing import Prefix
from repro.net.relationships import Relationship
from repro.vns.geo_rr import GeoRouteReflector, LocalPrefFunction, linear_lp
from repro.vns.links import L2Link, build_l2_topology, router_level_igp
from repro.vns.management import ManagementInterface
from repro.vns.pop import POPS, PoP, pop_by_code

if TYPE_CHECKING:  # pragma: no cover - typing only (frozen imports us back)
    from repro.vns.frozen import FrozenNetwork

#: VNS's AS number (a documentation-range value standing in for the real one).
VNS_ASN = 65000

#: Where the two reflectors are hosted.
REFLECTOR_POPS = ("AMS", "ASH")


@dataclass(slots=True)
class EgressDecision:
    """The converged forwarding decision at one PoP for one prefix."""

    prefix: Prefix
    entry_pop: str
    egress_pop: str
    egress_router: str
    neighbor_asn: int
    as_path: tuple[int, ...]
    local_pref: int

    @property
    def exits_locally(self) -> bool:
        return self.entry_pop == self.egress_pop


@dataclass(slots=True)
class IgpMetricFromRouter:
    """IGP metric from one router to a BGP next hop (0 for external).

    A picklable callable (campaign shards ship whole worlds to worker
    processes) that looks the SPF table up per call rather than capturing
    it, so the metric tracks IGP reconvergence after link/PoP faults: a
    next hop at an unreachable or failed router costs ``inf``.
    """

    network: "VnsNetwork"
    router_id: str

    def __call__(self, next_hop: str) -> float:
        network = self.network
        if next_hop not in network.pop_of_router:
            return 0.0  # external next hop resolved over the local session
        spf = network._router_spf.get(self.router_id)
        if spf is None:
            return float("inf")  # this router's own PoP is down
        return spf.metric_to(next_hop)


def external_peer_id(asn: int, router_id: str) -> str:
    """The synthetic identifier of a neighbour AS's session endpoint."""
    return f"x{asn}@{router_id}"


def parse_external_peer_id(peer_id: str) -> tuple[int, str]:
    """Inverse of :func:`external_peer_id`.

    Raises
    ------
    ValueError
        If the identifier is not in ``x<asn>@<router>`` form.
    """
    if not peer_id.startswith("x") or "@" not in peer_id:
        raise ValueError(f"not an external peer id: {peer_id!r}")
    asn_text, router_id = peer_id[1:].split("@", 1)
    return int(asn_text), router_id


class VnsNetwork:
    """The assembled VNS AS.

    Parameters
    ----------
    geoip:
        Prefix geolocation database used by the geo reflectors.
    geo_routing:
        True builds :class:`GeoRouteReflector`\\ s ("after"); False builds
        plain reflectors, i.e. the hot-potato "before" configuration.
    enable_best_external:
        The hidden-routes fix on border routers (Sec. 3.2); on by default.
    lp_function:
        The ``f(d)`` used by geo reflectors.
    relationships:
        Relationship of each external neighbour ASN (PROVIDER for
        upstreams, PEER for peers), used by import/export policy.
    ibgp_mode:
        ``"route-reflector"`` (the deployed design) or ``"full-mesh"``
        (the classic pre-reflector iBGP used as the "before" baseline).
        Geo routing requires reflectors.
    """

    def __init__(
        self,
        *,
        geoip: GeoIPDatabase,
        geo_routing: bool = True,
        enable_best_external: bool = True,
        lp_function: LocalPrefFunction = linear_lp,
        relationships: dict[int, Relationship] | None = None,
        management: ManagementInterface | None = None,
        ibgp_mode: str = "route-reflector",
    ) -> None:
        if ibgp_mode not in ("route-reflector", "full-mesh"):
            raise ValueError(f"unknown ibgp_mode {ibgp_mode!r}")
        if geo_routing and ibgp_mode != "route-reflector":
            raise ValueError("geo routing is implemented in the route reflectors")
        self.ibgp_mode = ibgp_mode
        self.geoip = geoip
        self.geo_routing = geo_routing
        self.enable_best_external = enable_best_external
        self.lp_function = lp_function
        self.relationships: dict[int, Relationship] = dict(relationships or {})
        self.management = management if management is not None else ManagementInterface()

        #: Operational fault state (see :meth:`set_link_state` /
        #: :meth:`set_pop_state`); empty on a healthy network.
        self.down_links: set[frozenset[str]] = set()
        self.down_pops: set[str] = set()
        self.pop_igp, self.l2_links = build_l2_topology()
        self.router_igp = router_level_igp(self.pop_igp)
        self._pop_spf: dict[str, ShortestPaths] = all_pairs_spf(self.pop_igp)
        self._router_spf: dict[str, ShortestPaths] = all_pairs_spf(self.router_igp)

        self.engine = BgpEngine()
        self.border_routers: dict[str, BgpRouter] = {}
        self.reflectors: dict[str, RouteReflector] = {}
        self.pop_of_router: dict[str, str] = {}
        self.router_locations: dict[str, GeoPoint] = {}
        self._build_routers()
        self._build_ibgp()

    # ----------------------------------------------------------------- #
    # construction
    # ----------------------------------------------------------------- #

    def _igp_metric_fn(self, router_id: str) -> IgpMetricFromRouter:
        """Metric callable from ``router_id``; see :class:`IgpMetricFromRouter`."""
        return IgpMetricFromRouter(self, router_id)

    def _build_routers(self) -> None:
        import_policy = RelationshipImportPolicy(self.relationships)
        export_policy = RelationshipExportPolicy(self.relationships)
        for pop in POPS:
            for router_id in pop.router_ids():
                router = BgpRouter(
                    router_id,
                    VNS_ASN,
                    location=pop.location,
                    import_policy=import_policy,
                    export_policy=export_policy,
                    igp_metric=self._igp_metric_fn(router_id),
                    enable_best_external=self.enable_best_external,
                )
                self.border_routers[router_id] = router
                self.pop_of_router[router_id] = pop.code
                self.router_locations[router_id] = pop.location
                self.engine.add_router(router)
        if self.ibgp_mode == "full-mesh":
            return
        for index, pop_code in enumerate(REFLECTOR_POPS):
            pop = pop_by_code(pop_code)
            rr_id = f"RR{index + 1}-{pop_code}"
            anchor = pop.router_ids()[0]
            if self.geo_routing:
                reflector: RouteReflector = GeoRouteReflector(
                    rr_id,
                    VNS_ASN,
                    geoip=self.geoip,
                    router_locations=self.router_locations,
                    lp_function=self.lp_function,
                    management=self.management,
                    location=pop.location,
                    igp_metric=self._igp_metric_fn(anchor),
                )
            else:
                reflector = RouteReflector(
                    rr_id,
                    VNS_ASN,
                    location=pop.location,
                    igp_metric=self._igp_metric_fn(anchor),
                )
            self.reflectors[rr_id] = reflector
            self.pop_of_router[rr_id] = pop.code
            self.engine.add_router(reflector)

    def _build_ibgp(self) -> None:
        if self.ibgp_mode == "full-mesh":
            router_ids = sorted(self.border_routers)
            for i, a in enumerate(router_ids):
                for b in router_ids[i + 1 :]:
                    self.border_routers[a].add_session(
                        Session(peer_id=b, session_type=SessionType.IBGP, peer_asn=VNS_ASN)
                    )
                    self.border_routers[b].add_session(
                        Session(peer_id=a, session_type=SessionType.IBGP, peer_asn=VNS_ASN)
                    )
            return
        for router_id, router in self.border_routers.items():
            for rr_id, reflector in self.reflectors.items():
                router.add_session(
                    Session(peer_id=rr_id, session_type=SessionType.IBGP, peer_asn=VNS_ASN)
                )
                reflector.add_session(
                    Session(
                        peer_id=router_id,
                        session_type=SessionType.IBGP,
                        peer_asn=VNS_ASN,
                        rr_client=True,
                    )
                )
        rr_ids = list(self.reflectors)
        for i, a in enumerate(rr_ids):
            for b in rr_ids[i + 1 :]:
                self.reflectors[a].add_session(
                    Session(peer_id=b, session_type=SessionType.IBGP, peer_asn=VNS_ASN)
                )
                self.reflectors[b].add_session(
                    Session(peer_id=a, session_type=SessionType.IBGP, peer_asn=VNS_ASN)
                )

    def add_ebgp_session(self, router_id: str, neighbor_asn: int) -> str:
        """Configure an eBGP session on a border router; return the peer id.

        Raises
        ------
        KeyError
            For an unknown router.
        """
        router = self.border_routers[router_id]
        peer_id = external_peer_id(neighbor_asn, router_id)
        router.add_session(
            Session(peer_id=peer_id, session_type=SessionType.EBGP, peer_asn=neighbor_asn)
        )
        return peer_id

    # ----------------------------------------------------------------- #
    # fault state (driven by repro.faults)
    # ----------------------------------------------------------------- #

    def _rebuild_igp(self) -> None:
        """Recompute the IGP view from the current fault state.

        Models instantaneous IGP reconvergence (link-state protocols
        reconverge in milliseconds; BGP, which this engine does model
        message-by-message, is the slow part).
        """
        self.pop_igp, _ = build_l2_topology(
            excluded_links=frozenset(self.down_links),
            excluded_pops=frozenset(self.down_pops),
            require_connected=False,
        )
        self.router_igp = router_level_igp(self.pop_igp, require_connected=False)
        self._pop_spf = all_pairs_spf(self.pop_igp)
        self._router_spf = all_pairs_spf(self.router_igp)

    def set_link_state(self, a: str, b: str, up: bool) -> bool:
        """Mark the L2 circuit ``a``–``b`` up or down; True if it changed.

        Only flips operational state and re-runs SPF — the BGP
        consequences (hot-potato decisions moving) are the caller's to
        drive, e.g. via :meth:`repro.vns.service.VideoNetworkService.refresh_routing`.

        Raises
        ------
        ValueError
            If no such circuit exists in the L2 topology.
        """
        key = frozenset((a, b))
        if not any(frozenset((link.a, link.b)) == key for link in self.l2_links):
            raise ValueError(f"no L2 circuit {a}-{b}")
        changed = (key in self.down_links) == up
        if up:
            self.down_links.discard(key)
        else:
            self.down_links.add(key)
        if changed:
            self._rebuild_igp()
        return changed

    def set_pop_state(self, code: str, up: bool) -> bool:
        """Mark a whole PoP failed or restored; True if the state changed.

        A down PoP is removed from the IGP (no traffic enters, exits, or
        transits it).  Its border routers' eBGP sessions and originations
        are torn down by the fault injector; the iBGP control plane is
        treated as out-of-band (the paper's reflectors live on a
        management network), so reflectors hosted at the PoP keep running.

        Raises
        ------
        KeyError
            For an unknown PoP code.
        """
        pop_by_code(code)  # validates
        changed = (code in self.down_pops) == up
        if up:
            self.down_pops.discard(code)
        else:
            self.down_pops.add(code)
        if changed:
            self._rebuild_igp()
        return changed

    def link_is_up(self, a: str, b: str) -> bool:
        """Whether the circuit ``a``–``b`` is operational."""
        return frozenset((a, b)) not in self.down_links

    def pop_is_up(self, code: str) -> bool:
        """Whether a PoP is operational."""
        return code not in self.down_pops

    def active_pops(self) -> tuple[PoP, ...]:
        """All PoPs currently up."""
        return tuple(pop for pop in POPS if pop.code not in self.down_pops)

    # ----------------------------------------------------------------- #
    # queries (post-convergence)
    # ----------------------------------------------------------------- #

    def routers_at_pop(self, pop_code: str) -> list[BgpRouter]:
        """Border routers located at a PoP."""
        return [
            router
            for router_id, router in self.border_routers.items()
            if self.pop_of_router[router_id] == pop_code
        ]

    def pop_spf(self, pop_code: str) -> ShortestPaths:
        """SPF over the PoP-level L2 topology from ``pop_code``.

        Raises
        ------
        KeyError
            For an unknown PoP code.
        """
        return self._pop_spf[pop_code]

    def pop_l2_path(self, src_pop: str, dst_pop: str) -> list[str]:
        """The PoP sequence traffic takes inside VNS (IGP shortest path).

        Raises
        ------
        ValueError
            If the destination is unreachable — impossible on the healthy
            production topology, but faults can down an endpoint PoP or
            partition the L2 graph.
        """
        spf = self._pop_spf.get(src_pop)
        path = spf.path_to(dst_pop) if spf is not None else None
        if path is None:
            raise ValueError(f"no internal path {src_pop} -> {dst_pop}")
        return path

    def egress_decision(self, entry_pop: str, prefix: Prefix) -> EgressDecision | None:
        """Where traffic entering at ``entry_pop`` exits for ``prefix``.

        Resolves the entry router's best route: an eBGP-learned best exits
        locally; an iBGP-learned best names the egress border router as
        next hop.  Returns ``None`` if no route exists.
        """
        entry_router = self.routers_at_pop(entry_pop)[0]
        best = entry_router.best(prefix)
        if best is None:
            return None
        if best.ebgp:
            egress_router_id = entry_router.router_id
            neighbor_peer = best.learned_from
        else:
            egress_router_id = best.next_hop
            egress_router = self.border_routers.get(egress_router_id)
            if egress_router is None:
                return None
            egress_best = egress_router.best(prefix)
            if egress_best is None or not egress_best.ebgp:
                # The egress no longer prefers an external route; fall back
                # to whichever external session the reflected route names.
                neighbor_peer = None
            else:
                neighbor_peer = egress_best.learned_from
        if neighbor_peer is not None:
            neighbor_asn, _ = parse_external_peer_id(neighbor_peer)
        else:
            neighbor_asn = best.as_path.first_hop or 0
        return EgressDecision(
            prefix=prefix,
            entry_pop=entry_pop,
            egress_pop=self.pop_of_router[egress_router_id],
            egress_router=egress_router_id,
            neighbor_asn=neighbor_asn,
            as_path=best.as_path.asns,
            local_pref=best.local_pref,
        )

    def local_external_route(self, pop_code: str, prefix: Prefix) -> Route | None:
        """The best eBGP-learned route for ``prefix`` at this PoP, if any.

        Models "probing packets forced out of VNS immediately at each PoP"
        (Sec. 4.1): the probe uses whatever external route the PoP has,
        regardless of the network-wide best.
        """
        candidates: list[Route] = []
        for router in self.routers_at_pop(pop_code):
            for route in router.adj_rib_in.routes_for(prefix):
                if route.ebgp:
                    candidates.append(route)
        if not candidates:
            return None
        return min(candidates, key=lambda r: (len(r.as_path), r.learned_from or ""))

    def converge(self, max_messages: int = 10_000_000) -> int:
        """Run the BGP engine to convergence; return messages delivered."""
        return self.engine.run(max_messages=max_messages)

    def total_loc_rib_size(self) -> int:
        """Sum of Loc-RIB sizes over all border routers."""
        return sum(len(r.loc_rib) for r in self.border_routers.values())

    def freeze(self) -> "FrozenNetwork":
        """A compact, read-only snapshot of the converged forwarding state.

        See :func:`repro.vns.frozen.freeze_network`: best-route tables,
        per-PoP external winners and the IGP path closure are captured;
        the BGP control plane (adj-RIBs, message engine, reflectors) is
        left behind.  The snapshot answers every read this class answers
        and raises :class:`~repro.vns.frozen.FrozenWorldError` on writes.
        """
        from repro.vns.frozen import freeze_network

        return freeze_network(self)
