"""Frozen, read-only world snapshots for cheap worker shipping.

Shipping a full :class:`~repro.vns.service.VideoNetworkService` to a
campaign worker drags the whole BGP control plane along: adj-RIBs with a
route per (prefix, session), the message engine, the reflectors.  None
of that is consulted after convergence — the campaign engine only ever
reads the *converged outcome*: each border router's selected best route,
each PoP's best external route (for forced local exits), the IGP path
closure between PoPs, and the small deployment/session tables.

:func:`freeze_service` extracts exactly that into a compact, read-only
snapshot — precomputed best-route tables, the all-pairs PoP L2 closure,
session/relationship maps — and wraps it back into a real
:class:`VideoNetworkService` whose ``deployment.network`` is a
:class:`FrozenNetwork`.  Every service-level path builder
(``path_via_vns``, ``last_mile_path``, ``path_local_exit``,
``call_paths``) works unchanged on it and produces bit-identical paths,
because they only read the tables the freeze captured.  What does *not*
work is mutation: fault injection, reconvergence and management actions
raise :class:`FrozenWorldError`.

This is the ``world_transport="frozen"`` payload of
:mod:`repro.workload.sharded`: orders of magnitude fewer objects than
the live control plane, so worker initialisation is dominated by the
interpreter import, not the world.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bgp.attributes import Route
from repro.net.addressing import Prefix
from repro.net.relationships import Relationship
from repro.vns.network import EgressDecision, VnsNetwork, parse_external_peer_id
from repro.vns.pop import POPS
from repro.vns.service import VideoNetworkService


class FrozenWorldError(RuntimeError):
    """A mutation was attempted on a frozen (read-only) world snapshot."""


@dataclass(slots=True)
class FrozenNetwork:
    """The converged forwarding state of a :class:`VnsNetwork`, frozen.

    Duck-types the read-side surface the service-level path builders and
    the campaign engine consult; every mutating entry point raises
    :class:`FrozenWorldError`.  Build one with :func:`freeze_network`.
    """

    #: router id -> prefix -> selected best route (the Loc-RIB contents).
    best_by_router: dict[str, dict[Prefix, Route]]
    #: PoP code -> prefix -> winning eBGP-learned route at that PoP
    #: (:meth:`VnsNetwork.local_external_route`, precomputed).
    external_by_pop: dict[str, dict[Prefix, Route]]
    #: (src_pop, dst_pop) -> PoP sequence (the IGP shortest-path closure).
    pop_paths: dict[tuple[str, str], list[str]]
    #: router id -> PoP code (borders only; the frozen world has no RRs).
    pop_of_router: dict[str, str]
    #: PoP code -> border router ids, in :class:`VnsNetwork` order.
    routers_at: dict[str, list[str]]
    #: neighbour ASN -> relationship, for deployment policy lookups.
    relationships: dict[int, Relationship] = field(default_factory=dict)
    #: Frozen fault state: always healthy (snapshots are taken converged).
    down_pops: frozenset[str] = frozenset()
    down_links: frozenset[frozenset[str]] = frozenset()

    # ------------------------------------------------------------------ #
    # read side (mirrors VnsNetwork semantics exactly)
    # ------------------------------------------------------------------ #

    def routers_at_pop(self, pop_code: str) -> list[str]:
        """Border router ids at a PoP (ids, not router objects)."""
        return self.routers_at.get(pop_code, [])

    def pop_l2_path(self, src_pop: str, dst_pop: str) -> list[str]:
        """The PoP sequence traffic takes inside VNS (precomputed).

        Raises
        ------
        ValueError
            If the pair was unreachable at freeze time.
        """
        path = self.pop_paths.get((src_pop, dst_pop))
        if path is None:
            raise ValueError(f"no internal path {src_pop} -> {dst_pop}")
        return list(path)

    def egress_decision(self, entry_pop: str, prefix: Prefix) -> EgressDecision | None:
        """Replicates :meth:`VnsNetwork.egress_decision` on frozen tables."""
        router_ids = self.routers_at.get(entry_pop)
        if not router_ids:
            raise IndexError(f"no border routers at {entry_pop!r}")
        entry_router = router_ids[0]
        best = self.best_by_router[entry_router].get(prefix)
        if best is None:
            return None
        if best.ebgp:
            egress_router_id = entry_router
            neighbor_peer = best.learned_from
        else:
            egress_router_id = best.next_hop
            bests = self.best_by_router.get(egress_router_id)
            if bests is None:
                return None
            egress_best = bests.get(prefix)
            if egress_best is None or not egress_best.ebgp:
                neighbor_peer = None
            else:
                neighbor_peer = egress_best.learned_from
        if neighbor_peer is not None:
            neighbor_asn, _ = parse_external_peer_id(neighbor_peer)
        else:
            neighbor_asn = best.as_path.first_hop or 0
        return EgressDecision(
            prefix=prefix,
            entry_pop=entry_pop,
            egress_pop=self.pop_of_router[egress_router_id],
            egress_router=egress_router_id,
            neighbor_asn=neighbor_asn,
            as_path=best.as_path.asns,
            local_pref=best.local_pref,
        )

    def local_external_route(self, pop_code: str, prefix: Prefix) -> Route | None:
        """The best eBGP-learned route at a PoP (precomputed winner)."""
        return self.external_by_pop.get(pop_code, {}).get(prefix)

    def pop_is_up(self, code: str) -> bool:
        return code not in self.down_pops

    def link_is_up(self, a: str, b: str) -> bool:
        return frozenset((a, b)) not in self.down_links

    def total_loc_rib_size(self) -> int:
        return sum(len(bests) for bests in self.best_by_router.values())

    # ------------------------------------------------------------------ #
    # write side: frozen means frozen
    # ------------------------------------------------------------------ #

    def _read_only(self, operation: str) -> FrozenWorldError:
        return FrozenWorldError(
            f"cannot {operation} on a frozen world snapshot; rebuild the live "
            "VideoNetworkService for fault injection or management actions"
        )

    def set_link_state(self, a: str, b: str, up: bool) -> bool:
        raise self._read_only(f"set link state {a}-{b}")

    def set_pop_state(self, code: str, up: bool) -> bool:
        raise self._read_only(f"set PoP state {code}")

    def converge(self, max_messages: int = 0) -> int:
        raise self._read_only("run BGP convergence")


def freeze_network(network: VnsNetwork) -> FrozenNetwork:
    """Snapshot a converged :class:`VnsNetwork` into a :class:`FrozenNetwork`.

    Captures each border router's Loc-RIB bests, the per-PoP winning
    external route for every prefix any local session heard, and the
    all-pairs PoP L2 path closure.  Route objects are shared, not copied,
    so freezing is cheap and the pickle deduplicates.
    """
    best_by_router: dict[str, dict[Prefix, Route]] = {}
    routers_at: dict[str, list[str]] = {}
    pop_of_router: dict[str, str] = {}
    for router_id, router in network.border_routers.items():
        best_by_router[router_id] = dict(router.loc_rib.items())
        pop_code = network.pop_of_router[router_id]
        routers_at.setdefault(pop_code, []).append(router_id)
        pop_of_router[router_id] = pop_code

    external_by_pop: dict[str, dict[Prefix, Route]] = {}
    for pop in POPS:
        heard: set[Prefix] = set()
        for router in network.routers_at_pop(pop.code):
            heard.update(router.adj_rib_in.prefixes())
        winners: dict[Prefix, Route] = {}
        for prefix in heard:
            route = network.local_external_route(pop.code, prefix)
            if route is not None:
                winners[prefix] = route
        external_by_pop[pop.code] = winners

    pop_paths: dict[tuple[str, str], list[str]] = {}
    for src in POPS:
        for dst in POPS:
            try:
                pop_paths[(src.code, dst.code)] = network.pop_l2_path(
                    src.code, dst.code
                )
            except ValueError:
                continue  # unreachable under the frozen fault state

    return FrozenNetwork(
        best_by_router=best_by_router,
        external_by_pop=external_by_pop,
        pop_paths=pop_paths,
        pop_of_router=pop_of_router,
        routers_at=routers_at,
        relationships=dict(network.relationships),
        down_pops=frozenset(network.down_pops),
        down_links=frozenset(network.down_links),
    )


def freeze_service(service: VideoNetworkService) -> VideoNetworkService:
    """A compact, read-only snapshot of ``service``.

    The result is a real :class:`VideoNetworkService` sharing the (small)
    topology, routing and GeoIP objects, with ``deployment.network``
    replaced by a :class:`FrozenNetwork`.  All path builders produce
    bit-identical output; mutation raises :class:`FrozenWorldError`.
    Freezing an already-frozen service returns it unchanged.
    """
    if is_frozen(service):
        return service
    from dataclasses import replace as dc_replace

    deployment = service.deployment
    frozen_deployment = dc_replace(
        deployment,
        network=freeze_network(deployment.network),  # type: ignore[arg-type]
        _session_pops={
            asn: list(deployment.session_pops(asn))
            for asn in deployment.neighbor_asns
        },
    )
    return VideoNetworkService(
        service.topology, service.routing, frozen_deployment, service.geoip
    )


def is_frozen(service: VideoNetworkService) -> bool:
    """Whether ``service`` carries a frozen (read-only) network."""
    return isinstance(service.deployment.network, FrozenNetwork)
