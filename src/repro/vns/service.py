"""The high-level Video Network Service façade.

Bundles the synthetic Internet, the converged VNS AS, the GeoIP database
and the anycast resolver behind the operations the paper's experiments
(and a downstream user) need: resolve egress decisions, build forwarding
paths via VNS / via upstreams / natively over the Internet, and route a
video call end to end.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.bgp.propagation import AsLevelRouting
from repro.dataplane.link import PathSegment, SegmentKind
from repro.dataplane.path import DataPath, internet_path
from repro.geo.coords import GeoPoint
from repro.geo.errors import GeoIPErrorModel, apply_error_models
from repro.geo.geoip import GeoIPDatabase
from repro.net.addressing import IPv4Address, Prefix
from repro.net.topology import InternetTopology, TopologyConfig, generate_topology
from repro.vns.anycast import AnycastResolver
from repro.vns.builder import VnsConfig, VnsDeployment, build_vns
from repro.vns.management import ManagementInterface
from repro.vns.network import EgressDecision, VnsNetwork
from repro.vns.pop import POPS, PoP, pop_by_code

if TYPE_CHECKING:  # pragma: no cover - typing only (steering imports us back)
    from repro.steering.engine import SteeringEngine
    from repro.steering.policies import SteeringDecision


@dataclass(slots=True)
class CallPaths:
    """The transport options for a media stream between two users.

    ``via_detour`` (the one-hop PoP detour: last mile to the anycast
    entry PoP, then forced out onto the Internet there — zero backbone
    circuits) and ``decision`` are populated only when :meth:`
    VideoNetworkService.call_paths` ran with a steering engine.
    """

    via_vns: DataPath
    via_internet: DataPath
    entry_pop: str
    exit_pop: str
    via_detour: DataPath | None = None
    decision: "SteeringDecision | None" = None

    @property
    def chosen(self) -> DataPath:
        """The path the steering verdict selected (VNS when unsteered)."""
        if self.decision is None or self.decision.choice.value == "vns":
            return self.via_vns
        if self.decision.choice.value == "pop_detour" and self.via_detour is not None:
            return self.via_detour
        return self.via_internet


class VideoNetworkService:
    """The assembled service; see :meth:`build` for one-call construction."""

    def __init__(
        self,
        topology: InternetTopology,
        routing: AsLevelRouting,
        deployment: VnsDeployment,
        geoip: GeoIPDatabase,
    ) -> None:
        self.topology = topology
        self.routing = routing
        self.deployment = deployment
        self.geoip = geoip
        self.anycast = AnycastResolver(topology, routing, deployment)

    @classmethod
    def build(
        cls,
        topology_config: TopologyConfig | None = None,
        vns_config: VnsConfig | None = None,
        *,
        seed: int = 0,
        geoip_errors: list[GeoIPErrorModel] | None = None,
        topology: InternetTopology | None = None,
        routing: AsLevelRouting | None = None,
        management: ManagementInterface | None = None,
    ) -> "VideoNetworkService":
        """Generate (or reuse) a world and build a converged VNS on it.

        ``geoip_errors`` degrade the GeoIP database before the reflectors
        see it — this is how the Fig. 3 outlier clusters are produced.
        Pass ``topology``/``routing`` to rebuild VNS (e.g. with geo routing
        off) on the same Internet.
        """
        rng = np.random.default_rng(seed)
        if topology is None:
            topology = generate_topology(topology_config, rng)
        if routing is None:
            routing = AsLevelRouting(topology.graph)
        geoip = topology.build_geoip()
        if geoip_errors:
            apply_error_models(geoip, geoip_errors, rng)
        deployment = build_vns(
            topology, routing, geoip, vns_config, rng, management=management
        )
        return cls(topology, routing, deployment, geoip)

    def freeze(self) -> "VideoNetworkService":
        """A compact, read-only snapshot of this service.

        The snapshot keeps only the converged forwarding outcome (best
        routes, PoP external routes, the IGP path closure) and drops the
        live BGP control plane, so it is cheap to pickle and unpickle —
        this is what campaign shard workers receive under
        ``world_transport="frozen"``.  Path builders are bit-identical;
        mutation raises :class:`~repro.vns.frozen.FrozenWorldError`.
        """
        from repro.vns.frozen import freeze_service

        return freeze_service(self)

    # ----------------------------------------------------------------- #
    # convenience accessors
    # ----------------------------------------------------------------- #

    @property
    def network(self) -> VnsNetwork:
        return self.deployment.network

    @property
    def management(self) -> ManagementInterface:
        return self.network.management

    def pops(self) -> tuple[PoP, ...]:
        return POPS

    def egress_decision(self, entry_pop: str, prefix: Prefix) -> EgressDecision | None:
        """Where traffic entering at ``entry_pop`` exits for ``prefix``."""
        return self.network.egress_decision(entry_pop, prefix)

    def resolve_prefix(self, address: IPv4Address) -> Prefix | None:
        """Longest-prefix-match an address against the global table."""
        hit = self.topology.resolve_address(address)
        return None if hit is None else hit[0]

    # ----------------------------------------------------------------- #
    # path builders
    # ----------------------------------------------------------------- #

    def vns_internal_path(self, src_pop: str, dst_pop: str) -> DataPath:
        """The leg across VNS's dedicated L2 circuits (IGP shortest path)."""
        pop_sequence = self.network.pop_l2_path(src_pop, dst_pop)
        segments = [
            PathSegment(
                kind=SegmentKind.VNS_L2,
                start=pop_by_code(a).location,
                end=pop_by_code(b).location,
                label=f"{a}=={b}",
            )
            for a, b in zip(pop_sequence, pop_sequence[1:])
        ]
        return DataPath(segments=segments, description=f"vns:{src_pop}->{dst_pop}")

    def simulate_internal_stream(
        self,
        src_pop: str,
        dst_pop: str,
        *,
        rng: np.random.Generator,
        duration_s: float = 120.0,
    ):
        """One media stream across the current internal L2 route.

        Re-resolves the IGP path on every call, so under an active fault
        the stream rides the post-reroute circuits — this is what the
        failover scenarios and demos measure.
        """
        from repro.dataplane.transmit import simulate_stream

        return simulate_stream(
            self.vns_internal_path(src_pop, dst_pop), duration_s=duration_s, rng=rng
        )

    def path_via_vns(
        self,
        entry_pop: str,
        prefix: Prefix,
        destination: GeoPoint | None = None,
        *,
        decision: EgressDecision | None = None,
    ) -> DataPath | None:
        """Entry PoP → (L2 circuits) → egress PoP → Internet → destination.

        ``destination`` defaults to the prefix's true location.  Returns
        ``None`` when VNS has no route for the prefix.  Callers that have
        already resolved the egress (``call_paths``, the campaign engine's
        path cache) pass it via ``decision`` so the lookup runs once.
        """
        if decision is None:
            decision = self.egress_decision(entry_pop, prefix)
        if decision is None:
            return None
        if destination is None:
            destination = self.topology.prefix_location[prefix]
        internal = self.vns_internal_path(entry_pop, decision.egress_pop)
        origin_as = self.topology.origin_as(prefix)
        external = internet_path(
            self.topology,
            decision.as_path,
            pop_by_code(decision.egress_pop).location,
            destination,
            destination_as_type=origin_as.as_type,
            first_segment_kind=SegmentKind.PEERING,
            description=f"egress:{decision.egress_pop}",
        )
        combined = internal.concat(external)
        combined.description = f"vns:{entry_pop}->{decision.egress_pop}->{prefix}"
        return combined

    def _external_route_at_pop(
        self, pop_code: str, prefix: Prefix, upstreams_only: bool
    ) -> tuple[int, tuple[int, ...]] | None:
        """(neighbour ASN, AS path) for a locally forced exit at a PoP.

        Mirrors local route preference: a peer route present at the PoP
        wins (local-pref by relationship), then the PoP's designated main
        upstream, then any other upstream with a route.  This ordering is
        what produces the London anomaly of Sec. 5.2.2: LON's main
        upstream is US-based, so EU-bound traffic without a peer route
        crosses the Atlantic and comes back.
        """
        origin = self.topology.origin_of.get(prefix)
        if not upstreams_only:
            route = self.network.local_external_route(pop_code, prefix)
            if route is not None and route.as_path.first_hop is not None:
                asn = route.as_path.first_hop
                if asn in self.deployment.peers:
                    return asn, route.as_path.asns
        if origin is None:
            return None
        main = self.deployment.main_upstream_at.get(pop_code)
        candidates = [main] if main is not None else []
        candidates += [
            asn
            for asn in self.deployment.upstreams
            if asn != main and pop_code in self.deployment.session_pops(asn)
        ]
        # Last resort: any upstream (transit is always purchasable).
        candidates += [asn for asn in self.deployment.upstreams if asn not in candidates]
        for asn in candidates:
            as_route = self.routing.route(asn, origin)
            if as_route is not None:
                return asn, (asn,) + as_route.path
        return None

    def _london_detour_point(self, asn: int, prefix: Prefix) -> GeoPoint | None:
        """The trans-Atlantic detour of Sec. 5.2.2, when it applies.

        London's main upstream is "a large Tier-1 ISP that is mainly based
        in the US"; for destinations it interconnects with only in North
        America traffic "cross[es] the Atlantic and come[s] back".  We
        select those destinations deterministically by prefix hash (three
        quarters of them) and route them via the upstream's primary
        North-American hub.
        """
        if not self.deployment.config.london_us_upstream:
            return None
        if asn != self.deployment.main_upstream_at.get("LON"):
            return None
        if (prefix.network >> 12) % 4 == 0:
            return None  # this destination interconnects locally
        system = self.topology.autonomous_system(asn)
        ashburn = pop_by_code("ASH").location
        return system.nearest_presence(ashburn).location

    def path_local_exit(
        self,
        pop_code: str,
        prefix: Prefix,
        destination: GeoPoint | None = None,
        *,
        upstreams_only: bool = False,
    ) -> DataPath | None:
        """A probe "forced out of VNS immediately" at ``pop_code`` (Sec. 4.1).

        With ``upstreams_only`` the exit is restricted to transit sessions
        — the "through its upstreams" comparison of Sec. 4.3 / 5.1.
        """
        resolved = self._external_route_at_pop(pop_code, prefix, upstreams_only)
        if resolved is None:
            return None
        asn, as_path = resolved
        if destination is None:
            destination = self.topology.prefix_location[prefix]
        origin_as = self.topology.origin_as(prefix)
        start = pop_by_code(pop_code).location
        segments_prefix: list[PathSegment] = []
        first_kind = SegmentKind.PEERING
        if pop_code == "LON":
            detour = self._london_detour_point(asn, prefix)
            if detour is not None:
                # Deliberately not marked premium: the wart is exactly
                # that this trunk is a poor fit for EU-bound traffic.
                segments_prefix.append(
                    PathSegment(
                        kind=SegmentKind.TRANSIT,
                        start=start,
                        end=detour,
                        label="LON->US-haul",
                    )
                )
                start = detour
                first_kind = SegmentKind.TRANSIT
        path = internet_path(
            self.topology,
            as_path,
            start,
            destination,
            destination_as_type=origin_as.as_type,
            first_segment_kind=first_kind,
            description=f"local:{pop_code}->{prefix}",
        )
        if segments_prefix:
            path.segments[:0] = segments_prefix
        return path

    def _preferred_upstream_at(self, pop_code: str) -> int:
        """The transit provider used for PoP-to-PoP Internet legs."""
        main = self.deployment.main_upstream_at.get(pop_code)
        if main is not None:
            return main
        for asn in self.deployment.upstreams:
            if pop_code in self.deployment.session_pops(asn):
                return asn
        return self.deployment.upstreams[0]

    def path_between_pops_via_upstream(self, src_pop: str, dst_pop: str) -> DataPath:
        """PoP → upstream transit → PoP, bypassing VNS's own circuits.

        This is the Sec. 5.1 baseline: the same endpoints as the VNS leg,
        carried by the large transit providers instead.
        """
        src = pop_by_code(src_pop)
        dst = pop_by_code(dst_pop)
        u_src = self._preferred_upstream_at(src_pop)
        u_dst = self._preferred_upstream_at(dst_pop)
        if u_src == u_dst:
            as_path: tuple[int, ...] = (u_src,)
        else:
            full = self.routing.path(u_src, u_dst)
            as_path = full if full is not None else (u_src, u_dst)
        return internet_path(
            self.topology,
            as_path,
            src.location,
            dst.location,
            first_segment_kind=SegmentKind.PEERING,
            final_access=False,
            description=f"transit:{src_pop}->{dst_pop}",
        )

    def last_mile_path(
        self, user_prefix: Prefix, user_location: GeoPoint, entry_pop: str
    ) -> DataPath:
        """User → Internet → entry PoP (the A-B leg of Fig. 8).

        The user's access segment is typed with their AS's class, then the
        AS path from their AS to VNS carries the traffic to the PoP.
        """
        origin = self.topology.origin_as(user_prefix)
        as_path = self.routing.path(origin.asn, 65000)
        transit_asns = as_path[:-1] if as_path else (origin.asn,)
        pop = pop_by_code(entry_pop)
        path = internet_path(
            self.topology,
            transit_asns,
            user_location,
            pop.location,
            first_segment_kind=SegmentKind.ACCESS,
            final_access=False,
            description=f"lastmile:{origin.asn}->{entry_pop}",
        )
        # Type the first (access) segment with the user's AS class.
        first = path.segments[0]
        path.segments[0] = PathSegment(
            kind=SegmentKind.ACCESS,
            start=first.start,
            end=first.end,
            as_type=origin.as_type,
            label=first.label,
        )
        return path

    # ----------------------------------------------------------------- #
    # end-to-end calls
    # ----------------------------------------------------------------- #

    def call_paths(
        self,
        src_prefix: Prefix,
        src_location: GeoPoint,
        dst_prefix: Prefix,
        dst_location: GeoPoint,
        *,
        steering: "SteeringEngine | None" = None,
        t_hours: float = 0.0,
        call_id: int = 0,
    ) -> CallPaths | None:
        """The transport options for a call between two users.

        Via VNS: source last mile to its anycast entry PoP, VNS circuits to
        the egress closest to the destination, then the Internet tail.
        Via Internet: the native AS path between the two users' networks.
        Returns ``None`` if routing fails to resolve either way.

        Passing a ``steering`` engine additionally resolves the one-hop
        PoP detour (local exit at the entry PoP) and records the
        policy's :class:`~repro.steering.policies.SteeringDecision` for
        the call at campaign hour ``t_hours`` — read the selected path
        off :attr:`CallPaths.chosen`.
        """
        src_origin = self.topology.origin_as(src_prefix)
        entry = self.anycast.entry_pop(src_origin.asn, src_location)
        if entry is None:
            return None
        decision = self.egress_decision(entry.code, dst_prefix)
        if decision is None:
            return None
        inbound = self.last_mile_path(src_prefix, src_location, entry.code)
        onward = self.path_via_vns(
            entry.code, dst_prefix, destination=dst_location, decision=decision
        )
        assert onward is not None  # decision already resolved
        via_vns = inbound.concat(onward)
        via_vns.description = f"call-vns:{src_prefix}->{dst_prefix}"

        dst_origin = self.topology.origin_as(dst_prefix)
        native_path = self.routing.path(src_origin.asn, dst_origin.asn)
        if native_path is None:
            return None
        via_internet = internet_path(
            self.topology,
            native_path[1:] if len(native_path) > 1 else native_path,
            src_location,
            dst_location,
            destination_as_type=dst_origin.as_type,
            first_segment_kind=SegmentKind.ACCESS,
            description=f"call-inet:{src_prefix}->{dst_prefix}",
        )
        via_detour = None
        verdict = None
        if steering is not None:
            from repro.steering.policies import PathCandidates

            exit_leg = self.path_local_exit(
                entry.code, dst_prefix, destination=dst_location
            )
            if exit_leg is not None:
                via_detour = inbound.concat(exit_leg)
                via_detour.description = f"call-detour:{src_prefix}->{dst_prefix}"
            verdict = steering.decide(
                src_prefix,
                dst_prefix,
                t_hours,
                candidates=PathCandidates(
                    vns_rtt_ms=via_vns.rtt_ms(),
                    internet_rtt_ms=via_internet.rtt_ms(),
                    detour_rtt_ms=None if via_detour is None else via_detour.rtt_ms(),
                    detour_pop=None if via_detour is None else entry.code,
                ),
                call_id=call_id,
            )
        return CallPaths(
            via_vns=via_vns,
            via_internet=via_internet,
            entry_pop=entry.code,
            exit_pop=decision.egress_pop,
            via_detour=via_detour,
            decision=verdict,
        )

    # ----------------------------------------------------------------- #
    # management actions that need router cooperation
    # ----------------------------------------------------------------- #

    def apply_static_more_specific(self, prefix: Prefix, pop_code: str) -> None:
        """Originate a more-specific at ``pop_code``, tagged ``no-export``.

        Implements the Sec. 3.2 mechanism for prefixes "mostly confined to
        a limited region but [with] one or a few subnets located in a
        different region".  The route never leaves VNS; externally the
        covering prefix still attracts the traffic.

        Raises
        ------
        ValueError
            If the PoP has no route to a covering (less specific) prefix,
            which the paper states as the precondition.
        """
        router = self.network.border_routers[pop_by_code(pop_code).router_ids()[0]]
        covering = [
            known
            for known in router.loc_rib.prefixes()
            if known.length < prefix.length and known.contains_prefix(prefix)
        ]
        if not covering:
            raise ValueError(
                f"{pop_code} has no route to a prefix covering {prefix}"
            )
        self.management.add_static_more_specific(prefix, pop_code)
        from repro.bgp.attributes import NO_EXPORT

        self.network.engine.inject(
            router.originate(prefix, communities=frozenset({NO_EXPORT}))
        )
        self.network.converge()

    def refresh_routing(self) -> None:
        """Re-run convergence after management changes."""
        for router in self.network.border_routers.values():
            self.network.engine.inject(router.refresh_advertisements())
        for reflector in self.network.reflectors.values():
            self.network.engine.inject(reflector.refresh_advertisements())
        self.network.converge()
