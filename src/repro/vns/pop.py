"""The eleven VNS Points of Presence.

The paper deploys "11 PoPs on four continents", clustered per region.
Figure 4 lets us pin some identities: PoP 10 is London; PoPs 3 and 5 are
on the US east coast; PoP 7 is in AP; PoP 9 in EU.  Figure 11 names the
ten PoPs used in the last-mile study: ATL, ASH, SJS / AMS, FRA, LON, OSL /
HK, SIN, SYD.  We complete the set with Tokyo (AP had 3 PoPs plus Sydney
in Oceania — four continents total).
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

from repro.geo.cities import City, city_by_name
from repro.geo.coords import GeoPoint, TrigTerms, great_circle_km_fast, trig_terms
from repro.geo.regions import PopRegion


@dataclass(frozen=True, slots=True)
class PoP:
    """One VNS Point of Presence.

    Parameters
    ----------
    pop_id:
        Numeric id matching Fig. 4's x-axis (1..11).
    code:
        Short code, e.g. ``"LON"``.
    city:
        Gazetteer city hosting the PoP.
    region:
        PoP region (EU / US / AP / OC).
    n_border_routers:
        Number of eBGP-speaking border routers ("over 20 routers in 11
        PoPs"): two at the major exchanges, one elsewhere.
    """

    pop_id: int
    code: str
    city: City
    region: PopRegion
    n_border_routers: int = 2

    @property
    def location(self) -> GeoPoint:
        return self.city.location

    def router_ids(self) -> list[str]:
        """Identifiers of this PoP's border routers."""
        return [f"{self.code}-r{i + 1}" for i in range(self.n_border_routers)]

    def __str__(self) -> str:
        return f"PoP{self.pop_id}:{self.code}"


def _pop(pop_id: int, code: str, city_name: str, region: PopRegion, routers: int) -> PoP:
    return PoP(
        pop_id=pop_id,
        code=code,
        city=city_by_name(city_name),
        region=region,
        n_border_routers=routers,
    )


#: The production footprint.  PoP ids satisfy the Fig. 4 constraints:
#: 3 and 5 are US east coast, 7 is AP, 9 is EU, 10 is London.
POPS: tuple[PoP, ...] = (
    _pop(1, "OSL", "Oslo", PopRegion.EU, 1),
    _pop(2, "AMS", "Amsterdam", PopRegion.EU, 2),
    _pop(3, "ATL", "Atlanta", PopRegion.NA, 2),
    _pop(4, "SJS", "San Jose", PopRegion.NA, 2),
    _pop(5, "ASH", "Ashburn", PopRegion.NA, 2),
    _pop(6, "SIN", "Singapore", PopRegion.AP, 2),
    _pop(7, "HK", "Hong Kong", PopRegion.AP, 2),
    _pop(8, "SYD", "Sydney", PopRegion.OC, 2),
    _pop(9, "FRA", "Frankfurt", PopRegion.EU, 2),
    _pop(10, "LON", "London", PopRegion.EU, 2),
    _pop(11, "TYO", "Tokyo", PopRegion.AP, 2),
)

_BY_ID = {pop.pop_id: pop for pop in POPS}
_BY_CODE = {pop.code: pop for pop in POPS}

#: The footprint is fixed, so each PoP's haversine trig terms are
#: computed once at import; every nearest-PoP query reuses them.
_POP_TRIG: dict[str, TrigTerms] = {pop.code: trig_terms(pop.location) for pop in POPS}


def pop_by_id(pop_id: int) -> PoP:
    """Look up a PoP by its Fig. 4 id.

    Raises
    ------
    KeyError
        For an unknown id.
    """
    return _BY_ID[pop_id]


def pop_by_code(code: str) -> PoP:
    """Look up a PoP by short code (e.g. ``"AMS"``).

    Raises
    ------
    KeyError
        For an unknown code.
    """
    return _BY_CODE[code]


def pops_in_region(region: PopRegion) -> tuple[PoP, ...]:
    """All PoPs in one PoP region."""
    return tuple(pop for pop in POPS if pop.region is region)


def pop_distance_km(pop: PoP, location: GeoPoint) -> float:
    """Great-circle distance from a production PoP, using cached trig."""
    return great_circle_km_fast(_POP_TRIG[pop.code], location)


def nearest_pop(location: GeoPoint, among: Iterable[PoP] | None = None) -> PoP:
    """The PoP geographically nearest to ``location``.

    ``among`` restricts the candidates (e.g. the PoPs still holding a
    session after a fault); default is the full footprint.  This is the
    single nearest-PoP implementation — anycast catchment and experiment
    code route through it so they all share the precomputed trig terms.

    Raises
    ------
    ValueError
        If ``among`` is given but empty.
    """
    candidates = POPS if among is None else tuple(among)
    if not candidates:
        raise ValueError("nearest_pop needs at least one candidate PoP")
    return min(candidates, key=lambda pop: great_circle_km_fast(_POP_TRIG[pop.code], location))


def total_border_routers() -> int:
    """Across all PoPs — the paper says "over 20"."""
    return sum(pop.n_border_routers for pop in POPS)
