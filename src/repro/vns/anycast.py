"""Anycast entry-PoP resolution.

"There is a TURN server in each PoP and all of them use the same anycast
address" (Sec. 4.4).  Which PoP a user's request lands on is decided by
Internet routing: the user's AS picks its best path toward the anycast
prefix, and the final neighbour hands the traffic to VNS at whichever
shared session is nearest to where the traffic already is (the
neighbour's own hot-potato economics).  Incoming traffic therefore
"follows geography to a large extent" — but not perfectly, which is
exactly what Fig. 7 shows.
"""

from __future__ import annotations

from repro.bgp.propagation import AsLevelRouting
from repro.geo.coords import GeoPoint
from repro.net.topology import InternetTopology
from repro.vns.builder import VnsDeployment
from repro.vns.network import VNS_ASN
from repro.vns.pop import PoP, nearest_pop, pop_by_code


class AnycastResolver:
    """Resolves which PoP receives a user's anycast traffic."""

    def __init__(
        self,
        topology: InternetTopology,
        routing: AsLevelRouting,
        deployment: VnsDeployment,
    ) -> None:
        self._topology = topology
        self._routing = routing
        self._deployment = deployment

    def entry_path(self, user_asn: int, user_location: GeoPoint) -> tuple[PoP, tuple[int, ...]] | None:
        """The entry PoP and the AS path the user's traffic takes to it.

        Returns ``None`` if the user's AS has no route to VNS (cannot
        happen on a validated topology, where every AS reaches the Tier-1
        clique).
        """
        as_path = self._routing.path(user_asn, VNS_ASN)
        if as_path is None or len(as_path) < 2:
            return None
        # as_path = (user, ..., neighbour, VNS); walk to the neighbour.
        neighbor_asn = as_path[-2]
        current = user_location
        for asn in as_path[:-1]:
            system = self._topology.autonomous_system(asn)
            current = system.nearest_presence(current).location
        down = self._deployment.network.down_pops
        session_pops = {
            code
            for code in self._deployment.session_pops(neighbor_asn)
            if code not in down
        }
        if not session_pops and down:
            # Anycast re-catchment: with every session PoP of the chosen
            # neighbour failed, its announcement is gone and the routes
            # heard via other neighbours attract the traffic instead.
            # Approximated as the nearest surviving PoP holding any
            # external session (AS-path selection among the remaining
            # neighbours is second-order for catchment geography).
            session_pops = {
                code
                for asn in self._deployment.neighbor_asns
                for code in self._deployment.session_pops(asn)
                if code not in down
            }
        if not session_pops:
            return None
        entry = nearest_pop(current, among=(pop_by_code(code) for code in session_pops))
        return entry, as_path

    def entry_pop(self, user_asn: int, user_location: GeoPoint) -> PoP | None:
        """Just the entry PoP (see :meth:`entry_path`)."""
        resolved = self.entry_path(user_asn, user_location)
        return None if resolved is None else resolved[0]

    def nearest_pop(self, location: GeoPoint) -> PoP:
        """The geographically ideal entry (for catchment comparisons)."""
        return nearest_pop(location)
