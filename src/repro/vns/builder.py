"""Attaching VNS to the synthetic Internet.

Implements the deployment policy of Sec. 3.1: VNS "peers openly with any
other interested AS" at the exchanges where it is present, and "purchases
Internet transit from multiple Tier-1 or wholesale national providers".
If a peer is present at several VNS sites, sessions are established at
all of them (Sec. 4.2.2).  The builder also reproduces the operational
wart behind Fig. 11's London anomaly: VNS's main upstream in London is "a
large Tier-1 ISP that is mainly based in the US".
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.bgp.attributes import AsPath, Origin, Route
from repro.bgp.messages import Update
from repro.bgp.propagation import AsLevelRouting
from repro.geo.geoip import GeoIPDatabase
from repro.net.addressing import Prefix
from repro.net.asn import ASType, AutonomousSystem, PresencePoint
from repro.net.relationships import Relationship
from repro.net.topology import InternetTopology
from repro.vns.geo_rr import LocalPrefFunction, linear_lp
from repro.vns.management import ManagementInterface
from repro.vns.network import VNS_ASN, VnsNetwork, external_peer_id
from repro.vns.pop import POPS, PoP


@dataclass(slots=True)
class VnsConfig:
    """Deployment knobs."""

    #: Number of transit providers purchased (the paper's network has 7).
    n_upstreams: int = 7
    #: Of those, how many are *wholesale national/regional* providers
    #: ("multiple Tier-1 or wholesale national providers", Sec. 3.1; also
    #: the Sec. 4.4 strategy of "buying geographically limited transit").
    #: One is bought per region in ``regional_upstream_regions`` order.
    n_regional_upstreams: int = 3
    #: Which PoP regions get a regional wholesale upstream, neediest first
    #: (global Tier-1 eyeball coverage is weakest in OC and AP).
    regional_upstream_regions: tuple[str, ...] = ("OC", "AP", "EU")
    #: Cap on settlement-free peers (paper: 13+ appear in Fig. 5's top-20).
    max_peers: int = 40
    #: Reproduce the London wart: the *main* upstream at LON is the Tier-1
    #: with the weakest European footprint (Sec. 5.2.2's anomaly).
    london_us_upstream: bool = True
    #: Build geo reflectors ("after"); False gives the hot-potato "before"
    #: network, which also switches iBGP to the classic full mesh unless
    #: ``ibgp_mode`` says otherwise.
    geo_routing: bool = True
    #: ``"route-reflector"``, ``"full-mesh"``, or ``None`` to derive from
    #: ``geo_routing``.
    ibgp_mode: str | None = None
    #: Every PoP gets transit from at least this many upstreams; providers
    #: without a local footprint deliver the circuit to the PoP (a PNI),
    #: which adds a presence point for them at the PoP city.
    min_upstreams_per_pop: int = 2
    #: The hidden-routes fix on border routers.
    enable_best_external: bool = True
    #: ``f(d)`` for the geo reflectors.
    lp_function: LocalPrefFunction = linear_lp
    #: The anycast service prefix users' TURN traffic targets.
    anycast_prefix: Prefix = field(default_factory=lambda: Prefix.parse("198.51.100.0/24"))

    def __post_init__(self) -> None:
        if self.n_upstreams < 1:
            raise ValueError("VNS needs at least one upstream")


@dataclass(slots=True)
class VnsDeployment:
    """The built VNS attached to a topology."""

    network: VnsNetwork
    config: VnsConfig
    upstreams: list[int]
    peers: list[int]
    sessions: dict[int, list[str]]  # neighbour ASN -> border router ids
    main_upstream_at: dict[str, int]  # PoP code -> designated transit ASN
    anycast_prefix: Prefix
    messages_delivered: int = 0
    #: lazily-built ``session_pops`` memo (sessions are fixed once built;
    #: egress selection asks for the same neighbours on every call).
    _session_pops: dict[int, list[str]] = field(default_factory=dict, repr=False, compare=False)

    @property
    def neighbor_asns(self) -> list[int]:
        """All neighbours, upstreams first."""
        return list(self.upstreams) + list(self.peers)

    def relationship_of(self, asn: int) -> Relationship:
        """PROVIDER for upstreams, PEER for peers.

        Raises
        ------
        KeyError
            For an AS that is not a VNS neighbour.
        """
        return self.network.relationships[asn]

    def session_pops(self, asn: int) -> list[str]:
        """PoP codes where VNS has a session with ``asn`` (memoised)."""
        pops = self._session_pops.get(asn)
        if pops is None:
            pops = self._session_pops[asn] = [
                self.network.pop_of_router[router_id]
                for router_id in self.sessions.get(asn, [])
            ]
        return pops


def _presence_city_names(system: AutonomousSystem) -> set[str]:
    return {point.city.name for point in system.presence}


def _choose_upstreams(topology: InternetTopology, config: VnsConfig) -> list[int]:
    """Global Tier-1s plus regional wholesale providers.

    The global slots go to the largest LTPs by customer cone; each
    regional slot goes to the biggest STP homed in that PoP region, which
    pulls that region's eyeballs into the local PoP (anycast catchment
    engineering, Sec. 4.4).
    """
    n_regional = min(
        config.n_regional_upstreams,
        len(config.regional_upstream_regions),
        max(0, config.n_upstreams - 1),
    )
    n_global = config.n_upstreams - n_regional
    ltps = topology.ases_of_type(ASType.LTP)
    ranked = sorted(
        ltps,
        key=lambda system: (-len(topology.graph.customer_cone(system.asn)), system.asn),
    )
    chosen = [system.asn for system in ranked[:n_global]]
    from repro.geo.regions import PopRegion

    for region_code in config.regional_upstream_regions[:n_regional]:
        region = PopRegion(
            {"EU": "EU", "US": "US", "NA": "US", "AP": "AP", "OC": "OC"}[region_code]
        )
        candidates = [
            system
            for system in topology.ases_of_type(ASType.STP)
            if system.home.city.pop_region is region and system.asn not in chosen
        ]
        if not candidates:
            continue
        best = max(
            candidates,
            key=lambda system: (len(topology.graph.customer_cone(system.asn)), -system.asn),
        )
        chosen.append(best.asn)
    return chosen


def _choose_peers(
    topology: InternetTopology, upstreams: list[int], config: VnsConfig
) -> list[int]:
    """STP/CAHP ASes co-located with VNS PoPs, by footprint overlap.

    Among equally co-located candidates, smaller customer cones win: a
    video-service overlay peers with access/content networks and small
    regional ISPs, not with the transit heavyweights it already buys from
    — which is also what keeps ~80% of routes on transit (Fig. 5 inset).
    """
    pop_cities = {pop.city.name for pop in POPS}
    candidates = []
    for system in topology.ases.values():
        if system.asn in upstreams or system.as_type is ASType.EC:
            continue
        if system.as_type is ASType.LTP:
            continue  # Tier-1s do not peer settlement-free with VNS
        shared = _presence_city_names(system) & pop_cities
        if shared:
            cone = len(topology.graph.customer_cone(system.asn))
            # CAHPs (access/content) first, then small regional STPs: an
            # overlay peers with edge networks, not transit heavyweights.
            candidates.append(
                (system.as_type is not ASType.CAHP, cone, -len(shared), system.asn)
            )
    candidates.sort()
    return [asn for _, _, _, asn in candidates[: config.max_peers]]


def _upstream_sessions(
    topology: InternetTopology, upstreams: list[int], config: VnsConfig
) -> tuple[list[tuple[int, PoP]], dict[str, int]]:
    """Transit sessions plus each PoP's designated *main* upstream.

    Each upstream connects wherever it is co-located with a PoP; every PoP
    is guaranteed at least one upstream.  A PoP's main upstream — the one
    its locally forced-out traffic defaults to — is the highest-ranked
    co-located provider, except at LON where ``london_us_upstream``
    designates the Tier-1 with the weakest EU footprint (the paper's
    "large Tier-1 ISP that is mainly based in the US").
    """
    sessions: list[tuple[int, PoP]] = []
    main_upstream_at: dict[str, int] = {}
    systems = {asn: topology.autonomous_system(asn) for asn in upstreams}
    us_based = None
    if config.london_us_upstream:
        def eu_presence(asn: int) -> int:
            return sum(
                1 for point in systems[asn].presence if point.city.region.value == "Europe"
            )
        global_upstreams = [
            asn for asn in upstreams if systems[asn].as_type is ASType.LTP
        ] or upstreams
        us_based = min(global_upstreams, key=lambda asn: (eu_presence(asn), asn))

    def deliver_locally(asn: int, pop: PoP) -> None:
        """Transit delivered to the PoP: the provider builds a PNI there."""
        system = systems[asn]
        if pop.city.name not in _presence_city_names(system):
            system.presence.append(
                PresencePoint(city=pop.city, location=pop.city.location)
            )

    regional_for_region: dict[object, list[int]] = {}
    for asn in upstreams:
        system = systems[asn]
        if system.as_type is ASType.STP:
            regional_for_region.setdefault(system.home.city.pop_region, []).append(asn)

    for pop in POPS:
        at_pop: list[int] = []
        for asn in upstreams:
            if pop.city.name in _presence_city_names(systems[asn]):
                at_pop.append(asn)
        # A regional wholesale provider connects at every PoP of its home
        # region (delivering the circuit if it has no local footprint).
        for asn in regional_for_region.get(pop.region, []):
            if asn not in at_pop:
                deliver_locally(asn, pop)
                at_pop.append(asn)
        if config.london_us_upstream and pop.code == "LON":
            assert us_based is not None
            # The main upstream at LON is the US-based Tier-1; it hauls
            # traffic on its own (US-centric) infrastructure, which is the
            # Sec. 5.2.2 anomaly — deliberately no local PNI injected.
            if us_based not in at_pop:
                at_pop.insert(0, us_based)
            main_upstream_at[pop.code] = us_based
        while len(at_pop) < config.min_upstreams_per_pop and len(at_pop) < len(upstreams):
            nearest = min(
                (asn for asn in upstreams if asn not in at_pop),
                key=lambda asn: systems[asn]
                .nearest_presence(pop.location)
                .location.distance_km(pop.location),
            )
            deliver_locally(nearest, pop)
            at_pop.append(nearest)
        main_upstream_at.setdefault(pop.code, at_pop[0])
        sessions.extend((asn, pop) for asn in at_pop)
    return sessions, main_upstream_at


def _peer_sessions(
    topology: InternetTopology, peers: list[int]
) -> list[tuple[int, PoP]]:
    """Peering at *all* shared sites (Sec. 4.2.2)."""
    sessions: list[tuple[int, PoP]] = []
    for asn in peers:
        cities = _presence_city_names(topology.autonomous_system(asn))
        for pop in POPS:
            if pop.city.name in cities:
                sessions.append((asn, pop))
    return sessions


def _inject_external_routes(
    topology: InternetTopology,
    routing: AsLevelRouting,
    network: VnsNetwork,
    sessions: dict[int, list[str]],
    rng: np.random.Generator,
) -> None:
    """Deliver the eBGP table transfers every neighbour sends at start-up.

    Border routers bulk-load their Adj-RIB-In (as real speakers do during
    initial transfers) and then advertise; the iBGP phase that follows is
    message-driven, in an order deliberately randomised (deterministically,
    via ``rng``) — real arrival order is arbitrary, and order-dependence
    is exactly what the hidden-routes discussion is about.
    """
    updates: list[Update] = []
    origins = sorted(topology.ases)
    for asn in sorted(sessions):
        relationship = network.relationships[asn]
        for origin in origins:
            as_route = routing.exported_to_neighbor(asn, relationship, origin)
            if as_route is None:
                continue
            as_path = AsPath((asn,) + as_route.path)
            for prefix in topology.autonomous_system(origin).prefixes:
                for router_id in sessions[asn]:
                    peer_id = external_peer_id(asn, router_id)
                    route = Route(
                        prefix=prefix,
                        as_path=as_path,
                        next_hop=peer_id,
                        origin=Origin.IGP,
                    )
                    updates.append(
                        Update(sender=peer_id, receiver=router_id, route=route)
                    )
    by_receiver: dict[str, list[Update]] = {}
    for update in updates:
        by_receiver.setdefault(update.receiver, []).append(update)
    for router_id, batch in by_receiver.items():
        network.border_routers[router_id].bulk_receive(batch)
    followups: list[Update] = []
    for router_id in sorted(by_receiver):
        followups.extend(network.border_routers[router_id].refresh_advertisements())
    order = rng.permutation(len(followups))
    network.engine.inject([followups[i] for i in order])


def build_vns(
    topology: InternetTopology,
    routing: AsLevelRouting,
    geoip: GeoIPDatabase,
    config: VnsConfig | None = None,
    rng: np.random.Generator | None = None,
    *,
    management: ManagementInterface | None = None,
    converge: bool = True,
) -> VnsDeployment:
    """Build VNS, attach it to the Internet, and converge its routing.

    Adds VNS as AS 65000 to the topology's relationship graph (customer of
    its upstreams, peer of its peers), configures all eBGP sessions,
    originates the anycast service prefix at every PoP, injects every
    neighbour's routes, and runs BGP to convergence.
    """
    if config is None:
        config = VnsConfig()
    if rng is None:
        rng = np.random.default_rng(0)

    upstreams = _choose_upstreams(topology, config)
    peers = _choose_peers(topology, upstreams, config)
    relationships: dict[int, Relationship] = {
        asn: Relationship.PROVIDER for asn in upstreams
    }
    relationships.update({asn: Relationship.PEER for asn in peers})

    ibgp_mode = config.ibgp_mode
    if ibgp_mode is None:
        ibgp_mode = "route-reflector" if config.geo_routing else "full-mesh"
    network = VnsNetwork(
        geoip=geoip,
        geo_routing=config.geo_routing,
        enable_best_external=config.enable_best_external,
        lp_function=config.lp_function,
        relationships=relationships,
        management=management,
        ibgp_mode=ibgp_mode,
    )

    # Register VNS in the AS graph so anycast catchment can be resolved.
    if VNS_ASN not in topology.graph:
        for asn in upstreams:
            topology.graph.add_provider_customer(asn, VNS_ASN)
        for asn in peers:
            topology.graph.add_peering(asn, VNS_ASN)

    # Place sessions; alternate between a PoP's border routers.
    session_map: dict[int, list[str]] = {}
    next_router_index: dict[str, int] = {}
    placed: set[tuple[int, str]] = set()
    upstream_sessions, main_upstream_at = _upstream_sessions(topology, upstreams, config)
    for asn, pop in upstream_sessions + _peer_sessions(topology, peers):
        if (asn, pop.code) in placed:
            continue
        placed.add((asn, pop.code))
        index = next_router_index.get(pop.code, 0)
        router_ids = pop.router_ids()
        router_id = router_ids[index % len(router_ids)]
        next_router_index[pop.code] = index + 1
        network.add_ebgp_session(router_id, asn)
        session_map.setdefault(asn, []).append(router_id)

    # Originate the anycast service prefix at every PoP.
    for pop in POPS:
        router = network.border_routers[pop.router_ids()[0]]
        network.engine.inject(router.originate(config.anycast_prefix))

    _inject_external_routes(topology, routing, network, session_map, rng)

    delivered = network.converge() if converge else 0
    return VnsDeployment(
        network=network,
        config=config,
        upstreams=upstreams,
        peers=peers,
        sessions=session_map,
        main_upstream_at=main_upstream_at,
        anycast_prefix=config.anycast_prefix,
        messages_delivered=delivered,
    )
