"""The VNS L2 topology: regional meshes plus long-haul interconnects.

"PoPs in the same geographical region are meshed forming a local cluster.
These clusters are interconnected via long-haul L2-links.  The termination
points of the inter-cluster links are chosen carefully to avoid having a
sub-optimal routing inside VNS."  Singapore has "direct dedicated links to
Australia, USA and Europe" (Sec. 4.3), which is why it shows the best
delay profile in Fig. 6.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dataplane.calibration import FIBER_MS_PER_KM, VNS_PATH_INFLATION
from repro.geo.coords import great_circle_km
from repro.igp.graph import IgpGraph
from repro.vns.pop import POPS, PoP, pop_by_code, pops_in_region
from repro.geo.regions import PopRegion


@dataclass(frozen=True, slots=True)
class L2Link:
    """A guaranteed-bandwidth layer-2 circuit between two PoPs."""

    a: str  # PoP code
    b: str  # PoP code
    long_haul: bool

    def distance_km(self) -> float:
        return great_circle_km(pop_by_code(self.a).location, pop_by_code(self.b).location)

    def delay_ms(self) -> float:
        """One-way propagation delay of the circuit."""
        return self.distance_km() * FIBER_MS_PER_KM * VNS_PATH_INFLATION

    def __str__(self) -> str:
        marker = "==" if self.long_haul else "--"
        return f"{self.a}{marker}{self.b}"


#: The inter-cluster long-haul circuits.
VNS_LONG_HAUL_LINKS: tuple[tuple[str, str], ...] = (
    ("LON", "ASH"),  # trans-Atlantic
    ("AMS", "SIN"),  # Europe - Asia
    ("SJS", "HK"),   # trans-Pacific
    ("SJS", "TYO"),  # trans-Pacific
    ("SIN", "SJS"),  # Singapore's direct link to the USA
    ("SIN", "SYD"),  # Singapore's direct link to Australia
)


def l2_links() -> list[L2Link]:
    """All circuits: per-region full meshes + the long-haul set."""
    links: list[L2Link] = []
    for region in PopRegion:
        pops = pops_in_region(region)
        for i, a in enumerate(pops):
            for b in pops[i + 1 :]:
                links.append(L2Link(a=a.code, b=b.code, long_haul=False))
    for a, b in VNS_LONG_HAUL_LINKS:
        links.append(L2Link(a=a, b=b, long_haul=True))
    return links


def build_l2_topology(
    igp_metric_scale: float = 10.0,
    *,
    excluded_links: frozenset[frozenset[str]] = frozenset(),
    excluded_pops: frozenset[str] = frozenset(),
    require_connected: bool = True,
) -> tuple[IgpGraph, list[L2Link]]:
    """The PoP-level IGP graph with delay-proportional metrics.

    Metrics are ``delay_ms * igp_metric_scale`` (floored at 1) so SPF
    inside VNS tracks propagation delay, as a latency-tuned IGP would.

    ``excluded_links`` (endpoint-code pairs) and ``excluded_pops`` support
    fault injection: down circuits/PoPs are left out of the graph, and
    ``require_connected`` must then be off (a fault may partition VNS —
    SPF treats the far side as unreachable rather than erroring).

    Returns the graph and the *full* link list (exclusions still appear in
    the list; they are operational state, not topology).

    Raises
    ------
    RuntimeError
        If ``require_connected`` and the resulting graph is partitioned.
    """
    graph = IgpGraph()
    for pop in POPS:
        if pop.code not in excluded_pops:
            graph.add_node(pop.code)
    links = l2_links()
    for link in links:
        if frozenset((link.a, link.b)) in excluded_links:
            continue
        if link.a in excluded_pops or link.b in excluded_pops:
            continue
        metric = max(1.0, link.delay_ms() * igp_metric_scale)
        graph.add_link(link.a, link.b, metric)
    if require_connected and not graph.is_connected():
        raise RuntimeError("VNS L2 topology is not connected")
    return graph, links


def router_level_igp(
    pop_graph: IgpGraph,
    intra_pop_metric: float = 1.0,
    *,
    require_connected: bool = True,
) -> IgpGraph:
    """Expand the PoP-level graph to border-router granularity.

    Routers within a PoP are joined by a cheap metro link; inter-PoP
    circuits connect the first router of each PoP (a simplification: real
    deployments terminate circuits on specific boxes, which is also why
    the paper can pick circuit termination points "carefully").  PoPs
    absent from ``pop_graph`` (failed) contribute no routers.

    Raises
    ------
    RuntimeError
        If ``require_connected`` and the resulting graph is partitioned.
    """
    graph = IgpGraph()
    for pop in POPS:
        if pop.code not in pop_graph:
            continue
        ids = pop.router_ids()
        for router_id in ids:
            graph.add_node(router_id)
        for i, a in enumerate(ids):
            for b in ids[i + 1 :]:
                graph.add_link(a, b, intra_pop_metric)
    for pop in POPS:
        if pop.code not in pop_graph:
            continue
        for other_code, metric in pop_graph.neighbors(pop.code).items():
            if pop.code < other_code:
                a = pop.router_ids()[0]
                b = pop_by_code(other_code).router_ids()[0]
                graph.add_link(a, b, metric)
    if require_connected and not graph.is_connected():
        raise RuntimeError("router-level IGP graph is not connected")
    return graph
