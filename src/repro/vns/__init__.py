"""The Video Network Service: the paper's contribution.

A network-layer overlay organised as one Autonomous System: 11 PoPs on
four continents, regional L2 meshes interconnected by long-haul dedicated
links, BGP toward the outside, an IGP inside, and — the key piece — a
geo-based route reflector that rewrites LOCAL_PREF from the great-circle
distance between each candidate egress and the destination prefix's GeoIP
location, turning default hot-potato routing into cold-potato routing.
"""

from repro.vns.pop import POPS, PoP, pop_by_code, pop_by_id, pops_in_region
from repro.vns.links import VNS_LONG_HAUL_LINKS, build_l2_topology
from repro.vns.geo_rr import GeoRouteReflector, LocalPrefFunction, linear_lp, stepped_lp
from repro.vns.management import ManagementInterface
from repro.vns.anycast import AnycastResolver
from repro.vns.network import VnsNetwork
from repro.vns.builder import VnsConfig, build_vns
from repro.vns.service import VideoNetworkService
from repro.vns.frozen import (
    FrozenNetwork,
    FrozenWorldError,
    freeze_service,
    is_frozen,
)

__all__ = [
    "PoP",
    "POPS",
    "pop_by_id",
    "pop_by_code",
    "pops_in_region",
    "VNS_LONG_HAUL_LINKS",
    "build_l2_topology",
    "GeoRouteReflector",
    "LocalPrefFunction",
    "linear_lp",
    "stepped_lp",
    "ManagementInterface",
    "AnycastResolver",
    "VnsNetwork",
    "VnsConfig",
    "build_vns",
    "VideoNetworkService",
    "FrozenNetwork",
    "FrozenWorldError",
    "freeze_service",
    "is_frozen",
]
