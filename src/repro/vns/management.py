"""The management interface of Sec. 3.2 ("Overriding Geo-routing").

Two failure cases require manual override: (a) the geographically closest
PoP is not the closest data-plane-wise (routing policies), and (b)
subnets of a contiguous prefix are geographically spread.  The interface
supports:

* **force-exit** — pin a prefix's egress to a specific PoP;
* **geo-exempt** — exclude a prefix from geo-routing entirely (globally
  spread prefixes), reverting it to default BGP behaviour;
* **static more-specifics** — have the PoP closest to a remote subnet
  statically advertise the more-specific prefix, tagged ``no-export`` so
  it never leaks outside VNS.
"""

from __future__ import annotations

from dataclasses import replace

from repro.bgp.attributes import NO_EXPORT, Route
from repro.net.addressing import Prefix
from repro.vns.geo_rr import GeoRouteReflector, ManagementHook

#: Preference used to pin forced exits; above any geo-assigned value.
FORCED_EXIT_LP = 100_000


class ManagementInterface(ManagementHook):
    """Concrete override store, shared by all reflectors of the AS.

    The interface "communicates with the Quagga-RR and border routers";
    here the reflectors consult it during import, and the network builder
    consults it for static more-specific originations.
    """

    def __init__(self) -> None:
        self._forced_exit: dict[Prefix, str] = {}  # prefix -> PoP code
        self._geo_exempt: set[Prefix] = set()
        self._static_more_specifics: dict[Prefix, str] = {}  # prefix -> PoP code

    # ----------------------------------------------------------------- #
    # operator actions
    # ----------------------------------------------------------------- #

    def force_exit(self, prefix: Prefix, pop_code: str) -> None:
        """Pin ``prefix``'s egress to the PoP with ``pop_code``."""
        self._forced_exit[prefix] = pop_code

    def clear_forced_exit(self, prefix: Prefix) -> None:
        """Remove a force-exit override (no-op if absent)."""
        self._forced_exit.pop(prefix, None)

    def exempt_from_geo(self, prefix: Prefix) -> None:
        """Exclude ``prefix`` from geo-routing (globally spread prefix)."""
        self._geo_exempt.add(prefix)

    def clear_exemption(self, prefix: Prefix) -> None:
        """Remove a geo exemption (no-op if absent)."""
        self._geo_exempt.discard(prefix)

    def add_static_more_specific(self, prefix: Prefix, pop_code: str) -> None:
        """Register a more-specific to be advertised from ``pop_code``.

        The builder/service layer performs the actual origination on a
        border router at that PoP, tagged with :data:`NO_EXPORT`.
        """
        self._static_more_specifics[prefix] = pop_code

    # ----------------------------------------------------------------- #
    # queries
    # ----------------------------------------------------------------- #

    def forced_exit_of(self, prefix: Prefix) -> str | None:
        return self._forced_exit.get(prefix)

    def is_exempt(self, prefix: Prefix) -> bool:
        return prefix in self._geo_exempt

    def static_more_specifics(self) -> dict[Prefix, str]:
        """All registered more-specifics (prefix → PoP code)."""
        return dict(self._static_more_specifics)

    def overrides_count(self) -> int:
        """Total number of active overrides of any kind."""
        return (
            len(self._forced_exit)
            + len(self._geo_exempt)
            + len(self._static_more_specifics)
        )

    # ----------------------------------------------------------------- #
    # reflector hook
    # ----------------------------------------------------------------- #

    def transform(self, reflector: GeoRouteReflector, route: Route) -> Route | None:
        """Apply overrides during reflector import.

        Returns the fully handled route, or ``None`` when geo-routing
        should proceed normally.
        """
        if route.prefix in self._geo_exempt:
            reflector.stats["exempt"] += 1
            return route  # leave LOCAL_PREF as imported: default behaviour
        pop_code = self._forced_exit.get(route.prefix)
        if pop_code is not None:
            reflector.stats["forced"] += 1
            if route.next_hop.startswith(f"{pop_code}-"):
                return replace(route, local_pref=FORCED_EXIT_LP)
            # Candidate egresses at other PoPs keep (low) geo preference so
            # they remain usable if the forced PoP loses the route.
            return reflector.assign_geo_preference(route)
        return None


def tag_no_export(route: Route) -> Route:
    """Tag a route with the ``no-export`` community."""
    return route.with_communities(NO_EXPORT)
