"""Perf instrumentation (counters/timers) for the simulation hot paths.

Import as ``from repro import perf``; see :mod:`repro.perf.counters` for
the probe API.  Off by default — enabling is explicit and scoped to the
benchmark or investigation that wants the numbers.
"""

from repro.perf.counters import (
    PerfSnapshot,
    add_time,
    counter,
    disable,
    enable,
    incr,
    is_enabled,
    report,
    reset,
    restore,
    snapshot,
    timed,
    timer,
)

__all__ = [
    "PerfSnapshot",
    "add_time",
    "counter",
    "disable",
    "enable",
    "incr",
    "is_enabled",
    "report",
    "reset",
    "restore",
    "snapshot",
    "timed",
    "timer",
]
