"""Lightweight perf counters and timers for the simulation's hot paths.

Zero-dependency instrumentation, **off by default**: every probe site
checks one module-level flag, so the disabled cost is a dict-free boolean
test.  Enable around a region of interest, read a snapshot, and reset:

    from repro import perf

    perf.enable()
    world = build_world("medium")
    print(perf.report())
    perf.disable()

Two probe flavours:

* counters — :func:`incr` adds to a named event count;
* timers — :func:`timer` (context manager) and :func:`timed` (decorator)
  accumulate wall-clock seconds and a call count under a name.

Names are dotted paths (``"bgp.engine.run"``); the registry is flat.
The module is intentionally not thread-safe: the simulation is
single-threaded and the probes must stay cheap.
"""

from __future__ import annotations

import functools
import time
from collections.abc import Callable, Iterator
from contextlib import contextmanager
from typing import Any, TypeVar

F = TypeVar("F", bound=Callable[..., Any])

#: Global on/off switch.  Read directly by hot paths (`perf.enabled`);
#: mutate only via :func:`enable` / :func:`disable`.
enabled = False

#: name -> event count (plain counters).
_counts: dict[str, int] = {}
#: name -> (calls, total seconds) for timed regions.
_timings: dict[str, list[float]] = {}


def enable() -> None:
    """Turn instrumentation on (idempotent)."""
    global enabled
    enabled = True


def disable() -> None:
    """Turn instrumentation off; accumulated data is kept until :func:`reset`."""
    global enabled
    enabled = False


def is_enabled() -> bool:
    return enabled


def reset() -> None:
    """Drop all accumulated counters and timings."""
    _counts.clear()
    _timings.clear()


def incr(name: str, n: int = 1) -> None:
    """Add ``n`` to the counter ``name`` (no-op while disabled)."""
    if enabled:
        _counts[name] = _counts.get(name, 0) + n


def add_time(name: str, seconds: float, calls: int = 1) -> None:
    """Credit ``seconds`` of wall time to the timer ``name``."""
    if enabled:
        entry = _timings.get(name)
        if entry is None:
            _timings[name] = [calls, seconds]
        else:
            entry[0] += calls
            entry[1] += seconds


@contextmanager
def timer(name: str) -> Iterator[None]:
    """Time a region: ``with perf.timer("experiments.build_world"): ...``."""
    if not enabled:
        yield
        return
    start = time.perf_counter()
    try:
        yield
    finally:
        add_time(name, time.perf_counter() - start)


def timed(name: str) -> Callable[[F], F]:
    """Decorator form of :func:`timer` for whole functions."""

    def decorate(fn: F) -> F:
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            if not enabled:
                return fn(*args, **kwargs)
            start = time.perf_counter()
            try:
                return fn(*args, **kwargs)
            finally:
                add_time(name, time.perf_counter() - start)

        return wrapper  # type: ignore[return-value]

    return decorate


def counter(name: str) -> int:
    """Current value of one counter (0 if never incremented)."""
    return _counts.get(name, 0)


def snapshot() -> dict[str, dict[str, float]]:
    """All accumulated data, JSON-friendly.

    ``{"counters": {name: count}, "timers": {name: {"calls", "total_s"}}}``
    """
    return {
        "counters": dict(_counts),
        "timers": {
            name: {"calls": calls, "total_s": total}
            for name, (calls, total) in _timings.items()
        },
    }


def report() -> str:
    """A human-readable dump, counters then timers, sorted by name."""
    lines = ["perf counters:"]
    for name in sorted(_counts):
        lines.append(f"  {name:<40} {_counts[name]:>12}")
    if not _counts:
        lines.append("  (none)")
    lines.append("perf timers:")
    for name in sorted(_timings):
        calls, total = _timings[name]
        per_call = total / calls if calls else 0.0
        lines.append(
            f"  {name:<40} {int(calls):>8} calls  {total:>9.4f}s total"
            f"  {per_call * 1e6:>9.1f}us/call"
        )
    if not _timings:
        lines.append("  (none)")
    return "\n".join(lines)
