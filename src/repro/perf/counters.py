"""Lightweight perf counters and timers for the simulation's hot paths.

Zero-dependency instrumentation, **off by default**: every probe site
checks one module-level flag, so the disabled cost is a dict-free boolean
test.  Enable around a region of interest, read a snapshot, and reset:

    from repro import perf

    perf.enable()
    world = build_world("medium")
    print(perf.report())
    perf.disable()

Two probe flavours:

* counters — :func:`incr` adds to a named event count;
* timers — :func:`timer` (context manager) and :func:`timed` (decorator)
  accumulate wall-clock *and* CPU seconds plus a call count under a name.

Names are dotted paths (``"bgp.engine.run"``); the registry is flat.

The public read API is the :class:`PerfSnapshot` value type returned by
:func:`snapshot`: an immutable view that supports :meth:`PerfSnapshot.merge`
(fold another process's numbers in — how campaign shards reduce),
:meth:`PerfSnapshot.diff` (what happened since a ``before`` snapshot) and
:meth:`PerfSnapshot.to_dict` (JSON-ready).  Consumers should go through
snapshots rather than reaching into this module's registries.

The module is intentionally not thread-safe: the simulation is
single-threaded and the probes must stay cheap.  Worker processes each
carry their own registry; their snapshots merge in the parent.
"""

from __future__ import annotations

import functools
import time
from collections.abc import Callable, Iterator, Mapping
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, TypeVar

F = TypeVar("F", bound=Callable[..., Any])

#: Global on/off switch.  Read directly by hot paths (`perf.enabled`);
#: mutate only via :func:`enable` / :func:`disable`.
enabled = False

#: name -> event count (plain counters).
_counts: dict[str, int] = {}
#: name -> [calls, total wall seconds, total CPU seconds] for timed regions.
_timings: dict[str, list[float]] = {}


def enable() -> None:
    """Turn instrumentation on (idempotent)."""
    global enabled
    enabled = True


def disable() -> None:
    """Turn instrumentation off; accumulated data is kept until :func:`reset`."""
    global enabled
    enabled = False


def is_enabled() -> bool:
    return enabled


def reset() -> None:
    """Drop all accumulated counters and timings."""
    _counts.clear()
    _timings.clear()


def incr(name: str, n: int = 1) -> None:
    """Add ``n`` to the counter ``name`` (no-op while disabled)."""
    if enabled:
        _counts[name] = _counts.get(name, 0) + n


def add_time(
    name: str, seconds: float, calls: int = 1, cpu_seconds: float | None = None
) -> None:
    """Credit ``seconds`` of wall time (and optionally CPU time) to ``name``.

    Callers that only measure wall clock leave ``cpu_seconds`` unset; the
    CPU column then mirrors the wall column, which is exact for the
    single-threaded simulation whenever the process is not preempted.
    """
    if enabled:
        cpu = seconds if cpu_seconds is None else cpu_seconds
        entry = _timings.get(name)
        if entry is None:
            _timings[name] = [calls, seconds, cpu]
        else:
            entry[0] += calls
            entry[1] += seconds
            entry[2] += cpu


@contextmanager
def timer(name: str) -> Iterator[None]:
    """Time a region: ``with perf.timer("experiments.build_world"): ...``."""
    if not enabled:
        yield
        return
    start = time.perf_counter()
    start_cpu = time.process_time()
    try:
        yield
    finally:
        add_time(
            name,
            time.perf_counter() - start,
            cpu_seconds=time.process_time() - start_cpu,
        )


def timed(name: str) -> Callable[[F], F]:
    """Decorator form of :func:`timer` for whole functions."""

    def decorate(fn: F) -> F:
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            if not enabled:
                return fn(*args, **kwargs)
            start = time.perf_counter()
            start_cpu = time.process_time()
            try:
                return fn(*args, **kwargs)
            finally:
                add_time(
                    name,
                    time.perf_counter() - start,
                    cpu_seconds=time.process_time() - start_cpu,
                )

        return wrapper  # type: ignore[return-value]

    return decorate


def counter(name: str) -> int:
    """Current value of one counter (0 if never incremented)."""
    return _counts.get(name, 0)


@dataclass(frozen=True)
class PerfSnapshot:
    """An immutable point-in-time view of accumulated perf data.

    ``counters`` maps names to event counts; ``timers`` maps names to
    ``{"calls", "total_s", "cpu_s"}`` dicts.  Snapshots are values:
    :meth:`merge` and :meth:`diff` return new snapshots and never touch
    the live registry.  For backwards compatibility with the original
    dict-shaped API, ``snap["counters"]`` / ``snap["timers"]`` also work.
    """

    counters: dict[str, int] = field(default_factory=dict)
    timers: dict[str, dict[str, float]] = field(default_factory=dict)

    @classmethod
    def of_counters(cls, counters: Mapping[str, int]) -> "PerfSnapshot":
        """A counters-only snapshot (e.g. engine or geo-RR stats)."""
        return cls(counters={k: int(v) for k, v in counters.items()}, timers={})

    @classmethod
    def of_timers(
        cls, timers: Mapping[str, float], *, calls: int = 1, cpu: bool = True
    ) -> "PerfSnapshot":
        """A timers-only snapshot from plain ``name -> seconds`` figures.

        The campaign pool uses this to fold externally measured overheads
        (world shipping, warmup, queue wait) into the merged shard
        snapshot as regular timer rows.  Each row gets ``calls`` calls;
        ``cpu=True`` mirrors the wall column into the CPU column (exact
        for single-threaded regions), ``cpu=False`` books zero CPU —
        right for waiting time such as queue latency.
        """
        return cls(
            counters={},
            timers={
                name: {
                    "calls": calls,
                    "total_s": float(seconds),
                    "cpu_s": float(seconds) if cpu else 0.0,
                }
                for name, seconds in timers.items()
            },
        )

    def merge(self, other: "PerfSnapshot") -> "PerfSnapshot":
        """This snapshot plus ``other`` (counters and timers summed).

        The shard-reduce operation: each worker snapshots its own
        registry, the parent folds them together.
        """
        counters = dict(self.counters)
        for name, count in other.counters.items():
            counters[name] = counters.get(name, 0) + count
        timers = {name: dict(entry) for name, entry in self.timers.items()}
        for name, entry in other.timers.items():
            mine = timers.get(name)
            if mine is None:
                timers[name] = dict(entry)
            else:
                mine["calls"] += entry["calls"]
                mine["total_s"] += entry["total_s"]
                mine["cpu_s"] += entry["cpu_s"]
        return PerfSnapshot(counters=counters, timers=timers)

    def diff(self, before: "PerfSnapshot") -> "PerfSnapshot":
        """What happened since ``before`` (never negative; empty rows drop)."""
        counters = {}
        for name, count in self.counters.items():
            delta = count - before.counters.get(name, 0)
            if delta > 0:
                counters[name] = delta
        timers = {}
        for name, entry in self.timers.items():
            prior = before.timers.get(name, _ZERO_TIMER)
            calls = entry["calls"] - prior["calls"]
            if calls <= 0:
                continue
            timers[name] = {
                "calls": calls,
                "total_s": max(entry["total_s"] - prior["total_s"], 0.0),
                "cpu_s": max(entry["cpu_s"] - prior["cpu_s"], 0.0),
            }
        return PerfSnapshot(counters=counters, timers=timers)

    def timer_s(self, name: str, *, cpu: bool = False) -> float:
        """Total seconds accumulated under one timer (0.0 if absent)."""
        entry = self.timers.get(name)
        if entry is None:
            return 0.0
        return entry["cpu_s"] if cpu else entry["total_s"]

    def to_dict(self) -> dict:
        """JSON-ready copy: ``{"counters": ..., "timers": ...}``."""
        return {
            "counters": dict(self.counters),
            "timers": {name: dict(entry) for name, entry in self.timers.items()},
        }

    def __getitem__(self, key: str):
        if key == "counters":
            return self.counters
        if key == "timers":
            return self.timers
        raise KeyError(key)


_ZERO_TIMER = {"calls": 0, "total_s": 0.0, "cpu_s": 0.0}


def snapshot() -> PerfSnapshot:
    """A :class:`PerfSnapshot` of all accumulated data."""
    return PerfSnapshot(
        counters=dict(_counts),
        timers={
            name: {"calls": calls, "total_s": total, "cpu_s": cpu}
            for name, (calls, total, cpu) in _timings.items()
        },
    )


def restore(snap: PerfSnapshot) -> None:
    """Reset the live registry to exactly ``snap``'s contents.

    Lets a caller run an instrumented region on a clean slate and then
    put the world back (the in-process shard fallback does this when the
    surrounding code had perf disabled).
    """
    _counts.clear()
    _counts.update(snap.counters)
    _timings.clear()
    for name, entry in snap.timers.items():
        _timings[name] = [entry["calls"], entry["total_s"], entry["cpu_s"]]


def report() -> str:
    """A human-readable dump, counters then timers, sorted by name."""
    lines = ["perf counters:"]
    for name in sorted(_counts):
        lines.append(f"  {name:<40} {_counts[name]:>12}")
    if not _counts:
        lines.append("  (none)")
    lines.append("perf timers:")
    for name in sorted(_timings):
        calls, total, _cpu = _timings[name]
        per_call = total / calls if calls else 0.0
        lines.append(
            f"  {name:<40} {int(calls):>8} calls  {total:>9.4f}s total"
            f"  {per_call * 1e6:>9.1f}us/call"
        )
    if not _timings:
        lines.append("  (none)")
    return "\n".join(lines)
