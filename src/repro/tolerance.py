"""Tolerance-aware comparison of nested report structures.

The one float-comparison implementation the repo's regression gates
share: scenario-matrix golden checks (:mod:`repro.scenarios.golden`)
and the results store's cross-commit perf regression
(:meth:`repro.results.ResultsStore.regression`) both diff through here.

Within one run, sequential-vs-sharded byte-identity is asserted exactly.
*Committed* reference values cross machine and library versions, where
float arithmetic may differ in the low bits — so the differ compares
structure, strings, bools and integer counts exactly, and floats within
``rtol``/``atol``.  Every mismatch is reported with its dotted path into
the structure and both values, so a regression reads like a diff, not a
boolean.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Relative float tolerance for committed references (QoE percentiles
#: move in the 4th digit across numpy builds, never by 5%).
DEFAULT_RTOL = 0.05
DEFAULT_ATOL = 1e-9


@dataclass(slots=True)
class ToleranceDiff:
    """The comparison result for one keyed structure."""

    key: str
    mismatches: list[str] = field(default_factory=list)
    #: No committed reference existed for the key.
    missing: bool = False

    @property
    def ok(self) -> bool:
        return not self.mismatches and not self.missing

    def render(self) -> str:
        if self.missing:
            return f"{self.key}: no golden committed"
        if not self.mismatches:
            return f"{self.key}: ok"
        lines = [f"{self.key}: {len(self.mismatches)} mismatch(es)"]
        lines.extend(f"  {mismatch}" for mismatch in self.mismatches)
        return "\n".join(lines)


def diff_values(
    path: str,
    golden: object,
    actual: object,
    mismatches: list[str],
    rtol: float,
    atol: float,
) -> None:
    """Recursively diff ``actual`` against ``golden``, appending mismatches."""
    # bool is an int subclass — compare it exactly, as itself.
    if isinstance(golden, bool) or isinstance(actual, bool):
        if golden is not actual:
            mismatches.append(f"{path}: golden {golden!r}, got {actual!r}")
        return
    if isinstance(golden, float) and isinstance(actual, (int, float)):
        if abs(actual - golden) > atol + rtol * abs(golden):
            mismatches.append(
                f"{path}: golden {golden!r}, got {actual!r} "
                f"(tolerance rtol={rtol}, atol={atol})"
            )
        return
    if type(golden) is not type(actual):
        mismatches.append(
            f"{path}: type changed from {type(golden).__name__} "
            f"to {type(actual).__name__}"
        )
        return
    if isinstance(golden, dict):
        for key in sorted(golden.keys() | actual.keys()):
            child = f"{path}.{key}" if path else str(key)
            if key not in actual:
                mismatches.append(f"{child}: missing from report")
            elif key not in golden:
                mismatches.append(f"{child}: unexpected key (not in golden)")
            else:
                diff_values(child, golden[key], actual[key], mismatches, rtol, atol)
        return
    if isinstance(golden, list):
        if len(golden) != len(actual):
            mismatches.append(
                f"{path}: length changed from {len(golden)} to {len(actual)}"
            )
            return
        for index, (g, a) in enumerate(zip(golden, actual)):
            diff_values(f"{path}[{index}]", g, a, mismatches, rtol, atol)
        return
    if golden != actual:
        mismatches.append(f"{path}: golden {golden!r}, got {actual!r}")


def diff_reports(
    golden: dict,
    actual: dict,
    *,
    key: str = "",
    rtol: float = DEFAULT_RTOL,
    atol: float = DEFAULT_ATOL,
) -> ToleranceDiff:
    """Compare a report dict against its reference, tolerance-aware.

    Ints, strings and bools must match exactly (counts are seed-stable);
    floats within ``atol + rtol * |golden|``.  Structural drift (keys,
    list lengths, types) always mismatches.
    """
    diff = ToleranceDiff(key=key)
    diff_values("", golden, actual, diff.mismatches, rtol, atol)
    return diff
