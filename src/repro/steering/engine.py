"""The per-call steering decision engine.

Sits between routing and the workload: the campaign engine (or
:meth:`repro.vns.service.VideoNetworkService.call_paths`) resolves the
candidate transports for a call, then asks the
:class:`SteeringEngine` which one carries it.  The engine translates
prefixes to report-region codes, reads the corridor's
:class:`~repro.steering.health.PathHealthTable` state at the call's
time, and delegates the verdict to its pluggable policy.

Decisions are pure in ``(call identity, corridor health, candidates)``
— the engine itself holds no evolving state beyond an optional memo for
policies whose verdicts are constant per (corridor, diurnal bucket).
That purity is what lets a sharded campaign reproduce the sequential
decision stream exactly, and it makes the engine picklable (plain data:
table, policy, a prefix->region dict).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro import perf
from repro.steering.health import PathHealthTable, Transport
from repro.steering.policies import (
    PathCandidates,
    SteeringContext,
    SteeringDecision,
    SteeringPolicy,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.addressing import Prefix
    from repro.vns.service import VideoNetworkService


@dataclass(slots=True)
class SteeringEngine:
    """Binds a health table, a policy and a prefix->region map.

    Parameters
    ----------
    health:
        The probe-fed :class:`PathHealthTable` decisions read.
    policy:
        Any :class:`~repro.steering.policies.SteeringPolicy`.
    region_of:
        Report-region code (``"EU"``, ``"AP"``, ...) per prefix — a plain
        dict so the engine pickles to shard workers.  Prefixes absent
        from it decide as region ``"??"`` (policies then see no health
        and fall back to VNS).
    seed:
        Drives the deterministic per-call splits some policies use.
    """

    health: PathHealthTable
    policy: SteeringPolicy
    region_of: dict["Prefix", str] = field(default_factory=dict)
    seed: int = 0
    _memo: dict[tuple[str, str, int], SteeringDecision] = field(default_factory=dict)

    @classmethod
    def for_service(
        cls,
        service: "VideoNetworkService",
        health: PathHealthTable,
        policy: SteeringPolicy,
        *,
        seed: int = 0,
    ) -> "SteeringEngine":
        """An engine whose region map covers every originated prefix."""
        from repro.geo.cities import region_of_point
        from repro.workload.report import REGION_CODE

        region_of = {
            prefix: REGION_CODE[region_of_point(location)]
            for prefix, location in service.topology.prefix_location.items()
        }
        return cls(health=health, policy=policy, region_of=region_of, seed=seed)

    # ------------------------------------------------------------------ #

    def regions(self, src_prefix: "Prefix", dst_prefix: "Prefix") -> tuple[str, str]:
        return (
            self.region_of.get(src_prefix, "??"),
            self.region_of.get(dst_prefix, "??"),
        )

    def decide(
        self,
        src_prefix: "Prefix",
        dst_prefix: "Prefix",
        t_hours: float,
        *,
        candidates: PathCandidates | None = None,
        call_id: int = 0,
        payload_bytes: int = 0,
    ) -> SteeringDecision:
        """The transport verdict for one call at campaign hour ``t_hours``.

        ``candidates`` carries the call's resolved path RTTs when the
        caller has them (the campaign engine always does); without them
        policies fall back to corridor telemetry alone.
        """
        src_region, dst_region = self.regions(src_prefix, dst_prefix)
        return self.decide_for_regions(
            src_region,
            dst_region,
            t_hours,
            candidates=candidates,
            call_id=call_id,
            payload_bytes=payload_bytes,
        )

    def decide_for_regions(
        self,
        src_region: str,
        dst_region: str,
        t_hours: float,
        *,
        candidates: PathCandidates | None = None,
        call_id: int = 0,
        payload_bytes: int = 0,
    ) -> SteeringDecision:
        """As :meth:`decide`, for callers that already know the regions
        (the campaign engine reads them off the sampled users)."""
        perf.incr("steering.decide")
        memo_key = None
        if not self.policy.call_sensitive:
            memo_key = (src_region, dst_region, self.health.bucket_of(t_hours % 24.0))
            cached = self._memo.get(memo_key)
            if cached is not None:
                perf.incr("steering.memo_hit")
                return cached
        ctx = SteeringContext(
            src_region=src_region,
            dst_region=dst_region,
            t_hours=t_hours,
            seed=self.seed,
            call_id=call_id,
            payload_bytes=payload_bytes,
            candidates=candidates,
            vns_health=self.health.lookup(
                src_region, dst_region, Transport.VNS, t_hours=t_hours
            ),
            internet_health=self.health.lookup(
                src_region, dst_region, Transport.INTERNET, t_hours=t_hours
            ),
        )
        decision = self.policy.decide(ctx)
        perf.incr(f"steering.choice.{decision.choice.value}")
        if memo_key is not None:
            self._memo[memo_key] = decision
        return decision
