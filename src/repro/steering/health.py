"""Per-corridor path-health telemetry: the steering engine's memory.

"Saving Private WAN" steers traffic off the backbone only where direct
Internet quality is *measured* to be comparable; the measurement side of
that loop lives here.  Probe observations (RTT, loss) are folded into a
:class:`PathHealthTable` keyed by directed region pair and transport
(via the VNS backbone vs forced out at the PoP onto the Internet), with:

* **EWMA smoothing** — one exponentially weighted moving average per
  (corridor, transport, diurnal bucket), so a burst of bad rounds decays
  instead of poisoning the corridor forever;
* **diurnal bucketing** — the paper's Fig. 12 shows last-mile loss
  cycling with local busy hours, so health is tracked per hour-of-day
  bucket with an all-day aggregate as fallback;
* **staleness expiry** — entries stop being served (and can be dropped)
  once no probe has refreshed them within ``max_age_hours``;
* **confidence counts** — an entry is only served after ``min_samples``
  observations, so one lucky probe round cannot trigger an offload.

The table is plain data (dicts of dataclasses): it pickles to shard
workers and serialises into reports.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field


class Transport(enum.Enum):
    """How probes (and calls) traverse a corridor."""

    VNS = "vns"  #: entry PoP -> backbone circuits -> egress -> Internet tail
    INTERNET = "internet"  #: forced out of VNS immediately at the PoP

    def __str__(self) -> str:
        return self.value


#: All-day fallback bucket index (real buckets are >= 0).
AGGREGATE_BUCKET = -1


@dataclass(slots=True)
class HealthEntry:
    """EWMA health state for one (corridor, transport, bucket).

    ``rtt_ms`` / ``loss_fraction`` are the smoothed estimates; ``samples``
    is the confidence count and ``updated_hours`` the campaign-absolute
    hour of the latest observation (staleness is judged against it).
    """

    rtt_ms: float = 0.0
    loss_fraction: float = 0.0
    samples: int = 0
    updated_hours: float = -math.inf

    def observe(self, rtt_ms: float, loss_fraction: float, t_hours: float, alpha: float) -> None:
        """Fold one probe round in (the first sample seeds the EWMA)."""
        if self.samples == 0:
            self.rtt_ms = rtt_ms
            self.loss_fraction = loss_fraction
        else:
            self.rtt_ms += alpha * (rtt_ms - self.rtt_ms)
            self.loss_fraction += alpha * (loss_fraction - self.loss_fraction)
        self.samples += 1
        self.updated_hours = max(self.updated_hours, t_hours)

    def is_stale(self, now_hours: float, max_age_hours: float) -> bool:
        return now_hours - self.updated_hours > max_age_hours

    @property
    def loss_percent(self) -> float:
        return 100.0 * self.loss_fraction


@dataclass(slots=True)
class PathHealthTable:
    """Probe-fed corridor health, queried by the steering policies.

    Parameters
    ----------
    alpha:
        EWMA weight of the newest observation (0 < alpha <= 1).
    bucket_hours:
        Width of the diurnal buckets; 24 must be divisible by it.
    max_age_hours:
        Entries older than this are not served by :meth:`lookup` and are
        dropped by :meth:`expire`.
    min_samples:
        Confidence floor: entries with fewer samples are not served.
    """

    alpha: float = 0.3
    bucket_hours: float = 4.0
    max_age_hours: float = 48.0
    min_samples: int = 3
    _entries: dict[tuple[str, str, str, int], HealthEntry] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not 0.0 < self.alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {self.alpha!r}")
        if self.bucket_hours <= 0 or (24.0 / self.bucket_hours) % 1.0 != 0.0:
            raise ValueError(
                f"bucket_hours must divide 24, got {self.bucket_hours!r}"
            )
        if self.max_age_hours <= 0:
            raise ValueError(f"max_age_hours must be positive, got {self.max_age_hours!r}")
        if self.min_samples < 1:
            raise ValueError(f"min_samples must be >= 1, got {self.min_samples!r}")

    # ------------------------------------------------------------------ #

    def bucket_of(self, hour_cet: float) -> int:
        """The diurnal bucket index of an hour-of-day stamp."""
        return int((hour_cet % 24.0) // self.bucket_hours)

    @property
    def n_buckets(self) -> int:
        return int(24.0 / self.bucket_hours)

    def observe(
        self,
        src_region: str,
        dst_region: str,
        transport: Transport,
        *,
        rtt_ms: float,
        loss_fraction: float,
        t_hours: float,
    ) -> None:
        """Fold one probe round into its diurnal bucket and the aggregate.

        ``t_hours`` is the campaign-absolute hour (day * 24 + CET hour);
        its hour-of-day picks the bucket.
        """
        buckets = (self.bucket_of(t_hours % 24.0), AGGREGATE_BUCKET)
        for bucket in buckets:
            key = (src_region, dst_region, transport.value, bucket)
            entry = self._entries.get(key)
            if entry is None:
                entry = self._entries[key] = HealthEntry()
            entry.observe(rtt_ms, loss_fraction, t_hours, self.alpha)

    def lookup(
        self,
        src_region: str,
        dst_region: str,
        transport: Transport,
        *,
        t_hours: float,
    ) -> HealthEntry | None:
        """The freshest confident entry for a corridor at time ``t_hours``.

        The matching diurnal bucket is preferred; a corridor whose bucket
        is unknown, stale, or below the confidence floor falls back to the
        all-day aggregate; ``None`` when neither qualifies.
        """
        for bucket in (self.bucket_of(t_hours % 24.0), AGGREGATE_BUCKET):
            entry = self._entries.get((src_region, dst_region, transport.value, bucket))
            if (
                entry is not None
                and entry.samples >= self.min_samples
                and not entry.is_stale(t_hours, self.max_age_hours)
            ):
                return entry
        return None

    def expire(self, now_hours: float) -> int:
        """Drop every entry stale at ``now_hours``; returns how many."""
        stale = [
            key
            for key, entry in self._entries.items()
            if entry.is_stale(now_hours, self.max_age_hours)
        ]
        for key in stale:
            del self._entries[key]
        return len(stale)

    # ------------------------------------------------------------------ #

    def corridors(self) -> list[tuple[str, str]]:
        """The directed region pairs with any recorded health."""
        return sorted({(src, dst) for src, dst, _, _ in self._entries})

    def __len__(self) -> int:
        return len(self._entries)

    def to_dict(self) -> dict:
        """A JSON-ready view (sorted keys, rounded floats, aggregates only)."""
        rows: dict[str, dict] = {}
        for (src, dst, transport, bucket), entry in sorted(self._entries.items()):
            if bucket != AGGREGATE_BUCKET:
                continue
            rows.setdefault(f"{src}->{dst}", {})[transport] = {
                "rtt_ms": round(entry.rtt_ms, 3),
                "loss_pct": round(entry.loss_percent, 4),
                "samples": entry.samples,
            }
        return rows
