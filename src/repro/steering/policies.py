"""Pluggable path-steering policies.

Three production stances from the literature, each deterministic under a
seed and free of cross-call state, so a sharded campaign reproduces the
sequential decisions exactly:

* :class:`AlwaysVnsPolicy` — the paper's cold-potato baseline: every
  call rides the backbone.
* :class:`ThresholdOffloadPolicy` — "Saving Private WAN": offload a call
  to the direct Internet path when its probed RTT/loss are within
  configured deltas of the VNS path, falling back to a one-hop PoP
  detour ("Examining Lower Latency Routing with Overlay Networks") when
  the direct path fails the RTT gate but the detour passes it.
* :class:`CostBudgetedPolicy` — keep backbone usage under an explicit
  byte budget: a greedy plan (:meth:`CostBudgetedPolicy.prepare`)
  offloads the corridors with the smallest measured QoE penalty first
  until the projected backbone bytes fit, splitting the marginal
  corridor by a per-call blake2b draw.

A decision is a pure function of the call's identity, the corridor's
:class:`~repro.steering.health.PathHealthTable` state and the candidate
paths' RTTs — never of the order calls were processed in.  Randomised
splits hash ``(seed, src, dst, call_id)`` through blake2b (the same
process-stable keying as :func:`repro.workload.engine.group_rng`).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from hashlib import blake2b
from typing import Protocol, runtime_checkable

from repro.dataplane.transmit import slot_count
from repro.steering.health import HealthEntry

#: Media payload per RTP packet, for backbone-byte accounting (a typical
#: conferencing MTU budget: payload + RTP/UDP/IP headers).
MEDIA_PACKET_BYTES = 1200


class PathChoice(enum.Enum):
    """Where a steered call travels."""

    VNS = "vns"  #: cold-potato through the backbone (the paper's default)
    INTERNET = "internet"  #: the native AS path between the two users
    POP_DETOUR = "pop_detour"  #: via one PoP's peering fabric, no backbone

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True, slots=True)
class SteeringDecision:
    """One call's routing verdict and why it was reached."""

    choice: PathChoice
    reason: str
    detour_pop: str | None = None

    @property
    def offloaded(self) -> bool:
        """True when the call leaves the VNS backbone."""
        return self.choice is not PathChoice.VNS


#: Decisions the engine can mint without consulting a policy.
ALWAYS_VNS = SteeringDecision(choice=PathChoice.VNS, reason="always_vns")


@dataclass(frozen=True, slots=True)
class PathCandidates:
    """The resolved transport options for one call (RTTs are exact:
    path delay is deterministic in this model, loss is not)."""

    vns_rtt_ms: float
    internet_rtt_ms: float
    detour_rtt_ms: float | None = None
    detour_pop: str | None = None


@dataclass(frozen=True, slots=True)
class SteeringContext:
    """Everything a policy may consult for one decision."""

    src_region: str
    dst_region: str
    t_hours: float
    seed: int
    call_id: int = 0
    payload_bytes: int = 0
    candidates: PathCandidates | None = None
    vns_health: HealthEntry | None = None
    internet_health: HealthEntry | None = None


@runtime_checkable
class SteeringPolicy(Protocol):
    """A steering policy: a named, pure decision function."""

    name: str

    def decide(self, ctx: SteeringContext) -> SteeringDecision:
        """The verdict for one call (pure: no cross-call state)."""
        ...

    @property
    def call_sensitive(self) -> bool:
        """Whether decisions vary *within* a (corridor, bucket) cell.

        Policies that decide purely per corridor and diurnal bucket can be
        memoised by the engine; per-call splits cannot.
        """
        ...


def stream_payload_bytes(
    duration_s: float, packets_per_second: float, slot_s: float
) -> int:
    """Payload bytes of one media stream, matching the simulator's packet
    accounting (whole slots plus a partial final slot)."""
    n_slots = slot_count(duration_s, slot_s)
    packets_per_slot = int(round(packets_per_second * slot_s))
    final_slot_s = duration_s - (n_slots - 1) * slot_s
    final_packets = int(round(packets_per_second * final_slot_s))
    return (packets_per_slot * (n_slots - 1) + final_packets) * MEDIA_PACKET_BYTES


def call_unit_draw(seed: int, src_region: str, dst_region: str, call_id: int) -> float:
    """A uniform [0, 1) draw keyed by (seed, corridor, call) via blake2b.

    Process-stable and order-free: any shard evaluating the same call
    reaches the same split, which is what keeps fractional-offload
    campaigns byte-identical sequential vs sharded.
    """
    text = f"{seed}|steer|{src_region}|{dst_region}|{call_id}"
    digest = blake2b(text.encode("ascii"), digest_size=8).digest()
    return int.from_bytes(digest, "little") / 2.0**64


def _better_offload(candidates: PathCandidates | None) -> tuple[PathChoice, str | None]:
    """The cheaper of the two off-backbone transports (by exact RTT)."""
    if (
        candidates is not None
        and candidates.detour_rtt_ms is not None
        and candidates.detour_rtt_ms < candidates.internet_rtt_ms
    ):
        return PathChoice.POP_DETOUR, candidates.detour_pop
    return PathChoice.INTERNET, None


@dataclass(frozen=True, slots=True)
class AlwaysVnsPolicy:
    """The paper's baseline: every call cold-potato through VNS."""

    name: str = "always_vns"

    @property
    def call_sensitive(self) -> bool:
        return False

    def decide(self, ctx: SteeringContext) -> SteeringDecision:
        return ALWAYS_VNS


@dataclass(frozen=True, slots=True)
class ThresholdOffloadPolicy:
    """Offload where the Internet is measured to be comparable.

    A call leaves the backbone only when **all** gates pass:

    * telemetry exists, is fresh and confident for both transports on the
      corridor (else: VNS, the safe default);
    * the probed loss penalty ``internet - vns`` is within
      ``loss_delta_pct`` percentage points;
    * the probed corridor RTT penalty is within ``rtt_delta_ms``;
    * the *call's own* resolved Internet path RTT is within
      ``rtt_delta_ms`` of its VNS path RTT (corridor averages hide
      per-prefix spread; this gate bounds every offloaded call's RTT
      regression, hence the mean).

    When the direct path fails its RTT gates but a one-hop PoP detour
    passes them, the call takes the detour — still zero backbone bytes.
    """

    rtt_delta_ms: float = 15.0
    loss_delta_pct: float = 0.25
    name: str = "threshold_offload"

    def __post_init__(self) -> None:
        if self.rtt_delta_ms < 0 or self.loss_delta_pct < 0:
            raise ValueError("thresholds must be non-negative")

    @property
    def call_sensitive(self) -> bool:
        # Corridor health is bucket-level, but the per-call RTT gate reads
        # the call's own candidates, which vary per prefix pair.
        return True

    def decide(self, ctx: SteeringContext) -> SteeringDecision:
        vns, inet = ctx.vns_health, ctx.internet_health
        if vns is None or inet is None:
            return SteeringDecision(choice=PathChoice.VNS, reason="no_telemetry")
        loss_delta_pct = inet.loss_percent - vns.loss_percent
        if loss_delta_pct > self.loss_delta_pct:
            return SteeringDecision(choice=PathChoice.VNS, reason="loss_gate")
        if inet.rtt_ms - vns.rtt_ms > self.rtt_delta_ms:
            return SteeringDecision(choice=PathChoice.VNS, reason="probed_rtt_gate")
        candidates = ctx.candidates
        if candidates is None:
            # Telemetry alone qualifies the corridor.
            return SteeringDecision(choice=PathChoice.INTERNET, reason="probed_ok")
        if candidates.internet_rtt_ms - candidates.vns_rtt_ms <= self.rtt_delta_ms:
            return SteeringDecision(choice=PathChoice.INTERNET, reason="comparable")
        if (
            candidates.detour_rtt_ms is not None
            and candidates.detour_rtt_ms - candidates.vns_rtt_ms <= self.rtt_delta_ms
        ):
            return SteeringDecision(
                choice=PathChoice.POP_DETOUR,
                reason="detour_comparable",
                detour_pop=candidates.detour_pop,
            )
        return SteeringDecision(choice=PathChoice.VNS, reason="path_rtt_gate")


@dataclass(slots=True)
class CostBudgetedPolicy:
    """Fit the backbone under a byte budget, offloading cheapest-first.

    :meth:`prepare` runs the greedy plan once, up front, against the
    projected per-corridor traffic matrix and the health table: corridors
    are sorted by measured offload penalty (probed RTT regression plus
    ``loss_weight_ms_per_pct`` times the probed loss regression — an
    unmeasured corridor is costliest), then offloaded in order until the
    bytes kept on the backbone fit ``budget_bytes``.  The marginal
    corridor is split fractionally; each of its calls resolves the split
    with :func:`call_unit_draw`, so the plan is exact in expectation and
    deterministic per call.

    Decisions before :meth:`prepare` raise — the policy is meaningless
    without a plan.
    """

    budget_bytes: int = 0
    loss_weight_ms_per_pct: float = 40.0
    name: str = "cost_budgeted"
    #: corridor -> offload fraction in [0, 1]; ``None`` until prepared.
    plan: dict[tuple[str, str], float] | None = field(default=None)

    def __post_init__(self) -> None:
        if self.budget_bytes < 0:
            raise ValueError(f"budget_bytes must be >= 0, got {self.budget_bytes!r}")

    @property
    def call_sensitive(self) -> bool:
        return True

    def offload_penalty(
        self, vns: HealthEntry | None, inet: HealthEntry | None
    ) -> float:
        """The measured cost (ms-equivalent) of pushing a corridor off
        the backbone; infinite when telemetry cannot price it."""
        if vns is None or inet is None:
            return math.inf
        rtt_penalty = max(0.0, inet.rtt_ms - vns.rtt_ms)
        loss_penalty = max(0.0, inet.loss_percent - vns.loss_percent)
        return rtt_penalty + self.loss_weight_ms_per_pct * loss_penalty

    def prepare(
        self,
        corridor_bytes: dict[tuple[str, str], int],
        health,
        *,
        t_hours: float = 0.0,
    ) -> dict[tuple[str, str], float]:
        """Compute (and install) the greedy offload plan.

        ``corridor_bytes`` is the projected backbone payload per directed
        region pair; ``health`` a
        :class:`~repro.steering.health.PathHealthTable` (its all-day
        aggregates price each corridor at ``t_hours``).
        """
        from repro.steering.health import Transport

        total = sum(corridor_bytes.values())
        excess = total - self.budget_bytes
        plan: dict[tuple[str, str], float] = {}
        if excess > 0:
            priced = sorted(
                corridor_bytes.items(),
                key=lambda item: (
                    self.offload_penalty(
                        health.lookup(item[0][0], item[0][1], Transport.VNS, t_hours=t_hours),
                        health.lookup(
                            item[0][0], item[0][1], Transport.INTERNET, t_hours=t_hours
                        ),
                    ),
                    item[0],
                ),
            )
            remaining = float(excess)
            for corridor, volume in priced:
                if remaining <= 0 or volume <= 0:
                    break
                fraction = min(1.0, remaining / volume)
                plan[corridor] = fraction
                remaining -= volume * fraction
        self.plan = plan
        return plan

    def decide(self, ctx: SteeringContext) -> SteeringDecision:
        if self.plan is None:
            raise RuntimeError(
                "CostBudgetedPolicy.prepare(...) must run before decide()"
            )
        fraction = self.plan.get((ctx.src_region, ctx.dst_region), 0.0)
        if fraction <= 0.0:
            return SteeringDecision(choice=PathChoice.VNS, reason="within_budget")
        if fraction < 1.0:
            draw = call_unit_draw(ctx.seed, ctx.src_region, ctx.dst_region, ctx.call_id)
            if draw >= fraction:
                return SteeringDecision(choice=PathChoice.VNS, reason="budget_split")
        choice, detour_pop = _better_offload(ctx.candidates)
        return SteeringDecision(
            choice=choice, reason="budget_offload", detour_pop=detour_pop
        )


def make_policy(name: str, **options: float) -> SteeringPolicy:
    """Build a policy by its registry name (the experiment's entry point)."""
    builders = {
        "always_vns": AlwaysVnsPolicy,
        "threshold_offload": ThresholdOffloadPolicy,
        "cost_budgeted": CostBudgetedPolicy,
    }
    builder = builders.get(name)
    if builder is None:
        raise KeyError(f"unknown steering policy {name!r} (known: {sorted(builders)})")
    return builder(**options)  # type: ignore[return-value]
