"""Probe telemetry: measurement rounds -> a :class:`PathHealthTable`.

The steering loop's sensor: on every round of a
:mod:`repro.measurement.scheduler` schedule, probe a diverse host sample
from the PoPs **both ways a call could travel** —

* forced out of VNS immediately at the PoP (the Sec. 5.2
  :class:`~repro.measurement.probes.LossProbeCampaign`, i.e. the direct
  Internet transport), and
* across the backbone circuits to the egress nearest the host and out
  (the VNS transport, probed with the same back-to-back round shape)

— then fold each round's minimum RTT and loss fraction into the health
table under the (PoP region -> host region) corridor and the round's
diurnal bucket.  Everything is driven by one seed; the same seed
reproduces the same table.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.dataplane.path import DataPath
from repro.dataplane.transmit import simulate_probe_round
from repro.geo.cities import region_of_point
from repro.measurement.probes import LossProbeCampaign, TargetHost, select_hosts
from repro.measurement.scheduler import Round, rounds_every
from repro.steering.health import PathHealthTable, Transport
from repro.vns.pop import pop_by_code
from repro.vns.service import VideoNetworkService
from repro.workload.report import REGION_CODE


@dataclass(slots=True)
class TelemetryStats:
    """Accounting for one telemetry collection."""

    rounds: int = 0
    probes: int = 0
    unroutable: int = 0  #: (pop, host) pairs some transport cannot reach


class SteeringTelemetry:
    """Runs the dual-transport probe campaign and feeds a health table.

    Parameters
    ----------
    service:
        The VNS under measurement.
    seed:
        Drives host selection and every probe draw.
    packets_per_round:
        Back-to-back packets per probe round (Sec. 5.2 uses 100).
    """

    def __init__(
        self,
        service: VideoNetworkService,
        *,
        seed: int = 0,
        packets_per_round: int = 100,
    ) -> None:
        self.service = service
        self.seed = seed
        self.packets_per_round = packets_per_round
        self.stats = TelemetryStats()
        self._vns_paths: dict[tuple[str, object], DataPath | None] = {}

    # ------------------------------------------------------------------ #

    def _vns_path(self, pop_code: str, host: TargetHost) -> DataPath | None:
        key = (pop_code, host.prefix)
        if key not in self._vns_paths:
            self._vns_paths[key] = self.service.path_via_vns(
                pop_code, host.prefix, host.location
            )
        return self._vns_paths[key]

    def collect(
        self,
        table: PathHealthTable | None = None,
        *,
        days: int = 1,
        minutes_between_rounds: float = 120.0,
        hosts_per_type_per_region: int = 2,
        pop_codes: tuple[str, ...] | None = None,
    ) -> PathHealthTable:
        """Probe the schedule and return the (possibly pre-seeded) table."""
        if table is None:
            table = PathHealthTable()
        rng = np.random.default_rng(self.seed)
        hosts = select_hosts(
            self.service, rng, per_type_per_region=hosts_per_type_per_region
        )
        if pop_codes is None:
            pop_codes = tuple(pop.code for pop in self.service.pops())
        pop_region = {
            code: REGION_CODE[region_of_point(pop_by_code(code).location)]
            for code in pop_codes
        }
        internet = LossProbeCampaign(
            self.service, rng, packets_per_round=self.packets_per_round
        )
        rounds = rounds_every(minutes_between_rounds, days)
        for round_ in rounds:
            self.stats.rounds += 1
            for pop_code in pop_codes:
                for host in hosts:
                    self._probe_pair(
                        table, internet, pop_region[pop_code], pop_code, host, round_, rng
                    )
        return table

    def _probe_pair(
        self,
        table: PathHealthTable,
        internet: LossProbeCampaign,
        src_region: str,
        pop_code: str,
        host: TargetHost,
        round_: Round,
        rng: np.random.Generator,
    ) -> None:
        dst_region = REGION_CODE[host.region]
        t_hours = round_.absolute_hours

        observation = internet.probe(pop_code, host, round_)
        if observation is None:
            self.stats.unroutable += 1
        else:
            self.stats.probes += 1
            rtt = observation.min_rtt_ms
            if rtt is None:
                # Every packet lost: fall back to the path's base RTT so
                # the (terrible) loss reading still lands in the table.
                path = internet._path(pop_code, host)
                rtt = path.rtt_ms() if path is not None else 0.0
            table.observe(
                src_region,
                dst_region,
                Transport.INTERNET,
                rtt_ms=rtt,
                loss_fraction=observation.loss_fraction,
                t_hours=t_hours,
            )

        vns_path = self._vns_path(pop_code, host)
        if vns_path is None:
            self.stats.unroutable += 1
            return
        self.stats.probes += 1
        result = simulate_probe_round(
            vns_path,
            packets=self.packets_per_round,
            hour_cet=round_.hour_cet,
            rng=rng,
        )
        table.observe(
            src_region,
            dst_region,
            Transport.VNS,
            rtt_ms=result.min_rtt_ms if result.min_rtt_ms is not None else vns_path.rtt_ms(),
            loss_fraction=result.loss_fraction,
            t_hours=t_hours,
        )
