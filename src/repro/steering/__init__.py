"""Measurement-fed hybrid VNS/Internet path steering.

The paper routes every call cold-potato through the backbone; production
systems ("Saving Private WAN", Microsoft 2024) offload calls to direct
Internet paths whenever measured QoE is comparable, saving backbone
capacity, and overlay work motivates a one-hop PoP detour as the middle
ground.  This subsystem is that decision layer:

* :mod:`~repro.steering.health` — the telemetry store: per-corridor
  EWMA RTT/loss with diurnal buckets, staleness expiry and confidence
  counts;
* :mod:`~repro.steering.telemetry` — dual-transport probe campaigns
  (:class:`~repro.measurement.probes.LossProbeCampaign` rounds on
  :mod:`~repro.measurement.scheduler` schedules) feeding the table;
* :mod:`~repro.steering.policies` — pluggable, seed-deterministic
  policies: ``always_vns`` (paper baseline), ``threshold_offload``
  (Internet when probed RTT/loss are within deltas of VNS) and
  ``cost_budgeted`` (greedy offload under a backbone-byte budget);
* :mod:`~repro.steering.engine` — the per-call
  :meth:`~repro.steering.engine.SteeringEngine.decide` front the
  campaign engine and :meth:`VideoNetworkService.call_paths` consult.
"""

from repro.steering.engine import SteeringEngine
from repro.steering.health import (
    AGGREGATE_BUCKET,
    HealthEntry,
    PathHealthTable,
    Transport,
)
from repro.steering.policies import (
    ALWAYS_VNS,
    MEDIA_PACKET_BYTES,
    AlwaysVnsPolicy,
    CostBudgetedPolicy,
    PathCandidates,
    PathChoice,
    SteeringContext,
    SteeringDecision,
    SteeringPolicy,
    ThresholdOffloadPolicy,
    call_unit_draw,
    make_policy,
    stream_payload_bytes,
)
from repro.steering.telemetry import SteeringTelemetry, TelemetryStats

__all__ = [
    "AGGREGATE_BUCKET",
    "ALWAYS_VNS",
    "MEDIA_PACKET_BYTES",
    "AlwaysVnsPolicy",
    "CostBudgetedPolicy",
    "HealthEntry",
    "PathCandidates",
    "PathChoice",
    "PathHealthTable",
    "SteeringContext",
    "SteeringDecision",
    "SteeringEngine",
    "SteeringPolicy",
    "SteeringTelemetry",
    "TelemetryStats",
    "ThresholdOffloadPolicy",
    "Transport",
    "call_unit_draw",
    "make_policy",
    "stream_payload_bytes",
]
