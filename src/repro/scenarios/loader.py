"""Compose a :class:`ScenarioSpec` into a ready-to-run campaign.

The loader is the bridge between the declarative layer and the existing
machinery: it builds (or adopts) the world, replays the spec's fault
timeline through the real BGP machinery, generates the call list from
the arrival profile, instantiates the steering policy by registry name,
and distils the scenario's data-plane conditions into a
:class:`ScenarioPathModel` — the pure, picklable
:class:`~repro.workload.engine.PathModel` the campaign engine applies at
simulate time.

**World hygiene.**  Control-plane faults mutate the shared service, so
:class:`LoadedScenario` records the exact inverse sequence and
``restore()`` replays it (PoP restarts reuse the injector's snapshots),
leaving the world byte-for-byte as found.  Loading never leaks a
half-faulted world: if anything after fault application fails, the
faults are rolled back before the exception propagates.

**Cache purity.**  All scenario impairments (GEO-satellite last mile,
active transit degradations, PoP congestion) live in the path model and
are applied in the engine's simulate phase only — the shared path caches
keep depending exclusively on the service's converged state, and
sequential-vs-sharded byte-identity holds because the model is a pure
function of the path value.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from hashlib import blake2b
from typing import TYPE_CHECKING

from repro.dataplane.link import SegmentKind, degrade_segment, satellite_segment
from repro.dataplane.path import DataPath
from repro.experiments.common import World, build_world
from repro.faults.events import (
    FaultEvent,
    LinkDown,
    LinkUp,
    PopDown,
    PopUp,
    SessionDown,
    SessionUp,
    TransitDegrade,
    TransitRestore,
)
from repro.faults.injector import FaultInjector
from repro.scenarios.spec import CAPACITY_WILDCARD, ScenarioSpec, WorldSpec
from repro.workload.arrivals import CallArrivalProcess, CallSpec, flash_crowd_calls
from repro.workload.engine import CampaignConfig, CampaignEngine, CampaignRun
from repro.workload.population import UserPopulation
from repro.workload.sharded import (
    CampaignWorkerPool,
    ShardedCampaignRunner,
    ShardPlan,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.steering.engine import SteeringEngine

#: PoP congestion per unit of overload (offered/capacity - 1), applied
#: to the first segment of VNS-entering transports.  Queueing delay and
#: shaper drops grow with overload, clamped so extreme specs stay in
#: the simulator's valid range.
OVERLOAD_DELAY_MS_PER_UNIT = 40.0
OVERLOAD_LOSS_PER_UNIT = 0.02
OVERLOAD_UNIT_CLAMP = 4.0


@dataclass(frozen=True, slots=True)
class ScenarioPathModel:
    """A scenario's data-plane conditions as a pure path transform.

    Implements the :class:`~repro.workload.engine.PathModel` protocol.
    Frozen and built only from value types, so it pickles to shard
    workers and transforms identically everywhere.
    """

    last_mile: str = "terrestrial"
    satellite_delay_ms: float = 0.0
    satellite_loss: float = 0.0
    #: Transit degradations still active at the end of the timeline.
    degradations: tuple[TransitDegrade, ...] = ()
    #: ``(entry_pop, overload_units)`` for PoPs over capacity.
    pop_overload: tuple[tuple[str, float], ...] = ()

    @property
    def is_noop(self) -> bool:
        return (
            self.last_mile != "geo_satellite"
            and not self.degradations
            and not self.pop_overload
        )

    def transform(self, path: DataPath, transport: str, *, entry_pop: str) -> DataPath:
        """The modelled path for ``transport`` (``path`` if untouched).

        * GEO-satellite last mile: the first ACCESS segment — the
          caller's access leg on every transport — is re-homed onto the
          satellite service.
        * Transit degradations: TRANSIT segments whose endpoint-region
          pair matches an active degradation corridor take its extra
          loss/delay (same matching as ``FaultInjector.impaired_path``).
        * PoP congestion: transports entering an overloaded PoP
          (``"vns"`` and ``"detour"``; ``"internet"`` bypasses VNS) get
          queueing delay and shaper loss on their first segment.
        """
        segments = list(path.segments)
        changed = False
        if self.last_mile == "geo_satellite":
            for index, segment in enumerate(segments):
                if segment.kind is SegmentKind.ACCESS:
                    segments[index] = satellite_segment(
                        segment,
                        one_way_delay_ms=self.satellite_delay_ms,
                        shaping_loss=self.satellite_loss,
                    )
                    changed = True
                    break
        if self.degradations:
            for index, segment in enumerate(segments):
                if segment.kind is not SegmentKind.TRANSIT:
                    continue
                corridor = {segment.start_region.value, segment.end_region.value}
                extra_loss = 0.0
                extra_delay = 0.0
                for degradation in self.degradations:
                    if corridor == set(degradation.regions):
                        extra_loss += degradation.extra_loss
                        extra_delay += degradation.extra_delay_ms
                if extra_loss or extra_delay:
                    segments[index] = degrade_segment(
                        segment,
                        extra_loss=min(segment.extra_loss + extra_loss, 0.95),
                        extra_delay_ms=getattr(segment, "extra_delay_ms", 0.0)
                        + extra_delay,
                    )
                    changed = True
        if transport in ("vns", "detour") and self.pop_overload:
            overload = dict(self.pop_overload).get(entry_pop)
            if overload:
                units = min(overload, OVERLOAD_UNIT_CLAMP)
                segment = segments[0]
                segments[0] = degrade_segment(
                    segment,
                    extra_loss=min(
                        segment.extra_loss + units * OVERLOAD_LOSS_PER_UNIT, 0.95
                    ),
                    extra_delay_ms=getattr(segment, "extra_delay_ms", 0.0)
                    + units * OVERLOAD_DELAY_MS_PER_UNIT,
                )
                changed = True
        if not changed:
            return path
        return DataPath(segments=segments, description=path.description)

    def fingerprint(self) -> str:
        """Stable digest of every field (for campaign fingerprints)."""
        digest = blake2b(digest_size=8)
        digest.update(
            f"{self.last_mile}|{self.satellite_delay_ms}|{self.satellite_loss}".encode()
        )
        for d in self.degradations:
            digest.update(
                f"|{d.regions}|{d.extra_loss}|{d.extra_delay_ms}".encode()
            )
        for pop, units in self.pop_overload:
            digest.update(f"|{pop}:{units}".encode())
        return digest.hexdigest()


# --------------------------------------------------------------------- #
# fault application / restoration
# --------------------------------------------------------------------- #


def _inverse(event: FaultEvent, time_s: float) -> FaultEvent:
    if isinstance(event, LinkDown):
        return LinkUp(time_s=time_s, a=event.a, b=event.b)
    if isinstance(event, PopDown):
        return PopUp(time_s=time_s, pop=event.pop)
    if isinstance(event, SessionDown):
        return SessionUp(time_s=time_s, asn=event.asn, router_id=event.router_id)
    raise TypeError(f"no inverse for {event!r}")  # pragma: no cover - guarded


def _matches(down: FaultEvent, up: FaultEvent) -> bool:
    if isinstance(down, LinkDown) and isinstance(up, LinkUp):
        return frozenset((down.a, down.b)) == frozenset((up.a, up.b))
    if isinstance(down, PopDown) and isinstance(up, PopUp):
        return down.pop == up.pop
    if isinstance(down, SessionDown) and isinstance(up, SessionUp):
        return (down.asn, down.router_id) == (up.asn, up.router_id)
    return False


@dataclass(slots=True)
class AppliedFaults:
    """What a scenario did to the world, and how to undo it.

    ``restore()`` replays exact inverses of the still-active control-
    plane events in reverse application order on the *same* injector
    (PoP restarts need its snapshots), leaving the service as found.
    """

    injector: FaultInjector
    #: Control-plane down events still active when loading finished.
    active: list[FaultEvent] = field(default_factory=list)
    #: Transit degradations still active (for the path model).
    degradations: tuple[TransitDegrade, ...] = ()
    _restored: bool = False

    def restore(self) -> None:
        if self._restored:
            return
        self._restored = True
        now = self.injector.clock.now_s
        for event in reversed(self.active):
            self.injector.apply(_inverse(event, now))


def apply_scenario_faults(service, spec: ScenarioSpec) -> AppliedFaults:
    """Replay ``spec``'s world restrictions and fault timeline.

    ``WorldSpec.pops_down`` become :class:`PopDown` events at t=0 (real
    anycast re-catchment), then the spec's timeline runs in time order
    through :class:`FaultInjector.apply`.  Control-plane events leave
    whatever state the timeline ends in (a ``PopDown`` without a
    matching ``PopUp`` stays down for the campaign); data-plane
    ``TransitDegrade`` events are *not* given to the BGP machinery —
    the still-active set is returned for the path model.
    """
    injector = FaultInjector(service)
    applied = AppliedFaults(injector=injector)
    events: list[FaultEvent] = [
        PopDown(time_s=0.0, pop=pop) for pop in spec.world.pops_down
    ]
    events.extend(sorted(spec.faults, key=lambda event: event.time_s))
    degradations: list[TransitDegrade] = []
    try:
        for event in events:
            if isinstance(event, TransitDegrade):
                injector.clock.advance_to(event.time_s)
                degradations.append(event)
                continue
            if isinstance(event, TransitRestore):
                injector.clock.advance_to(event.time_s)
                degradations = [
                    d for d in degradations if d.regions != event.regions
                ]
                continue
            injector.apply(event)
            if isinstance(event, (LinkDown, PopDown, SessionDown)):
                applied.active.append(event)
            elif isinstance(event, (LinkUp, PopUp, SessionUp)):
                for index in range(len(applied.active) - 1, -1, -1):
                    if _matches(applied.active[index], event):
                        del applied.active[index]
                        break
    except BaseException:
        applied.restore()
        raise
    applied.degradations = tuple(degradations)
    return applied


# --------------------------------------------------------------------- #
# workload / steering / congestion from the spec
# --------------------------------------------------------------------- #


def scenario_calls(spec: ScenarioSpec, world: World) -> list[CallSpec]:
    """The scenario's call list (campaign seed derivation: see spec)."""
    population = UserPopulation.sample(world.topology, spec.n_users, seed=spec.seed)
    arrivals = CallArrivalProcess(
        population,
        calls_per_user_day=spec.calls_per_user_day,
        multiparty_fraction=spec.multiparty_fraction,
        seed=spec.seed + 1,
    )
    calls = arrivals.generate(days=spec.days)
    if spec.arrival_profile == "flash_crowd":
        crowd = flash_crowd_calls(
            population,
            attendees=spec.flash_attendees,
            hosts=spec.flash_hosts,
            start_hour_cet=spec.flash_hour_cet,
            window_h=spec.flash_window_h,
            seed=spec.seed + 1,
            first_call_id=len(calls),
        )
        calls = sorted(
            calls + crowd,
            key=lambda call: (call.day, call.start_hour_cet, call.call_id),
        )
    return calls


def _pop_overload(
    spec: ScenarioSpec, world: World, calls: list[CallSpec]
) -> tuple[tuple[str, float], ...]:
    """Per-entry-PoP overload units from the full call list.

    Offered load per PoP is the classic erlang measure — total call
    seconds over the campaign span — attributed to each caller's anycast
    entry PoP *after* the spec's faults (re-catchment counts).  Computed
    up-front from the whole call list (like
    ``CostBudgetedPolicy.prepare``), so shard workers see the same
    congestion regardless of which calls they run.
    """
    capacities = dict(spec.world.pop_capacity)
    if not capacities:
        return ()
    wildcard = capacities.get(CAPACITY_WILDCARD)
    span_s = spec.days * 86400.0
    service = world.service
    topology = service.topology
    entry_of: dict[object, str | None] = {}
    demand: dict[str, float] = {}
    for call in calls:
        prefix = call.caller.prefix
        if prefix not in entry_of:
            asn = topology.origin_of[prefix]
            location = topology.prefix_location[prefix]
            pop = service.anycast.entry_pop(asn, location)
            entry_of[prefix] = None if pop is None else pop.code
        code = entry_of[prefix]
        if code is not None:
            demand[code] = demand.get(code, 0.0) + call.duration_s
    overload: list[tuple[str, float]] = []
    for code in sorted(demand):
        capacity = capacities.get(code, wildcard)
        if capacity is None:
            continue
        units = demand[code] / span_s / capacity - 1.0
        if units > 0:
            overload.append((code, round(units, 9)))
    return tuple(overload)


def scenario_path_model(
    spec: ScenarioSpec,
    world: World,
    calls: list[CallSpec],
    degradations: tuple[TransitDegrade, ...],
) -> ScenarioPathModel | None:
    """The spec's data-plane conditions, or ``None`` when unimpaired."""
    model = ScenarioPathModel(
        last_mile=spec.last_mile,
        satellite_delay_ms=spec.satellite_delay_ms,
        satellite_loss=spec.satellite_loss,
        degradations=degradations,
        pop_overload=_pop_overload(spec, world, calls),
    )
    return None if model.is_noop else model


def scenario_steering(
    spec: ScenarioSpec,
    world: World,
    calls: list[CallSpec],
    config: CampaignConfig,
) -> "SteeringEngine | None":
    """The steering engine for ``spec.steering_policy`` ("" = none).

    Telemetry is collected on the (possibly faulted) world with seed
    ``spec.seed + 3``; ``cost_budgeted`` is prepared against the call
    list's projected traffic matrix with half the backbone bytes as
    budget — the experiment module's defaults.
    """
    if not spec.steering_policy:
        return None
    from repro.experiments.steering import corridor_payload_bytes
    from repro.steering import SteeringEngine, SteeringTelemetry, make_policy

    health = SteeringTelemetry(world.service, seed=spec.seed + 3).collect(
        days=1, minutes_between_rounds=240.0, hosts_per_type_per_region=2
    )
    if spec.steering_policy == "cost_budgeted":
        matrix = corridor_payload_bytes(calls, config)
        policy = make_policy(
            spec.steering_policy, budget_bytes=int(sum(matrix.values()) * 0.5)
        )
        policy.prepare(matrix, health)
    else:
        policy = make_policy(spec.steering_policy)
    return SteeringEngine(health=health, policy=policy, seed=config.seed)


# --------------------------------------------------------------------- #
# the loader
# --------------------------------------------------------------------- #


@dataclass(slots=True)
class LoadedScenario:
    """A composed scenario: world faulted, calls drawn, model built.

    Call :meth:`run` (sequential, or sharded with ``workers``/``pool``)
    and :meth:`restore` when done — or use
    :func:`run_scenario` which does both.
    """

    spec: ScenarioSpec
    world: World
    calls: list[CallSpec]
    config: CampaignConfig
    steering: "SteeringEngine | None"
    path_model: ScenarioPathModel | None
    applied: AppliedFaults | None

    def run(
        self,
        *,
        workers: int = 1,
        pool: CampaignWorkerPool | None = None,
        shard_plan: ShardPlan | None = None,
    ) -> CampaignRun:
        """Run the campaign; byte-identical sequential vs sharded.

        With ``pool`` (or ``workers > 1``, which builds a private pool
        for the call and shuts it down after) the campaign runs sharded
        over spawned workers.  A pool must have been created *after*
        this scenario's faults were applied — worker snapshots freeze
        the world at pool start.
        """
        if pool is None and shard_plan is None and workers <= 1:
            return CampaignEngine(
                self.world.service,
                self.config,
                steering=self.steering,
                path_model=self.path_model,
            ).run(self.calls)
        if shard_plan is None:
            shard_plan = ShardPlan(
                n_workers=pool.workers if pool is not None else workers
            )
        own_pool = None
        if pool is None and not shard_plan.force_inprocess:
            own_pool = CampaignWorkerPool(
                self.world.service, workers=shard_plan.effective_workers
            )
            pool = own_pool
        try:
            return ShardedCampaignRunner(
                self.world.service,
                self.config,
                shard_plan,
                steering=self.steering,
                path_model=self.path_model,
                pool=pool,
            ).run(self.calls)
        finally:
            if own_pool is not None:
                own_pool.shutdown(wait=True)

    def restore(self) -> None:
        """Undo the scenario's control-plane faults (idempotent)."""
        if self.applied is not None:
            self.applied.restore()


def load_scenario(
    spec: ScenarioSpec, *, base_world: World | None = None
) -> LoadedScenario:
    """Compose ``spec`` into a ready campaign.

    ``base_world`` adopts an already built world (its scale must match
    ``spec.world.scale``); otherwise the world is built from the spec.
    The world comes back faulted per the spec — call
    :meth:`LoadedScenario.restore` when done with it.

    Raises
    ------
    ValueError
        If ``base_world``'s scale contradicts the spec.
    """
    if base_world is not None:
        if base_world.scale.value != spec.world.scale:
            raise ValueError(
                f"base_world is {base_world.scale.value!r} but the spec "
                f"wants {spec.world.scale!r}; pass a matching world or none"
            )
        world = base_world
    else:
        world = build_world(
            spec.world.scale,
            seed=spec.world.seed,
            geoip_errors=spec.world.geoip_errors,
        )
    applied = apply_scenario_faults(world.service, spec)
    try:
        loaded = compose_scenario(spec, world, applied.degradations)
    except BaseException:
        applied.restore()
        raise
    loaded.applied = applied
    return loaded


def compose_scenario(
    spec: ScenarioSpec,
    world: World,
    degradations: tuple[TransitDegrade, ...] = (),
) -> LoadedScenario:
    """The post-fault composition: calls, config, path model, steering.

    For callers (like the matrix runner) that manage fault application
    themselves — e.g. applying a fault set once for a whole group of
    seeds.  ``world`` must already be in the spec's faulted state and
    ``degradations`` carry the timeline's still-active transit events.
    The returned scenario has no fault bookkeeping (``applied=None``).
    """
    calls = scenario_calls(spec, world)
    config = CampaignConfig(seed=spec.seed + 2)
    return LoadedScenario(
        spec=spec,
        world=world,
        calls=calls,
        config=config,
        steering=scenario_steering(spec, world, calls, config),
        path_model=scenario_path_model(spec, world, calls, degradations),
        applied=None,
    )


def run_scenario(
    spec: ScenarioSpec,
    *,
    base_world: World | None = None,
    workers: int = 1,
    pool: CampaignWorkerPool | None = None,
    shard_plan: ShardPlan | None = None,
) -> CampaignRun:
    """Load, run, and restore in one call (the common case)."""
    loaded = load_scenario(spec, base_world=base_world)
    try:
        return loaded.run(workers=workers, pool=pool, shard_plan=shard_plan)
    finally:
        loaded.restore()
