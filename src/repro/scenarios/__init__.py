"""Declarative scenarios and the sharded scenario-matrix harness.

The declarative layer on top of the whole stack:

* :mod:`~repro.scenarios.spec` — frozen, JSON-byte-stable
  :class:`WorldSpec`/:class:`ScenarioSpec` value objects with
  schema-validating ``from_json``;
* :mod:`~repro.scenarios.registry` — the canned operating regimes
  (baseline, GEO satellite, flash crowd, regional outage, PoP
  exhaustion);
* :mod:`~repro.scenarios.loader` — composes a spec into a ready
  campaign: faulted world, call list, steering engine, and the pure
  :class:`ScenarioPathModel` applied at simulate time;
* :mod:`~repro.scenarios.matrix` — the (spec x scale x seed) grid
  runner, sharded over persistent worker pools;
* :mod:`~repro.scenarios.golden` — tolerance-aware golden-report
  regression checks for matrix cells.
"""

from repro.scenarios.golden import (
    DEFAULT_ATOL,
    DEFAULT_RTOL,
    REGEN_ENV,
    GoldenDiff,
    GoldenStore,
    diff_reports,
)
from repro.scenarios.loader import (
    OVERLOAD_DELAY_MS_PER_UNIT,
    OVERLOAD_LOSS_PER_UNIT,
    AppliedFaults,
    LoadedScenario,
    ScenarioPathModel,
    apply_scenario_faults,
    compose_scenario,
    load_scenario,
    run_scenario,
    scenario_calls,
    scenario_path_model,
    scenario_steering,
)
from repro.scenarios.matrix import MatrixCell, MatrixResult, run_matrix
from repro.scenarios.registry import SCENARIOS, canned_names, canned_scenario
from repro.scenarios.spec import (
    ARRIVAL_PROFILES,
    CAPACITY_WILDCARD,
    LAST_MILE_MODELS,
    POP_CODES,
    STEERING_POLICIES,
    WORLD_SCALES,
    ScenarioSpec,
    WorldSpec,
)

__all__ = [
    "ARRIVAL_PROFILES",
    "CAPACITY_WILDCARD",
    "DEFAULT_ATOL",
    "DEFAULT_RTOL",
    "LAST_MILE_MODELS",
    "OVERLOAD_DELAY_MS_PER_UNIT",
    "OVERLOAD_LOSS_PER_UNIT",
    "POP_CODES",
    "REGEN_ENV",
    "SCENARIOS",
    "STEERING_POLICIES",
    "WORLD_SCALES",
    "AppliedFaults",
    "GoldenDiff",
    "GoldenStore",
    "LoadedScenario",
    "MatrixCell",
    "MatrixResult",
    "ScenarioPathModel",
    "ScenarioSpec",
    "WorldSpec",
    "apply_scenario_faults",
    "canned_names",
    "canned_scenario",
    "compose_scenario",
    "diff_reports",
    "load_scenario",
    "run_matrix",
    "run_scenario",
    "scenario_calls",
    "scenario_path_model",
    "scenario_steering",
]
