"""Canned scenarios: the operating regimes that stress the paper's claim.

Each entry is a zero-argument builder returning a fresh
:class:`~repro.scenarios.spec.ScenarioSpec`; callers tweak cells with
``dataclasses.replace`` (e.g. per-cell seeds in the matrix runner).

The line-up covers the ROADMAP's scenario classes:

* ``baseline`` — the reference world: terrestrial last miles, diurnal
  arrivals, no faults, no steering.
* ``geo_satellite`` — every caller's last mile rides a GEO satellite
  service (~270 ms one-way bounce plus traffic-shaper loss, per
  PAPERS.md's "Watching Stars in Pixels"): the regime where backbone
  optimisation matters least relative to access impairment.
* ``flash_crowd`` — a global webinar: hundreds of attendees dial a
  couple of hosts inside half an hour on top of the diurnal background,
  concentrating demand on a few corridors and the hosts' TURN relays.
* ``regional_outage`` — the failover-under-load composite: Singapore
  (a documented cut vertex — losing it strands Sydney) goes down and a
  trans-Pacific circuit is cut, while call volume runs 1.5× normal.
* ``pop_exhaustion`` — entry-PoP capacity far below offered load, so
  every VNS (and detour) stream entering a hot PoP is queued/shaped;
  the Internet transport bypasses the PoP and is unaffected.
"""

from __future__ import annotations

from typing import Callable

from repro.faults.events import LinkDown, PopDown
from repro.scenarios.spec import ScenarioSpec, WorldSpec


def _baseline() -> ScenarioSpec:
    return ScenarioSpec(
        name="baseline",
        description="Reference world: terrestrial last miles, diurnal "
        "arrivals, no faults, no steering.",
    )


def _geo_satellite() -> ScenarioSpec:
    return ScenarioSpec(
        name="geo_satellite",
        last_mile="geo_satellite",
        description="Every caller's last mile over a GEO satellite "
        "service: +270 ms one-way and shaper loss on the access leg of "
        "both transports.",
    )


def _flash_crowd() -> ScenarioSpec:
    return ScenarioSpec(
        name="flash_crowd",
        arrival_profile="flash_crowd",
        flash_attendees=240,
        flash_hosts=2,
        flash_hour_cet=18.0,
        flash_window_h=0.5,
        description="Global webinar: 240 attendees call 2 hosts inside "
        "30 minutes on top of the diurnal background.",
    )


def _regional_outage() -> ScenarioSpec:
    return ScenarioSpec(
        name="regional_outage",
        calls_per_user_day=6.0,
        faults=(
            PopDown(time_s=0.0, pop="SIN"),
            LinkDown(time_s=1.0, a="SJS", b="HK"),
        ),
        description="Failover under load: Singapore PoP down (strands "
        "Sydney — SIN is a cut vertex) plus a trans-Pacific circuit cut, "
        "at 1.5x normal call volume.",
    )


def _pop_exhaustion() -> ScenarioSpec:
    return ScenarioSpec(
        name="pop_exhaustion",
        world=WorldSpec(pop_capacity=(("*", 0.02),)),
        description="Entry-PoP capacity exhaustion: every PoP capped at "
        "0.02 erlangs, far below offered load, congesting VNS entry "
        "while the Internet transport bypasses the PoPs.",
    )


#: Name -> builder; each call returns a fresh spec.
SCENARIOS: dict[str, Callable[[], ScenarioSpec]] = {
    "baseline": _baseline,
    "geo_satellite": _geo_satellite,
    "flash_crowd": _flash_crowd,
    "regional_outage": _regional_outage,
    "pop_exhaustion": _pop_exhaustion,
}


def canned_names() -> tuple[str, ...]:
    """Registry names, in registration order."""
    return tuple(SCENARIOS)


def canned_scenario(name: str) -> ScenarioSpec:
    """A fresh spec for a registry name.

    Raises
    ------
    KeyError
        For an unknown name; the message lists the registry.
    """
    builder = SCENARIOS.get(name)
    if builder is None:
        raise KeyError(
            f"unknown scenario {name!r} (known: {sorted(SCENARIOS)})"
        )
    return builder()
