"""Golden-report regression checks for scenario matrix cells.

The tolerance-aware differ itself lives in :mod:`repro.tolerance` (the
results store's cross-commit :meth:`~repro.results.ResultsStore.regression`
gate shares it); this module keeps the golden-file workflow — one
committed JSON per cell key, a ``GOLDEN_REGEN=1`` regeneration knob, and
the missing-golden bookkeeping.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.tolerance import (
    DEFAULT_ATOL,
    DEFAULT_RTOL,
    ToleranceDiff,
    diff_reports,
)

#: Back-compat name: golden checks predate the shared differ.
GoldenDiff = ToleranceDiff

#: Environment knob: regenerate committed goldens instead of comparing.
REGEN_ENV = "GOLDEN_REGEN"

__all__ = [
    "DEFAULT_ATOL",
    "DEFAULT_RTOL",
    "REGEN_ENV",
    "GoldenDiff",
    "GoldenStore",
    "diff_reports",
]


class GoldenStore:
    """Committed golden reports, one JSON file per cell key."""

    def __init__(self, directory: str | os.PathLike) -> None:
        self.directory = Path(directory)

    def path(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    def load(self, key: str) -> dict | None:
        try:
            with self.path(key).open("r", encoding="utf-8") as handle:
                return json.load(handle)
        except FileNotFoundError:
            return None

    def save(self, key: str, report: dict) -> Path:
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self.path(key)
        path.write_text(
            json.dumps(report, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
        return path

    def keys(self) -> tuple[str, ...]:
        if not self.directory.is_dir():
            return ()
        return tuple(sorted(p.stem for p in self.directory.glob("*.json")))

    def check(
        self,
        key: str,
        report: dict,
        *,
        update: bool = False,
        rtol: float = DEFAULT_RTOL,
        atol: float = DEFAULT_ATOL,
    ) -> GoldenDiff:
        """Compare ``report`` against the committed golden for ``key``.

        ``update=True`` (or ``GOLDEN_REGEN=1`` in the environment)
        rewrites the golden and reports a clean diff — the regeneration
        workflow for intentional behaviour changes.
        """
        if update or os.environ.get(REGEN_ENV, "") not in ("", "0"):
            self.save(key, report)
            return GoldenDiff(key=key)
        golden = self.load(key)
        if golden is None:
            return GoldenDiff(key=key, missing=True)
        return diff_reports(golden, report, key=key, rtol=rtol, atol=atol)
