"""Golden-report regression checks for scenario matrix cells.

Within one run, sequential-vs-sharded byte-identity is asserted exactly.
*Committed* golden reports cross machine and library versions, where
float arithmetic may differ in the low bits — so the differ compares
structure, strings, bools and integer counts exactly, and floats within
``rtol``/``atol``.  Every mismatch is reported with its dotted path into
the report and both values, so a regression reads like a diff, not a
boolean.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path

#: Relative float tolerance for committed goldens (QoE percentiles move
#: in the 4th digit across numpy builds, never by 5%).
DEFAULT_RTOL = 0.05
DEFAULT_ATOL = 1e-9

#: Environment knob: regenerate committed goldens instead of comparing.
REGEN_ENV = "GOLDEN_REGEN"


@dataclass(slots=True)
class GoldenDiff:
    """The comparison result for one cell."""

    key: str
    mismatches: list[str] = field(default_factory=list)
    #: No committed golden existed for the key.
    missing: bool = False

    @property
    def ok(self) -> bool:
        return not self.mismatches and not self.missing

    def render(self) -> str:
        if self.missing:
            return f"{self.key}: no golden committed"
        if not self.mismatches:
            return f"{self.key}: ok"
        lines = [f"{self.key}: {len(self.mismatches)} mismatch(es)"]
        lines.extend(f"  {mismatch}" for mismatch in self.mismatches)
        return "\n".join(lines)


def _diff_values(
    path: str,
    golden: object,
    actual: object,
    mismatches: list[str],
    rtol: float,
    atol: float,
) -> None:
    # bool is an int subclass — compare it exactly, as itself.
    if isinstance(golden, bool) or isinstance(actual, bool):
        if golden is not actual:
            mismatches.append(f"{path}: golden {golden!r}, got {actual!r}")
        return
    if isinstance(golden, float) and isinstance(actual, (int, float)):
        if abs(actual - golden) > atol + rtol * abs(golden):
            mismatches.append(
                f"{path}: golden {golden!r}, got {actual!r} "
                f"(tolerance rtol={rtol}, atol={atol})"
            )
        return
    if type(golden) is not type(actual):
        mismatches.append(
            f"{path}: type changed from {type(golden).__name__} "
            f"to {type(actual).__name__}"
        )
        return
    if isinstance(golden, dict):
        for key in sorted(golden.keys() | actual.keys()):
            child = f"{path}.{key}" if path else str(key)
            if key not in actual:
                mismatches.append(f"{child}: missing from report")
            elif key not in golden:
                mismatches.append(f"{child}: unexpected key (not in golden)")
            else:
                _diff_values(child, golden[key], actual[key], mismatches, rtol, atol)
        return
    if isinstance(golden, list):
        if len(golden) != len(actual):
            mismatches.append(
                f"{path}: length changed from {len(golden)} to {len(actual)}"
            )
            return
        for index, (g, a) in enumerate(zip(golden, actual)):
            _diff_values(f"{path}[{index}]", g, a, mismatches, rtol, atol)
        return
    if golden != actual:
        mismatches.append(f"{path}: golden {golden!r}, got {actual!r}")


def diff_reports(
    golden: dict,
    actual: dict,
    *,
    key: str = "",
    rtol: float = DEFAULT_RTOL,
    atol: float = DEFAULT_ATOL,
) -> GoldenDiff:
    """Compare a report dict against its golden, tolerance-aware.

    Ints, strings and bools must match exactly (counts are seed-stable);
    floats within ``atol + rtol * |golden|``.  Structural drift (keys,
    list lengths, types) always mismatches.
    """
    diff = GoldenDiff(key=key)
    _diff_values("", golden, actual, diff.mismatches, rtol, atol)
    return diff


class GoldenStore:
    """Committed golden reports, one JSON file per cell key."""

    def __init__(self, directory: str | os.PathLike) -> None:
        self.directory = Path(directory)

    def path(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    def load(self, key: str) -> dict | None:
        try:
            with self.path(key).open("r", encoding="utf-8") as handle:
                return json.load(handle)
        except FileNotFoundError:
            return None

    def save(self, key: str, report: dict) -> Path:
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self.path(key)
        path.write_text(
            json.dumps(report, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
        return path

    def keys(self) -> tuple[str, ...]:
        if not self.directory.is_dir():
            return ()
        return tuple(sorted(p.stem for p in self.directory.glob("*.json")))

    def check(
        self,
        key: str,
        report: dict,
        *,
        update: bool = False,
        rtol: float = DEFAULT_RTOL,
        atol: float = DEFAULT_ATOL,
    ) -> GoldenDiff:
        """Compare ``report`` against the committed golden for ``key``.

        ``update=True`` (or ``GOLDEN_REGEN=1`` in the environment)
        rewrites the golden and reports a clean diff — the regeneration
        workflow for intentional behaviour changes.
        """
        if update or os.environ.get(REGEN_ENV, "") not in ("", "0"):
            self.save(key, report)
            return GoldenDiff(key=key)
        golden = self.load(key)
        if golden is None:
            return GoldenDiff(key=key, missing=True)
        return diff_reports(golden, report, key=key, rtol=rtol, atol=atol)
