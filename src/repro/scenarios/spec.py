"""Declarative, JSON-serialisable scenario specifications.

The ROADMAP's "declarative scenario worlds": instead of composing
worlds, fault timelines, and workloads in Python per experiment, a
scenario is two value objects —

* :class:`WorldSpec` — which world to build (scale, seed, GeoIP error
  class) and how to restrict/strain it (PoPs taken down at load time,
  per-entry-PoP capacity in erlangs);
* :class:`ScenarioSpec` — what happens on that world: the arrival
  profile (diurnal day or flash-crowd webinar), a fault timeline of
  :mod:`repro.faults.events`, an optional steering policy by registry
  name, and the last-mile model (terrestrial or GEO satellite).

Both are frozen, hashable, and round-trip through JSON **byte-stably**:
``to_json(from_json(text)) == to_json(spec)`` for any spec, because
serialisation sorts keys and Python floats round-trip exactly through
JSON.  ``from_json`` is schema-validating — unknown fields and unknown
enum values are rejected with errors that name the offender and list
what is accepted, so a typo in a committed spec file fails loudly
instead of silently running the default.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from dataclasses import fields as dataclass_fields

from repro.dataplane.link import GEO_SATELLITE_DELAY_MS, GEO_SHAPING_LOSS
from repro.faults.events import FaultEvent, event_from_dict, event_to_dict
from repro.vns.pop import POPS

#: Accepted ``WorldSpec.scale`` values (mirrors ``WorldScale``).
WORLD_SCALES = ("small", "medium", "large")

#: Accepted ``ScenarioSpec.arrival_profile`` values.
ARRIVAL_PROFILES = ("diurnal", "flash_crowd")

#: Accepted ``ScenarioSpec.last_mile`` values.
LAST_MILE_MODELS = ("terrestrial", "geo_satellite")

#: Accepted ``ScenarioSpec.steering_policy`` values ("" = no steering;
#: the rest are ``repro.steering.make_policy`` registry names).
STEERING_POLICIES = ("", "always_vns", "threshold_offload", "cost_budgeted")

#: Valid PoP codes for ``pops_down`` / ``pop_capacity``.
POP_CODES: tuple[str, ...] = tuple(pop.code for pop in POPS)

#: ``pop_capacity`` key applying one capacity to every entry PoP.
CAPACITY_WILDCARD = "*"


def _require_object(cls: type, payload: object) -> dict:
    """Schema gate shared by both specs' ``from_dict``."""
    if not isinstance(payload, dict):
        raise ValueError(
            f"{cls.__name__} payload must be a JSON object, "
            f"got {type(payload).__name__}"
        )
    known = sorted(f.name for f in dataclass_fields(cls))
    unknown = sorted(set(payload) - set(known))
    if unknown:
        raise ValueError(
            f"unknown field(s) {unknown} for {cls.__name__} (accepted: {known})"
        )
    return dict(payload)


def _require_enum(cls: type, field_name: str, value: str, accepted: tuple[str, ...]) -> None:
    if value not in accepted:
        raise ValueError(
            f"{cls.__name__}.{field_name} must be one of {list(accepted)}, "
            f"got {value!r}"
        )


@dataclass(frozen=True, slots=True)
class WorldSpec:
    """Which world a scenario runs on, declaratively.

    Parameters
    ----------
    scale / seed / geoip_errors:
        Passed to :func:`repro.experiments.common.build_world`.
    pops_down:
        PoP codes taken down (via :class:`~repro.faults.events.PopDown`
        through the real BGP machinery) before the campaign starts —
        a reduced-footprint deployment variant, with correct anycast
        re-catchment semantics.
    pop_capacity:
        ``(pop_code, capacity_erlangs)`` pairs; the wildcard code
        ``"*"`` applies to every entry PoP without an explicit entry.
        Entry PoPs whose offered load (concurrent-call erlangs computed
        from the call list) exceeds capacity are congested at simulate
        time — see ``repro.scenarios.loader.ScenarioPathModel``.
    """

    scale: str = "small"
    seed: int = 42
    geoip_errors: bool = False
    pops_down: tuple[str, ...] = ()
    pop_capacity: tuple[tuple[str, float], ...] = ()

    def __post_init__(self) -> None:
        # Normalise list inputs (e.g. straight from JSON) to tuples so
        # the spec stays hashable however it was constructed.
        object.__setattr__(self, "pops_down", tuple(self.pops_down))
        object.__setattr__(
            self,
            "pop_capacity",
            tuple((str(pop), float(cap)) for pop, cap in self.pop_capacity),
        )
        _require_enum(WorldSpec, "scale", self.scale, WORLD_SCALES)
        for pop in self.pops_down:
            if pop not in POP_CODES:
                raise ValueError(
                    f"WorldSpec.pops_down: unknown PoP {pop!r} "
                    f"(known: {list(POP_CODES)})"
                )
        seen: set[str] = set()
        for pop, capacity in self.pop_capacity:
            if pop != CAPACITY_WILDCARD and pop not in POP_CODES:
                raise ValueError(
                    f"WorldSpec.pop_capacity: unknown PoP {pop!r} "
                    f"(known: {list(POP_CODES)} or {CAPACITY_WILDCARD!r})"
                )
            if pop in seen:
                raise ValueError(
                    f"WorldSpec.pop_capacity: duplicate entry for {pop!r}"
                )
            seen.add(pop)
            if capacity <= 0:
                raise ValueError(
                    f"WorldSpec.pop_capacity[{pop!r}] must be positive "
                    f"erlangs, got {capacity!r}"
                )

    def to_dict(self) -> dict:
        return {
            "scale": self.scale,
            "seed": self.seed,
            "geoip_errors": self.geoip_errors,
            "pops_down": list(self.pops_down),
            "pop_capacity": [[pop, cap] for pop, cap in self.pop_capacity],
        }

    @classmethod
    def from_dict(cls, payload: object) -> "WorldSpec":
        data = _require_object(cls, payload)
        capacity = data.get("pop_capacity", ())
        if not isinstance(capacity, (list, tuple)):
            raise ValueError(
                "WorldSpec.pop_capacity must be an array of [pop, erlangs] "
                f"pairs, got {type(capacity).__name__}"
            )
        for entry in capacity:
            if not isinstance(entry, (list, tuple)) or len(entry) != 2:
                raise ValueError(
                    "WorldSpec.pop_capacity entries must be [pop, erlangs] "
                    f"pairs, got {entry!r}"
                )
        data["pop_capacity"] = tuple(tuple(entry) for entry in capacity)
        return cls(**data)

    def to_json(self, *, indent: int | None = 2) -> str:
        """Byte-stable: sorted keys, exact float round-trip."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "WorldSpec":
        return cls.from_dict(json.loads(text))


@dataclass(frozen=True, slots=True)
class ScenarioSpec:
    """One named, fully reproducible campaign scenario.

    ``seed`` drives the whole scenario with the campaign experiment's
    derivation (population ``seed``, arrivals ``seed + 1``, engine
    ``seed + 2``, steering telemetry ``seed + 3``).  ``faults`` is a
    time-ordered tuple of :mod:`repro.faults.events`: control-plane
    events are applied through the real BGP machinery before the
    campaign runs (and reverted after), data-plane
    :class:`~repro.faults.events.TransitDegrade` events still active at
    the end of the timeline impair the matching transit corridors at
    simulate time.
    """

    name: str
    world: WorldSpec = WorldSpec()
    seed: int = 0
    n_users: int = 120
    calls_per_user_day: float = 4.0
    days: int = 1
    multiparty_fraction: float = 0.15
    arrival_profile: str = "diurnal"
    #: Flash-crowd knobs (used when ``arrival_profile == "flash_crowd"``;
    #: the crowd overlays the diurnal background traffic).
    flash_attendees: int = 150
    flash_hosts: int = 2
    flash_hour_cet: float = 18.0
    flash_window_h: float = 0.5
    steering_policy: str = ""
    last_mile: str = "terrestrial"
    satellite_delay_ms: float = GEO_SATELLITE_DELAY_MS
    satellite_loss: float = GEO_SHAPING_LOSS
    faults: tuple[FaultEvent, ...] = ()
    description: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))
        if not self.name:
            raise ValueError("ScenarioSpec.name must be non-empty")
        _require_enum(
            ScenarioSpec, "arrival_profile", self.arrival_profile, ARRIVAL_PROFILES
        )
        _require_enum(ScenarioSpec, "last_mile", self.last_mile, LAST_MILE_MODELS)
        _require_enum(
            ScenarioSpec, "steering_policy", self.steering_policy, STEERING_POLICIES
        )
        if self.n_users < 2:
            raise ValueError(f"ScenarioSpec.n_users must be >= 2, got {self.n_users!r}")
        if self.days < 1:
            raise ValueError(f"ScenarioSpec.days must be >= 1, got {self.days!r}")
        if self.calls_per_user_day <= 0:
            raise ValueError(
                f"ScenarioSpec.calls_per_user_day must be positive, "
                f"got {self.calls_per_user_day!r}"
            )
        if not 0.0 <= self.multiparty_fraction <= 1.0:
            raise ValueError(
                f"ScenarioSpec.multiparty_fraction must be in [0, 1], "
                f"got {self.multiparty_fraction!r}"
            )
        if self.flash_attendees <= 0 or self.flash_hosts < 1:
            raise ValueError(
                "ScenarioSpec.flash_attendees must be positive and "
                f"flash_hosts >= 1, got {self.flash_attendees!r}/{self.flash_hosts!r}"
            )
        if self.flash_window_h <= 0:
            raise ValueError(
                f"ScenarioSpec.flash_window_h must be positive, "
                f"got {self.flash_window_h!r}"
            )
        if self.satellite_delay_ms < 0:
            raise ValueError(
                f"ScenarioSpec.satellite_delay_ms must be non-negative, "
                f"got {self.satellite_delay_ms!r}"
            )
        if not 0.0 <= self.satellite_loss < 1.0:
            raise ValueError(
                f"ScenarioSpec.satellite_loss must be in [0, 1), "
                f"got {self.satellite_loss!r}"
            )
        for event in self.faults:
            if not isinstance(event, FaultEvent):
                raise ValueError(
                    f"ScenarioSpec.faults entries must be fault events, "
                    f"got {event!r}"
                )

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "world": self.world.to_dict(),
            "seed": self.seed,
            "n_users": self.n_users,
            "calls_per_user_day": self.calls_per_user_day,
            "days": self.days,
            "multiparty_fraction": self.multiparty_fraction,
            "arrival_profile": self.arrival_profile,
            "flash_attendees": self.flash_attendees,
            "flash_hosts": self.flash_hosts,
            "flash_hour_cet": self.flash_hour_cet,
            "flash_window_h": self.flash_window_h,
            "steering_policy": self.steering_policy,
            "last_mile": self.last_mile,
            "satellite_delay_ms": self.satellite_delay_ms,
            "satellite_loss": self.satellite_loss,
            "faults": [event_to_dict(event) for event in self.faults],
            "description": self.description,
        }

    @classmethod
    def from_dict(cls, payload: object) -> "ScenarioSpec":
        data = _require_object(cls, payload)
        if "name" not in data:
            raise ValueError("ScenarioSpec payload is missing its required 'name' field")
        if "world" in data:
            data["world"] = WorldSpec.from_dict(data["world"])
        faults = data.get("faults", ())
        if not isinstance(faults, (list, tuple)):
            raise ValueError(
                "ScenarioSpec.faults must be an array of fault event "
                f"objects, got {type(faults).__name__}"
            )
        data["faults"] = tuple(
            event if isinstance(event, FaultEvent) else event_from_dict(event)
            for event in faults
        )
        return cls(**data)

    def to_json(self, *, indent: int | None = 2) -> str:
        """Byte-stable: sorted keys, exact float round-trip."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        return cls.from_dict(json.loads(text))
