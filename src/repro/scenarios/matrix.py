"""The scenario-matrix runner: grid of (spec x scale x seed) cells.

A matrix expands scenario specs over world scales and campaign seeds,
runs every cell through the sharded campaign machinery, and checks each
cell's byte-stable report against a committed golden.  It is the repo's
regression harness for the paper's claims: one command re-runs the
canned operating regimes and diffs them against known-good reports.

**Pool reuse.**  Cells are grouped by their *fault signature* — the
world-mutating part of the spec (scale, world seed, GeoIP errors,
PoPs down, control-plane fault timeline).  Each group applies its
faults once, spawns one persistent :class:`CampaignWorkerPool` on the
faulted world, streams every cell of the group through it, then shuts
the pool down and restores the world.  Unfaulted scenarios (baseline,
GEO satellite, flash crowd, PoP exhaustion — whose impairments live in
the path model, not the world) all share a single pool per scale.

**Determinism.**  Cell reports are byte-identical whether the group ran
sequentially or sharded, at any worker count — the engine's contract.
Output cells come back in grid-expansion order (scenario-major, then
scale, then seed) regardless of the grouped execution order.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field, replace
from pathlib import Path

from repro.experiments.common import World, build_world
from repro.faults.events import event_to_dict
from repro.scenarios.golden import DEFAULT_ATOL, DEFAULT_RTOL, GoldenDiff, GoldenStore
from repro.scenarios.loader import (
    apply_scenario_faults,
    compose_scenario,
)
from repro.scenarios.registry import canned_scenario
from repro.scenarios.spec import ScenarioSpec
from repro.workload.sharded import CampaignWorkerPool, ShardPlan


@dataclass(slots=True)
class MatrixCell:
    """One completed grid cell."""

    scenario: str
    scale: str
    seed: int
    #: ``CampaignReport.to_dict()`` — the golden-checked payload.
    report: dict
    n_calls: int
    n_failed: int
    sharded: bool
    elapsed_s: float
    #: Golden comparison, or ``None`` when no store was given.
    golden: GoldenDiff | None = None

    @property
    def key(self) -> str:
        """The cell's identity — also its golden file stem."""
        return f"{self.scenario}-{self.scale}-seed{self.seed}"

    @property
    def ok(self) -> bool:
        return self.golden is None or self.golden.ok


@dataclass(slots=True)
class MatrixResult:
    """Every cell of a matrix run, in grid-expansion order."""

    cells: list[MatrixCell] = field(default_factory=list)
    workers: int = 1
    sharded: bool = False
    elapsed_s: float = 0.0

    def cell(self, key: str) -> MatrixCell:
        for cell in self.cells:
            if cell.key == key:
                return cell
        raise KeyError(
            f"no cell {key!r} (have: {[cell.key for cell in self.cells]})"
        )

    def regressions(self) -> list[MatrixCell]:
        """Cells whose golden comparison failed (mismatch or missing)."""
        return [cell for cell in self.cells if not cell.ok]

    @property
    def ok(self) -> bool:
        return not self.regressions()

    def summary(self) -> dict:
        """A JSON-ready run summary (the CI artifact payload)."""
        checked = [cell for cell in self.cells if cell.golden is not None]
        return {
            "workers": self.workers,
            "sharded": self.sharded,
            "elapsed_s": round(self.elapsed_s, 3),
            "cells": [
                {
                    "key": cell.key,
                    "scenario": cell.scenario,
                    "scale": cell.scale,
                    "seed": cell.seed,
                    "n_calls": cell.n_calls,
                    "n_failed": cell.n_failed,
                    "elapsed_s": round(cell.elapsed_s, 3),
                    "golden": (
                        None
                        if cell.golden is None
                        else {
                            "ok": cell.golden.ok,
                            "missing": cell.golden.missing,
                            "mismatches": list(cell.golden.mismatches),
                        }
                    ),
                }
                for cell in self.cells
            ],
            "golden_checked": len(checked),
            "golden_failed": sum(1 for cell in checked if not cell.ok),
        }

    def to_json(self, *, indent: int | None = 2) -> str:
        return json.dumps(self.summary(), indent=indent, sort_keys=True)

    def render(self) -> str:
        """The matrix as an aligned table plus any golden diffs."""
        mode = f"sharded x{self.workers}" if self.sharded else "sequential"
        lines = [
            f"Scenario matrix — {len(self.cells)} cell(s), {mode}, "
            f"{self.elapsed_s:.1f}s"
        ]
        header = f"  {'cell':<34} {'calls':>7} {'failed':>7} {'golden':>8}"
        lines.append(header)
        for cell in self.cells:
            if cell.golden is None:
                verdict = "-"
            elif cell.golden.missing:
                verdict = "missing"
            elif cell.golden.ok:
                verdict = "ok"
            else:
                verdict = "FAIL"
            lines.append(
                f"  {cell.key:<34} {cell.n_calls:>7} {cell.n_failed:>7} "
                f"{verdict:>8}"
            )
        for cell in self.regressions():
            lines.append(cell.golden.render())
        return "\n".join(lines)


# --------------------------------------------------------------------- #
# grid expansion and grouping
# --------------------------------------------------------------------- #


def _resolve(scenario: ScenarioSpec | str) -> ScenarioSpec:
    if isinstance(scenario, ScenarioSpec):
        return scenario
    return canned_scenario(scenario)


def _fault_signature(spec: ScenarioSpec) -> tuple:
    """What a cell does to the *world* (not the path model).

    Cells with equal signatures can share one faulted world and one
    worker pool: the world-mutating inputs are the build recipe plus the
    control-plane timeline.  ``pop_capacity`` and the last-mile model
    are excluded on purpose — they act at simulate time only.
    """
    world = spec.world
    return (
        world.scale,
        world.seed,
        world.geoip_errors,
        world.pops_down,
        tuple(json.dumps(event_to_dict(event), sort_keys=True) for event in spec.faults),
    )


def run_matrix(
    scenarios: "list[ScenarioSpec | str]",
    *,
    scales: tuple[str, ...] = ("small",),
    seeds: tuple[int, ...] = (0,),
    workers: int = 2,
    sharded: bool = True,
    golden: "GoldenStore | str | Path | None" = None,
    update_golden: bool = False,
    rtol: float = DEFAULT_RTOL,
    atol: float = DEFAULT_ATOL,
) -> MatrixResult:
    """Run the full (scenario x scale x seed) grid.

    Parameters
    ----------
    scenarios:
        Specs, or canned-registry names resolved via
        :func:`~repro.scenarios.registry.canned_scenario`.
    scales / seeds:
        Grid axes; each scenario is re-targeted per cell with
        ``dataclasses.replace`` (the spec's own scale/seed are
        overridden).
    workers / sharded:
        ``sharded=True`` runs each fault group through one persistent
        :class:`CampaignWorkerPool` of ``workers`` processes;
        ``sharded=False`` runs every cell sequentially in-process
        (byte-identical reports either way).
    golden:
        A :class:`GoldenStore` (or a directory for one); each cell's
        report is checked against ``<dir>/<cell key>.json``.
        ``update_golden=True`` (or ``GOLDEN_REGEN=1``) rewrites the
        goldens instead.
    """
    started = time.perf_counter()
    grid: list[ScenarioSpec] = []
    for scenario in scenarios:
        spec = _resolve(scenario)
        for scale in scales:
            for seed in seeds:
                grid.append(
                    replace(spec, seed=seed, world=replace(spec.world, scale=scale))
                )
    store = (
        golden
        if isinstance(golden, GoldenStore) or golden is None
        else GoldenStore(golden)
    )

    # Group cells by fault signature so a faulted world (and its pool)
    # is built once per group, preserving each cell's expansion index.
    groups: dict[tuple, list[tuple[int, ScenarioSpec]]] = {}
    for index, spec in enumerate(grid):
        groups.setdefault(_fault_signature(spec), []).append((index, spec))

    worlds: dict[tuple, World] = {}

    def _world_for(spec: ScenarioSpec) -> World:
        key = (spec.world.scale, spec.world.seed, spec.world.geoip_errors)
        if key not in worlds:
            worlds[key] = build_world(
                spec.world.scale,
                seed=spec.world.seed,
                geoip_errors=spec.world.geoip_errors,
            )
        return worlds[key]

    cells: list[MatrixCell | None] = [None] * len(grid)
    use_pool = sharded and workers > 1
    plan = ShardPlan(n_workers=workers) if use_pool else None
    for members in groups.values():
        world = _world_for(members[0][1])
        applied = apply_scenario_faults(world.service, members[0][1])
        pool: CampaignWorkerPool | None = None
        try:
            if use_pool:
                # After the faults: worker snapshots freeze the world
                # at pool start.
                pool = CampaignWorkerPool(world.service, workers=workers)
            for index, spec in members:
                cell_started = time.perf_counter()
                loaded = compose_scenario(spec, world, applied.degradations)
                if use_pool:
                    run = loaded.run(pool=pool, shard_plan=plan)
                else:
                    run = loaded.run()
                report = run.report.to_dict()
                cell = MatrixCell(
                    scenario=spec.name,
                    scale=spec.world.scale,
                    seed=spec.seed,
                    report=report,
                    n_calls=run.stats.calls_resolved + run.stats.calls_failed,
                    n_failed=run.stats.calls_failed,
                    sharded=use_pool,
                    elapsed_s=time.perf_counter() - cell_started,
                )
                if store is not None:
                    cell.golden = store.check(
                        cell.key,
                        report,
                        update=update_golden,
                        rtol=rtol,
                        atol=atol,
                    )
                cells[index] = cell
        finally:
            if pool is not None:
                pool.shutdown(wait=True)
            applied.restore()

    return MatrixResult(
        cells=[cell for cell in cells if cell is not None],
        workers=workers if use_pool else 1,
        sharded=use_pool,
        elapsed_s=time.perf_counter() - started,
    )
