"""BGP path attributes (RFC 4271) and the route value type."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace

from repro.net.addressing import Prefix

#: Default LOCAL_PREF; the paper's geo-assigned values are "always much
#: higher than the default value of 100".
DEFAULT_LOCAL_PREF = 100

#: The well-known ``no-export`` community (RFC 1997).  The management
#: interface tags statically advertised more-specifics with it "to ensure
#: that they never leak outside VNS network".
NO_EXPORT = "no-export"


class Origin(enum.IntEnum):
    """ORIGIN attribute; lower is preferred in the decision process."""

    IGP = 0
    EGP = 1
    INCOMPLETE = 2


@dataclass(frozen=True, slots=True)
class AsPath:
    """The AS_PATH attribute as a flat sequence (no AS_SETs needed here)."""

    asns: tuple[int, ...] = ()

    def __len__(self) -> int:
        return len(self.asns)

    def __contains__(self, asn: int) -> bool:
        return asn in self.asns

    def __iter__(self):
        return iter(self.asns)

    def prepend(self, asn: int, count: int = 1) -> "AsPath":
        """A new path with ``asn`` prepended ``count`` times."""
        if count < 1:
            raise ValueError(f"prepend count must be >= 1, got {count!r}")
        return AsPath(asns=(asn,) * count + self.asns)

    @property
    def first_hop(self) -> int | None:
        """The neighbouring AS the route was learned from (path head)."""
        return self.asns[0] if self.asns else None

    @property
    def origin_as(self) -> int | None:
        """The AS originating the prefix (path tail)."""
        return self.asns[-1] if self.asns else None

    def has_loop(self, local_asn: int) -> bool:
        """Loop detection: does the path already contain ``local_asn``?"""
        return local_asn in self.asns

    def __str__(self) -> str:
        return " ".join(str(a) for a in self.asns) if self.asns else "(empty)"


@dataclass(frozen=True, slots=True)
class Route:
    """A route to a prefix, as stored in RIBs and carried in updates.

    Transmission attributes (``as_path``, ``next_hop``, ``origin``, ``med``,
    ``local_pref``, ``communities``, ``originator_id``, ``cluster_list``)
    travel on the wire; reception metadata (``learned_from``, ``ebgp``) is
    stamped by the receiving speaker and never transmitted.
    """

    prefix: Prefix
    as_path: AsPath
    next_hop: str
    origin: Origin = Origin.IGP
    med: int = 0
    local_pref: int = DEFAULT_LOCAL_PREF
    communities: frozenset[str] = field(default_factory=frozenset)
    originator_id: str | None = None
    cluster_list: tuple[str, ...] = ()
    learned_from: str | None = None
    ebgp: bool = False

    @property
    def neighbor_as(self) -> int | None:
        """The neighbouring AS this route points at."""
        return self.as_path.first_hop

    def with_communities(self, *extra: str) -> "Route":
        """A copy with additional communities."""
        return replace(self, communities=self.communities | set(extra))

    def with_local_pref(self, local_pref: int) -> "Route":
        """A copy with LOCAL_PREF replaced — or ``self`` when unchanged.

        The no-copy case matters: the geo reflector re-derives the same
        preference for every re-imported route (LOCAL_PREF travels on the
        iBGP wire), and this is its hot path.
        """
        if local_pref == self.local_pref:
            return self
        return replace(self, local_pref=local_pref)

    def received(self, learned_from: str, ebgp: bool) -> "Route":
        """A copy stamped with reception metadata."""
        return replace(self, learned_from=learned_from, ebgp=ebgp)

    def reflected(self, originator: str, cluster_id: str) -> "Route":
        """A copy with RFC 4456 reflection attributes updated."""
        return replace(
            self,
            originator_id=self.originator_id or originator,
            cluster_list=(cluster_id,) + self.cluster_list,
        )

    def __str__(self) -> str:
        return (
            f"{self.prefix} via {self.next_hop} lp={self.local_pref} "
            f"path=[{self.as_path}]"
        )
