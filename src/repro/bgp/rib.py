"""Routing information bases: Adj-RIB-In/Out and Loc-RIB."""

from __future__ import annotations

from collections.abc import Iterator

from repro.bgp.attributes import Route
from repro.net.addressing import Prefix


class AdjRib:
    """Per-peer routes, either received (In) or advertised (Out)."""

    def __init__(self) -> None:
        self._routes: dict[str, dict[Prefix, Route]] = {}

    def update(self, peer: str, route: Route) -> None:
        """Store ``route`` as the current route from/to ``peer``."""
        self._routes.setdefault(peer, {})[route.prefix] = route

    def withdraw(self, peer: str, prefix: Prefix) -> Route | None:
        """Remove and return the route for ``prefix`` from ``peer``."""
        return self._routes.get(peer, {}).pop(prefix, None)

    def route(self, peer: str, prefix: Prefix) -> Route | None:
        """The current route for ``prefix`` from/to ``peer``."""
        return self._routes.get(peer, {}).get(prefix)

    def routes_for(self, prefix: Prefix) -> list[Route]:
        """All per-peer routes for ``prefix``."""
        return [
            routes[prefix] for routes in self._routes.values() if prefix in routes
        ]

    def routes_from(self, peer: str) -> dict[Prefix, Route]:
        """All routes from/to one peer (a copy)."""
        return dict(self._routes.get(peer, {}))

    def prefixes(self) -> set[Prefix]:
        """Every prefix that has at least one route."""
        seen: set[Prefix] = set()
        for routes in self._routes.values():
            seen.update(routes)
        return seen

    def drop_peer(self, peer: str) -> dict[Prefix, Route]:
        """Remove all state for a peer (session teardown); return it."""
        return self._routes.pop(peer, {})

    def __len__(self) -> int:
        return sum(len(routes) for routes in self._routes.values())


class LocRib:
    """The selected best route per prefix."""

    def __init__(self) -> None:
        self._best: dict[Prefix, Route] = {}

    def set_best(self, route: Route) -> None:
        self._best[route.prefix] = route

    def clear(self, prefix: Prefix) -> Route | None:
        return self._best.pop(prefix, None)

    def best(self, prefix: Prefix) -> Route | None:
        return self._best.get(prefix)

    def __contains__(self, prefix: Prefix) -> bool:
        return prefix in self._best

    def __len__(self) -> int:
        return len(self._best)

    def items(self) -> Iterator[tuple[Prefix, Route]]:
        return iter(self._best.items())

    def prefixes(self) -> list[Prefix]:
        return list(self._best)
