"""A BGP-4 implementation sized for simulating one AS and its neighbours.

The geo-based routing of Sec. 3.2 is "a modified Quagga software router
that acts as a route reflector".  To reproduce it faithfully — including
the hidden-routes pathology and the best-external fix — this subpackage
implements real BGP machinery:

* RFC 4271 path attributes and the full decision process,
* import/export policy (Gao-Rexford semantics, communities, ``no-export``),
* speakers with Adj-RIB-In / Loc-RIB / Adj-RIB-Out and incremental updates,
* RFC 4456 route reflection with ``ORIGINATOR_ID`` / ``CLUSTER_LIST``,
* the "best external" advertisement feature (Sec. 3.2, "Hidden routes"),
* a message engine with controllable delivery order, and
* an AS-level valley-free propagation model for the synthetic Internet.
"""

from repro.bgp.attributes import (
    NO_EXPORT,
    AsPath,
    Origin,
    Route,
)
from repro.bgp.messages import Update, Withdraw
from repro.bgp.decision import DecisionContext, best_route, decision_order
from repro.bgp.policy import ExportPolicy, ImportPolicy, RelationshipExportPolicy
from repro.bgp.rib import AdjRib, LocRib
from repro.bgp.session import Session, SessionType
from repro.bgp.router import BgpRouter
from repro.bgp.reflector import RouteReflector
from repro.bgp.engine import BgpEngine
from repro.bgp.propagation import AsLevelRoute, AsLevelRouting, compute_routes_to_origin

__all__ = [
    "Origin",
    "AsPath",
    "Route",
    "NO_EXPORT",
    "Update",
    "Withdraw",
    "best_route",
    "decision_order",
    "DecisionContext",
    "ImportPolicy",
    "ExportPolicy",
    "RelationshipExportPolicy",
    "AdjRib",
    "LocRib",
    "Session",
    "SessionType",
    "BgpRouter",
    "RouteReflector",
    "BgpEngine",
    "AsLevelRoute",
    "AsLevelRouting",
    "compute_routes_to_origin",
]
