"""Import and export policies.

Two policy idioms from operational practice are reproduced:

* On import over eBGP, routes get a LOCAL_PREF by business relationship
  (customer > peer > provider) and a community recording that relationship.
* On export over eBGP, Gao-Rexford: everything to customers; only
  customer-learned or locally originated routes to peers and providers.

The relationship community is what lets a border router, exporting a route
that arrived over iBGP, still know where the route originally entered the
AS — exactly how real networks implement valley-free export.
"""

from __future__ import annotations

import abc
from dataclasses import replace

from repro.bgp.attributes import DEFAULT_LOCAL_PREF, NO_EXPORT, Route
from repro.bgp.session import Session
from repro.net.relationships import Relationship

#: Community tags recording how a route entered the AS.
RELATIONSHIP_COMMUNITY = {
    Relationship.CUSTOMER: "rel:customer",
    Relationship.PEER: "rel:peer",
    Relationship.PROVIDER: "rel:provider",
}

#: Conventional LOCAL_PREF ladder: prefer customer, then peer, then provider.
RELATIONSHIP_LOCAL_PREF = {
    Relationship.CUSTOMER: 300,
    Relationship.PEER: 200,
    Relationship.PROVIDER: 100,
}


class ImportPolicy(abc.ABC):
    """Transforms (or rejects) a route received over a session."""

    @abc.abstractmethod
    def apply(self, route: Route, session: Session) -> Route | None:
        """The transformed route, or ``None`` to reject it."""


class ExportPolicy(abc.ABC):
    """Decides whether (and how) a route is exported over a session."""

    @abc.abstractmethod
    def apply(self, route: Route, session: Session) -> Route | None:
        """The route to send, or ``None`` to suppress the advertisement."""


class AcceptAll(ImportPolicy):
    """Accept everything unchanged."""

    def apply(self, route: Route, session: Session) -> Route | None:
        return route


class ExportAll(ExportPolicy):
    """Export everything unchanged (still subject to router mechanics)."""

    def apply(self, route: Route, session: Session) -> Route | None:
        return route


class RelationshipImportPolicy(ImportPolicy):
    """Set LOCAL_PREF and a relationship community on eBGP import.

    Parameters
    ----------
    relationships:
        Relationship of each neighbouring AS, seen from the local AS.
    local_pref:
        LOCAL_PREF per relationship; defaults to the conventional ladder.
    """

    def __init__(
        self,
        relationships: dict[int, Relationship],
        local_pref: dict[Relationship, int] | None = None,
    ) -> None:
        self._relationships = dict(relationships)
        self._local_pref = dict(local_pref or RELATIONSHIP_LOCAL_PREF)

    def relationship_of(self, peer_asn: int) -> Relationship:
        """The configured relationship of a neighbour AS.

        Raises
        ------
        KeyError
            For a neighbour with no configured relationship.
        """
        return self._relationships[peer_asn]

    def apply(self, route: Route, session: Session) -> Route | None:
        if not session.is_ebgp:
            return route
        relationship = self._relationships.get(session.peer_asn)
        if relationship is None:
            return None  # no business relationship, reject
        tagged = route.with_communities(RELATIONSHIP_COMMUNITY[relationship])
        return replace(tagged, local_pref=self._local_pref[relationship])


class RelationshipExportPolicy(ExportPolicy):
    """Gao-Rexford export over eBGP, driven by relationship communities.

    Routes originated locally (empty AS path before prepending) are always
    exportable.  Routes tagged ``rel:customer`` are exportable to anyone;
    routes tagged ``rel:peer`` or ``rel:provider`` only to customers.
    ``no-export`` always wins.
    """

    def __init__(self, relationships: dict[int, Relationship]) -> None:
        self._relationships = dict(relationships)

    def apply(self, route: Route, session: Session) -> Route | None:
        if not session.is_ebgp:
            return route
        if NO_EXPORT in route.communities:
            return None
        peer_rel = self._relationships.get(session.peer_asn)
        if peer_rel is None:
            return None
        if peer_rel is Relationship.CUSTOMER:
            return route
        originated = len(route.as_path) == 0
        from_customer = RELATIONSHIP_COMMUNITY[Relationship.CUSTOMER] in route.communities
        if originated or from_customer:
            return route
        return None


class ChainPolicy(ImportPolicy, ExportPolicy):
    """Apply several policies in order; the first rejection wins."""

    def __init__(self, *policies: ImportPolicy | ExportPolicy) -> None:
        self._policies = policies

    def apply(self, route: Route, session: Session) -> Route | None:
        current: Route | None = route
        for policy in self._policies:
            if current is None:
                return None
            current = policy.apply(current, session)
        return current


class DenyPrefixImport(ImportPolicy):
    """Reject specific prefixes on import (management-interface building block)."""

    def __init__(self, prefixes: set) -> None:
        self._prefixes = set(prefixes)

    def apply(self, route: Route, session: Session) -> Route | None:
        if route.prefix in self._prefixes:
            return None
        return route


def strip_ibgp_only_attributes(route: Route) -> Route:
    """Reset attributes that must not cross an AS boundary.

    LOCAL_PREF is iBGP-scoped; ORIGINATOR_ID / CLUSTER_LIST are reflection
    artefacts.  Called by the router when exporting over eBGP.
    """
    return replace(
        route,
        local_pref=DEFAULT_LOCAL_PREF,
        originator_id=None,
        cluster_list=(),
    )
