"""BGP UPDATE messages (announcements and withdrawals).

Also defines :class:`IgpNotification`, the intra-router event the IGP
delivers when its topology view changes: real speakers re-validate BGP
next hops and re-run selection when SPF moves (next-hop tracking / the
BGP scanner).  Modelling it as a queued message rather than a synchronous
callback means remote routers react in delivery order, which is what
creates an observable window of stale forwarding decisions after a fault.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bgp.attributes import Route
from repro.net.addressing import Prefix


@dataclass(frozen=True, slots=True)
class Update:
    """An announcement of a route, addressed between two speakers."""

    sender: str
    receiver: str
    route: Route

    @property
    def prefix(self) -> Prefix:
        return self.route.prefix

    def __str__(self) -> str:
        return f"UPDATE {self.sender}->{self.receiver}: {self.route}"


@dataclass(frozen=True, slots=True)
class Withdraw:
    """A withdrawal of a previously announced prefix."""

    sender: str
    receiver: str
    prefix: Prefix

    def __str__(self) -> str:
        return f"WITHDRAW {self.sender}->{self.receiver}: {self.prefix}"


@dataclass(frozen=True, slots=True)
class IgpNotification:
    """The IGP tells one speaker that next-hop reachability/costs changed."""

    receiver: str
    sender: str = "igp"

    def __str__(self) -> str:
        return f"IGP-EVENT ->{self.receiver}"


#: Any message kind the engine delivers.
Message = Update | Withdraw | IgpNotification
