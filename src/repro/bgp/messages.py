"""BGP UPDATE messages (announcements and withdrawals)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.bgp.attributes import Route
from repro.net.addressing import Prefix


@dataclass(frozen=True, slots=True)
class Update:
    """An announcement of a route, addressed between two speakers."""

    sender: str
    receiver: str
    route: Route

    @property
    def prefix(self) -> Prefix:
        return self.route.prefix

    def __str__(self) -> str:
        return f"UPDATE {self.sender}->{self.receiver}: {self.route}"


@dataclass(frozen=True, slots=True)
class Withdraw:
    """A withdrawal of a previously announced prefix."""

    sender: str
    receiver: str
    prefix: Prefix

    def __str__(self) -> str:
        return f"WITHDRAW {self.sender}->{self.receiver}: {self.prefix}"


#: Either message kind.
Message = Update | Withdraw
