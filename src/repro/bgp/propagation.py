"""AS-level route propagation over the synthetic Internet.

Router-level BGP is simulated only inside VNS (where the paper's
contribution lives).  For the rest of the Internet an AS-level model with
Gao-Rexford (valley-free) semantics suffices: each AS prefers customer
routes over peer routes over provider routes, then shortest AS path, then
lowest neighbour ASN — the standard abstraction for policy routing studies.

The result, per origin AS, is every AS's best AS-level route.  From these
we derive (a) the routes VNS's upstreams and peers advertise to it, and
(b) the forwarding paths the data plane walks when traffic leaves VNS or
travels natively over the Internet.
"""

from __future__ import annotations

import enum
import heapq
from dataclasses import dataclass

from repro.net.relationships import ASGraph, Relationship


class RouteKind(enum.IntEnum):
    """How a route was learned, in preference order (lower is better)."""

    ORIGIN = 0
    CUSTOMER = 1
    PEER = 2
    PROVIDER = 3


@dataclass(frozen=True, slots=True)
class AsLevelRoute:
    """An AS's best route toward an origin AS.

    ``path`` lists the ASes the route traverses, starting at the first-hop
    neighbour and ending at the origin; it is empty at the origin itself.
    """

    kind: RouteKind
    path: tuple[int, ...]

    @property
    def first_hop(self) -> int | None:
        return self.path[0] if self.path else None

    def __len__(self) -> int:
        return len(self.path)


def _tiebreak(route: AsLevelRoute) -> int:
    """A deterministic pseudo-random tie-break among equal-class routes.

    Real ties (same relationship class, same path length) are broken by
    router-level details that look arbitrary at AS granularity; a hash of
    (first hop, origin) spreads them across neighbours instead of always
    favouring the lowest ASN, which would concentrate traffic
    unrealistically.
    """
    if not route.path:
        return 0
    return ((route.path[0] * 2654435761) ^ (route.path[-1] * 2246822519)) & 0xFFFFFFFF


def _better(a: AsLevelRoute, b: AsLevelRoute) -> bool:
    """Whether ``a`` beats ``b`` under Gao-Rexford preference."""
    key_a = (int(a.kind), len(a.path), _tiebreak(a), a.path[:1])
    key_b = (int(b.kind), len(b.path), _tiebreak(b), b.path[:1])
    return key_a < key_b


def compute_routes_to_origin(graph: ASGraph, origin: int) -> dict[int, AsLevelRoute]:
    """Best valley-free route from every AS to ``origin``.

    Three phases, mirroring export rules:

    1. *customer routes* climb provider edges from the origin;
    2. *peer routes* take exactly one peering edge off a customer route;
    3. *provider routes* descend customer edges from any routed AS.

    Raises
    ------
    KeyError
        If ``origin`` is not in the graph.
    """
    if origin not in graph:
        raise KeyError(f"AS{origin} not in graph")
    routes: dict[int, AsLevelRoute] = {
        origin: AsLevelRoute(kind=RouteKind.ORIGIN, path=())
    }

    # Phase 1: customer routes propagate upward (customer -> provider).
    # Dijkstra by (path length, first hop) guarantees determinism.
    heap: list[tuple[int, tuple[int, ...], int]] = [(0, (), origin)]
    while heap:
        dist, path, asn = heapq.heappop(heap)
        current = routes.get(asn)
        if current is None or current.path != path:
            continue  # stale heap entry
        for provider in graph.providers_of(asn):
            candidate = AsLevelRoute(kind=RouteKind.CUSTOMER, path=(asn,) + path)
            existing = routes.get(provider)
            if existing is None or _better(candidate, existing):
                routes[provider] = candidate
                heapq.heappush(heap, (dist + 1, candidate.path, provider))

    # Phase 2: peer routes (one peering hop off a customer/origin route).
    customer_routed = [
        (asn, route)
        for asn, route in routes.items()
        if route.kind in (RouteKind.ORIGIN, RouteKind.CUSTOMER)
    ]
    peer_candidates: dict[int, AsLevelRoute] = {}
    for asn, route in customer_routed:
        for peer in graph.peers_of(asn):
            if peer in routes:
                continue  # already has a customer route (preferred)
            candidate = AsLevelRoute(kind=RouteKind.PEER, path=(asn,) + route.path)
            existing = peer_candidates.get(peer)
            if existing is None or _better(candidate, existing):
                peer_candidates[peer] = candidate
    routes.update(peer_candidates)

    # Phase 3: provider routes descend customer edges from any routed AS.
    heap = [
        (len(route.path), route.path, asn)
        for asn, route in routes.items()
    ]
    heapq.heapify(heap)
    while heap:
        dist, path, asn = heapq.heappop(heap)
        route = routes.get(asn)
        if route is None or len(route.path) != dist or route.path != path:
            continue
        for customer in graph.customers_of(asn):
            candidate = AsLevelRoute(kind=RouteKind.PROVIDER, path=(asn,) + path)
            existing = routes.get(customer)
            if existing is None or (
                existing.kind is RouteKind.PROVIDER and _better(candidate, existing)
            ):
                routes[customer] = candidate
                heapq.heappush(heap, (len(candidate.path), candidate.path, customer))

    return routes


class AsLevelRouting:
    """Caches per-origin routing tables for a topology's AS graph."""

    def __init__(self, graph: ASGraph) -> None:
        self._graph = graph
        self._tables: dict[int, dict[int, AsLevelRoute]] = {}

    @property
    def graph(self) -> ASGraph:
        return self._graph

    def table_for_origin(self, origin: int) -> dict[int, AsLevelRoute]:
        """Routes of every AS toward ``origin`` (computed once, cached)."""
        table = self._tables.get(origin)
        if table is None:
            table = compute_routes_to_origin(self._graph, origin)
            self._tables[origin] = table
        return table

    def route(self, from_asn: int, origin: int) -> AsLevelRoute | None:
        """``from_asn``'s best route toward ``origin`` (None if unreachable)."""
        return self.table_for_origin(origin).get(from_asn)

    def path(self, from_asn: int, origin: int) -> tuple[int, ...] | None:
        """The AS path from ``from_asn`` to ``origin`` including both ends."""
        route = self.route(from_asn, origin)
        if route is None:
            return None
        return (from_asn,) + route.path if route.path else (from_asn,)

    def exported_to_neighbor(
        self, neighbor_asn: int, relationship_of_neighbor: Relationship, origin: int
    ) -> AsLevelRoute | None:
        """The route ``neighbor_asn`` would advertise over a new session.

        ``relationship_of_neighbor`` is how *the receiving AS* sees the
        neighbour: a PROVIDER (upstream) exports everything it has; a PEER
        exports only customer routes and its own prefixes (Gao-Rexford).
        """
        route = self.route(neighbor_asn, origin)
        if route is None:
            return None
        if relationship_of_neighbor is Relationship.PROVIDER:
            return route
        if relationship_of_neighbor is Relationship.PEER:
            if route.kind in (RouteKind.ORIGIN, RouteKind.CUSTOMER):
                return route
            return None
        # The receiving AS sees the neighbour as its CUSTOMER: customers
        # also export everything they consider best?  No — a customer
        # exports only its own and its customers' routes upward.
        if route.kind in (RouteKind.ORIGIN, RouteKind.CUSTOMER):
            return route
        return None
