"""The BGP best-route decision process (RFC 4271 §9.1, plus RFC 4456).

Section 3.2 summarises the process as ordered tie-breakers: administrative
preference (LOCAL_PREF) first, then AS-path length, then "a set of measures
to ensure that inter-domain traffic exits the local AS quickly" — eBGP over
iBGP and lowest IGP metric to the next hop, i.e. hot-potato routing.  The
geo-based route reflector wins by acting at the *first* step: it assigns
LOCAL_PREF from geographic distance, so all later hot-potato steps become
irrelevant whenever geography discriminates.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

from repro.bgp.attributes import Route


def _no_igp_metric(next_hop: str) -> float:
    """Default IGP metric when the speaker has no IGP view (flat cost)."""
    return 0.0


@dataclass(slots=True)
class DecisionContext:
    """Inputs the decision process needs beyond the candidate routes.

    Parameters
    ----------
    igp_metric:
        Metric from this speaker to a BGP next hop; drives hot-potato.
    router_id:
        The local speaker's identifier (used as default originator id).
    always_compare_med:
        If true, MED is compared across neighbour ASes too (the non-default
        vendor knob); the paper's setup leaves this off.
    """

    igp_metric: Callable[[str], float] = field(default=_no_igp_metric)
    router_id: str = ""
    always_compare_med: bool = False


def _stage_max(routes: list[Route], key: Callable[[Route], float]) -> list[Route]:
    best = max(key(r) for r in routes)
    return [r for r in routes if key(r) == best]


def _stage_min(routes: list[Route], key: Callable[[Route], float]) -> list[Route]:
    best = min(key(r) for r in routes)
    return [r for r in routes if key(r) == best]


def _med_stage(routes: list[Route], always_compare: bool) -> list[Route]:
    """Keep routes that are lowest-MED within their neighbour-AS group.

    With ``always_compare`` MED becomes a global minimum instead.
    """
    if always_compare:
        return _stage_min(routes, lambda r: r.med)
    lowest_by_neighbor: dict[int | None, int] = {}
    for route in routes:
        key = route.neighbor_as
        if key not in lowest_by_neighbor or route.med < lowest_by_neighbor[key]:
            lowest_by_neighbor[key] = route.med
    return [r for r in routes if r.med == lowest_by_neighbor[r.neighbor_as]]


def decision_order(routes: Sequence[Route], ctx: DecisionContext) -> list[Route]:
    """All candidates that survive the decision process, best first.

    The first element is the best route; remaining elements are the other
    survivors of the last discriminating stage, in deterministic order.
    """
    if not routes:
        return []
    survivors = list(routes)

    # 0. Next-hop resolvability (RFC 4271 §9.1.2): a route whose next hop
    #    the IGP cannot reach is ineligible.  Applied only while some
    #    candidate *is* reachable — a speaker whose whole IGP view is gone
    #    (an out-of-band reflector at a failed PoP) keeps its table rather
    #    than withdrawing the world, and a prefix whose every egress is
    #    stranded stays visibly routed-but-blackholed instead of vanishing.
    reachable = [r for r in survivors if ctx.igp_metric(r.next_hop) != float("inf")]
    if reachable:
        survivors = reachable

    # 1. Highest LOCAL_PREF.
    survivors = _stage_max(survivors, lambda r: r.local_pref)
    # 2. Shortest AS_PATH.
    survivors = _stage_min(survivors, lambda r: len(r.as_path))
    # 3. Lowest ORIGIN (IGP < EGP < INCOMPLETE).
    survivors = _stage_min(survivors, lambda r: int(r.origin))
    # 4. Lowest MED among routes from the same neighbour AS.
    survivors = _med_stage(survivors, ctx.always_compare_med)
    # 5. eBGP-learned over iBGP-learned.
    if any(r.ebgp for r in survivors):
        survivors = [r for r in survivors if r.ebgp]
    # 6. Lowest IGP metric to the BGP next hop (hot potato).
    survivors = _stage_min(survivors, lambda r: ctx.igp_metric(r.next_hop))
    # 7. Shortest CLUSTER_LIST (RFC 4456 §9).
    survivors = _stage_min(survivors, lambda r: len(r.cluster_list))
    # 8. Lowest originator router id, then lowest peer id.  The AS path
    #    itself closes the order (a speaker never holds two routes from
    #    the same peer for one prefix, but the function stays total).
    survivors.sort(
        key=lambda r: (
            r.originator_id or r.learned_from or "",
            r.learned_from or "",
            str(r.next_hop),
            r.as_path.asns,
            r.med,
        )
    )
    return survivors


def best_route(routes: Sequence[Route], ctx: DecisionContext | None = None) -> Route | None:
    """The single best route among ``routes`` (``None`` if empty)."""
    if ctx is None:
        ctx = DecisionContext()
    ordered = decision_order(routes, ctx)
    return ordered[0] if ordered else None


def best_external(routes: Sequence[Route], ctx: DecisionContext | None = None) -> Route | None:
    """The best route among the eBGP-learned candidates only.

    This is what the "BGP best external" feature advertises into iBGP when
    the overall best route is iBGP-learned, keeping externally learned
    routes visible to route reflectors (the paper's hidden-routes fix).
    """
    externals = [r for r in routes if r.ebgp]
    if not externals:
        return None
    return best_route(externals, ctx)
