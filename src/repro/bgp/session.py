"""BGP session descriptors."""

from __future__ import annotations

import enum
from dataclasses import dataclass


class SessionType(enum.Enum):
    """Whether a session crosses an AS boundary."""

    EBGP = "eBGP"
    IBGP = "iBGP"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True, slots=True)
class Session:
    """One side of a BGP session, as configured on a speaker.

    Parameters
    ----------
    peer_id:
        The remote speaker's identifier.
    session_type:
        eBGP or iBGP.
    peer_asn:
        The remote AS number (equals the local ASN for iBGP).
    rr_client:
        On a route reflector: whether the remote speaker is a client.
        Ignored on ordinary speakers.
    """

    peer_id: str
    session_type: SessionType
    peer_asn: int
    rr_client: bool = False

    @property
    def is_ebgp(self) -> bool:
        return self.session_type is SessionType.EBGP

    @property
    def is_ibgp(self) -> bool:
        return self.session_type is SessionType.IBGP
