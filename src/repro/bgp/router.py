"""A BGP speaker with full RIBs and incremental update generation.

The speaker implements the mechanics the paper's setup relies on:

* RFC 4271 decision process with hot-potato IGP tie-break,
* next-hop-self toward iBGP (as border routers in VNS do),
* standard iBGP re-advertisement rules (eBGP-learned and locally
  originated routes only — which is what *hides* routes once a reflector
  is involved), and
* the "best external" feature: when the overall best route is
  iBGP-learned, the best eBGP-learned route is advertised into iBGP
  anyway, undoing the hidden-routes problem of Sec. 3.2.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import replace

from repro.bgp.attributes import DEFAULT_LOCAL_PREF, NO_EXPORT, AsPath, Origin, Route
from repro.bgp.decision import DecisionContext, best_external, best_route
from repro.bgp.messages import IgpNotification, Message, Update, Withdraw
from repro.bgp.policy import (
    AcceptAll,
    ExportAll,
    ExportPolicy,
    ImportPolicy,
    strip_ibgp_only_attributes,
)
from repro.bgp.rib import AdjRib, LocRib
from repro.bgp.session import Session, SessionType
from repro.geo.coords import GeoPoint
from repro.net.addressing import Prefix


class BgpRouter:
    """One BGP speaker.

    Parameters
    ----------
    router_id:
        Unique identifier; doubles as the next-hop value the router writes
        when applying next-hop-self.
    asn:
        The local AS number.
    location:
        Where the router physically sits (used by geo-aware reflectors and
        by the data plane).
    import_policy / export_policy:
        Policy hooks; default accept/export-all.
    igp_metric:
        Metric from this router to a BGP next hop (router id); drives the
        hot-potato tie-break.  Defaults to a flat metric.
    enable_best_external:
        Advertise the best eBGP-learned route into iBGP when the overall
        best is iBGP-learned.
    """

    def __init__(
        self,
        router_id: str,
        asn: int,
        *,
        location: GeoPoint | None = None,
        import_policy: ImportPolicy | None = None,
        export_policy: ExportPolicy | None = None,
        igp_metric: Callable[[str], float] | None = None,
        enable_best_external: bool = False,
    ) -> None:
        self.router_id = router_id
        self.asn = asn
        self.location = location
        self.import_policy = import_policy or AcceptAll()
        self.export_policy = export_policy or ExportAll()
        self.enable_best_external = enable_best_external
        self.sessions: dict[str, Session] = {}
        #: Sessions administratively/operationally down (fault injection);
        #: configuration is retained so the session can come back.
        self.down_sessions: set[str] = set()
        self.adj_rib_in = AdjRib()
        self.adj_rib_out = AdjRib()
        self.loc_rib = LocRib()
        self.originated: dict[Prefix, Route] = {}
        self._igp_metric = igp_metric or (lambda next_hop: 0.0)

    # ------------------------------------------------------------------ #
    # configuration
    # ------------------------------------------------------------------ #

    def add_session(self, session: Session) -> None:
        """Configure a session toward ``session.peer_id``.

        Raises
        ------
        ValueError
            If a session to that peer already exists.
        """
        if session.peer_id in self.sessions:
            raise ValueError(
                f"{self.router_id} already has a session to {session.peer_id}"
            )
        self.sessions[session.peer_id] = session

    def session_to(self, peer_id: str) -> Session:
        """The configured session to ``peer_id``.

        Raises
        ------
        KeyError
            If no session to that peer exists.
        """
        return self.sessions[peer_id]

    def set_igp_metric_fn(self, fn: Callable[[str], float]) -> None:
        """Install the IGP metric callback (e.g. after SPF is computed)."""
        self._igp_metric = fn

    def fail_session(
        self, peer_id: str
    ) -> tuple[dict[Prefix, Route], list[Message]]:
        """Take the session to ``peer_id`` down (link/peer failure).

        Every route learned from the peer is invalidated and the decision
        process re-runs for the affected prefixes, exactly as if the peer
        had withdrawn them; state advertised *to* the peer is flushed.
        Returns the dropped Adj-RIB-In snapshot (so a later
        :meth:`restore_session` can replay the peer's table without
        re-modelling the neighbour) and the triggered messages.

        Raises
        ------
        KeyError
            If no session to that peer is configured.
        """
        self.session_to(peer_id)  # validates
        self.down_sessions.add(peer_id)
        snapshot = self.adj_rib_in.drop_peer(peer_id)
        self.adj_rib_out.drop_peer(peer_id)
        messages: list[Message] = []
        for prefix in sorted(snapshot):
            messages.extend(self._decide(prefix))
        return snapshot, messages

    def restore_session(
        self, peer_id: str, routes: dict[Prefix, Route]
    ) -> list[Message]:
        """Bring the session to ``peer_id`` back with the peer's table.

        ``routes`` is typically the snapshot :meth:`fail_session`
        returned (the neighbour re-sends what it had).  The full
        advertisement recomputation also replays this speaker's own table
        toward the restored peer — the initial transfer of session
        re-establishment.

        Raises
        ------
        KeyError
            If no session to that peer is configured.
        """
        self.session_to(peer_id)  # validates
        self.down_sessions.discard(peer_id)
        for route in routes.values():
            self.adj_rib_in.update(peer_id, route)
        return self.refresh_advertisements()

    # ------------------------------------------------------------------ #
    # route origination and message processing
    # ------------------------------------------------------------------ #

    def originate(self, prefix: Prefix, communities: frozenset[str] = frozenset()) -> list[Message]:
        """Originate ``prefix`` locally and return the resulting updates."""
        route = Route(
            prefix=prefix,
            as_path=AsPath(),
            next_hop=self.router_id,
            origin=Origin.IGP,
            local_pref=DEFAULT_LOCAL_PREF,
            communities=communities,
        )
        self.originated[prefix] = route
        return self._decide(prefix)

    def withdraw_origination(self, prefix: Prefix) -> list[Message]:
        """Stop originating ``prefix``; return the resulting updates."""
        if prefix in self.originated:
            del self.originated[prefix]
        return self._decide(prefix)

    def bulk_receive(self, messages: list[Message]) -> None:
        """Install many incoming updates without running the decision process.

        Used for the initial table transfer at session establishment: real
        BGP speakers also defer/batch best-path runs during bulk transfers.
        Call :meth:`refresh_advertisements` afterwards to decide and
        advertise.

        Raises
        ------
        KeyError
            If a message arrives from a peer with no configured session.
        """
        for message in messages:
            session = self.sessions[message.sender]
            if isinstance(message, Withdraw):
                self.adj_rib_in.withdraw(message.sender, message.prefix)
                continue
            route = message.route
            if not self._acceptable(route, session):
                self.adj_rib_in.withdraw(message.sender, route.prefix)
                continue
            received = self._import(route, session)
            if received is None:
                self.adj_rib_in.withdraw(message.sender, route.prefix)
                continue
            self.adj_rib_in.update(message.sender, received)

    def process(self, message: Message) -> list[Message]:
        """Handle one incoming message; return the messages it triggers.

        Raises
        ------
        KeyError
            If the message arrives from a peer with no configured session.
        """
        if isinstance(message, IgpNotification):
            # SPF moved: re-validate next hops and re-run selection for
            # everything, exactly like next-hop tracking / the BGP scanner.
            return self.refresh_advertisements()
        session = self.sessions[message.sender]
        if message.sender in self.down_sessions:
            return []  # in-flight message from a session that has failed
        if isinstance(message, Withdraw):
            removed = self.adj_rib_in.withdraw(message.sender, message.prefix)
            if removed is None:
                return []
            return self._decide(message.prefix)
        route = message.route
        if not self._acceptable(route, session):
            # A rejected update still implicitly replaces (removes) any
            # previous route from this peer for the prefix.
            had = self.adj_rib_in.withdraw(message.sender, route.prefix)
            return self._decide(route.prefix) if had is not None else []
        received = self._import(route, session)
        if received is None:
            had = self.adj_rib_in.withdraw(message.sender, route.prefix)
            return self._decide(route.prefix) if had is not None else []
        self.adj_rib_in.update(message.sender, received)
        return self._decide(route.prefix)

    def _acceptable(self, route: Route, session: Session) -> bool:
        """Wire-level sanity checks (loop prevention)."""
        if session.is_ebgp and route.as_path.has_loop(self.asn):
            return False
        if session.is_ibgp and route.originator_id == self.router_id:
            return False
        return True

    def _import(self, route: Route, session: Session) -> Route | None:
        """Apply import policy and stamp reception metadata."""
        if session.is_ebgp:
            # LOCAL_PREF is not carried over eBGP.
            route = replace(route, local_pref=DEFAULT_LOCAL_PREF)
        imported = self.import_policy.apply(route, session)
        if imported is None:
            return None
        imported = imported.received(
            learned_from=session.peer_id, ebgp=session.is_ebgp
        )
        return self.transform_imported(imported, session)

    def transform_imported(self, route: Route, session: Session) -> Route | None:
        """Hook for subclasses (the geo reflector rewrites LOCAL_PREF here)."""
        return route

    # ------------------------------------------------------------------ #
    # decision and advertisement
    # ------------------------------------------------------------------ #

    def _candidates(self, prefix: Prefix) -> list[Route]:
        candidates = self.adj_rib_in.routes_for(prefix)
        if prefix in self.originated:
            candidates.append(self.originated[prefix])
        return candidates

    def best(self, prefix: Prefix) -> Route | None:
        """The currently selected best route for ``prefix``."""
        return self.loc_rib.best(prefix)

    def _decision_context(self) -> DecisionContext:
        return DecisionContext(igp_metric=self._igp_metric, router_id=self.router_id)

    def _decide(self, prefix: Prefix) -> list[Message]:
        """Re-run selection for ``prefix`` and diff the advertisements."""
        candidates = self._candidates(prefix)
        ctx = self._decision_context()
        best = best_route(candidates, ctx)
        if best is None:
            self.loc_rib.clear(prefix)
        else:
            self.loc_rib.set_best(best)
        # The iBGP payload is identical for every iBGP session (modulo
        # split horizon / reflection gating), so prepare it once.
        payload, source_peer, from_client = self._ibgp_payload(best, candidates, ctx)
        messages: list[Message] = []
        for peer_id, session in self.sessions.items():
            if session.is_ebgp:
                desired = None if best is None else self._ebgp_advertisement(session, best)
            else:
                desired = self._ibgp_desired(session, payload, source_peer, from_client)
            self._emit(peer_id, prefix, desired, messages)
        return messages

    def refresh_advertisements(self) -> list[Message]:
        """Recompute every advertisement (e.g. after a policy change)."""
        messages: list[Message] = []
        prefixes = set(self.adj_rib_in.prefixes()) | set(self.originated)
        prefixes |= set(self.loc_rib.prefixes())
        for prefix in sorted(prefixes):
            messages.extend(self._decide(prefix))
        return messages

    def _emit(
        self,
        peer_id: str,
        prefix: Prefix,
        desired: Route | None,
        messages: list[Message],
    ) -> None:
        if peer_id in self.down_sessions:
            return  # nothing crosses a down session
        current = self.adj_rib_out.route(peer_id, prefix)
        if desired is None:
            if current is not None:
                self.adj_rib_out.withdraw(peer_id, prefix)
                messages.append(
                    Withdraw(sender=self.router_id, receiver=peer_id, prefix=prefix)
                )
            return
        if current == desired:
            return
        self.adj_rib_out.update(peer_id, desired)
        messages.append(Update(sender=self.router_id, receiver=peer_id, route=desired))

    def _ebgp_advertisement(self, session: Session, best: Route) -> Route | None:
        if best.learned_from == session.peer_id:
            return None  # split horizon
        if NO_EXPORT in best.communities:
            return None
        exported = self.export_policy.apply(best, session)
        if exported is None:
            return None
        cleaned = strip_ibgp_only_attributes(exported)
        return replace(
            cleaned,
            as_path=cleaned.as_path.prepend(self.asn),
            next_hop=self.router_id,
            learned_from=None,
            ebgp=False,
        )

    def _ibgp_payload(
        self,
        best: Route | None,
        candidates: list[Route],
        ctx: DecisionContext,
    ) -> tuple[Route | None, str | None, bool]:
        """The route this speaker currently offers into iBGP.

        Returns ``(payload, source_peer, from_client)``; ``source_peer``
        drives split horizon and ``from_client`` reflection gating (always
        True for ordinary speakers, which advertise to every iBGP peer).
        """
        if best is None:
            return None, None, True
        candidate: Route | None
        if best.ebgp or best.learned_from is None:
            candidate = best
        elif self.enable_best_external:
            candidate = best_external(candidates, ctx)
        else:
            # Standard rule: iBGP-learned routes are not re-advertised into
            # iBGP by an ordinary speaker.  This is the hidden-routes hazard.
            candidate = None
        if candidate is None:
            return None, None, True
        # Border routers apply next-hop-self toward iBGP.
        payload = replace(
            candidate,
            next_hop=self.router_id,
            learned_from=None,
            ebgp=False,
        )
        return payload, candidate.learned_from, True

    def _ibgp_desired(
        self,
        session: Session,
        payload: Route | None,
        source_peer: str | None,
        from_client: bool,
    ) -> Route | None:
        """Gate the shared iBGP payload for one session."""
        if payload is None:
            return None
        if source_peer is not None and source_peer == session.peer_id:
            return None  # split horizon
        return self.export_policy.apply(payload, session)

    def __repr__(self) -> str:
        return f"<BgpRouter {self.router_id} AS{self.asn}>"
