"""A message engine driving a set of BGP speakers to convergence.

Delivery is FIFO by default, which makes runs deterministic and lets tests
construct the exact arrival orders that expose order-dependent behaviour
(the hidden-routes pathology of Sec. 3.2 only bites when the reflector
hears the farther egress first).

Messages addressed to identifiers with no registered router — external
eBGP neighbours — are collected in :attr:`BgpEngine.external_outbox`, so a
simulation can inspect exactly what the AS announces to the outside.
"""

from __future__ import annotations

import time
from collections import Counter, deque
from collections.abc import Iterable

from repro.bgp.messages import Message
from repro.bgp.router import BgpRouter
from repro.perf import counters as perf


class ConvergenceError(RuntimeError):
    """Raised when the engine exhausts its message budget.

    Carries a snapshot of the engine state so a non-converging fault
    scenario can be debugged from the exception alone:

    Attributes
    ----------
    delivered:
        Messages delivered by the failing :meth:`BgpEngine.run` call
        (always exactly the ``max_messages`` budget).
    total_delivered:
        The engine's cumulative delivery count over its whole lifetime
        (:attr:`BgpEngine.delivered`), across all ``run`` calls.
    pending:
        Messages still queued.
    queue_depths:
        Pending-message count per receiver, deepest queues first.
    last_message:
        The last message delivered (``None`` if none were).
    """

    def __init__(
        self,
        message: str,
        *,
        delivered: int = 0,
        total_delivered: int = 0,
        pending: int = 0,
        queue_depths: dict[str, int] | None = None,
        last_message: Message | None = None,
    ) -> None:
        super().__init__(message)
        self.delivered = delivered
        self.total_delivered = total_delivered
        self.pending = pending
        self.queue_depths = dict(queue_depths or {})
        self.last_message = last_message


class BgpEngine:
    """Holds routers, queues messages, and runs to convergence."""

    def __init__(self) -> None:
        self.routers: dict[str, BgpRouter] = {}
        self.queue: deque[Message] = deque()
        self.external_outbox: list[Message] = []
        self.delivered = 0
        self.last_delivered: Message | None = None

    def add_router(self, router: BgpRouter) -> None:
        """Register a router.

        Raises
        ------
        ValueError
            If a router with the same id is already registered.
        """
        if router.router_id in self.routers:
            raise ValueError(f"duplicate router id {router.router_id!r}")
        self.routers[router.router_id] = router

    def router(self, router_id: str) -> BgpRouter:
        """Look up a registered router.

        Raises
        ------
        KeyError
            For an unknown id.
        """
        return self.routers[router_id]

    def inject(self, messages: Iterable[Message] | Message) -> None:
        """Queue messages for delivery (e.g. eBGP updates from outside)."""
        if isinstance(messages, (list, tuple)):
            self.queue.extend(messages)
        elif hasattr(messages, "__iter__"):
            self.queue.extend(messages)  # type: ignore[arg-type]
        else:
            self.queue.append(messages)  # type: ignore[arg-type]

    @property
    def converged(self) -> bool:
        """True when no messages are in flight."""
        return not self.queue

    def step(self) -> bool:
        """Deliver one message; return False if the queue was empty."""
        if not self.queue:
            return False
        message = self.queue.popleft()
        self.delivered += 1
        self.last_delivered = message
        receiver = self.routers.get(message.receiver)
        if receiver is None:
            self.external_outbox.append(message)
            return True
        produced = receiver.process(message)
        self.queue.extend(produced)
        return True

    def run(self, max_messages: int = 5_000_000) -> int:
        """Deliver messages until convergence; return the count delivered.

        The budget is exact: at most ``max_messages`` messages are
        delivered by this call, and the error (if any) is raised with the
        budget fully spent but never overdrawn.

        Raises
        ------
        ConvergenceError
            If the queue is still non-empty after ``max_messages``
            deliveries, which for this policy-stable configuration
            indicates a bug, not MED oscillation.
        """
        start = time.perf_counter() if perf.enabled else 0.0
        count = 0
        while self.queue:
            if count >= max_messages:
                depths = self.pending_by_receiver()
                deepest = ", ".join(
                    f"{receiver}:{depth}"
                    for receiver, depth in list(depths.items())[:5]
                )
                raise ConvergenceError(
                    f"no convergence after {max_messages} messages"
                    f" ({len(self.queue)} still pending; deepest queues"
                    f" [{deepest}]; last delivered: {self.last_delivered})",
                    delivered=count,
                    total_delivered=self.delivered,
                    pending=len(self.queue),
                    queue_depths=depths,
                    last_message=self.last_delivered,
                )
            self.step()
            count += 1
        if perf.enabled:
            perf.add_time("bgp.engine.run", time.perf_counter() - start)
            perf.incr("bgp.engine.delivered", count)
        return count

    def pending_by_receiver(self) -> dict[str, int]:
        """Pending-message count per receiver, deepest queues first."""
        return dict(Counter(m.receiver for m in self.queue).most_common())
