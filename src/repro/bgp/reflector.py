"""RFC 4456 route reflection.

The reflector relaxes the iBGP re-advertisement rule: routes learned from
clients are reflected to everyone, routes learned from non-clients to
clients only.  ORIGINATOR_ID and CLUSTER_LIST prevent loops.  Unlike a
border router, a reflector does *not* set next-hop-self, so clients resolve
the original egress router as next hop — which is what makes the geo
reflector's distance computation (egress location vs prefix location)
meaningful, and what keeps the hot-potato IGP tie-break working for clients
when local preferences tie.
"""

from __future__ import annotations

from dataclasses import replace

from repro.bgp.attributes import Route
from repro.bgp.decision import DecisionContext
from repro.bgp.router import BgpRouter
from repro.bgp.session import Session
from repro.net.addressing import Prefix


class RouteReflector(BgpRouter):
    """A route reflector.

    Parameters
    ----------
    cluster_id:
        RFC 4456 cluster identifier; defaults to the router id.  Deploying
        multiple reflectors with distinct cluster ids (as the paper's
        footnote describes for operational stability) is supported.
    """

    def __init__(self, router_id: str, asn: int, *, cluster_id: str | None = None, **kwargs) -> None:
        super().__init__(router_id, asn, **kwargs)
        self.cluster_id = cluster_id or router_id

    def _acceptable(self, route: Route, session: Session) -> bool:
        if not super()._acceptable(route, session):
            return False
        if session.is_ibgp and self.cluster_id in route.cluster_list:
            return False  # cluster loop
        return True

    def _ibgp_payload(
        self,
        best: Route | None,
        candidates: list[Route],
        ctx: DecisionContext,
    ) -> tuple[Route | None, str | None, bool]:
        """RFC 4456: reflect the best route, preserving its next hop.

        Unlike an ordinary speaker, a reflector re-advertises iBGP-learned
        routes — to everyone when learned from a client, to clients only
        when learned from a non-client.
        """
        if best is None:
            return None, None, True
        if best.ebgp or best.learned_from is None:
            # eBGP-learned or locally originated: plain iBGP advertisement,
            # but a reflector does not rewrite the next hop.
            payload = replace(best, learned_from=None, ebgp=False)
            return payload, best.learned_from, True
        learned_session = self.sessions.get(best.learned_from)
        from_client = learned_session is not None and learned_session.rr_client
        originator = best.originator_id or best.learned_from or self.router_id
        reflected = best.reflected(originator=originator, cluster_id=self.cluster_id)
        payload = replace(reflected, learned_from=None, ebgp=False)
        return payload, best.learned_from, from_client

    def _ibgp_desired(
        self,
        session: Session,
        payload: Route | None,
        source_peer: str | None,
        from_client: bool,
    ) -> Route | None:
        if payload is None:
            return None
        if source_peer is not None and source_peer == session.peer_id:
            return None  # never reflect back to the sender ("except A")
        if not from_client and not session.rr_client:
            return None  # non-client -> non-client is not reflected
        return self.export_policy.apply(payload, session)

    def clients(self) -> list[str]:
        """Peer ids of all configured reflection clients."""
        return [s.peer_id for s in self.sessions.values() if s.rr_client]

    def hidden_route_check(self, prefix: Prefix) -> bool:
        """Whether the reflector knows more than one route for ``prefix``.

        A single known route for a multi-homed prefix is the smell of the
        hidden-routes problem; useful for diagnostics and tests.
        """
        return len(self.adj_rib_in.routes_for(prefix)) > 1
