"""Video/audio codec profiles.

"The clients use actual recordings of 720p and 1080p HD video conferences
as input."  We model a recording by its steady-state packetisation: a
1080p conference stream at ~4 Mb/s in ~1200-byte RTP packets runs at
~420 packets/s; 720p at ~2.5 Mb/s runs at ~260 packets/s — "720p video
streams experience more jitter since they consist of fewer video packets"
falls straight out of the lower rate.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class VideoProfile:
    """Steady-state packetisation of a conference stream."""

    name: str
    bitrate_bps: float
    packet_bytes: int
    is_video: bool = True

    def __post_init__(self) -> None:
        if self.bitrate_bps <= 0:
            raise ValueError(f"bitrate must be positive, got {self.bitrate_bps!r}")
        if self.packet_bytes <= 0:
            raise ValueError(f"packet size must be positive, got {self.packet_bytes!r}")

    @property
    def packets_per_second(self) -> float:
        """Packet rate implied by bitrate and packet size."""
        return self.bitrate_bps / (8.0 * self.packet_bytes)

    def packets_in(self, duration_s: float) -> int:
        """Packet count for a stream of the given duration.

        Raises
        ------
        ValueError
            For negative duration.
        """
        if duration_s < 0:
            raise ValueError(f"duration must be non-negative, got {duration_s!r}")
        return int(round(self.packets_per_second * duration_s))

    def __str__(self) -> str:
        return self.name


#: Full-HD conference video, the paper's primary workload.
PROFILE_1080P = VideoProfile(name="1080p", bitrate_bps=4_000_000, packet_bytes=1190)

#: HD-ready conference video.
PROFILE_720P = VideoProfile(name="720p", bitrate_bps=2_500_000, packet_bytes=1190)

#: Conference audio (the paper observed no loss-rate difference between
#: audio and video packets; we model audio for completeness).
AUDIO_OPUS = VideoProfile(
    name="opus-audio", bitrate_bps=64_000, packet_bytes=160, is_video=False
)
