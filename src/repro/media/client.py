"""The instrumented measurement client of Sec. 5.1.

Streams a pre-recorded conference to an echo server and measures loss and
jitter, logging lost packets per five-second slot ("we split each
two-minute measurement period into 24 five-second long slots and record
loss in each slot").  A session is bidirectional: the outbound stream
crosses the forward path and the echoed stream crosses the reverse path.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dataplane.path import DataPath
from repro.dataplane.transmit import StreamResult, simulate_stream
from repro.media.codec import VideoProfile
from repro.media.rtp import RtpSession, RtpStreamSpec, new_ssrc
from repro.media.sip import CallState, EchoServer, SipClient


@dataclass(slots=True)
class SessionMeasurement:
    """What the client logs for one echo session."""

    client_name: str
    server: str
    profile: VideoProfile
    outbound: StreamResult
    inbound: StreamResult
    call_established: bool

    @property
    def loss_percent_out(self) -> float:
        return self.outbound.loss_percent

    @property
    def loss_percent_in(self) -> float:
        return self.inbound.loss_percent

    @property
    def lossy_slots_out(self) -> int:
        return self.outbound.lossy_slots

    @property
    def jitter_p95_ms(self) -> float:
        return max(self.outbound.jitter_p95_ms, self.inbound.jitter_p95_ms)

    @property
    def rtt_ms(self) -> float:
        return self.outbound.rtt_ms


def reverse_path(path: DataPath) -> DataPath:
    """The same segments walked in the opposite direction."""
    from repro.dataplane.link import PathSegment

    reversed_segments = [
        PathSegment(
            kind=segment.kind,
            start=segment.end,
            end=segment.start,
            as_type=segment.as_type,
            owner_type=segment.owner_type,
            label=f"rev:{segment.label}",
        )
        for segment in reversed(path.segments)
    ]
    return DataPath(segments=reversed_segments, description=f"rev:{path.description}")


class InstrumentedClient:
    """A streaming client that measures what it sends and receives."""

    def __init__(self, name: str, *, rng: np.random.Generator) -> None:
        self.name = name
        self.rng = rng
        self.sip = SipClient(uri=f"sip:{name}@vns-measure")

    def run_session(
        self,
        server: EchoServer,
        path: DataPath,
        profile: VideoProfile,
        *,
        duration_s: float = 120.0,
        hour_cet: float = 12.0,
    ) -> SessionMeasurement | None:
        """One echo session over ``path``; ``None`` if call setup failed.

        The echoed (inbound) stream independently samples the reverse
        path: forward and reverse congestion are correlated in time but
        not packet-by-packet.
        """
        call = self.sip.invite(
            server, profile, path, hour_cet=hour_cet, rng=self.rng
        )
        if call.state is not CallState.ESTABLISHED:
            return None
        spec = RtpStreamSpec(
            ssrc=new_ssrc(self.rng), profile=profile, duration_s=duration_s
        )
        outbound = simulate_stream(
            path,
            duration_s=duration_s,
            packets_per_second=profile.packets_per_second,
            slot_s=spec.slot_s,
            hour_cet=hour_cet,
            rng=self.rng,
        )
        inbound = simulate_stream(
            reverse_path(path),
            duration_s=duration_s,
            packets_per_second=profile.packets_per_second,
            slot_s=spec.slot_s,
            hour_cet=hour_cet,
            rng=self.rng,
        )
        # Mirror the counts into RTP receiver accounting (the instrumented
        # client reads its numbers off the RTP session, as real tools do).
        session = RtpSession(spec=spec)
        for i, lost in enumerate(outbound.slot_losses[: spec.n_slots]):
            capacity = spec.packets_in_slot(i)
            session.record_slot(capacity - min(int(lost), capacity))
        self.sip.bye(call, path, hour_cet=hour_cet, rng=self.rng)
        return SessionMeasurement(
            client_name=self.name,
            server=server.uri,
            profile=profile,
            outbound=outbound,
            inbound=inbound,
            call_established=True,
        )
