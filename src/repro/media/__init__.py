"""Media plane: codecs, RTP, SIP, TURN relays, measurement clients.

The Sec. 5.1 experiment uses "custom-made software tools capable of
running Session Initiation Protocol (SIP) and Real Time Protocol (RTP)
media streaming, instrumented to measure packet loss and jitter", with
"SIP media servers programmed to stream back any incoming video stream to
the source address".  This subpackage reproduces those tools on top of
the data-plane simulator.
"""

from repro.media.codec import (
    AUDIO_OPUS,
    PROFILE_1080P,
    PROFILE_720P,
    VideoProfile,
)
from repro.media.rtp import RtpSession, RtpStreamSpec
from repro.media.sip import EchoServer, SipCall, SipClient, SipResponse
from repro.media.turn import TurnRelay, TurnService
from repro.media.client import InstrumentedClient, SessionMeasurement

__all__ = [
    "VideoProfile",
    "PROFILE_1080P",
    "PROFILE_720P",
    "AUDIO_OPUS",
    "RtpStreamSpec",
    "RtpSession",
    "SipClient",
    "SipCall",
    "SipResponse",
    "EchoServer",
    "TurnRelay",
    "TurnService",
    "InstrumentedClient",
    "SessionMeasurement",
]
