"""TURN relays and the anycast TURN service.

"User media traffic is pooled from arbitrary Internet locations into VNS
network using transport- or application-layer media relays, such as TURN
relays" (Sec. 3.1); "there is a TURN server in each PoP and all of them
use the same anycast address" (Sec. 4.4).  Relays also provide "user
authentication and access control", which we model as an allocation
ledger keyed by credentials.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.geo.coords import GeoPoint
from repro.net.addressing import IPv4Address, Prefix
from repro.vns.pop import POPS, PoP
from repro.vns.service import VideoNetworkService


@dataclass(slots=True)
class Allocation:
    """One TURN allocation (RFC 5766 ALLOCATE result)."""

    username: str
    relay: "TurnRelay"
    relayed_port: int

    def __str__(self) -> str:
        return f"{self.username}@{self.relay.pop_code}:{self.relayed_port}"


class TurnRelay:
    """The TURN server at one PoP."""

    def __init__(self, pop_code: str, *, credentials: set[str] | None = None) -> None:
        self.pop_code = pop_code
        self.credentials = set(credentials) if credentials else None
        self.allocations: list[Allocation] = []
        self.auth_failures = 0
        self._next_port = 49152

    def allocate(self, username: str) -> Allocation | None:
        """Authenticate and allocate; ``None`` on authentication failure.

        With no credential set configured, the relay is open (the
        experiments authenticate out of band).
        """
        if self.credentials is not None and username not in self.credentials:
            self.auth_failures += 1
            return None
        allocation = Allocation(
            username=username, relay=self, relayed_port=self._next_port
        )
        self._next_port += 2  # RTP/RTCP pair
        self.allocations.append(allocation)
        return allocation

    @property
    def allocation_count(self) -> int:
        return len(self.allocations)


class TurnService:
    """The anycast TURN service spanning every PoP."""

    def __init__(self, service: VideoNetworkService) -> None:
        self.service = service
        self.anycast_prefix: Prefix = service.deployment.anycast_prefix
        self.relays: dict[str, TurnRelay] = {
            pop.code: TurnRelay(pop.code) for pop in POPS
        }

    @property
    def anycast_address(self) -> IPv4Address:
        """The shared service address users target."""
        return self.anycast_prefix.probe_address

    def request(
        self, username: str, user_asn: int, user_location: GeoPoint
    ) -> tuple[Allocation | None, PoP | None]:
        """An authentication/allocation request from a user.

        Anycast routing decides which PoP's relay answers; the allocation
        is made there.  Returns ``(allocation, pop)``.
        """
        pop = self.service.anycast.entry_pop(user_asn, user_location)
        if pop is None:
            return None, None
        allocation = self.relays[pop.code].allocate(username)
        return allocation, pop

    def requests_by_pop(self) -> dict[str, int]:
        """How many allocations each PoP's relay has served."""
        return {code: relay.allocation_count for code, relay in self.relays.items()}
