"""A miniature SIP layer: clients, calls, and echo servers.

Enough of RFC 3261 to make the Sec. 5.1 experiment faithful in shape: an
INVITE/200/ACK handshake establishes a call; BYE tears it down; the echo
server answers every INVITE and "stream[s] back any incoming video stream
to the source address".  Signalling travels over the same data path as
media (and can therefore fail), which the harness must tolerate just like
the real tooling did.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.dataplane.path import DataPath
from repro.media.codec import VideoProfile


class SipMethod(enum.Enum):
    INVITE = "INVITE"
    ACK = "ACK"
    BYE = "BYE"

    def __str__(self) -> str:
        return self.value


class SipResponse(enum.IntEnum):
    """The response classes the simulation distinguishes."""

    TRYING = 100
    RINGING = 180
    OK = 200
    REQUEST_TIMEOUT = 408
    SERVER_ERROR = 500

    @property
    def is_success(self) -> bool:
        return self == SipResponse.OK


class CallState(enum.Enum):
    IDLE = "idle"
    INVITING = "inviting"
    ESTABLISHED = "established"
    TERMINATED = "terminated"
    FAILED = "failed"

    def __str__(self) -> str:
        return self.value


@dataclass(slots=True)
class SipCall:
    """One call's signalling state."""

    call_id: str
    from_uri: str
    to_uri: str
    profile: VideoProfile
    state: CallState = CallState.IDLE
    transcript: list[str] = field(default_factory=list)

    def _log(self, line: str) -> None:
        self.transcript.append(line)


class EchoServer:
    """A SIP media server that answers calls and echoes media.

    Parameters
    ----------
    uri:
        The server's SIP URI, e.g. ``"sip:echo-ams1@vns.example"``.
    pop_code:
        The VNS PoP hosting the server.
    """

    def __init__(self, uri: str, pop_code: str) -> None:
        self.uri = uri
        self.pop_code = pop_code
        self.answered = 0

    def handle_invite(self, call: SipCall) -> SipResponse:
        """Answer an INVITE: the echo server accepts every call."""
        self.answered += 1
        call._log(f"<- 200 OK ({self.uri})")
        return SipResponse.OK

    def __str__(self) -> str:
        return f"EchoServer({self.uri}@{self.pop_code})"


class SipClient:
    """A measurement client's signalling half.

    Signalling messages cross the same lossy path as media; each message
    is retransmitted up to ``max_retransmits`` times (SIP timer E/F
    behaviour collapsed to a retry count).
    """

    def __init__(self, uri: str, *, max_retransmits: int = 6) -> None:
        if max_retransmits < 0:
            raise ValueError("max_retransmits must be non-negative")
        self.uri = uri
        self.max_retransmits = max_retransmits
        self._next_call = 0

    def _message_survives(
        self, path: DataPath, hour_cet: float, rng: np.random.Generator
    ) -> bool:
        """Whether one signalling datagram crosses the path."""
        rates = [
            segment.sample_slot_rates(1, hour_cet, rng)[0] for segment in path.segments
        ]
        survive = 1.0
        for rate in rates:
            survive *= 1.0 - float(rate)
        return bool(rng.random() < survive)

    def _deliver(
        self, path: DataPath, hour_cet: float, rng: np.random.Generator
    ) -> bool:
        """Deliver with retransmissions (request and response legs)."""
        for _ in range(self.max_retransmits + 1):
            if self._message_survives(path, hour_cet, rng) and self._message_survives(
                path, hour_cet, rng
            ):
                return True
        return False

    def invite(
        self,
        server: EchoServer,
        profile: VideoProfile,
        path: DataPath,
        *,
        hour_cet: float = 12.0,
        rng: np.random.Generator,
    ) -> SipCall:
        """Set up a call to an echo server over ``path``."""
        self._next_call += 1
        call = SipCall(
            call_id=f"{self.uri}-{self._next_call}",
            from_uri=self.uri,
            to_uri=server.uri,
            profile=profile,
        )
        call.state = CallState.INVITING
        call._log(f"-> INVITE {server.uri} ({profile})")
        if not self._deliver(path, hour_cet, rng):
            call._log("!! INVITE timeout")
            call.state = CallState.FAILED
            return call
        response = server.handle_invite(call)
        if not response.is_success:
            call.state = CallState.FAILED
            return call
        call._log("-> ACK")
        if not self._deliver(path, hour_cet, rng):
            call._log("!! ACK timeout")
            call.state = CallState.FAILED
            return call
        call.state = CallState.ESTABLISHED
        return call

    def bye(
        self,
        call: SipCall,
        path: DataPath,
        *,
        hour_cet: float = 12.0,
        rng: np.random.Generator,
    ) -> None:
        """Tear down an established call.

        Raises
        ------
        ValueError
            If the call is not established.
        """
        if call.state is not CallState.ESTABLISHED:
            raise ValueError(f"cannot BYE a call in state {call.state}")
        call._log("-> BYE")
        self._deliver(path, hour_cet, rng)  # best effort; dialog ends anyway
        call.state = CallState.TERMINATED
