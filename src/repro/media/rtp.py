"""RTP session bookkeeping.

A thin RTP layer: sequence numbering, SSRCs, and the RFC 3550 receiver
accounting (expected vs received) that the measurement client uses to
count loss per 5-second slot.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.dataplane.transmit import slot_count
from repro.media.codec import VideoProfile


@dataclass(frozen=True, slots=True)
class RtpStreamSpec:
    """Static description of one RTP stream."""

    ssrc: int
    profile: VideoProfile
    duration_s: float = 120.0
    slot_s: float = 5.0

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ValueError(f"duration must be positive, got {self.duration_s!r}")
        if self.slot_s <= 0:
            raise ValueError(f"slot length must be positive, got {self.slot_s!r}")

    @property
    def n_slots(self) -> int:
        """Number of loss-accounting slots (24 for the paper's 2-minute runs).

        Ceiling, not rounding: a non-divisible duration gets a final
        *partial* slot so every second of media is accounted
        (``duration_s=12, slot_s=5`` -> 3 slots of 5 s, 5 s, 2 s).
        """
        return slot_count(self.duration_s, self.slot_s)

    @property
    def packets_per_slot(self) -> int:
        """Capacity of a full slot."""
        return self.profile.packets_in(self.slot_s)

    def slot_duration_s(self, index: int) -> float:
        """Duration of slot ``index``; only the last can be partial.

        Raises
        ------
        IndexError
            For an index outside ``[0, n_slots)``.
        """
        n = self.n_slots
        if not 0 <= index < n:
            raise IndexError(f"slot {index} outside [0, {n})")
        if index < n - 1:
            return self.slot_s
        return self.duration_s - (n - 1) * self.slot_s

    def packets_in_slot(self, index: int) -> int:
        """Capacity of slot ``index`` (smaller for a partial final slot)."""
        return self.profile.packets_in(self.slot_duration_s(index))

    @property
    def total_packets(self) -> int:
        return self.packets_per_slot * (self.n_slots - 1) + self.packets_in_slot(
            self.n_slots - 1
        )


@dataclass(slots=True)
class RtpSession:
    """Receiver-side RTP accounting for one stream."""

    spec: RtpStreamSpec
    received_per_slot: list[int] = field(default_factory=list)
    highest_seq: int = -1

    def record_slot(self, received: int) -> None:
        """Record one slot's received-packet count.

        The capacity bound is per slot: a partial final slot carries
        fewer packets than a full one.

        Raises
        ------
        ValueError
            If more packets are recorded than the slot can carry, or the
            stream already ended.
        """
        if len(self.received_per_slot) >= self.spec.n_slots:
            raise ValueError("stream already complete")
        capacity = self.spec.packets_in_slot(len(self.received_per_slot))
        if received < 0 or received > capacity:
            raise ValueError(f"received {received} outside [0, {capacity}]")
        self.received_per_slot.append(received)
        self.highest_seq += capacity

    @property
    def complete(self) -> bool:
        return len(self.received_per_slot) == self.spec.n_slots

    @property
    def expected(self) -> int:
        """RFC 3550 'expected' packet count so far."""
        return sum(
            self.spec.packets_in_slot(i) for i in range(len(self.received_per_slot))
        )

    @property
    def received(self) -> int:
        return sum(self.received_per_slot)

    @property
    def lost(self) -> int:
        return self.expected - self.received

    def slot_losses(self) -> np.ndarray:
        """Lost packets per slot (the Fig. 10 instrumentation)."""
        return np.array(
            [
                self.spec.packets_in_slot(i) - got
                for i, got in enumerate(self.received_per_slot)
            ]
        )

    @property
    def loss_percent(self) -> float:
        if self.expected == 0:
            return 0.0
        return 100.0 * self.lost / self.expected


def new_ssrc(rng: np.random.Generator) -> int:
    """A random 32-bit SSRC."""
    return int(rng.integers(0, 2**32))
