"""RTP session bookkeeping.

A thin RTP layer: sequence numbering, SSRCs, and the RFC 3550 receiver
accounting (expected vs received) that the measurement client uses to
count loss per 5-second slot.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.media.codec import VideoProfile


@dataclass(frozen=True, slots=True)
class RtpStreamSpec:
    """Static description of one RTP stream."""

    ssrc: int
    profile: VideoProfile
    duration_s: float = 120.0
    slot_s: float = 5.0

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ValueError(f"duration must be positive, got {self.duration_s!r}")
        if self.slot_s <= 0:
            raise ValueError(f"slot length must be positive, got {self.slot_s!r}")

    @property
    def n_slots(self) -> int:
        """Number of loss-accounting slots (24 for the paper's 2-minute runs)."""
        return max(1, int(round(self.duration_s / self.slot_s)))

    @property
    def packets_per_slot(self) -> int:
        return self.profile.packets_in(self.slot_s)

    @property
    def total_packets(self) -> int:
        return self.packets_per_slot * self.n_slots


@dataclass(slots=True)
class RtpSession:
    """Receiver-side RTP accounting for one stream."""

    spec: RtpStreamSpec
    received_per_slot: list[int] = field(default_factory=list)
    highest_seq: int = -1

    def record_slot(self, received: int) -> None:
        """Record one slot's received-packet count.

        Raises
        ------
        ValueError
            If more packets are recorded than the slot can carry, or the
            stream already ended.
        """
        if received < 0 or received > self.spec.packets_per_slot:
            raise ValueError(
                f"received {received} outside [0, {self.spec.packets_per_slot}]"
            )
        if len(self.received_per_slot) >= self.spec.n_slots:
            raise ValueError("stream already complete")
        self.received_per_slot.append(received)
        self.highest_seq += self.spec.packets_per_slot

    @property
    def complete(self) -> bool:
        return len(self.received_per_slot) == self.spec.n_slots

    @property
    def expected(self) -> int:
        """RFC 3550 'expected' packet count so far."""
        return len(self.received_per_slot) * self.spec.packets_per_slot

    @property
    def received(self) -> int:
        return sum(self.received_per_slot)

    @property
    def lost(self) -> int:
        return self.expected - self.received

    def slot_losses(self) -> np.ndarray:
        """Lost packets per slot (the Fig. 10 instrumentation)."""
        per_slot = self.spec.packets_per_slot
        return np.array([per_slot - got for got in self.received_per_slot])

    @property
    def loss_percent(self) -> float:
        if self.expected == 0:
            return 0.0
        return 100.0 * self.lost / self.expected


def new_ssrc(rng: np.random.Generator) -> int:
    """A random 32-bit SSRC."""
    return int(rng.integers(0, 2**32))
