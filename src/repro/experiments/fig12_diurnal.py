"""Figure 12: diurnal patterns in last-mile loss (Sec. 5.2.3).

From San Jose to LTPs/STPs/CAHPs/ECs in AP, EU and NA: the number of
lossy measurement rounds per CET hour of day.  The reproduced shapes:

* loss toward EU/NA destinations peaks during those regions' busy hours;
* loss toward AP peaks with AP's *local* hours regardless of vantage
  ("the network in AP region is congested to a level that masks the
  congestion effect of remote networks").
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.experiments.common import World
from repro.experiments.lastmile import LastMileData, run_lastmile_campaign
from repro.geo.regions import WorldRegion, local_hour_to_cet
from repro.net.asn import ASType

_REGIONS = (
    WorldRegion.ASIA_PACIFIC,
    WorldRegion.EUROPE,
    WorldRegion.NORTH_CENTRAL_AMERICA,
)


@dataclass(slots=True)
class Fig12Result:
    """Lossy-round counts per (AS type, dest region, CET hour)."""

    vantage: str
    series: dict[tuple[ASType, WorldRegion], list[int]] = field(default_factory=dict)

    def hourly(self, as_type: ASType, region: WorldRegion) -> list[int]:
        """The 24-element CET-hour series of one curve."""
        return self.series.get((as_type, region), [0] * 24)

    def peak_hour_cet(self, as_type: ASType, region: WorldRegion) -> int:
        """CET hour with the most lossy rounds."""
        counts = self.hourly(as_type, region)
        return int(np.argmax(counts))

    def peak_to_trough(self, as_type: ASType, region: WorldRegion) -> float:
        """Peak over mean-of-quietest-6-hours: diurnal swing strength."""
        counts = sorted(self.hourly(as_type, region))
        trough = float(np.mean(counts[:6])) if counts else 0.0
        peak = counts[-1] if counts else 0
        if trough == 0.0:
            return float(peak) if peak else 1.0
        return peak / trough

    def peak_within_local_window(
        self,
        as_type: ASType,
        region: WorldRegion,
        start_local: float = 8.0,
        end_local: float = 23.0,
    ) -> bool:
        """Whether the peak falls in the destination's local busy window."""
        peak = self.peak_hour_cet(as_type, region)
        start_cet = local_hour_to_cet(start_local, region)
        end_cet = local_hour_to_cet(end_local, region)
        if start_cet <= end_cet:
            return start_cet <= peak <= end_cet
        return peak >= start_cet or peak <= end_cet


def run(
    world: World,
    *,
    vantage: str = "SJS",
    hosts_per_type_per_region: int = 8,
    days: int = 2,
    minutes_between_rounds: float = 60.0,
    data: LastMileData | None = None,
) -> Fig12Result:
    """Aggregate lossy rounds per hour from the campaign data."""
    if data is None:
        data = run_lastmile_campaign(
            world,
            hosts_per_type_per_region=hosts_per_type_per_region,
            days=days,
            minutes_between_rounds=minutes_between_rounds,
        )
    result = Fig12Result(vantage=vantage)
    for as_type in ASType:
        for region in _REGIONS:
            counts = [
                data.loss_round_count(
                    pop_code=vantage,
                    dest_region=region,
                    as_type=as_type,
                    hour_cet=hour,
                )
                for hour in range(24)
            ]
            result.series[(as_type, region)] = counts
    return result


def render(result: Fig12Result) -> str:
    """Fig. 12 as peak hours and swing strengths."""
    lines = [f"Fig 12 — diurnal loss from {result.vantage} (peak CET hour, swing)"]
    lines.append("  type   region  peak@CET  swing   in-local-window")
    labels = {
        WorldRegion.ASIA_PACIFIC: "AP",
        WorldRegion.EUROPE: "EU",
        WorldRegion.NORTH_CENTRAL_AMERICA: "NA",
    }
    for as_type in ASType:
        for region in _REGIONS:
            peak = result.peak_hour_cet(as_type, region)
            swing = result.peak_to_trough(as_type, region)
            within = result.peak_within_local_window(as_type, region)
            lines.append(
                f"  {as_type.value:<6} {labels[region]:<7} {peak:8d}"
                f"  {swing:5.1f}  {'yes' if within else 'no':>15}"
            )
    return "\n".join(lines)
