"""Table 1: average last-mile loss by AS type (Sec. 5.2.3).

From Amsterdam to ASes of each type per region.  The paper's table:

    Region   LTP     STP     CAHP    EC
    AP       0.45%   1.30%   2.80%   1.92%
    EU       0.11%   0.62%   1.58%   0.52%
    NA       0.57%   0.49%   0.46%   0.55%

The orderings (AP: LTP < STP < EC < CAHP; EU: LTP < EC < STP < CAHP; NA
roughly flat) are the reproduced shape.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.common import World
from repro.experiments.lastmile import LastMileData, run_lastmile_campaign
from repro.geo.regions import WorldRegion
from repro.net.asn import ASType

#: The paper's Table 1, for side-by-side reporting (percent).
PAPER_TABLE1: dict[WorldRegion, dict[ASType, float]] = {
    WorldRegion.ASIA_PACIFIC: {
        ASType.LTP: 0.45,
        ASType.STP: 1.30,
        ASType.CAHP: 2.80,
        ASType.EC: 1.92,
    },
    WorldRegion.EUROPE: {
        ASType.LTP: 0.11,
        ASType.STP: 0.62,
        ASType.CAHP: 1.58,
        ASType.EC: 0.52,
    },
    WorldRegion.NORTH_CENTRAL_AMERICA: {
        ASType.LTP: 0.57,
        ASType.STP: 0.49,
        ASType.CAHP: 0.46,
        ASType.EC: 0.55,
    },
}

_REGION_LABEL = {
    WorldRegion.ASIA_PACIFIC: "AP",
    WorldRegion.EUROPE: "EU",
    WorldRegion.NORTH_CENTRAL_AMERICA: "NA",
}


@dataclass(slots=True)
class Table1Result:
    """Measured average loss percent per (region, AS type), from Amsterdam."""

    vantage: str
    cells: dict[tuple[WorldRegion, ASType], float] = field(default_factory=dict)

    def loss(self, region: WorldRegion, as_type: ASType) -> float:
        return self.cells.get((region, as_type), 0.0)

    def ordering(self, region: WorldRegion) -> list[ASType]:
        """AS types sorted by measured loss, best (lowest) first."""
        return sorted(ASType, key=lambda as_type: self.loss(region, as_type))

    def spread(self, region: WorldRegion) -> float:
        """max/min ratio across AS types — ~1 means 'blurred' (NA)."""
        values = [self.loss(region, as_type) for as_type in ASType]
        values = [v for v in values if v > 0]
        if not values:
            return 1.0
        return max(values) / min(values)


def run(
    world: World,
    *,
    vantage: str = "AMS",
    hosts_per_type_per_region: int = 8,
    days: int = 1,
    minutes_between_rounds: float = 60.0,
    data: LastMileData | None = None,
) -> Table1Result:
    """Aggregate the campaign's Amsterdam observations into Table 1."""
    if data is None:
        data = run_lastmile_campaign(
            world,
            hosts_per_type_per_region=hosts_per_type_per_region,
            days=days,
            minutes_between_rounds=minutes_between_rounds,
        )
    result = Table1Result(vantage=vantage)
    for region in PAPER_TABLE1:
        for as_type in ASType:
            result.cells[(region, as_type)] = data.mean_loss_percent(
                pop_code=vantage, dest_region=region, as_type=as_type
            )
    return result


def render(result: Table1Result) -> str:
    """Table 1 with measured vs paper values."""
    lines = [f"Table 1 — average loss % from {result.vantage} (measured | paper)"]
    lines.append("  Region   LTP            STP            CAHP           EC")
    for region, paper_row in PAPER_TABLE1.items():
        cells = "".join(
            f"{result.loss(region, as_type):6.2f}|{paper_row[as_type]:5.2f}  "
            for as_type in (ASType.LTP, ASType.STP, ASType.CAHP, ASType.EC)
        )
        lines.append(f"  {_REGION_LABEL[region]:<8} {cells}")
    return "\n".join(lines)
