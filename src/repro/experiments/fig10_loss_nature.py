"""Figure 10: the nature of loss (Sec. 5.1.2).

Loss percentage vs the number of lossy five-second slots (of 24), from
the Amsterdam client over all six echo servers: through upstreams (top)
and through VNS (bottom).  Three populations appear on the transit side —
a linear random-loss baseline, short-burst outliers (top-left: large loss
in few slots) and long-burst outliers (top-right: large loss throughout)
— and "VNS infrastructure eliminates small loss that spans multiple
slots as well as bursty outliers".
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.experiments.common import World
from repro.experiments.video import VideoCampaignResult, run_video_campaign
from repro.media.codec import PROFILE_1080P

#: The paper's horizontal reference line.
LARGE_LOSS_PCT = 0.15


class LossClass(enum.Enum):
    """Which Fig. 10 population a session belongs to."""

    NO_LOSS = "no-loss"
    RANDOM_BASELINE = "random"  #: small loss spread across slots
    SHORT_BURST = "short-burst"  #: large loss, few slots (upper left)
    LONG_BURST = "long-burst"  #: large loss, many slots (upper right)

    def __str__(self) -> str:
        return self.value


def classify(loss_percent: float, lossy_slots: int, n_slots: int = 24) -> LossClass:
    """Map one session onto a Fig. 10 population."""
    if lossy_slots == 0:
        return LossClass.NO_LOSS
    if loss_percent < LARGE_LOSS_PCT:
        return LossClass.RANDOM_BASELINE
    if lossy_slots <= max(3, n_slots // 8):
        return LossClass.SHORT_BURST
    if lossy_slots >= int(0.75 * n_slots):
        return LossClass.LONG_BURST
    return LossClass.RANDOM_BASELINE


@dataclass(slots=True)
class Fig10Result:
    """Scatter points and population counts per transport."""

    points: dict[str, list[tuple[int, float]]] = field(default_factory=dict)
    counts: dict[str, dict[LossClass, int]] = field(default_factory=dict)

    def scatter(self, transport: str) -> list[tuple[int, float]]:
        """(lossy slots, loss %) pairs for one panel."""
        return self.points.get(transport, [])

    def count(self, transport: str, loss_class: LossClass) -> int:
        return self.counts.get(transport, {}).get(loss_class, 0)

    def sessions(self, transport: str) -> int:
        return sum(self.counts.get(transport, {}).values())

    def multi_slot_loss_fraction(self, transport: str, min_slots: int = 4) -> float:
        """Fraction of sessions with loss spanning many slots."""
        pts = self.points.get(transport, [])
        if not pts:
            return 0.0
        return sum(1 for slots, _ in pts if slots >= min_slots) / len(pts)


def analyze(campaign: VideoCampaignResult, *, client_pop: str = "AMS") -> Fig10Result:
    """Build the Fig. 10 panels from an existing campaign run."""
    result = Fig10Result()
    for transport in ("T", "I"):
        sessions = campaign.select(
            client_pop=client_pop, transport=transport, profile=PROFILE_1080P
        )
        points: list[tuple[int, float]] = []
        counts: dict[LossClass, int] = {cls: 0 for cls in LossClass}
        for session in sessions:
            slots = session.lossy_slots
            loss = session.loss_percent
            points.append((slots, loss))
            counts[classify(loss, slots, session.measurement.outbound.n_slots)] += 1
        result.points[transport] = points
        result.counts[transport] = counts
    return result


def run(
    world: World,
    *,
    days: int = 1,
    minutes_between_rounds: float = 60.0,
    client_pop: str = "AMS",
) -> Fig10Result:
    """Run a campaign for the Amsterdam client and analyse loss nature."""
    campaign = run_video_campaign(
        world,
        days=days,
        minutes_between_rounds=minutes_between_rounds,
        client_pops=(client_pop,),
    )
    return analyze(campaign, client_pop=client_pop)


def render(result: Fig10Result) -> str:
    """Fig. 10 as population counts."""
    lines = ["Fig 10 — loss nature (Amsterdam, 1080p, all echo servers)"]
    lines.append("  transport  sessions  no-loss  random  short-burst  long-burst")
    for transport, label in (("T", "upstreams"), ("I", "VNS")):
        lines.append(
            f"  {label:<10}{result.sessions(transport):8d}"
            f"  {result.count(transport, LossClass.NO_LOSS):7d}"
            f"  {result.count(transport, LossClass.RANDOM_BASELINE):6d}"
            f"  {result.count(transport, LossClass.SHORT_BURST):11d}"
            f"  {result.count(transport, LossClass.LONG_BURST):10d}"
        )
    lines.append(
        "  multi-slot loss fraction: "
        f"T {result.multi_slot_loss_fraction('T') * 100:.1f}% / "
        f"I {result.multi_slot_loss_fraction('I') * 100:.1f}%"
    )
    return "\n".join(lines)
