"""The Sec. 5.1 video streaming campaign, shared by Fig. 9 and Fig. 10.

"We send a bidirectional HD video stream between B and C through VNS
infrastructure and through upstream providers simultaneously.  Traffic is
sent from four clients located at PoPs in Australia, Hong Kong,
Netherlands, and US West Coast to echo SIP servers located inside VNS
network in Europe (EU), Asia Pacific (AP), and North America (NA).  We
use two echo servers in each region. [...] The pre-recorded streams are
streamed to all six echo servers by each client for two minutes once
every half hour."
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.common import World, experiment_rng
from repro.geo.regions import PopRegion
from repro.measurement.scheduler import Round, rounds_every
from repro.media.client import InstrumentedClient, SessionMeasurement
from repro.media.codec import PROFILE_1080P, VideoProfile
from repro.media.sip import EchoServer
from repro.vns.pop import pop_by_code

#: The four client sites (Sydney, Hong Kong, Amsterdam, San Jose).
CLIENT_POPS = ("SYD", "HK", "AMS", "SJS")

#: Two echo servers per region, hosted at these PoPs.
ECHO_POPS: dict[PopRegion, tuple[str, str]] = {
    PopRegion.EU: ("AMS", "FRA"),
    PopRegion.AP: ("SIN", "HK"),
    PopRegion.NA: ("SJS", "ASH"),
}


@dataclass(slots=True)
class VideoSession:
    """One stream's record, labelled as in the Fig. 9 legend."""

    client_pop: str
    server_pop: str
    dest_region: PopRegion
    transport: str  # "I" (internal / VNS) or "T" (transit / upstreams)
    profile: VideoProfile
    round: Round
    measurement: SessionMeasurement

    @property
    def loss_percent(self) -> float:
        return self.measurement.loss_percent_out

    @property
    def lossy_slots(self) -> int:
        return self.measurement.lossy_slots_out

    @property
    def jitter_p95_ms(self) -> float:
        return self.measurement.jitter_p95_ms


@dataclass(slots=True)
class VideoCampaignResult:
    """All sessions of one campaign run."""

    sessions: list[VideoSession] = field(default_factory=list)
    failed_setups: int = 0

    def select(
        self,
        *,
        client_pop: str | None = None,
        dest_region: PopRegion | None = None,
        transport: str | None = None,
        profile: VideoProfile | None = None,
    ) -> list[VideoSession]:
        """Filter sessions by any combination of labels."""
        return [
            session
            for session in self.sessions
            if (client_pop is None or session.client_pop == client_pop)
            and (dest_region is None or session.dest_region is dest_region)
            and (transport is None or session.transport == transport)
            and (profile is None or session.profile == profile)
        ]

    def loss_values(
        self, client_pop: str, dest_region: PopRegion, transport: str
    ) -> list[float]:
        """Loss percentages for one Fig. 9 curve."""
        return [
            session.loss_percent
            for session in self.select(
                client_pop=client_pop, dest_region=dest_region, transport=transport
            )
        ]

    def jitter_values(self, profile: VideoProfile) -> list[float]:
        """Jitter samples for the Sec. 5.1.1 jitter summary."""
        return [s.jitter_p95_ms for s in self.select(profile=profile)]


def run_video_campaign(
    world: World,
    *,
    days: int = 1,
    minutes_between_rounds: float = 120.0,
    profiles: tuple[VideoProfile, ...] = (PROFILE_1080P,),
    client_pops: tuple[str, ...] = CLIENT_POPS,
    duration_s: float = 120.0,
) -> VideoCampaignResult:
    """Run the campaign at a configurable (scaled-down) intensity.

    The paper ran every half hour for two weeks (576 videos per client per
    definition per day); defaults here are scaled down, with the scaling
    factor reported in EXPERIMENTS.md.
    """
    rng = experiment_rng(world, salt=9)
    service = world.service
    rounds = rounds_every(minutes_between_rounds, days)
    servers = {
        pop_code: EchoServer(f"sip:echo-{pop_code.lower()}@vns", pop_code)
        for pops in ECHO_POPS.values()
        for pop_code in pops
    }
    clients = {
        code: InstrumentedClient(f"client-{code.lower()}", rng=rng)
        for code in client_pops
    }
    result = VideoCampaignResult()
    for round_ in rounds:
        for client_pop, client in clients.items():
            for dest_region, server_pops in ECHO_POPS.items():
                for server_pop in server_pops:
                    server = servers[server_pop]
                    vns_path = service.vns_internal_path(client_pop, server_pop)
                    transit_path = service.path_between_pops_via_upstream(
                        client_pop, server_pop
                    )
                    for profile in profiles:
                        for transport, path in (("I", vns_path), ("T", transit_path)):
                            measurement = client.run_session(
                                server,
                                path,
                                profile,
                                duration_s=duration_s,
                                hour_cet=round_.hour_cet,
                            )
                            if measurement is None:
                                result.failed_setups += 1
                                continue
                            result.sessions.append(
                                VideoSession(
                                    client_pop=client_pop,
                                    server_pop=server_pop,
                                    dest_region=dest_region,
                                    transport=transport,
                                    profile=profile,
                                    round=round_,
                                    measurement=measurement,
                                )
                            )
    return result
