"""Figure 3: geo-based routing precision (Sec. 4.1).

Left panel: CDF of ``RTT_geobased − RTT_best`` per prefix, overall and
split by the PoP region the GeoIP database reports the prefix closest to
(EU / NA / AP).  Right panel: scatter of ``(best RTT, geo-based RTT)``,
whose off-diagonal clusters are caused by GeoIP errors.  Also computes
the in-text AS-congruence statistic ("prefixes originating from the same
AS ... are always delay-closer to the same PoP").
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

import numpy as np

from repro.dataplane.transmit import simulate_ping
from repro.experiments.common import World, experiment_rng
from repro.geo.regions import PopRegion
from repro.measurement.ping import PingCampaign
from repro.measurement.stats import fraction_at_most
from repro.net.addressing import Prefix
from repro.vns.pop import nearest_pop, pop_by_code


@dataclass(slots=True)
class PrefixPrecision:
    """One prefix's measurement."""

    prefix: Prefix
    geo_pop: str
    best_pop: str
    rtt_geo_ms: float
    rtt_best_ms: float
    reported_region: PopRegion

    @property
    def rtt_diff_ms(self) -> float:
        return self.rtt_geo_ms - self.rtt_best_ms


@dataclass(slots=True)
class Fig3Result:
    """All series of Fig. 3."""

    records: list[PrefixPrecision] = field(default_factory=list)

    def diffs(self, region: PopRegion | None = None) -> list[float]:
        """RTT differences, optionally restricted to one reported region."""
        return [
            record.rtt_diff_ms
            for record in self.records
            if region is None or record.reported_region is region
        ]

    def fraction_within(self, ms: float, region: PopRegion | None = None) -> float:
        """Fraction of prefixes displaced by at most ``ms`` milliseconds."""
        return fraction_at_most(self.diffs(region), ms)

    def scatter(self) -> list[tuple[float, float]]:
        """(best RTT, geo-based RTT) pairs — the right panel."""
        return [(record.rtt_best_ms, record.rtt_geo_ms) for record in self.records]

    def outliers(self, min_excess_ms: float = 80.0) -> list[PrefixPrecision]:
        """Prefixes badly displaced (the Russian/Indian clusters)."""
        return [
            record for record in self.records if record.rtt_diff_ms > min_excess_ms
        ]


def _reported_region(world: World, prefix: Prefix) -> PopRegion | None:
    """The PoP region whose PoPs the GeoIP DB reports the prefix nearest."""
    location = world.service.geoip.reported_location(prefix)
    if location is None:
        return None
    return nearest_pop(location).region


def run(
    world: World,
    *,
    max_prefixes: int | None = None,
    hour_cet: float = 12.0,
    entry_pop: str = "AMS",
) -> Fig3Result:
    """Probe every prefix from every PoP and compare egress choices.

    ``entry_pop`` only selects whose Loc-RIB is read; the geo-chosen
    egress is a network-wide property.
    """
    rng = experiment_rng(world, salt=3)
    campaign = PingCampaign(world.service, rng)
    prefixes = world.topology.prefixes()
    if max_prefixes is not None:
        prefixes = prefixes[:max_prefixes]
    result = Fig3Result()
    for prefix in prefixes:
        decision = world.service.egress_decision(entry_pop, prefix)
        if decision is None:
            continue
        reported = _reported_region(world, prefix)
        if reported is None:
            continue
        measurement = campaign.probe_prefix(prefix, hour_cet)
        # The geo-based RTT follows the route VNS actually selected (the
        # egress router's best), not a locally forced probe: Fig. 3 rates
        # the routing decision, not each PoP's probe plumbing.
        via_vns = world.service.path_via_vns(
            decision.egress_pop,
            prefix,
            world.topology.prefix_location[prefix],
        )
        geo_rtt = None
        if via_vns is not None:
            ping = simulate_ping(via_vns, count=5, hour_cet=hour_cet, rng=rng)
            geo_rtt = ping.min_rtt_ms
        if geo_rtt is None:
            geo_rtt = measurement.rtt_from(decision.egress_pop)
        best_pop = measurement.best_pop
        if geo_rtt is None or best_pop is None:
            continue
        # The VNS-selected route is itself an observation from its PoP;
        # RTT_best is the minimum over everything measured, so the
        # difference is non-negative by construction (as in the paper).
        best_rtt = measurement.rtt_ms_by_pop[best_pop]
        if geo_rtt < best_rtt:
            best_pop, best_rtt = decision.egress_pop, geo_rtt
        result.records.append(
            PrefixPrecision(
                prefix=prefix,
                geo_pop=decision.egress_pop,
                best_pop=best_pop,
                rtt_geo_ms=geo_rtt,
                rtt_best_ms=best_rtt,
                reported_region=reported,
            )
        )
    return result


@dataclass(slots=True)
class CongruenceResult:
    """The Sec. 4.1 AS-congruence statistic."""

    #: Per measured AS: fraction of its prefixes agreeing with the modal
    #: delay-closest PoP.
    per_as_agreement: dict[int, float] = field(default_factory=dict)

    def fraction_of_ases_with_agreement(self, at_least: float) -> float:
        """Fraction of ASes whose prefixes agree at least ``at_least``."""
        if not self.per_as_agreement:
            return 0.0
        values = np.array(list(self.per_as_agreement.values()))
        return float((values >= at_least).mean())


def as_congruence(world: World, result: Fig3Result) -> CongruenceResult:
    """Do prefixes of the same AS share a delay-closest PoP?"""
    best_by_as: dict[int, list[str]] = {}
    for record in result.records:
        origin = world.topology.origin_of.get(record.prefix)
        if origin is None:
            continue
        best_by_as.setdefault(origin, []).append(record.best_pop)
    congruence = CongruenceResult()
    for asn, pops in best_by_as.items():
        if len(pops) < 2:
            continue
        counts = Counter(pops)
        congruence.per_as_agreement[asn] = counts.most_common(1)[0][1] / len(pops)
    return congruence


def render(result: Fig3Result) -> str:
    """The headline rows of Fig. 3 as text."""
    lines = ["Fig 3 — geo-based routing precision (RTT_geo - RTT_best)"]
    lines.append(f"  prefixes measured: {len(result.records)}")
    for label, region in (
        ("EU", PopRegion.EU),
        ("NA", PopRegion.NA),
        ("AP", PopRegion.AP),
        ("All", None),
    ):
        within10 = result.fraction_within(10.0, region)
        within20 = result.fraction_within(20.0, region)
        count = len(result.diffs(region))
        lines.append(
            f"  {label:>3}: n={count:5d}  <=10ms: {within10 * 100:5.1f}%"
            f"  <=20ms: {within20 * 100:5.1f}%"
        )
    outliers = result.outliers()
    lines.append(f"  outliers (>80ms excess): {len(outliers)}")
    return "\n".join(lines)
