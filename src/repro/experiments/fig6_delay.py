"""Figure 6: delay difference, VNS vs upstreams (Sec. 4.3).

One address per origin AS is probed simultaneously "through VNS and
through its upstreams" from PoPs in Europe, the US and Asia Pacific; the
figure shows the CDF of ``RTT_VNS − RTT_upstream`` per vantage PoP.
Singapore performs best "due to the availability of direct dedicated
links to Australia, USA and Europe".
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.dataplane.transmit import simulate_ping
from repro.experiments.common import World, experiment_rng
from repro.measurement.stats import fraction_at_most


@dataclass(slots=True)
class Fig6Result:
    """RTT differences (ms) per vantage PoP."""

    diffs_by_pop: dict[str, list[float]] = field(default_factory=dict)

    def fraction_vns_not_worse(self, pop_code: str) -> float:
        """Fraction of destinations where VNS is at least as fast."""
        return fraction_at_most(self.diffs_by_pop.get(pop_code, []), 0.0)

    def fraction_within(self, pop_code: str, ms: float) -> float:
        """Fraction of destinations stretched by at most ``ms``."""
        return fraction_at_most(self.diffs_by_pop.get(pop_code, []), ms)

    def measured(self, pop_code: str) -> int:
        return len(self.diffs_by_pop.get(pop_code, []))

    def render(self) -> str:
        """Fig. 6 as rows (the uniform-API entry point)."""
        lines = ["Fig 6 — RTT(VNS) - RTT(upstream) per vantage PoP"]
        lines.append("  PoP   n      <=0ms    <=50ms")
        for code, diffs in self.diffs_by_pop.items():
            lines.append(
                f"  {code:<4} {len(diffs):5d}"
                f"  {self.fraction_vns_not_worse(code) * 100:6.1f}%"
                f"  {self.fraction_within(code, 50.0) * 100:6.1f}%"
            )
        return "\n".join(lines)

    def to_row(self) -> dict:
        """Flat scalar summary: per-vantage counts and CDF points."""
        row: dict = {}
        for code in self.diffs_by_pop:
            row[f"{code}.measured"] = self.measured(code)
            row[f"{code}.frac_not_worse"] = self.fraction_vns_not_worse(code)
            row[f"{code}.frac_within_50ms"] = self.fraction_within(code, 50.0)
        return row

    def to_json(self, indent: int | None = 2) -> str:
        """Canonical JSON: the per-PoP difference samples plus the row."""
        payload = {"diffs_by_pop": self.diffs_by_pop, "row": self.to_row()}
        return json.dumps(payload, indent=indent, sort_keys=True)


#: The three vantage points Fig. 6 plots.
DEFAULT_VANTAGES = ("SIN", "AMS", "SJS")


def run(
    world: World,
    *,
    vantage_pops: tuple[str, ...] = DEFAULT_VANTAGES,
    probes_per_address: int = 5,
    hour_cet: float = 12.0,
    max_origins: int | None = None,
) -> Fig6Result:
    """Probe one prefix per origin AS via both transports."""
    rng = experiment_rng(world, salt=6)
    service = world.service
    result = Fig6Result(diffs_by_pop={code: [] for code in vantage_pops})
    origins = sorted(world.topology.ases)
    if max_origins is not None:
        origins = origins[:max_origins]
    for origin in origins:
        system = world.topology.autonomous_system(origin)
        if not system.prefixes:
            continue
        prefix = system.prefixes[0]
        destination = world.topology.prefix_location[prefix]
        for code in vantage_pops:
            via_vns = service.path_via_vns(code, prefix, destination)
            via_upstream = service.path_local_exit(
                code, prefix, destination, upstreams_only=True
            )
            if via_vns is None or via_upstream is None:
                continue
            ping_vns = simulate_ping(
                via_vns, count=probes_per_address, hour_cet=hour_cet, rng=rng
            )
            ping_up = simulate_ping(
                via_upstream, count=probes_per_address, hour_cet=hour_cet, rng=rng
            )
            if ping_vns.min_rtt_ms is None or ping_up.min_rtt_ms is None:
                continue
            result.diffs_by_pop[code].append(
                ping_vns.min_rtt_ms - ping_up.min_rtt_ms
            )
    return result


def render(result: Fig6Result) -> str:
    """Fig. 6 as rows (delegates to the result)."""
    return result.render()
