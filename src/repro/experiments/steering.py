"""Steering-policy comparison: always-VNS vs threshold offload vs budget.

The paper carries every call cold-potato across the backbone (its
``always_vns`` stance); production systems offload calls to the direct
Internet path when measured QoE is comparable, and overlay work adds a
one-hop PoP detour as the middle ground.  This experiment runs **the
same seeded campaign** once per policy — identical users, arrivals and
stream draws (the steered stream reuses the baseline batches, see
:mod:`repro.workload.engine`) — so the offload-rate, backbone-byte and
QoE-delta columns differ only by policy.

Part of the uniform experiment API: reachable through
:func:`repro.experiments.common.run` as ``RunConfig.of("steering", ...)``.
With ``workers > 1`` each campaign executes through the sharded runner;
reports stay byte-identical to sequential execution.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.experiments.common import World
from repro.steering import (
    PathHealthTable,
    SteeringEngine,
    SteeringTelemetry,
    make_policy,
    stream_payload_bytes,
)
from repro.workload import (
    REGION_CODE,
    CallArrivalProcess,
    CallSpec,
    CampaignConfig,
    CampaignEngine,
    CampaignRun,
    ShardedCampaignRunner,
    ShardPlan,
    UserPopulation,
)

#: The comparison's default policy line-up.
DEFAULT_POLICIES: tuple[str, ...] = (
    "always_vns",
    "threshold_offload",
    "cost_budgeted",
)


def corridor_payload_bytes(
    calls: list[CallSpec], config: CampaignConfig
) -> dict[tuple[str, str], int]:
    """Projected media bytes per directed region corridor.

    The traffic matrix :meth:`CostBudgetedPolicy.prepare` plans against —
    computed from the call list alone (no simulation), using the same
    packet accounting as the stream simulator.
    """
    matrix: dict[tuple[str, str], int] = {}
    for spec in calls:
        corridor = (REGION_CODE[spec.caller.region], REGION_CODE[spec.callee.region])
        matrix[corridor] = matrix.get(corridor, 0) + stream_payload_bytes(
            spec.duration_s, config.packets_per_second, config.slot_s
        )
    return matrix


@dataclass(slots=True)
class SteeringComparison:
    """One campaign per policy, plus the shared telemetry table."""

    seed: int
    health: PathHealthTable
    budget_bytes: int
    runs: dict[str, CampaignRun] = field(default_factory=dict)

    def report(self, policy: str) -> dict:
        """One policy's campaign-wide steering block."""
        steering = self.runs[policy].report.steering
        assert steering is not None  # every run here carries an engine
        return steering

    def to_json(self, indent: int | None = 2) -> str:
        """Stable serialisation: one full campaign report per policy."""
        payload = {
            "seed": self.seed,
            "budget_bytes": self.budget_bytes,
            "policies": {
                name: run.report.to_dict() for name, run in self.runs.items()
            },
        }
        return json.dumps(payload, indent=indent, sort_keys=True)

    def to_row(self) -> dict:
        """Flat scalar summary: each policy's steering outcomes."""
        row: dict = {"policies": len(self.runs), "budget_bytes": self.budget_bytes}
        for name, run in self.runs.items():
            steering = run.report.steering
            assert steering is not None
            delta = steering["qoe_delta_vs_vns"]
            row[f"{name}.offload_rate"] = steering["offload_rate"]
            row[f"{name}.detour_calls"] = steering["detour_calls"]
            row[f"{name}.backbone_saved_fraction"] = steering[
                "backbone_saved_fraction"
            ]
            row[f"{name}.qoe_delta_delay_ms"] = delta["delay_ms_mean"]
            row[f"{name}.qoe_delta_loss_pct"] = delta["loss_pct_mean"]
        return row

    def render(self) -> str:
        lines = ["Steering policies — same campaign, three stances"]
        lines.append(
            "  policy              offload   detour   backbone saved"
            "      dQoE delay    dQoE loss"
        )
        for name, run in self.runs.items():
            steering = run.report.steering
            assert steering is not None
            delta = steering["qoe_delta_vs_vns"]
            lines.append(
                f"  {name:<18}"
                f" {steering['offload_rate']:8.1%}"
                f" {steering['detour_calls']:8d}"
                f" {steering['backbone_saved_fraction']:15.1%}"
                f" {delta['delay_ms_mean']:+10.2f} ms"
                f" {delta['loss_pct_mean']:+10.4f}%"
            )
        return "\n".join(lines)


def run(
    world: World,
    *,
    n_users: int = 200,
    calls_per_user_day: float = 4.0,
    days: int = 1,
    multiparty_fraction: float = 0.15,
    seed: int = 0,
    policies: tuple[str, ...] = DEFAULT_POLICIES,
    rtt_delta_ms: float = 15.0,
    loss_delta_pct: float = 0.25,
    budget_fraction: float = 0.5,
    telemetry_days: int = 1,
    telemetry_minutes: float = 240.0,
    telemetry_hosts: int = 2,
    workers: int = 1,
    shard_plan: ShardPlan | None = None,
) -> SteeringComparison:
    """Compare steering policies over one seeded campaign.

    Seed derivation follows :mod:`repro.experiments.campaign` (population
    ``seed``, arrivals ``seed + 1``, engine ``seed + 2``) with the probe
    telemetry on ``seed + 3``, so one integer reproduces everything.
    ``budget_fraction`` sets the ``cost_budgeted`` backbone budget as a
    fraction of the campaign's projected backbone bytes.

    Raises
    ------
    ValueError
        For an out-of-range ``budget_fraction``.
    """
    if not 0.0 <= budget_fraction <= 1.0:
        raise ValueError(
            f"budget_fraction must be in [0, 1], got {budget_fraction!r}"
        )
    population = UserPopulation.sample(world.topology, n_users, seed=seed)
    arrivals = CallArrivalProcess(
        population,
        calls_per_user_day=calls_per_user_day,
        multiparty_fraction=multiparty_fraction,
        seed=seed + 1,
    )
    calls = arrivals.generate(days=days)
    config = CampaignConfig(seed=seed + 2)

    health = SteeringTelemetry(world.service, seed=seed + 3).collect(
        days=telemetry_days,
        minutes_between_rounds=telemetry_minutes,
        hosts_per_type_per_region=telemetry_hosts,
    )

    matrix = corridor_payload_bytes(calls, config)
    budget_bytes = int(sum(matrix.values()) * budget_fraction)

    comparison = SteeringComparison(
        seed=seed, health=health, budget_bytes=budget_bytes
    )
    if shard_plan is None and workers > 1:
        shard_plan = ShardPlan(n_workers=workers)
    for name in policies:
        if name == "threshold_offload":
            policy = make_policy(
                name, rtt_delta_ms=rtt_delta_ms, loss_delta_pct=loss_delta_pct
            )
        elif name == "cost_budgeted":
            policy = make_policy(name, budget_bytes=budget_bytes)
            policy.prepare(matrix, health)
        else:
            policy = make_policy(name)
        engine = SteeringEngine(health=health, policy=policy, seed=config.seed)
        if shard_plan is not None:
            runner = ShardedCampaignRunner(
                world.service, config, shard_plan, steering=engine
            )
            comparison.runs[name] = runner.run(calls)
        else:
            comparison.runs[name] = CampaignEngine(
                world.service, config, steering=engine
            ).run(calls)
    return comparison


def render(comparison: SteeringComparison) -> str:
    """The policy comparison as rows (one per policy)."""
    return comparison.render()
