"""Failover experiment: reconvergence cost and loss during failures.

Not a paper figure — the paper measures the steady state its circuits buy
— but the natural stress companion: run the canned fault scenarios of
:mod:`repro.faults.scenarios` over one world and aggregate

* the CDF of per-event reconvergence cost (BGP messages and the derived
  failover-window seconds),
* per-stream loss during failover vs steady state vs after recovery, and
* blackhole-window sizes (cells routed-but-undeliverable mid-failover,
  and any that survive convergence).

Every scenario repairs itself, so the whole suite runs on one service
deployment and leaves it converged and healthy.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.experiments.common import World, experiment_rng
from repro.faults.recovery import EventImpact
from repro.faults.scenarios import (
    ScenarioResult,
    flapping_upstream,
    pop_failure,
    regional_failure,
    single_link_cut,
    transit_degradation,
)
from repro.measurement.stats import Cdf
from repro.vns.links import VNS_LONG_HAUL_LINKS

#: Salt for this experiment's dedicated generator.
RNG_SALT = 9090


@dataclass(slots=True)
class FailoverResult:
    """Aggregated outcome of the scenario suite on one world."""

    scenarios: list[ScenarioResult] = field(default_factory=list)

    def impacts(self) -> list[EventImpact]:
        """Every measured fault event across all scenarios."""
        return [impact for scenario in self.scenarios for impact in scenario.impacts]

    def message_cdf(self) -> Cdf:
        """CDF of per-event reconvergence message counts."""
        return Cdf.of(float(impact.messages) for impact in self.impacts())

    def window_cdf(self) -> Cdf:
        """CDF of per-event failover-window seconds."""
        return Cdf.of(impact.failover_window_s for impact in self.impacts())

    def steady_loss_values(self) -> list[float]:
        return [
            s.media.steady_loss_percent for s in self.scenarios if s.media is not None
        ]

    def failover_loss_values(self) -> list[float]:
        return [
            s.media.failover_loss_percent
            for s in self.scenarios
            if s.media is not None
        ]

    def recovered_loss_values(self) -> list[float]:
        return [
            s.media.recovered_loss_percent
            for s in self.scenarios
            if s.media is not None
        ]

    def max_blackholes_during(self) -> int:
        """Largest mid-failover blackhole set over all events."""
        return max(
            (len(impact.blackholes_during) for impact in self.impacts()), default=0
        )

    def permanent_blackhole_count(self) -> int:
        """Blackholes still present after each scenario's final repair."""
        return sum(len(s.permanent_blackholes) for s in self.scenarios)

    def render(self) -> str:
        """The failover summary as rows (the uniform-API entry point)."""
        lines = ["Failover — reconvergence cost and loss under faults"]
        lines.append(
            "  scenario                                  msgs   bh-during  bh-perm"
            "  loss steady->failover->recovered"
        )
        for scenario in self.scenarios:
            during = max(
                (len(i.blackholes_during) for i in scenario.impacts), default=0
            )
            media = scenario.media
            loss = (
                f"{media.steady_loss_percent:5.2f}% ->{media.failover_loss_percent:6.2f}%"
                f" ->{media.recovered_loss_percent:5.2f}%"
                if media is not None
                else "        (control plane only)"
            )
            lines.append(
                f"  {scenario.name:<41} {scenario.total_messages:5d}"
                f"   {during:7d}  {len(scenario.permanent_blackholes):7d}  {loss}"
            )
        if not self.impacts():
            lines.append("  (no fault events measured)")
            return "\n".join(lines)
        message_cdf = self.message_cdf()
        window_cdf = self.window_cdf()
        lines.append(
            "  reconvergence msgs/event: "
            f"p50={message_cdf.quantile(0.5):.0f}"
            f" p90={message_cdf.quantile(0.9):.0f}"
            f" max={message_cdf.quantile(1.0):.0f}"
        )
        lines.append(
            "  failover window (s):      "
            f"p50={window_cdf.quantile(0.5):.2f}"
            f" p90={window_cdf.quantile(0.9):.2f}"
            f" max={window_cdf.quantile(1.0):.2f}"
        )
        return "\n".join(lines)

    def to_row(self) -> dict:
        """Flat scalar summary (seed-deterministic; no wall clock)."""
        row = {
            "scenarios": len(self.scenarios),
            "fault_events": len(self.impacts()),
            "messages_total": sum(s.total_messages for s in self.scenarios),
            "blackholes_during_max": self.max_blackholes_during(),
            "blackholes_permanent": self.permanent_blackhole_count(),
        }
        if self.impacts():
            message_cdf = self.message_cdf()
            window_cdf = self.window_cdf()
            row["messages_per_event_p50"] = message_cdf.quantile(0.5)
            row["messages_per_event_max"] = message_cdf.quantile(1.0)
            row["failover_window_s_p50"] = window_cdf.quantile(0.5)
            row["failover_window_s_max"] = window_cdf.quantile(1.0)
        return row

    def to_json(self, indent: int | None = 2) -> str:
        """Canonical JSON: per-scenario blocks plus the flat row."""
        scenarios = {}
        for scenario in self.scenarios:
            media = scenario.media
            scenarios[scenario.name] = {
                "messages": scenario.total_messages,
                "events": len(scenario.impacts),
                "blackholes_during_max": max(
                    (len(i.blackholes_during) for i in scenario.impacts),
                    default=0,
                ),
                "blackholes_permanent": len(scenario.permanent_blackholes),
                "media": None
                if media is None
                else {
                    "steady_loss_percent": media.steady_loss_percent,
                    "failover_loss_percent": media.failover_loss_percent,
                    "recovered_loss_percent": media.recovered_loss_percent,
                },
            }
        payload = {"scenarios": scenarios, "row": self.to_row()}
        return json.dumps(payload, indent=indent, sort_keys=True)


def run(
    world: World,
    *,
    corridors: tuple[tuple[str, str], ...] | None = None,
    include_pop_failure: bool = True,
    include_regional: bool = True,
    include_flapping: bool = True,
    include_degradation: bool = True,
    flaps: int = 2,
    prefix_limit: int = 32,
) -> FailoverResult:
    """Run the fault-scenario suite over ``world``.

    ``corridors`` defaults to every long-haul circuit — each gets its own
    cut-and-repair scenario, which is what populates the reconvergence
    CDF.  The service is restored to health between and after scenarios.
    """
    rng = experiment_rng(world, RNG_SALT)
    service = world.service
    if corridors is None:
        corridors = VNS_LONG_HAUL_LINKS
    result = FailoverResult()
    for corridor in corridors:
        result.scenarios.append(
            single_link_cut(
                service, rng, corridor=corridor, prefix_limit=prefix_limit
            )
        )
    if include_pop_failure:
        result.scenarios.append(
            pop_failure(service, rng, prefix_limit=prefix_limit)
        )
    if include_regional:
        result.scenarios.append(
            regional_failure(service, rng, prefix_limit=prefix_limit)
        )
    if include_flapping:
        result.scenarios.append(
            flapping_upstream(service, rng, flaps=flaps, prefix_limit=prefix_limit)
        )
    if include_degradation:
        result.scenarios.append(
            transit_degradation(service, rng, prefix_limit=prefix_limit)
        )
    return result


def render(result: FailoverResult) -> str:
    """The failover summary as rows (delegates to the result)."""
    return result.render()
