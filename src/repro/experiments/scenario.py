"""Scenario experiment: run one declarative scenario over a world.

The uniform-API bridge into :mod:`repro.scenarios`: pick a canned
scenario by registry name or hand in a spec's JSON, and run it on an
already-built world —

    run(world, RunConfig.of("scenario", name="geo_satellite")).render()

The spec's world *recipe* (seed, GeoIP errors) is ignored in favour of
the world actually passed in; its world *restrictions* (PoPs down,
capacity caps) and fault timeline are applied for the campaign and
rolled back afterwards, leaving the world as found.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace

from repro.experiments.common import World
from repro.scenarios.loader import load_scenario
from repro.scenarios.registry import canned_scenario
from repro.scenarios.spec import ScenarioSpec
from repro.workload.engine import CampaignRun


@dataclass(slots=True)
class ScenarioRun:
    """One scenario's campaign plus the spec that produced it."""

    spec: ScenarioSpec
    campaign: CampaignRun
    sharded: bool = False

    def render(self) -> str:
        lines = [
            f"Scenario '{self.spec.name}' — scale {self.spec.world.scale}, "
            f"seed {self.spec.seed}"
            + (f", sharded" if self.sharded else "")
        ]
        if self.spec.description:
            lines.append(f"  {self.spec.description}")
        lines.append(self.campaign.render())
        return "\n".join(lines)

    def to_row(self) -> dict:
        """The campaign's row keyed under the scenario's name."""
        return {
            f"{self.spec.name}.{name}": value
            for name, value in self.campaign.to_row().items()
        }

    def to_json(self, indent: int | None = 2) -> str:
        """Canonical JSON: the spec, the campaign report, the flat row."""
        payload = {
            "spec": self.spec.to_dict(),
            "sharded": self.sharded,
            "report": self.campaign.report.to_dict(),
            "row": self.to_row(),
        }
        return json.dumps(payload, indent=indent, sort_keys=True)


def run(
    world: World,
    *,
    name: str = "",
    spec_json: str = "",
    seed: int | None = None,
    workers: int = 1,
) -> ScenarioRun:
    """Run one scenario on ``world`` (restoring any faults afterwards).

    Exactly one of ``name`` (a registry name, see
    :func:`repro.scenarios.registry.canned_names`) and ``spec_json``
    (a serialised :class:`ScenarioSpec`) selects the scenario; ``seed``
    optionally overrides the spec's campaign seed.  ``workers > 1``
    shards the campaign over a pool created on the faulted world — the
    unfaulted case reuses ``world``'s persistent campaign pool.
    """
    if bool(name) == bool(spec_json):
        raise ValueError("pass exactly one of name= and spec_json=")
    spec = canned_scenario(name) if name else ScenarioSpec.from_json(spec_json)
    if spec.world.scale != world.scale.value:
        spec = replace(spec, world=replace(spec.world, scale=world.scale.value))
    if seed is not None:
        spec = replace(spec, seed=seed)
    loaded = load_scenario(spec, base_world=world)
    try:
        if workers > 1 and loaded.applied is not None and not loaded.applied.active:
            # Nothing mutated the world: safe to reuse (and keep warm)
            # the world's persistent pool across scenario runs.
            campaign = loaded.run(pool=world.campaign_pool(workers=workers))
        elif workers > 1:
            campaign = loaded.run(workers=workers)
        else:
            campaign = loaded.run()
    finally:
        loaded.restore()
    return ScenarioRun(spec=spec, campaign=campaign, sharded=workers > 1)
