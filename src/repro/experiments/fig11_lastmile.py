"""Figure 11: last-mile loss and geography (Sec. 5.2.2).

Average loss rate from each of ten PoPs to hosts in AP, EU and NA.  The
paper's observations, which the reproduction asserts as shapes:

* geographic distance raises loss (EU→AP ≫ AP→AP; AP→EU ≫ EU→EU);
* SJS→AP is on par with AP→AP (Asian operators peer at US west coast);
* LON→EU is anomalously high (~2× other EU PoPs) because London's main
  upstream is a US-based Tier-1 — "traffic destined to some of the hosts
  that are actually close to London cross the Atlantic and come back".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.common import World
from repro.experiments.lastmile import (
    LASTMILE_POPS,
    LastMileData,
    run_lastmile_campaign,
)
from repro.geo.regions import WorldRegion

_REGIONS = (
    WorldRegion.ASIA_PACIFIC,
    WorldRegion.EUROPE,
    WorldRegion.NORTH_CENTRAL_AMERICA,
)

_REGION_LABEL = {
    WorldRegion.ASIA_PACIFIC: "AP",
    WorldRegion.EUROPE: "EU",
    WorldRegion.NORTH_CENTRAL_AMERICA: "NA",
}

#: PoPs per probing region, in Fig. 11's x-axis order.
POPS_BY_REGION: dict[str, tuple[str, ...]] = {
    "NA": ("ATL", "ASH", "SJS"),
    "EU": ("AMS", "FRA", "LON", "OSL"),
    "AP": ("HK", "SIN", "SYD"),
}


@dataclass(slots=True)
class Fig11Result:
    """Average loss percent per (probing PoP, destination region)."""

    mean_loss: dict[tuple[str, WorldRegion], float] = field(default_factory=dict)
    data: LastMileData | None = None

    def loss(self, pop_code: str, dest_region: WorldRegion) -> float:
        return self.mean_loss.get((pop_code, dest_region), 0.0)

    def region_average(self, probe_region: str, dest_region: WorldRegion) -> float:
        """Mean over the probing region's PoPs (LON excluded from EU, as
        the paper does when quoting EU→EU ratios)."""
        pops = [p for p in POPS_BY_REGION[probe_region] if p != "LON"]
        values = [self.loss(p, dest_region) for p in pops]
        values = [v for v in values if v > 0.0]
        return sum(values) / len(values) if values else 0.0

    def london_eu_ratio(self) -> float:
        """LON→EU loss over the other EU PoPs' average (paper: > 2)."""
        other = self.region_average("EU", WorldRegion.EUROPE)
        if other == 0.0:
            return 0.0
        return self.loss("LON", WorldRegion.EUROPE) / other


def run(
    world: World,
    *,
    hosts_per_type_per_region: int = 8,
    days: int = 1,
    minutes_between_rounds: float = 60.0,
    data: LastMileData | None = None,
) -> Fig11Result:
    """Run (or reuse) the campaign and aggregate the Fig. 11 averages."""
    if data is None:
        data = run_lastmile_campaign(
            world,
            hosts_per_type_per_region=hosts_per_type_per_region,
            days=days,
            minutes_between_rounds=minutes_between_rounds,
        )
    result = Fig11Result(data=data)
    for pop_code in LASTMILE_POPS:
        for region in _REGIONS:
            result.mean_loss[(pop_code, region)] = data.mean_loss_percent(
                pop_code=pop_code, dest_region=region
            )
    return result


def render(result: Fig11Result) -> str:
    """Fig. 11 as a PoP × destination-region table."""
    lines = ["Fig 11 — average last-mile loss % (rows: probing PoP)"]
    lines.append("  PoP    ->AP     ->EU     ->NA")
    for region_pops in POPS_BY_REGION.values():
        for pop_code in region_pops:
            cells = "".join(
                f"{result.loss(pop_code, region):8.3f}" for region in _REGIONS
            )
            lines.append(f"  {pop_code:<5}{cells}")
    lines.append(f"  London EU anomaly ratio: {result.london_eu_ratio():.2f}x")
    return "\n".join(lines)
