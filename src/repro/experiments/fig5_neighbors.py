"""Figure 5: transit vs peer routes before/after geo-routing (Sec. 4.2.2).

Outer plot: percentage of routes through each of the top-20 neighbours
(the first seven are upstreams, the rest peers).  Inner plot: the share
of prefixes reached through upstreams — which "remained stable at around
80% after the introduction of geo-based routing".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.common import World
from repro.vns.service import VideoNetworkService


@dataclass(slots=True)
class NeighborUsage:
    """One neighbour's share of routes."""

    rank: int
    asn: int
    is_upstream: bool
    before_pct: float
    after_pct: float


@dataclass(slots=True)
class Fig5Result:
    """Per-neighbour shares plus the transit-share inset."""

    neighbors: list[NeighborUsage] = field(default_factory=list)
    transit_share_before_pct: float = 0.0
    transit_share_after_pct: float = 0.0

    def upstream_rows(self) -> list[NeighborUsage]:
        return [row for row in self.neighbors if row.is_upstream]

    def peer_rows(self) -> list[NeighborUsage]:
        return [row for row in self.neighbors if not row.is_upstream]

    def top_upstream_shift(self) -> tuple[NeighborUsage, NeighborUsage] | None:
        """The two busiest upstreams (after), for the upstream-1-vs-2 story."""
        ranked = sorted(self.upstream_rows(), key=lambda row: -row.after_pct)
        if len(ranked) < 2:
            return None
        return ranked[0], ranked[1]


def _neighbor_counts(
    service: VideoNetworkService, entry_pop: str
) -> tuple[dict[int, int], int]:
    counts: dict[int, int] = {}
    total = 0
    for prefix in service.topology.prefixes():
        decision = service.egress_decision(entry_pop, prefix)
        if decision is None or decision.neighbor_asn == 0:
            continue
        counts[decision.neighbor_asn] = counts.get(decision.neighbor_asn, 0) + 1
        total += 1
    return counts, total


def run(world: World, *, entry_pop: str = "LON", top_n: int = 20) -> Fig5Result:
    """Count per-neighbour route shares in both deployments."""
    before_service = world.require_before()
    after_counts, after_total = _neighbor_counts(world.service, entry_pop)
    before_counts, before_total = _neighbor_counts(before_service, entry_pop)
    upstreams = world.service.deployment.upstreams
    upstream_set = set(upstreams)

    result = Fig5Result()
    if after_total == 0 or before_total == 0:
        return result

    transit_after = sum(after_counts.get(asn, 0) for asn in upstream_set)
    transit_before = sum(before_counts.get(asn, 0) for asn in upstream_set)
    result.transit_share_after_pct = 100.0 * transit_after / after_total
    result.transit_share_before_pct = 100.0 * transit_before / before_total

    # Paper ordering: the first seven neighbour ids are the upstreams, the
    # remaining slots the busiest peers.
    peer_order = sorted(
        (asn for asn in after_counts if asn not in upstream_set),
        key=lambda asn: (-after_counts[asn], asn),
    )
    ordered = list(upstreams) + peer_order
    for rank, asn in enumerate(ordered[:top_n], start=1):
        result.neighbors.append(
            NeighborUsage(
                rank=rank,
                asn=asn,
                is_upstream=asn in upstream_set,
                before_pct=100.0 * before_counts.get(asn, 0) / before_total,
                after_pct=100.0 * after_counts.get(asn, 0) / after_total,
            )
        )
    return result


def render(result: Fig5Result) -> str:
    """Fig. 5 as rows."""
    lines = ["Fig 5 — routes per neighbour (outer) and transit share (inset)"]
    lines.append("  rank  ASN     kind      before%   after%")
    for row in result.neighbors:
        kind = "upstream" if row.is_upstream else "peer"
        lines.append(
            f"  {row.rank:>4}  AS{row.asn:<5} {kind:<9} {row.before_pct:7.1f}"
            f"  {row.after_pct:7.1f}"
        )
    lines.append(
        f"  transit share: before {result.transit_share_before_pct:.1f}% / "
        f"after {result.transit_share_after_pct:.1f}%"
    )
    return "\n".join(lines)
