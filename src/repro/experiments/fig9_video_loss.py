"""Figure 9: video loss CCDFs, VNS vs transit (Sec. 5.1.1).

Per client (Amsterdam / San Jose / Sydney) and destination region (AP /
EU / NA): the CCDF of per-stream loss percentage, with curves for streams
through upstreams (``T-``) and through VNS (``I-``).  The paper draws
reference lines at 0.15% (users start complaining) and 1%.  Also carries
the Sec. 5.1.1 jitter summary.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import World
from repro.experiments.video import (
    VideoCampaignResult,
    run_video_campaign,
)
from repro.geo.regions import PopRegion
from repro.measurement.stats import Ccdf, fraction_at_most, fraction_exceeding
from repro.media.codec import PROFILE_1080P, PROFILE_720P, VideoProfile

#: The loss level at which "users usually start noticing and complaining".
COMPLAINT_THRESHOLD_PCT = 0.15
#: The paper's second reference line.
SEVERE_THRESHOLD_PCT = 1.0

#: The three clients Fig. 9 plots (the HK client is measured but not shown).
FIGURE_CLIENTS = ("AMS", "SJS", "SYD")


@dataclass(slots=True)
class Fig9Result:
    """Wraps the campaign with the Fig. 9 accessors."""

    campaign: VideoCampaignResult

    def ccdf(
        self, client_pop: str, dest_region: PopRegion, transport: str
    ) -> Ccdf | None:
        """One curve of the figure (``None`` when no sessions matched)."""
        values = self.campaign.loss_values(client_pop, dest_region, transport)
        if not values:
            return None
        return Ccdf.of(values)

    def fraction_over(
        self,
        client_pop: str,
        dest_region: PopRegion,
        transport: str,
        threshold_pct: float = COMPLAINT_THRESHOLD_PCT,
    ) -> float:
        """Fraction of streams losing more than ``threshold_pct``."""
        return fraction_exceeding(
            self.campaign.loss_values(client_pop, dest_region, transport),
            threshold_pct,
        )

    def jitter_fraction_below(self, profile: VideoProfile, ms: float = 10.0) -> float:
        """Fraction of streams with jitter at most ``ms`` (Sec. 5.1.1)."""
        return fraction_at_most(self.campaign.jitter_values(profile), ms)


def run(
    world: World,
    *,
    days: int = 1,
    minutes_between_rounds: float = 120.0,
    include_720p: bool = False,
) -> Fig9Result:
    """Run the streaming campaign and wrap it for Fig. 9 analysis."""
    profiles = (PROFILE_1080P, PROFILE_720P) if include_720p else (PROFILE_1080P,)
    campaign = run_video_campaign(
        world,
        days=days,
        minutes_between_rounds=minutes_between_rounds,
        profiles=profiles,
    )
    return Fig9Result(campaign=campaign)


def render(result: Fig9Result) -> str:
    """The Fig. 9 headline numbers as rows."""
    lines = ["Fig 9 — fraction of 1080p streams above loss thresholds"]
    lines.append("  client  region  transport  >0.15%   >1%      n")
    for client in FIGURE_CLIENTS:
        for region in (PopRegion.AP, PopRegion.EU, PopRegion.NA):
            for transport in ("T", "I"):
                values = result.campaign.loss_values(client, region, transport)
                if not values:
                    continue
                over15 = fraction_exceeding(values, COMPLAINT_THRESHOLD_PCT)
                over1 = fraction_exceeding(values, SEVERE_THRESHOLD_PCT)
                lines.append(
                    f"  {client:<7}{region.value:<8}{transport:<10}"
                    f"{over15 * 100:6.1f}%  {over1 * 100:5.1f}%  {len(values):5d}"
                )
    j1080 = result.jitter_fraction_below(PROFILE_1080P)
    lines.append(f"  jitter <=10ms (1080p): {j1080 * 100:.1f}% of streams")
    j720_values = result.campaign.jitter_values(PROFILE_720P)
    if j720_values:
        j720 = result.jitter_fraction_below(PROFILE_720P)
        lines.append(f"  jitter <=10ms (720p):  {j720 * 100:.1f}% of streams")
    return "\n".join(lines)
