"""Figure 7: incoming anycast traffic by region (Sec. 4.4).

60k TURN authentication requests from users across seven world regions;
the figure shows which PoP region (EU / US / AP / OC) received each
region's requests — "the incoming traffic follows geography to a large
extent".
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.experiments.common import World, experiment_rng
from repro.geo.regions import POP_REGION_FOR_WORLD_REGION, PopRegion, WorldRegion
from repro.media.turn import TurnService
from repro.net.asn import ASType


@dataclass(slots=True)
class Fig7Result:
    """Requests per (user world region, receiving PoP region)."""

    matrix: dict[WorldRegion, dict[PopRegion, int]] = field(default_factory=dict)

    def fraction(self, user_region: WorldRegion, pop_region: PopRegion) -> float:
        """Share of a region's requests landing on one PoP region."""
        row = self.matrix.get(user_region, {})
        total = sum(row.values())
        if total == 0:
            return 0.0
        return row.get(pop_region, 0) / total

    def dominant_pop_region(self, user_region: WorldRegion) -> PopRegion | None:
        """The PoP region receiving most of a user region's traffic."""
        row = self.matrix.get(user_region, {})
        if not row:
            return None
        return max(row, key=lambda region: row[region])

    def follows_geography(self, user_region: WorldRegion) -> bool:
        """Whether the dominant catchment is the geographically matching one."""
        return self.dominant_pop_region(user_region) is POP_REGION_FOR_WORLD_REGION[
            user_region
        ]


def run(world: World, *, requests: int = 2000) -> Fig7Result:
    """Simulate authentication requests from users everywhere.

    Users are sampled from edge networks (ECs and CAHPs preferred) with
    locations jittered around their AS's prefixes; each request resolves
    its anycast entry PoP through Internet routing.
    """
    rng = experiment_rng(world, salt=7)
    service = world.service
    turn = TurnService(service)
    topology = world.topology
    edge_systems = [
        system
        for system in topology.ases.values()
        if system.as_type in (ASType.EC, ASType.CAHP) and system.prefixes
    ]
    if not edge_systems:
        edge_systems = [s for s in topology.ases.values() if s.prefixes]
    result = Fig7Result()
    for index in range(requests):
        system = edge_systems[int(rng.integers(0, len(edge_systems)))]
        prefix = system.prefixes[int(rng.integers(0, len(system.prefixes)))]
        location = topology.host_location(prefix, rng)
        user_region = system.home.city.region
        _, pop = turn.request(f"user-{index}", system.asn, location)
        if pop is None:
            continue
        row = result.matrix.setdefault(user_region, {})
        row[pop.region] = row.get(pop.region, 0) + 1
    return result


def render(result: Fig7Result) -> str:
    """Fig. 7 as a region x PoP-region matrix."""
    lines = ["Fig 7 — anycast catchment (rows: user region, cols: PoP region)"]
    header = "  " + f"{'region':<28}" + "".join(
        f"{region.value:>7}" for region in PopRegion
    )
    lines.append(header)
    for user_region in WorldRegion:
        row = result.matrix.get(user_region)
        if not row:
            continue
        cells = "".join(
            f"{result.fraction(user_region, pop_region) * 100:6.1f}%"
            for pop_region in PopRegion
        )
        marker = " *" if result.follows_geography(user_region) else "  "
        lines.append(f"  {user_region.value:<28}{cells}{marker}")
    lines.append("  (* dominant catchment matches geography)")
    return "\n".join(lines)
