"""Figure 4: egress PoP selection before/after geo-routing (Sec. 4.2.1).

"Figure 4 shows the percentage of routes that exit at each PoP before and
after the introduction of geo-based routing from the perspective of
PoP 10 (London). [...] Before [...] PoP 10 exited traffic locally in 70%
of the cases.  After [...] the distribution is more even."
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.common import World
from repro.vns.pop import POPS, pop_by_code
from repro.vns.service import VideoNetworkService


@dataclass(slots=True)
class Fig4Result:
    """Percentage of routes exiting at each PoP id, before and after."""

    entry_pop: str
    before_pct: dict[int, float] = field(default_factory=dict)
    after_pct: dict[int, float] = field(default_factory=dict)
    routes_counted: int = 0

    def local_exit_pct(self, when: str) -> float:
        """Percent exiting at the entry PoP itself.

        Raises
        ------
        ValueError
            For ``when`` other than "before"/"after".
        """
        if when not in ("before", "after"):
            raise ValueError(f"when must be 'before' or 'after', got {when!r}")
        table = self.before_pct if when == "before" else self.after_pct
        local_id = pop_by_code(self.entry_pop).pop_id
        return table.get(local_id, 0.0)

    def max_share_pct(self, when: str) -> float:
        """The largest single-PoP share."""
        table = self.before_pct if when == "before" else self.after_pct
        return max(table.values()) if table else 0.0


def _egress_distribution(
    service: VideoNetworkService, entry_pop: str
) -> tuple[dict[int, float], int]:
    counts: dict[int, int] = {}
    total = 0
    for prefix in service.topology.prefixes():
        decision = service.egress_decision(entry_pop, prefix)
        if decision is None:
            continue
        pop_id = pop_by_code(decision.egress_pop).pop_id
        counts[pop_id] = counts.get(pop_id, 0) + 1
        total += 1
    if total == 0:
        return {}, 0
    return {pop_id: 100.0 * count / total for pop_id, count in counts.items()}, total


def run(world: World, *, entry_pop: str = "LON") -> Fig4Result:
    """Compute the Fig. 4 distributions on a world (builds the "before"
    deployment if it is not present yet)."""
    before = world.require_before()
    result = Fig4Result(entry_pop=entry_pop)
    result.before_pct, count_before = _egress_distribution(before, entry_pop)
    result.after_pct, count_after = _egress_distribution(world.service, entry_pop)
    result.routes_counted = min(count_before, count_after)
    return result


def render(result: Fig4Result) -> str:
    """Fig. 4 as rows: one line per PoP id."""
    lines = [
        f"Fig 4 — egress distribution from {result.entry_pop} "
        f"({result.routes_counted} routes)"
    ]
    lines.append("  PoP  code   before%   after%")
    for pop in POPS:
        before = result.before_pct.get(pop.pop_id, 0.0)
        after = result.after_pct.get(pop.pop_id, 0.0)
        lines.append(
            f"  {pop.pop_id:>3}  {pop.code:>4}  {before:7.1f}  {after:7.1f}"
        )
    lines.append(
        f"  local exit: before {result.local_exit_pct('before'):.1f}% "
        f"/ after {result.local_exit_pct('after'):.1f}%"
    )
    return "\n".join(lines)
