"""The Sec. 5.2 last-mile probing campaign, shared by Fig. 11, Table 1
and Fig. 12.

600 real-user hosts (50 per AS type per region in NA, EU and AP) probed
from 10 PoPs with 100 back-to-back ICMP packets every 10 minutes for
three weeks.  Scaled-down runs keep the full PoP × host × hour coverage
and shrink only the sampling density.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.common import World, experiment_rng
from repro.geo.regions import WorldRegion
from repro.measurement.probes import (
    LossProbeCampaign,
    ProbeObservation,
    TargetHost,
    select_hosts,
)
from repro.measurement.scheduler import rounds_every
from repro.net.asn import ASType

#: The ten PoPs of Fig. 11 (TYO was not part of the last-mile study).
LASTMILE_POPS = ("ATL", "ASH", "SJS", "AMS", "FRA", "LON", "OSL", "HK", "SIN", "SYD")

#: Which study region each probing PoP belongs to, for the Fig. 11 grouping.
POP_STUDY_REGION: dict[str, WorldRegion] = {
    "ATL": WorldRegion.NORTH_CENTRAL_AMERICA,
    "ASH": WorldRegion.NORTH_CENTRAL_AMERICA,
    "SJS": WorldRegion.NORTH_CENTRAL_AMERICA,
    "AMS": WorldRegion.EUROPE,
    "FRA": WorldRegion.EUROPE,
    "LON": WorldRegion.EUROPE,
    "OSL": WorldRegion.EUROPE,
    "HK": WorldRegion.ASIA_PACIFIC,
    "SIN": WorldRegion.ASIA_PACIFIC,
    "SYD": WorldRegion.ASIA_PACIFIC,
}


@dataclass(slots=True)
class LastMileData:
    """The campaign's raw observations plus the host sample."""

    hosts: list[TargetHost] = field(default_factory=list)
    observations: list[ProbeObservation] = field(default_factory=list)

    def mean_loss_percent(
        self,
        *,
        pop_code: str | None = None,
        dest_region: WorldRegion | None = None,
        as_type: ASType | None = None,
    ) -> float:
        """Average loss over matching observations (0.0 when none match)."""
        total = 0.0
        count = 0
        for observation in self.observations:
            if pop_code is not None and observation.pop_code != pop_code:
                continue
            if dest_region is not None and observation.host.region is not dest_region:
                continue
            if as_type is not None and observation.host.as_type is not as_type:
                continue
            total += observation.loss_percent
            count += 1
        return total / count if count else 0.0

    def loss_round_count(
        self,
        *,
        pop_code: str,
        dest_region: WorldRegion,
        as_type: ASType,
        hour_cet: int,
    ) -> int:
        """Number of lossy rounds in one CET-hour bucket (Fig. 12 metric)."""
        count = 0
        for observation in self.observations:
            if (
                observation.pop_code == pop_code
                and observation.host.region is dest_region
                and observation.host.as_type is as_type
                and int(observation.round.hour_cet) == hour_cet
                and observation.had_loss
            ):
                count += 1
        return count


def run_lastmile_campaign(
    world: World,
    *,
    hosts_per_type_per_region: int = 8,
    days: int = 1,
    minutes_between_rounds: float = 60.0,
    packets_per_round: int = 100,
    pop_codes: tuple[str, ...] = LASTMILE_POPS,
) -> LastMileData:
    """Run the campaign at a configurable (scaled-down) intensity."""
    rng = experiment_rng(world, salt=11)
    hosts = select_hosts(
        world.service, rng, per_type_per_region=hosts_per_type_per_region
    )
    campaign = LossProbeCampaign(
        world.service, rng, packets_per_round=packets_per_round
    )
    rounds = rounds_every(minutes_between_rounds, days)
    observations = campaign.run(list(pop_codes), hosts, rounds)
    return LastMileData(hosts=hosts, observations=observations)
