"""A population-scale call campaign over the built world (Sec. 5 scale).

The Sec. 5 results aggregate a two-week production campaign; this driver
is the synthetic analogue: sample a geo-weighted user population, draw a
day (or more) of diurnally modulated call arrivals, run them through the
batched :class:`~repro.workload.engine.CampaignEngine`, and render the
per-corridor QoE table — delay/loss percentiles, lossy-slot fractions
(Fig. 9's threshold accounting) and VNS-vs-Internet win rates
(Figs. 6/7's dominance view).

Part of the uniform experiment API: ``run`` is reachable through
:func:`repro.experiments.common.run` as ``RunConfig.of("campaign", ...)``
and the returned :class:`~repro.workload.engine.CampaignRun` implements
:class:`~repro.experiments.common.ExperimentResult`.  With ``workers >
1`` the campaign executes through
:class:`~repro.workload.sharded.ShardedCampaignRunner`; the report is
byte-identical either way.
"""

from __future__ import annotations

from repro.experiments.common import World
from repro.workload import (
    CallArrivalProcess,
    CampaignConfig,
    CampaignEngine,
    CampaignRun,
    ShardedCampaignRunner,
    ShardPlan,
    UserPopulation,
)


def run(
    world: World,
    *,
    n_users: int = 200,
    calls_per_user_day: float = 4.0,
    days: int = 1,
    multiparty_fraction: float = 0.15,
    seed: int = 0,
    workers: int = 1,
    shard_plan: ShardPlan | None = None,
) -> CampaignRun:
    """Run one seeded campaign over ``world``.

    The population, arrival and engine seeds are derived from ``seed``
    with fixed offsets, so one integer reproduces the whole campaign.
    ``workers > 1`` (or an explicit ``shard_plan``) runs the same calls
    through the sharded multi-process runner on ``world``'s persistent
    :meth:`~repro.experiments.common.World.campaign_pool` — same seed
    derivation, byte-identical report, and repeated invocations over one
    world reuse the already-spawned, already-warm workers.
    """
    population = UserPopulation.sample(world.topology, n_users, seed=seed)
    arrivals = CallArrivalProcess(
        population,
        calls_per_user_day=calls_per_user_day,
        multiparty_fraction=multiparty_fraction,
        seed=seed + 1,
    )
    calls = arrivals.generate(days=days)
    config = CampaignConfig(seed=seed + 2)
    if shard_plan is None and workers > 1:
        shard_plan = ShardPlan(n_workers=workers)
    if shard_plan is not None:
        pool = None
        if not shard_plan.force_inprocess and shard_plan.effective_workers > 1:
            pool = world.campaign_pool(workers=shard_plan.effective_workers)
        return ShardedCampaignRunner(
            world.service, config, shard_plan, pool=pool
        ).run(calls)
    return CampaignEngine(world.service, config).run(calls)


def render(campaign: CampaignRun) -> str:
    """The campaign summary as rows (one per directed region pair)."""
    return campaign.render()
