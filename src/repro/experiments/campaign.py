"""A population-scale call campaign over the built world (Sec. 5 scale).

The Sec. 5 results aggregate a two-week production campaign; this driver
is the synthetic analogue: sample a geo-weighted user population, draw a
day (or more) of diurnally modulated call arrivals, run them through the
batched :class:`~repro.workload.engine.CampaignEngine`, and render the
per-corridor QoE table — delay/loss percentiles, lossy-slot fractions
(Fig. 9's threshold accounting) and VNS-vs-Internet win rates
(Figs. 6/7's dominance view).
"""

from __future__ import annotations

from repro.experiments.common import World
from repro.workload import (
    CallArrivalProcess,
    CampaignEngine,
    CampaignRun,
    UserPopulation,
)


def run(
    world: World,
    *,
    n_users: int = 200,
    calls_per_user_day: float = 4.0,
    days: int = 1,
    multiparty_fraction: float = 0.15,
    seed: int = 0,
) -> CampaignRun:
    """Run one seeded campaign over ``world``.

    The population, arrival and engine seeds are derived from ``seed``
    with fixed offsets, so one integer reproduces the whole campaign.
    """
    population = UserPopulation.sample(world.topology, n_users, seed=seed)
    arrivals = CallArrivalProcess(
        population,
        calls_per_user_day=calls_per_user_day,
        multiparty_fraction=multiparty_fraction,
        seed=seed + 1,
    )
    engine = CampaignEngine(world.service, seed=seed + 2)
    return engine.run(arrivals.generate(days=days))


def render(campaign: CampaignRun) -> str:
    """The campaign summary as rows (one per directed region pair)."""
    stats = campaign.stats
    report = campaign.report
    lines = ["Campaign — population-scale QoE, VNS vs native Internet"]
    lines.append(
        f"  calls: {stats.calls_resolved} completed, {stats.calls_failed} unroutable;"
        f" {report.turn_allocations} TURN-relayed multiparty legs"
    )
    # No wall-clock figures here: render output is deterministic under
    # the seed (throughput lives in BENCH_workload.json).
    lines.append(
        f"  engine: {stats.batches} batches (largest {stats.largest_batch}),"
        f" onward path-cache hit rate {stats.onward_hit_rate:.1%}"
    )
    lines.append(
        "  corridor   calls   vns p50/p95 delay      loss"
        "      inet p50/p95 delay      loss   delay-win  loss-win"
    )
    for key in sorted(report.pairs):
        pair = report.pairs[key]
        vns, inet = pair["vns"], pair["internet"]
        lines.append(
            f"  {key:<9} {pair['calls']:5d}"
            f"   {vns['delay_ms']['p50']:6.1f}/{vns['delay_ms']['p95']:6.1f} ms"
            f" {vns['loss_pct']['p95']:6.2f}%"
            f"   {inet['delay_ms']['p50']:6.1f}/{inet['delay_ms']['p95']:6.1f} ms"
            f" {inet['loss_pct']['p95']:6.2f}%"
            f"   {pair['vns_delay_win_rate']:8.1%}  {pair['vns_loss_win_rate']:8.1%}"
        )
    return "\n".join(lines)
