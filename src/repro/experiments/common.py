"""Shared world construction for all experiments.

A *world* is a synthetic Internet plus a converged VNS deployment — and,
when an experiment needs the "before geo-routing" comparison, a second
deployment with plain hot-potato routing built on the *same* Internet.
Three scales trade fidelity for runtime; every experiment accepts any
scale and reports the same shapes.
"""

from __future__ import annotations

import enum
import importlib
from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable

import numpy as np

from repro.bgp.propagation import AsLevelRouting
from repro.geo.errors import (
    CountryCentroidError,
    GeoIPErrorModel,
    RandomNoiseError,
    StaleWhoisError,
)
from repro.net.topology import TopologyConfig
from repro.perf import counters as perf
from repro.vns.builder import VnsConfig
from repro.vns.service import VideoNetworkService


class WorldScale(enum.Enum):
    """How big a synthetic Internet to build."""

    SMALL = "small"  #: unit-test scale (~60 ASes)
    MEDIUM = "medium"  #: benchmark scale (~250 ASes)
    LARGE = "large"  #: closest to the paper's environment (~700 ASes)

    def __str__(self) -> str:
        return self.value


_TOPOLOGY_CONFIGS: dict[WorldScale, TopologyConfig] = {
    WorldScale.SMALL: TopologyConfig(n_ltp=4, n_stp=10, n_cahp=16, n_ec=24),
    WorldScale.MEDIUM: TopologyConfig(n_ltp=8, n_stp=32, n_cahp=70, n_ec=120),
    WorldScale.LARGE: TopologyConfig(n_ltp=10, n_stp=80, n_cahp=240, n_ec=380),
}

_MAX_PEERS: dict[WorldScale, int] = {
    WorldScale.SMALL: 8,
    WorldScale.MEDIUM: 24,
    WorldScale.LARGE: 40,
}


def paper_geoip_errors() -> list[GeoIPErrorModel]:
    """The database pathologies Sec. 4.1 diagnosed.

    Russian prefixes collapse onto a Siberian centroid (making them look
    closer to Asian PoPs than to European ones); Indian prefixes carry
    stale Canadian WHOIS records from an acquired ISP; plus the generic
    long-tailed displacement commercial databases exhibit.
    """
    return [
        CountryCentroidError("RU"),
        StaleWhoisError(true_country="IN", stale_country="CA"),
        RandomNoiseError(mean_km=35.0, fraction=0.6),
    ]


@dataclass(slots=True)
class World:
    """A built world: one Internet, one or two VNS deployments."""

    scale: WorldScale
    seed: int
    service: VideoNetworkService
    before: VideoNetworkService | None = None
    rng: np.random.Generator | None = None
    #: Lazily created persistent campaign worker pool (see
    #: :meth:`campaign_pool`); excluded from repr/equality on purpose.
    _campaign_pool: object | None = field(default=None, repr=False, compare=False)

    @property
    def topology(self):
        return self.service.topology

    @property
    def routing(self) -> AsLevelRouting:
        return self.service.routing

    def require_before(self) -> VideoNetworkService:
        """The hot-potato deployment, building it lazily if needed."""
        if self.before is None:
            self.before = VideoNetworkService.build(
                vns_config=VnsConfig(
                    max_peers=_MAX_PEERS[self.scale], geo_routing=False
                ),
                seed=self.seed,
                topology=self.service.topology,
                routing=self.service.routing,
            )
        return self.before

    def campaign_pool(self, *, workers: int | None = None):
        """This world's persistent campaign worker pool, created lazily.

        The pool ships a frozen snapshot of ``service`` to each worker
        once and keeps workers (and their warm path caches) alive across
        every sharded campaign run over this world — the reuse that
        makes repeated ``run(world, RunConfig.of("campaign", ...))``
        invocations pay spawn and world-shipping cost only once.
        Requesting a different worker count replaces the cached pool.
        """
        from repro.workload.sharded import CampaignWorkerPool

        pool = self._campaign_pool
        if (
            pool is not None
            and not pool.closed
            and not pool.broken
            and (workers is None or pool.workers == workers)
        ):
            return pool
        if pool is not None and not pool.closed:
            pool.shutdown(wait=True)
        pool = CampaignWorkerPool(self.service, workers=workers)
        self._campaign_pool = pool
        return pool

    def close_pool(self) -> None:
        """Shut down the cached campaign pool, if one was created."""
        pool = self._campaign_pool
        if pool is not None:
            pool.shutdown(wait=True)
            self._campaign_pool = None


def build_world(
    scale: WorldScale | str = WorldScale.SMALL,
    *,
    seed: int = 42,
    with_before: bool = False,
    geoip_errors: bool = False,
) -> World:
    """Build a world at the requested scale.

    ``geoip_errors`` injects the paper's database pathologies (needed by
    the Fig. 3 outlier analysis); without it the GeoIP database is exact.
    """
    if isinstance(scale, str):
        scale = WorldScale(scale)
    errors = paper_geoip_errors() if geoip_errors else None
    with perf.timer(f"experiments.build_world.{scale.value}"):
        service = VideoNetworkService.build(
            _TOPOLOGY_CONFIGS[scale],
            VnsConfig(max_peers=_MAX_PEERS[scale]),
            seed=seed,
            geoip_errors=errors,
        )
    world = World(
        scale=scale,
        seed=seed,
        service=service,
        rng=np.random.default_rng(seed + 1),
    )
    if with_before:
        world.require_before()
    return world


def experiment_rng(world: World, salt: int) -> np.random.Generator:
    """A dedicated generator per experiment so runs stay independent."""
    return np.random.default_rng(world.seed * 1_000_003 + salt)


# --------------------------------------------------------------------- #
# the uniform experiment API
# --------------------------------------------------------------------- #


@runtime_checkable
class ExperimentResult(Protocol):
    """What every experiment ``run`` returns: render, row, JSON.

    Structurally typed — a result participates by growing the three
    methods, no inheritance required.  The per-experiment result classes
    (:class:`~repro.workload.engine.CampaignRun`,
    :class:`~repro.experiments.failover.FailoverResult`, ...) keep their
    figure-specific accessors; these are the shapes shared drivers rely
    on: ``render()`` for ``examples/paper_report.py``, ``to_row()`` /
    ``to_json()`` for :func:`repro.results.record_experiment` (the row
    becomes store metrics, the JSON the archived payload).
    """

    def render(self) -> str:
        """The experiment's rows as text (what the paper's figure shows)."""
        ...

    def to_row(self) -> dict:
        """Flat scalar summary — dotted names to int/float values.

        What the results store ingests as this experiment's metrics;
        every value must be seed-deterministic (no wall-clock figures).
        """
        ...

    def to_json(self, indent: int | None = 2) -> str:
        """Canonical JSON (sorted keys): the archivable payload."""
        ...


#: Experiment names accepted by :func:`run` — short name → module.
EXPERIMENT_MODULES: dict[str, str] = {
    "campaign": "repro.experiments.campaign",
    "failover": "repro.experiments.failover",
    "fig6": "repro.experiments.fig6_delay",
    "fig6_delay": "repro.experiments.fig6_delay",
    "scenario": "repro.experiments.scenario",
    "steering": "repro.experiments.steering",
}


@dataclass(frozen=True, slots=True)
class RunConfig:
    """A uniform, hashable experiment invocation.

    ``experiment`` picks the module (a key of :data:`EXPERIMENT_MODULES`);
    ``options`` carries that experiment's keyword arguments as a sorted
    tuple of pairs so configs stay frozen and comparable.  Build one with
    :meth:`of` rather than spelling the tuple out.
    """

    experiment: str
    options: tuple[tuple[str, object], ...] = ()

    @classmethod
    def of(cls, experiment: str, **options: object) -> "RunConfig":
        return cls(experiment=experiment, options=tuple(sorted(options.items())))

    def kwargs(self) -> dict[str, object]:
        return dict(self.options)

    def replace(self, **options: object) -> "RunConfig":
        """A copy with ``options`` overriding/extending the current ones."""
        merged = self.kwargs() | options
        return RunConfig.of(self.experiment, **merged)


def run(world: World, config: RunConfig) -> ExperimentResult:
    """Run the experiment ``config`` names over ``world``.

    The single entry point drivers use: ``run(world, RunConfig.of(
    "campaign", n_users=120)).render()``.  Experiments not yet ported to
    the uniform API are simply absent from :data:`EXPERIMENT_MODULES`
    (call their module's ``run`` directly).
    """
    module_name = EXPERIMENT_MODULES.get(config.experiment)
    if module_name is None:
        known = ", ".join(sorted(set(EXPERIMENT_MODULES)))
        raise KeyError(f"unknown experiment {config.experiment!r} (known: {known})")
    module = importlib.import_module(module_name)
    result = module.run(world, **config.kwargs())
    if not isinstance(result, ExperimentResult):  # pragma: no cover - port bug
        raise TypeError(
            f"{module_name}.run returned {type(result).__name__}, "
            "which does not implement ExperimentResult.render()"
        )
    return result
