"""Experiment harness: one module per paper figure/table.

Every module exposes a ``run(...)`` returning a structured result object
holding exactly the series the corresponding figure plots, plus a
``render(result)`` producing the rows as text.  ``repro.experiments.common``
builds the shared simulation world at ``small`` (tests), ``medium``
(benchmarks) or ``large`` scale.

Ported modules also participate in the uniform experiment API: build a
:class:`~repro.experiments.common.RunConfig`, call
:func:`~repro.experiments.common.run`, and ``render()`` the returned
:class:`~repro.experiments.common.ExperimentResult` — one shape for every
driver.

Experiment index (see DESIGN.md for the full mapping):

========  =====================================================
fig3      Geo-based routing precision (CDF + scatter, Sec. 4.1)
fig4      Egress PoP selection before/after (Sec. 4.2.1)
fig5      Neighbour/transit selection before/after (Sec. 4.2.2)
fig6      Delay difference VNS vs upstreams (Sec. 4.3)
fig7      Incoming anycast traffic by region (Sec. 4.4)
fig9      Video loss CCDFs, VNS vs transit (Sec. 5.1.1)
fig10     Loss nature: loss vs lossy slots (Sec. 5.1.2)
fig11     Last-mile loss and geography (Sec. 5.2.2)
table1    Last-mile loss by AS type (Sec. 5.2.3)
fig12     Diurnal loss patterns (Sec. 5.2.3)
failover  Fault injection / failover suite (beyond the paper)
campaign  Population-scale call campaign (Sec. 5 at scale)
steering  Hybrid VNS/Internet steering policies (beyond the paper)
========  =====================================================
"""

from repro.experiments.common import (
    EXPERIMENT_MODULES,
    ExperimentResult,
    RunConfig,
    World,
    WorldScale,
    build_world,
    run,
)

__all__ = [
    "EXPERIMENT_MODULES",
    "ExperimentResult",
    "RunConfig",
    "World",
    "WorldScale",
    "build_world",
    "run",
]
