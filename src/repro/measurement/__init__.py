"""Measurement infrastructure: probes, schedules, statistics.

Reimplements the paper's measurement campaigns as reusable pieces: ICMP
ping probing with min-RTT recording (Sec. 4.1/4.3), back-to-back loss
probes (Sec. 5.2), CET-based schedules, and the CDF/CCDF statistics every
figure plots.
"""

from repro.measurement.stats import (
    Ccdf,
    Cdf,
    OnlineStats,
    fraction_at_most,
    fraction_exceeding,
    percentile,
)
from repro.measurement.scheduler import (
    hourly_rounds,
    half_hourly_rounds,
    rounds_every,
)
from repro.measurement.ping import PingCampaign, PopRttMeasurement
from repro.measurement.probes import (
    LossProbeCampaign,
    ProbeObservation,
    TargetHost,
    select_hosts,
)

__all__ = [
    "Cdf",
    "Ccdf",
    "OnlineStats",
    "percentile",
    "fraction_at_most",
    "fraction_exceeding",
    "rounds_every",
    "half_hourly_rounds",
    "hourly_rounds",
    "PingCampaign",
    "PopRttMeasurement",
    "LossProbeCampaign",
    "ProbeObservation",
    "TargetHost",
    "select_hosts",
]
