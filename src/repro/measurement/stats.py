"""Statistics helpers for measurement analysis (CDFs, CCDFs, summaries)."""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass

import numpy as np


@dataclass(slots=True)
class Cdf:
    """An empirical cumulative distribution function."""

    xs: np.ndarray
    ps: np.ndarray

    @classmethod
    def of(cls, values: Iterable[float]) -> "Cdf":
        """Build from raw samples.

        Raises
        ------
        ValueError
            For an empty sample set.
        """
        data = np.asarray(sorted(values), dtype=float)
        if data.size == 0:
            raise ValueError("cannot build a CDF from no samples")
        ps = np.arange(1, data.size + 1) / data.size
        return cls(xs=data, ps=ps)

    def at(self, x: float) -> float:
        """P(X <= x)."""
        return float(np.searchsorted(self.xs, x, side="right") / self.xs.size)

    def quantile(self, q: float) -> float:
        """The q-quantile (0 < q <= 1).

        Raises
        ------
        ValueError
            For q outside (0, 1].
        """
        if not 0.0 < q <= 1.0:
            raise ValueError(f"quantile must be in (0, 1], got {q!r}")
        index = min(self.xs.size - 1, int(np.ceil(q * self.xs.size)) - 1)
        return float(self.xs[max(index, 0)])

    def series(self) -> list[tuple[float, float]]:
        """(x, P(X<=x)) pairs, suitable for plotting or table rendering."""
        return list(zip(self.xs.tolist(), self.ps.tolist()))

    def __len__(self) -> int:
        return int(self.xs.size)


@dataclass(slots=True)
class Ccdf:
    """An empirical complementary CDF, strictly: P(X > x).

    One convention everywhere: the complement of the empirical
    :class:`Cdf` (``P(X <= x)``), so ``ccdf.at(x) + cdf.at(x) == 1`` and
    :meth:`series` agrees with :meth:`at` at every distinct sample point
    (for ties, on the last row of the tie) — the
    largest sample gets probability 0.  (``of`` used to assign it
    ``1/n``, i.e. ``P(X >= x)``, silently disagreeing with ``at``.)
    """

    xs: np.ndarray
    ps: np.ndarray

    @classmethod
    def of(cls, values: Iterable[float]) -> "Ccdf":
        """Build from raw samples.

        Raises
        ------
        ValueError
            For an empty sample set.
        """
        cdf = Cdf.of(values)
        return cls(xs=cdf.xs, ps=1.0 - cdf.ps)

    def at(self, x: float) -> float:
        """P(X > x)."""
        data = self.xs
        return float((data > x).sum() / data.size)

    def series(self) -> list[tuple[float, float]]:
        """(x, P(X>x)) pairs."""
        return list(zip(self.xs.tolist(), self.ps.tolist()))

    def __len__(self) -> int:
        return int(self.xs.size)


def percentile(values: Sequence[float], q: float) -> float:
    """The q-th percentile (0..100) of ``values``.

    Raises
    ------
    ValueError
        For empty input or q outside [0, 100].
    """
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {q!r}")
    return float(np.percentile(np.asarray(values, dtype=float), q))


def fraction_exceeding(values: Sequence[float], threshold: float) -> float:
    """Fraction of samples strictly above ``threshold``.

    The paper's headline loss numbers are of this form ("43% of the
    streams ... experience more than 0.15% loss").
    """
    if not values:
        return 0.0
    data = np.asarray(values, dtype=float)
    return float((data > threshold).mean())


def fraction_at_most(values: Sequence[float], threshold: float) -> float:
    """Fraction of samples at or below ``threshold``."""
    if not values:
        return 0.0
    data = np.asarray(values, dtype=float)
    return float((data <= threshold).mean())


class OnlineStats:
    """Streaming mean/min/max/count (Welford variance) accumulator."""

    def __init__(self) -> None:
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def add(self, value: float) -> None:
        """Fold one sample into the summary."""
        self.count += 1
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        self.min = min(self.min, value)
        self.max = max(self.max, value)

    def extend(self, values: Iterable[float]) -> None:
        """Fold many samples."""
        for value in values:
            self.add(value)

    def merge(self, other: "OnlineStats") -> None:
        """Fold another accumulator into this one (Chan's parallel update).

        Combines two independently accumulated summaries as if every
        sample had been fed to a single accumulator — campaign shards
        aggregate locally and merge, without keeping raw samples.
        """
        if other.count == 0:
            return
        if self.count == 0:
            self.count = other.count
            self._mean = other._mean
            self._m2 = other._m2
            self.min = other.min
            self.max = other.max
            return
        total = self.count + other.count
        delta = other._mean - self._mean
        self._m2 += other._m2 + delta * delta * self.count * other.count / total
        self._mean += delta * other.count / total
        self.count = total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)

    @property
    def mean(self) -> float:
        """Sample mean (0.0 when empty)."""
        return self._mean if self.count else 0.0

    @property
    def variance(self) -> float:
        """Unbiased sample variance (0.0 for fewer than two samples)."""
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    @property
    def stddev(self) -> float:
        """Sample standard deviation."""
        return float(np.sqrt(self.variance))
