"""Back-to-back loss probing of last-mile hosts (Sec. 5.2).

"We probe each selected host by sending ICMP packets from servers in 10
different PoPs [...] once every 10 minutes using 100 packets that are
sent back to back.  Probes are forced to leave VNS immediately at each
PoP."  Observations carry the CET hour so diurnal analyses (Fig. 12) can
bucket them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dataplane.path import DataPath
from repro.dataplane.transmit import simulate_probe_round
from repro.geo.coords import GeoPoint
from repro.geo.regions import WorldRegion
from repro.measurement.scheduler import Round
from repro.net.addressing import Prefix
from repro.net.asn import ASType
from repro.vns.service import VideoNetworkService


@dataclass(frozen=True, slots=True)
class TargetHost:
    """One probed end host."""

    prefix: Prefix
    location: GeoPoint
    as_type: ASType
    region: WorldRegion


@dataclass(frozen=True, slots=True)
class ProbeObservation:
    """One probe round from one PoP to one host.

    ``min_rtt_ms`` is the round's lowest echo RTT (what the paper
    records; the steering telemetry feeds it into its health tables) —
    ``None`` when every packet of the round was lost.
    """

    pop_code: str
    host: TargetHost
    round: Round
    sent: int
    lost: int
    min_rtt_ms: float | None = None

    @property
    def loss_fraction(self) -> float:
        return self.lost / self.sent if self.sent else 0.0

    @property
    def loss_percent(self) -> float:
        return 100.0 * self.loss_fraction

    @property
    def had_loss(self) -> bool:
        return self.lost > 0


class LossProbeCampaign:
    """Runs the Sec. 5.2 campaign on a set of hosts and PoPs."""

    def __init__(
        self,
        service: VideoNetworkService,
        rng: np.random.Generator,
        *,
        packets_per_round: int = 100,
    ) -> None:
        if packets_per_round <= 0:
            raise ValueError("packets_per_round must be positive")
        self.service = service
        self.rng = rng
        self.packets_per_round = packets_per_round
        self._path_cache: dict[tuple[str, Prefix], DataPath | None] = {}

    def _path(self, pop_code: str, host: TargetHost) -> DataPath | None:
        key = (pop_code, host.prefix)
        if key not in self._path_cache:
            self._path_cache[key] = self.service.path_local_exit(
                pop_code, host.prefix, host.location
            )
        return self._path_cache[key]

    def probe(self, pop_code: str, host: TargetHost, round_: Round) -> ProbeObservation | None:
        """One probe round; ``None`` when the PoP has no route to the host."""
        path = self._path(pop_code, host)
        if path is None:
            return None
        result = simulate_probe_round(
            path,
            packets=self.packets_per_round,
            hour_cet=round_.hour_cet,
            rng=self.rng,
        )
        return ProbeObservation(
            pop_code=pop_code,
            host=host,
            round=round_,
            sent=result.sent,
            lost=result.lost,
            min_rtt_ms=result.min_rtt_ms,
        )

    def run(
        self,
        pop_codes: list[str],
        hosts: list[TargetHost],
        rounds: list[Round],
    ) -> list[ProbeObservation]:
        """The full campaign: every PoP × host × round."""
        observations: list[ProbeObservation] = []
        for round_ in rounds:
            for pop_code in pop_codes:
                for host in hosts:
                    observation = self.probe(pop_code, host, round_)
                    if observation is not None:
                        observations.append(observation)
        return observations


def select_hosts(
    service: VideoNetworkService,
    rng: np.random.Generator | None = None,
    *,
    seed: int | None = None,
    per_type_per_region: int = 50,
    regions: tuple[WorldRegion, ...] = (
        WorldRegion.ASIA_PACIFIC,
        WorldRegion.EUROPE,
        WorldRegion.NORTH_CENTRAL_AMERICA,
    ),
) -> list[TargetHost]:
    """Select the measurement sample of Sec. 5.2.1.

    The paper uses 50 hosts per AS type per region (600 total), chosen to
    maximise AS / country / prefix diversity.  A host's region is where
    the *prefix* lives, not where its AS is headquartered — an LTP homed
    in Europe originates prefixes on every continent.  Buckets sample
    round-robin across distinct origin ASes first, then across each AS's
    prefixes.

    All randomness (the host-location jitter) flows through the explicit
    generator: pass ``rng``, or ``seed`` to have one built — two calls
    with the same seed pick identical hosts.

    Raises
    ------
    ValueError
        When both ``rng`` and ``seed`` are given, or neither is.
    """
    from repro.geo.cities import region_of_point

    if rng is not None and seed is not None:
        raise ValueError("pass either rng or seed, not both")
    if rng is None:
        if seed is None:
            raise ValueError("select_hosts needs an rng or an explicit seed")
        rng = np.random.default_rng(seed)

    topology = service.topology
    # Bucket candidate prefixes by (region, AS type), grouped per origin.
    candidates: dict[tuple[WorldRegion, ASType], dict[int, list]] = {}
    for prefix, origin_asn in topology.origin_of.items():
        system = topology.autonomous_system(origin_asn)
        region = region_of_point(topology.prefix_location[prefix])
        if region not in regions:
            continue
        bucket = candidates.setdefault((region, system.as_type), {})
        bucket.setdefault(origin_asn, []).append(prefix)

    hosts: list[TargetHost] = []
    for region in regions:
        for as_type in ASType:
            per_as = candidates.get((region, as_type))
            if not per_as:
                continue
            asns = sorted(per_as)
            picked: list[TargetHost] = []
            index = 0
            budget = per_type_per_region * max(4, len(asns))
            while len(picked) < per_type_per_region and index < budget:
                asn = asns[index % len(asns)]
                prefix_list = per_as[asn]
                depth = index // len(asns)
                index += 1
                if depth >= len(prefix_list):
                    continue
                prefix = prefix_list[depth]
                picked.append(
                    TargetHost(
                        prefix=prefix,
                        location=topology.host_location(prefix, rng),
                        as_type=as_type,
                        region=region,
                    )
                )
            hosts.extend(picked)
    return hosts
