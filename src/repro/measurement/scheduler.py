"""Measurement schedules, expressed as CET hours across simulated days.

The paper's campaigns are periodic: streams "once every half hour" for
two weeks (Sec. 5.1), probes "once every 10 minutes" for three weeks
(Sec. 5.2).  A schedule here is simply the sequence of CET hour-of-day
stamps at which rounds fire; the day index is carried so campaigns can be
scaled down while keeping full diurnal coverage.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class Round:
    """One measurement round."""

    day: int
    hour_cet: float

    @property
    def absolute_hours(self) -> float:
        """Hours since campaign start."""
        return self.day * 24.0 + self.hour_cet


def rounds_per_day(minutes: float) -> int:
    """How many rounds of period ``minutes`` fit in one 24 h day.

    Exact for divisible periods (``30 -> 48``); a non-divisible period
    keeps every round that starts strictly inside the day (``100 ->
    15``: rounds at 0, 1:40, ..., 23:20 — ``int(round(...))`` would have
    dropped the 23:20 round, and for other periods invented a round
    beyond the day).
    """
    if minutes <= 0:
        raise ValueError(f"period must be positive, got {minutes!r}")
    ratio = 24 * 60 / minutes
    whole = round(ratio)
    if abs(ratio - whole) < 1e-9:
        return int(whole)
    return math.ceil(ratio)


def rounds_every(minutes: float, days: int, start_hour: float = 0.0) -> list[Round]:
    """Rounds every ``minutes`` across ``days`` full days.

    Each day carries :func:`rounds_per_day` rounds, phase-anchored at
    ``start_hour``.  A schedule whose rounds cross midnight (nonzero
    ``start_hour``) attributes the post-midnight rounds to the *next*
    day, so ``Round.absolute_hours`` is strictly increasing across the
    whole schedule instead of jumping backwards at the wrap.

    Raises
    ------
    ValueError
        For a non-positive period, negative day count, or a start hour
        outside [0, 24).
    """
    if days < 0:
        raise ValueError(f"days must be non-negative, got {days!r}")
    if not 0.0 <= start_hour < 24.0:
        raise ValueError(f"start_hour must be in [0, 24), got {start_hour!r}")
    per_day = rounds_per_day(minutes)
    rounds: list[Round] = []
    for day in range(days):
        for slot in range(per_day):
            raw = start_hour + slot * minutes / 60.0
            rounds.append(Round(day=day + int(raw // 24.0), hour_cet=raw % 24.0))
    return rounds


def half_hourly_rounds(days: int) -> list[Round]:
    """The Sec. 5.1 streaming schedule: every 30 minutes."""
    return rounds_every(30.0, days)


def hourly_rounds(days: int) -> list[Round]:
    """A coarser schedule for scaled-down campaigns."""
    return rounds_every(60.0, days)
