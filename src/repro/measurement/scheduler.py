"""Measurement schedules, expressed as CET hours across simulated days.

The paper's campaigns are periodic: streams "once every half hour" for
two weeks (Sec. 5.1), probes "once every 10 minutes" for three weeks
(Sec. 5.2).  A schedule here is simply the sequence of CET hour-of-day
stamps at which rounds fire; the day index is carried so campaigns can be
scaled down while keeping full diurnal coverage.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class Round:
    """One measurement round."""

    day: int
    hour_cet: float

    @property
    def absolute_hours(self) -> float:
        """Hours since campaign start."""
        return self.day * 24.0 + self.hour_cet


def rounds_every(minutes: float, days: int, start_hour: float = 0.0) -> list[Round]:
    """Rounds every ``minutes`` across ``days`` full days.

    Raises
    ------
    ValueError
        For a non-positive period or negative day count.
    """
    if minutes <= 0:
        raise ValueError(f"period must be positive, got {minutes!r}")
    if days < 0:
        raise ValueError(f"days must be non-negative, got {days!r}")
    per_day = int(round(24 * 60 / minutes))
    rounds: list[Round] = []
    for day in range(days):
        for slot in range(per_day):
            hour = (start_hour + slot * minutes / 60.0) % 24.0
            rounds.append(Round(day=day, hour_cet=hour))
    return rounds


def half_hourly_rounds(days: int) -> list[Round]:
    """The Sec. 5.1 streaming schedule: every 30 minutes."""
    return rounds_every(30.0, days)


def hourly_rounds(days: int) -> list[Round]:
    """A coarser schedule for scaled-down campaigns."""
    return rounds_every(60.0, days)
