"""ICMP ping campaigns from VNS PoPs.

Section 4.1: "We probe the first IP address in each destination prefix in
the routing table from all PoPs.  A probe consists of 5 ICMP ping
packets, and we record the lowest observed round-trip time.  The probing
packets are forced out of VNS immediately at each PoP."
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.dataplane.transmit import simulate_ping
from repro.net.addressing import Prefix
from repro.vns.pop import POPS
from repro.vns.service import VideoNetworkService


@dataclass(slots=True)
class PopRttMeasurement:
    """Min-RTTs to one prefix from every PoP that reached it."""

    prefix: Prefix
    rtt_ms_by_pop: dict[str, float] = field(default_factory=dict)

    @property
    def best_pop(self) -> str | None:
        """The PoP with the lowest measured RTT (network-proximity winner)."""
        if not self.rtt_ms_by_pop:
            return None
        return min(self.rtt_ms_by_pop, key=lambda code: self.rtt_ms_by_pop[code])

    @property
    def best_rtt_ms(self) -> float | None:
        best = self.best_pop
        return None if best is None else self.rtt_ms_by_pop[best]

    def rtt_from(self, pop_code: str) -> float | None:
        return self.rtt_ms_by_pop.get(pop_code)


class PingCampaign:
    """Probes prefixes from all (or selected) PoPs, locally forced out."""

    def __init__(
        self,
        service: VideoNetworkService,
        rng: np.random.Generator,
        *,
        packets_per_probe: int = 5,
        pop_codes: list[str] | None = None,
    ) -> None:
        if packets_per_probe <= 0:
            raise ValueError("packets_per_probe must be positive")
        self.service = service
        self.rng = rng
        self.packets_per_probe = packets_per_probe
        self.pop_codes = pop_codes or [pop.code for pop in POPS]

    def probe_prefix(self, prefix: Prefix, hour_cet: float = 12.0) -> PopRttMeasurement:
        """Probe one prefix's first host address from every campaign PoP."""
        result = PopRttMeasurement(prefix=prefix)
        destination = self.service.topology.prefix_location[prefix]
        for code in self.pop_codes:
            path = self.service.path_local_exit(code, prefix, destination)
            if path is None:
                continue
            ping = simulate_ping(
                path, count=self.packets_per_probe, hour_cet=hour_cet, rng=self.rng
            )
            if ping.min_rtt_ms is not None:
                result.rtt_ms_by_pop[code] = ping.min_rtt_ms
        return result

    def probe_all(
        self, prefixes: list[Prefix], hour_cet: float = 12.0
    ) -> dict[Prefix, PopRttMeasurement]:
        """Probe many prefixes; skips prefixes nobody could reach."""
        results: dict[Prefix, PopRttMeasurement] = {}
        for prefix in prefixes:
            measurement = self.probe_prefix(prefix, hour_cet)
            if measurement.rtt_ms_by_pop:
                results[prefix] = measurement
        return results
