"""A small city gazetteer used to place ASes, prefixes, hosts and PoPs.

Coordinates are approximate city centres; ``weight`` is a relative Internet-
population weight used when sampling locations for synthetic ASes and users.
The gazetteer deliberately concentrates weight in the three regions the
paper's evaluation probes (EU, NA, AP) while still covering all seven world
regions so the Fig. 7 anycast-catchment experiment has traffic sources
everywhere.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache

from repro.geo.coords import GeoPoint
from repro.geo.regions import POP_REGION_FOR_WORLD_REGION, PopRegion, WorldRegion


@dataclass(frozen=True, slots=True)
class City:
    """A gazetteer entry.

    Parameters
    ----------
    name:
        Unique city name (used as a key throughout the package).
    country:
        ISO-like country code.
    location:
        City-centre coordinates.
    region:
        The world region the city belongs to.
    weight:
        Relative weight for sampling synthetic network presence.
    """

    name: str
    country: str
    location: GeoPoint
    region: WorldRegion
    weight: float = 1.0

    @property
    def pop_region(self) -> PopRegion:
        """PoP region that geographically serves this city."""
        return POP_REGION_FOR_WORLD_REGION[self.region]


def _c(
    name: str,
    country: str,
    lat: float,
    lon: float,
    region: WorldRegion,
    weight: float = 1.0,
) -> City:
    return City(name=name, country=country, location=GeoPoint(lat, lon), region=region, weight=weight)


_EU = WorldRegion.EUROPE
_NA = WorldRegion.NORTH_CENTRAL_AMERICA
_AP = WorldRegion.ASIA_PACIFIC
_OC = WorldRegion.OCEANIA
_ME = WorldRegion.MIDDLE_EAST
_AF = WorldRegion.AFRICA
_SA = WorldRegion.SOUTH_AMERICA

#: The gazetteer.  The first eleven entries are the VNS PoP cities.
CITIES: tuple[City, ...] = (
    # --- VNS PoP cities -------------------------------------------------
    _c("Oslo", "NO", 59.91, 10.75, _EU, 1.0),
    _c("Amsterdam", "NL", 52.37, 4.90, _EU, 3.0),
    _c("Frankfurt", "DE", 50.11, 8.68, _EU, 3.0),
    _c("London", "GB", 51.51, -0.13, _EU, 4.0),
    _c("Atlanta", "US", 33.75, -84.39, _NA, 2.0),
    _c("Ashburn", "US", 39.04, -77.49, _NA, 3.0),
    _c("San Jose", "US", 37.34, -121.89, _NA, 3.0),
    _c("Hong Kong", "HK", 22.32, 114.17, _AP, 3.0),
    _c("Singapore", "SG", 1.35, 103.82, _AP, 3.0),
    _c("Tokyo", "JP", 35.68, 139.69, _AP, 4.0),
    _c("Sydney", "AU", -33.87, 151.21, _OC, 2.0),
    # --- Europe ---------------------------------------------------------
    _c("Paris", "FR", 48.86, 2.35, _EU, 3.0),
    _c("Madrid", "ES", 40.42, -3.70, _EU, 2.0),
    _c("Rome", "IT", 41.90, 12.50, _EU, 2.0),
    _c("Stockholm", "SE", 59.33, 18.07, _EU, 1.5),
    _c("Copenhagen", "DK", 55.68, 12.57, _EU, 1.0),
    _c("Warsaw", "PL", 52.23, 21.01, _EU, 1.5),
    _c("Vienna", "AT", 48.21, 16.37, _EU, 1.0),
    _c("Zurich", "CH", 47.37, 8.54, _EU, 1.0),
    _c("Dublin", "IE", 53.35, -6.26, _EU, 1.0),
    _c("Brussels", "BE", 50.85, 4.35, _EU, 1.0),
    _c("Lisbon", "PT", 38.72, -9.14, _EU, 1.0),
    _c("Athens", "GR", 37.98, 23.73, _EU, 1.0),
    _c("Prague", "CZ", 50.08, 14.44, _EU, 1.0),
    _c("Helsinki", "FI", 60.17, 24.94, _EU, 1.0),
    _c("Moscow", "RU", 55.76, 37.62, _EU, 2.0),
    _c("Saint Petersburg", "RU", 59.93, 30.34, _EU, 1.0),
    _c("Kyiv", "UA", 50.45, 30.52, _EU, 1.0),
    _c("Bucharest", "RO", 44.43, 26.10, _EU, 1.0),
    _c("Istanbul", "TR", 41.01, 28.98, _EU, 1.5),
    # --- North and Central America ---------------------------------------
    _c("New York", "US", 40.71, -74.01, _NA, 4.0),
    _c("Chicago", "US", 41.88, -87.63, _NA, 3.0),
    _c("Dallas", "US", 32.78, -96.80, _NA, 2.0),
    _c("Los Angeles", "US", 34.05, -118.24, _NA, 3.0),
    _c("Seattle", "US", 47.61, -122.33, _NA, 2.0),
    _c("Miami", "US", 25.76, -80.19, _NA, 2.0),
    _c("Denver", "US", 39.74, -104.99, _NA, 1.5),
    _c("Boston", "US", 42.36, -71.06, _NA, 1.5),
    _c("Toronto", "CA", 43.65, -79.38, _NA, 2.0),
    _c("Montreal", "CA", 45.50, -73.57, _NA, 1.5),
    _c("Vancouver", "CA", 49.28, -123.12, _NA, 1.0),
    _c("Mexico City", "MX", 19.43, -99.13, _NA, 2.0),
    _c("Panama City", "PA", 8.98, -79.52, _NA, 0.5),
    # --- Asia Pacific -----------------------------------------------------
    _c("Seoul", "KR", 37.57, 126.98, _AP, 3.0),
    _c("Osaka", "JP", 34.69, 135.50, _AP, 2.0),
    _c("Taipei", "TW", 25.03, 121.57, _AP, 2.0),
    _c("Shanghai", "CN", 31.23, 121.47, _AP, 3.0),
    _c("Beijing", "CN", 39.90, 116.41, _AP, 3.0),
    _c("Shenzhen", "CN", 22.55, 114.06, _AP, 2.0),
    _c("Mumbai", "IN", 19.08, 72.88, _AP, 3.0),
    _c("Delhi", "IN", 28.61, 77.21, _AP, 2.5),
    _c("Chennai", "IN", 13.08, 80.27, _AP, 1.5),
    _c("Bangalore", "IN", 12.97, 77.59, _AP, 2.0),
    _c("Bangkok", "TH", 13.76, 100.50, _AP, 2.0),
    _c("Jakarta", "ID", -6.21, 106.85, _AP, 2.0),
    _c("Manila", "PH", 14.60, 120.98, _AP, 2.0),
    _c("Kuala Lumpur", "MY", 3.14, 101.69, _AP, 1.5),
    _c("Hanoi", "VN", 21.03, 105.85, _AP, 1.0),
    # --- Oceania ---------------------------------------------------------
    _c("Melbourne", "AU", -37.81, 144.96, _OC, 1.5),
    _c("Brisbane", "AU", -27.47, 153.03, _OC, 1.0),
    _c("Perth", "AU", -31.95, 115.86, _OC, 0.8),
    _c("Auckland", "NZ", -36.85, 174.76, _OC, 1.0),
    _c("Wellington", "NZ", -41.29, 174.78, _OC, 0.5),
    # --- Middle East -------------------------------------------------------
    _c("Dubai", "AE", 25.20, 55.27, _ME, 1.5),
    _c("Tel Aviv", "IL", 32.09, 34.78, _ME, 1.0),
    _c("Riyadh", "SA", 24.71, 46.68, _ME, 1.0),
    _c("Doha", "QA", 25.29, 51.53, _ME, 0.5),
    _c("Amman", "JO", 31.95, 35.93, _ME, 0.5),
    # --- Africa ------------------------------------------------------------
    _c("Johannesburg", "ZA", -26.20, 28.05, _AF, 1.5),
    _c("Cape Town", "ZA", -33.92, 18.42, _AF, 1.0),
    _c("Cairo", "EG", 30.04, 31.24, _AF, 1.5),
    _c("Lagos", "NG", 6.52, 3.38, _AF, 1.5),
    _c("Nairobi", "KE", -1.29, 36.82, _AF, 1.0),
    _c("Casablanca", "MA", 33.57, -7.59, _AF, 0.5),
    # --- South America -------------------------------------------------------
    _c("Sao Paulo", "BR", -23.55, -46.63, _SA, 2.5),
    _c("Rio de Janeiro", "BR", -22.91, -43.17, _SA, 1.5),
    _c("Buenos Aires", "AR", -34.60, -58.38, _SA, 1.5),
    _c("Santiago", "CL", -33.45, -70.67, _SA, 1.0),
    _c("Bogota", "CO", 4.71, -74.07, _SA, 1.0),
    _c("Lima", "PE", -12.05, -77.04, _SA, 1.0),
)

_BY_NAME: dict[str, City] = {city.name: city for city in CITIES}

#: Geographic centre-of-country points used by the country-centroid GeoIP
#: error model (the paper's "Russian prefixes geo-located to a single
#: geographic location in the center of Russia").
COUNTRY_CENTROIDS: dict[str, GeoPoint] = {
    "RU": GeoPoint(61.52, 105.32),  # centre of Russia, far into Siberia
    "US": GeoPoint(39.83, -98.58),
    "CN": GeoPoint(35.86, 104.20),
    "IN": GeoPoint(20.59, 78.96),
    "AU": GeoPoint(-25.27, 133.78),
    "CA": GeoPoint(56.13, -106.35),
    "BR": GeoPoint(-14.24, -51.93),
}


def city_by_name(name: str) -> City:
    """Look up a city by its unique name.

    Raises
    ------
    KeyError
        If the gazetteer has no city with that name.
    """
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(f"unknown city {name!r}") from None


def cities_in_world_region(region: WorldRegion) -> tuple[City, ...]:
    """All gazetteer cities in a given world region."""
    return tuple(city for city in CITIES if city.region is region)


def cities_in_pop_region(region: PopRegion) -> tuple[City, ...]:
    """All gazetteer cities whose serving PoP region is ``region``."""
    return tuple(city for city in CITIES if city.pop_region is region)


#: Per-city haversine terms ``(lat_rad, cos_lat, lon, city)``, built on
#: the first reverse-geocoding miss.
_CITY_TRIG: list[tuple[float, float, float, City]] | None = None


@lru_cache(maxsize=None)
def nearest_city(point: GeoPoint) -> City:
    """The gazetteer city closest to ``point`` (coarse reverse geocoding).

    Memoised: the function is pure, ``GeoPoint`` is frozen/hashable, and
    real workloads reverse-geocode the same prefix/PoP/city locations
    millions of times — the linear gazetteer scan was the campaign
    engine's single hottest call before caching.  Misses compare raw
    haversine terms (monotone in distance) with per-city trigonometry
    hoisted; the argmin matches ranking by
    :func:`~repro.geo.coords.great_circle_km`.
    """
    global _CITY_TRIG
    trig = _CITY_TRIG
    if trig is None:
        trig = _CITY_TRIG = [
            (
                math.radians(city.location.lat),
                math.cos(math.radians(city.location.lat)),
                city.location.lon,
                city,
            )
            for city in CITIES
        ]
    lat2 = math.radians(point.lat)
    cos_lat2 = math.cos(lat2)
    lon2 = point.lon
    best = trig[0][3]
    best_h = math.inf
    for lat1, cos_lat1, lon1, city in trig:
        dlat = lat2 - lat1
        dlon = math.radians(lon2 - lon1)
        h = math.sin(dlat / 2.0) ** 2 + cos_lat1 * cos_lat2 * math.sin(dlon / 2.0) ** 2
        if h < best_h:
            best_h = h
            best = city
    return best


def region_of_point(point: GeoPoint) -> WorldRegion:
    """The world region of the gazetteer city closest to ``point``."""
    return nearest_city(point).region
