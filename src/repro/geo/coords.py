"""Spherical geodesy primitives.

The paper computes "the shortest distance between two points that lie on a
surface of a sphere, often referred to as the great-circle distance" between
an egress router's known location and a prefix's GeoIP location.  We use the
haversine formulation, which is numerically stable for the small distances
that matter most for egress tie-breaking.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

#: Mean Earth radius in kilometres (IUGG).
EARTH_RADIUS_KM = 6371.0088


@dataclass(frozen=True, slots=True)
class GeoPoint:
    """A point on the Earth's surface.

    Parameters
    ----------
    lat:
        Latitude in decimal degrees, in ``[-90, 90]``.
    lon:
        Longitude in decimal degrees, in ``[-180, 180]``.
    """

    lat: float
    lon: float
    #: value hash, precomputed once — points key several hot memo caches,
    #: and the generated dataclass hash was itself showing up on profiles.
    _hash: int = field(init=False, repr=False, compare=False, default=0)

    def __post_init__(self) -> None:
        if not -90.0 <= self.lat <= 90.0:
            raise ValueError(f"latitude {self.lat!r} outside [-90, 90]")
        if not -180.0 <= self.lon <= 180.0:
            raise ValueError(f"longitude {self.lon!r} outside [-180, 180]")
        object.__setattr__(self, "_hash", hash((self.lat, self.lon)))

    def __hash__(self) -> int:
        return self._hash

    def distance_km(self, other: "GeoPoint") -> float:
        """Great-circle distance to ``other`` in kilometres."""
        return great_circle_km(self, other)

    def __str__(self) -> str:
        ns = "N" if self.lat >= 0 else "S"
        ew = "E" if self.lon >= 0 else "W"
        return f"{abs(self.lat):.4f}{ns},{abs(self.lon):.4f}{ew}"


def great_circle_km(a: GeoPoint, b: GeoPoint) -> float:
    """Great-circle (haversine) distance between two points, in km.

    This is the distance metric the modified route reflector uses to rank
    candidate egress PoPs for a destination prefix.
    """
    lat1 = math.radians(a.lat)
    lat2 = math.radians(b.lat)
    dlat = lat2 - lat1
    dlon = math.radians(b.lon - a.lon)
    h = math.sin(dlat / 2.0) ** 2 + math.cos(lat1) * math.cos(lat2) * math.sin(dlon / 2.0) ** 2
    # Clamp against floating point drift before the sqrt/asin.
    h = min(1.0, max(0.0, h))
    return 2.0 * EARTH_RADIUS_KM * math.asin(math.sqrt(h))


#: Precomputed trig terms of a point: ``(lat_rad, cos_lat, lon_rad)``.
TrigTerms = tuple[float, float, float]


def trig_terms(point: GeoPoint) -> TrigTerms:
    """Precompute the per-point haversine terms ``(lat_rad, cos_lat, lon_rad)``.

    A caller that measures many distances *from* a fixed set of points
    (the 11 PoPs, the ~22 egress routers) computes these once and feeds
    them to :func:`great_circle_km_fast`, skipping the degree→radian
    conversions and the cosine on every call.
    """
    lat_rad = math.radians(point.lat)
    return (lat_rad, math.cos(lat_rad), math.radians(point.lon))


def great_circle_km_fast(terms: TrigTerms, b: GeoPoint) -> float:
    """Haversine distance from a precomputed point to ``b``, in km.

    Same formulation as :func:`great_circle_km` — only the fixed point's
    trigonometry is hoisted — so distances agree to floating-point noise
    (≪ the 10 km LOCAL_PREF resolution the route reflector quantises to).
    """
    lat1, cos_lat1, lon1 = terms
    lat2 = math.radians(b.lat)
    dlat = lat2 - lat1
    dlon = math.radians(b.lon) - lon1
    h = math.sin(dlat / 2.0) ** 2 + cos_lat1 * math.cos(lat2) * math.sin(dlon / 2.0) ** 2
    h = min(1.0, max(0.0, h))
    return 2.0 * EARTH_RADIUS_KM * math.asin(math.sqrt(h))


def initial_bearing_deg(a: GeoPoint, b: GeoPoint) -> float:
    """Initial bearing (forward azimuth) from ``a`` to ``b`` in degrees.

    Returned in ``[0, 360)``, measured clockwise from true north.
    """
    lat1 = math.radians(a.lat)
    lat2 = math.radians(b.lat)
    dlon = math.radians(b.lon - a.lon)
    x = math.sin(dlon) * math.cos(lat2)
    y = math.cos(lat1) * math.sin(lat2) - math.sin(lat1) * math.cos(lat2) * math.cos(dlon)
    return math.degrees(math.atan2(x, y)) % 360.0


def destination_point(origin: GeoPoint, bearing_deg: float, distance_km: float) -> GeoPoint:
    """The point ``distance_km`` away from ``origin`` along ``bearing_deg``.

    Used to jitter synthetic host and prefix locations around a city centre
    so that a city's prefixes are not all co-located.
    """
    if distance_km < 0:
        raise ValueError(f"distance must be non-negative, got {distance_km!r}")
    ang = distance_km / EARTH_RADIUS_KM
    brg = math.radians(bearing_deg)
    lat1 = math.radians(origin.lat)
    lon1 = math.radians(origin.lon)
    lat2 = math.asin(
        math.sin(lat1) * math.cos(ang) + math.cos(lat1) * math.sin(ang) * math.cos(brg)
    )
    lon2 = lon1 + math.atan2(
        math.sin(brg) * math.sin(ang) * math.cos(lat1),
        math.cos(ang) - math.sin(lat1) * math.sin(lat2),
    )
    # Normalise longitude to [-180, 180].
    lon_deg = (math.degrees(lon2) + 540.0) % 360.0 - 180.0
    return GeoPoint(lat=math.degrees(lat2), lon=lon_deg)


def midpoint(a: GeoPoint, b: GeoPoint) -> GeoPoint:
    """Geographic midpoint of the great-circle segment between two points."""
    lat1 = math.radians(a.lat)
    lon1 = math.radians(a.lon)
    lat2 = math.radians(b.lat)
    dlon = math.radians(b.lon - a.lon)
    bx = math.cos(lat2) * math.cos(dlon)
    by = math.cos(lat2) * math.sin(dlon)
    lat3 = math.atan2(
        math.sin(lat1) + math.sin(lat2),
        math.sqrt((math.cos(lat1) + bx) ** 2 + by**2),
    )
    lon3 = lon1 + math.atan2(by, math.cos(lat1) + bx)
    lon_deg = (math.degrees(lon3) + 540.0) % 360.0 - 180.0
    return GeoPoint(lat=math.degrees(lat3), lon=lon_deg)
