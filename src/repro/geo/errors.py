"""GeoIP error models.

Section 4.1 traces the two outlier clusters of Fig. 3 to concrete database
pathologies:

* *country-centroid collapse* — "Russian prefixes that are geo-located to a
  single geographic location in the center of Russia", which made them look
  closer to VNS's Asian PoPs than to its European ones; and
* *stale WHOIS after M&A* — "Indian prefixes [that] are geo-located in
  Canada" because the prefixes formerly belonged to a Canadian ISP bought
  by TATA.

Both are implemented here, alongside generic noise and missing-entry models,
as composable transformations over a :class:`~repro.geo.geoip.GeoIPDatabase`.
"""

from __future__ import annotations

import abc
from collections.abc import Hashable, Sequence

import numpy as np

from repro.geo.cities import COUNTRY_CENTROIDS
from repro.geo.coords import GeoPoint, destination_point
from repro.geo.geoip import GeoIPDatabase


class GeoIPErrorModel(abc.ABC):
    """A transformation that degrades a GeoIP database in place."""

    @abc.abstractmethod
    def apply(self, db: GeoIPDatabase, rng: np.random.Generator) -> list[Hashable]:
        """Degrade ``db``; return the list of prefixes that were affected."""


def _sample_fraction(
    prefixes: Sequence[Hashable], fraction: float, rng: np.random.Generator
) -> list[Hashable]:
    """Pick ``fraction`` of ``prefixes`` uniformly without replacement."""
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction!r}")
    count = int(round(fraction * len(prefixes)))
    if count == 0:
        return []
    idx = rng.choice(len(prefixes), size=count, replace=False)
    return [prefixes[i] for i in idx]


class CountryCentroidError(GeoIPErrorModel):
    """Collapse a country's prefixes onto its geographic centroid.

    Parameters
    ----------
    country:
        Country code whose records to collapse.
    fraction:
        Fraction of that country's records affected (default: all, which is
        what the paper observed for Russia).
    centroid:
        Override the centroid; defaults to the gazetteer's entry for the
        country.
    """

    def __init__(
        self,
        country: str,
        fraction: float = 1.0,
        centroid: GeoPoint | None = None,
    ) -> None:
        if centroid is None:
            if country not in COUNTRY_CENTROIDS:
                raise ValueError(
                    f"no known centroid for {country!r}; pass centroid= explicitly"
                )
            centroid = COUNTRY_CENTROIDS[country]
        self.country = country
        self.fraction = fraction
        self.centroid = centroid

    def apply(self, db: GeoIPDatabase, rng: np.random.Generator) -> list[Hashable]:
        candidates = db.prefixes_in_country(self.country)
        affected = _sample_fraction(candidates, self.fraction, rng)
        for prefix in affected:
            db.override(prefix, location=self.centroid)
        return affected


class StaleWhoisError(GeoIPErrorModel):
    """Relocate prefixes to a stale registrant country after an M&A.

    Models the paper's Indian-prefixes-in-Canada cluster: records whose
    *true* country is ``true_country`` get reported at ``stale_location``
    with ``stale_country``.
    """

    def __init__(
        self,
        true_country: str,
        stale_country: str,
        stale_location: GeoPoint | None = None,
        fraction: float = 1.0,
    ) -> None:
        if stale_location is None:
            if stale_country not in COUNTRY_CENTROIDS:
                raise ValueError(
                    f"no known centroid for {stale_country!r}; pass stale_location="
                )
            stale_location = COUNTRY_CENTROIDS[stale_country]
        self.true_country = true_country
        self.stale_country = stale_country
        self.stale_location = stale_location
        self.fraction = fraction

    def apply(self, db: GeoIPDatabase, rng: np.random.Generator) -> list[Hashable]:
        candidates = db.prefixes_in_country(self.true_country)
        affected = _sample_fraction(candidates, self.fraction, rng)
        for prefix in affected:
            db.override(prefix, location=self.stale_location, country=self.stale_country)
        return affected


class RandomNoiseError(GeoIPErrorModel):
    """Displace a fraction of records by a random offset.

    Offsets are drawn with an exponential distance distribution (mean
    ``mean_km``) in a uniformly random direction, matching the long-tailed
    error profile reported for commercial databases: most records land
    within ~100 km, a minority much farther away.
    """

    def __init__(self, mean_km: float = 50.0, fraction: float = 1.0) -> None:
        if mean_km < 0:
            raise ValueError(f"mean_km must be non-negative, got {mean_km!r}")
        self.mean_km = mean_km
        self.fraction = fraction

    def apply(self, db: GeoIPDatabase, rng: np.random.Generator) -> list[Hashable]:
        affected = _sample_fraction(db.prefixes(), self.fraction, rng)
        for prefix in affected:
            entry = db.lookup(prefix)
            assert entry is not None
            distance = float(rng.exponential(self.mean_km))
            bearing = float(rng.uniform(0.0, 360.0))
            db.override(
                prefix, location=destination_point(entry.location, bearing, distance)
            )
        return affected


class MissingEntryError(GeoIPErrorModel):
    """Drop a fraction of records, modelling database misses."""

    def __init__(self, fraction: float) -> None:
        self.fraction = fraction

    def apply(self, db: GeoIPDatabase, rng: np.random.Generator) -> list[Hashable]:
        affected = _sample_fraction(db.prefixes(), self.fraction, rng)
        for prefix in affected:
            db.remove(prefix)
        return affected


def apply_error_models(
    db: GeoIPDatabase,
    models: Sequence[GeoIPErrorModel],
    rng: np.random.Generator,
) -> dict[str, list[Hashable]]:
    """Apply several error models in order; map model class name → affected."""
    report: dict[str, list[Hashable]] = {}
    for model in models:
        affected = model.apply(db, rng)
        report.setdefault(type(model).__name__, []).extend(affected)
    return report
