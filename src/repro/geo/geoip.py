"""A synthetic GeoIP database in the style of MaxMind GeoIP.

The paper's route reflector queries "a GeoIP database that resides on the
same server" for the location of every destination prefix.  We model the
database as an explicit mapping from prefix to :class:`GeoIPEntry`.  The
*true* location of each prefix is known to the topology generator; the
database stores what the (imperfect) commercial product would report, so
error models (:mod:`repro.geo.errors`) can be layered on top to reproduce
the Fig. 3 outlier clusters.

Keys are intentionally generic: any hashable prefix object works, which
keeps this module free of a dependency on :mod:`repro.net`.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator
from dataclasses import dataclass, replace

from repro.geo.coords import GeoPoint


@dataclass(frozen=True, slots=True)
class GeoIPEntry:
    """One database record.

    Parameters
    ----------
    location:
        The coordinates the database reports for the prefix.
    country:
        The country code the database reports.
    true_location:
        Ground truth, kept for evaluation only — real databases obviously
        do not carry this field.  Error models perturb ``location`` and
        ``country`` but never ``true_location``.
    """

    location: GeoPoint
    country: str
    true_location: GeoPoint

    @property
    def error_km(self) -> float:
        """Distance between the reported and the true location."""
        return self.location.distance_km(self.true_location)


class GeoIPDatabase:
    """Prefix-to-location mapping with evaluation-friendly ground truth.

    The database starts out perfect (reported location == true location);
    apply error models from :mod:`repro.geo.errors` to degrade it the way a
    commercial database is degraded.
    """

    def __init__(self) -> None:
        self._entries: dict[Hashable, GeoIPEntry] = {}
        #: Bumped on every mutation; consumers caching lookup results
        #: (e.g. the geo reflector's LOCAL_PREF memo) compare against it
        #: to detect staleness without subscribing to individual records.
        self.version = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, prefix: Hashable) -> bool:
        return prefix in self._entries

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._entries)

    def register(self, prefix: Hashable, location: GeoPoint, country: str) -> None:
        """Add a prefix with a perfect (ground-truth) record.

        Raises
        ------
        ValueError
            If the prefix is already registered; use :meth:`override` to
            change an existing record.
        """
        if prefix in self._entries:
            raise ValueError(f"prefix {prefix!r} already registered")
        self._entries[prefix] = GeoIPEntry(
            location=location, country=country, true_location=location
        )
        self.version += 1

    def lookup(self, prefix: Hashable) -> GeoIPEntry | None:
        """The database record for ``prefix``, or ``None`` if unmapped.

        An unmapped prefix models a database miss; the route reflector
        falls back to default BGP behaviour for such prefixes.
        """
        return self._entries.get(prefix)

    def reported_location(self, prefix: Hashable) -> GeoPoint | None:
        """Convenience accessor for the reported coordinates."""
        entry = self._entries.get(prefix)
        return None if entry is None else entry.location

    def true_location(self, prefix: Hashable) -> GeoPoint | None:
        """Ground-truth coordinates (evaluation only)."""
        entry = self._entries.get(prefix)
        return None if entry is None else entry.true_location

    def override(
        self,
        prefix: Hashable,
        *,
        location: GeoPoint | None = None,
        country: str | None = None,
    ) -> None:
        """Perturb an existing record (used by error models).

        Raises
        ------
        KeyError
            If the prefix is not registered.
        """
        entry = self._entries[prefix]
        if location is not None:
            entry = replace(entry, location=location)
        if country is not None:
            entry = replace(entry, country=country)
        self._entries[prefix] = entry
        self.version += 1

    def remove(self, prefix: Hashable) -> None:
        """Drop a record entirely, modelling a database miss."""
        del self._entries[prefix]
        self.version += 1

    def prefixes(self) -> tuple[Hashable, ...]:
        """All registered prefixes, in insertion order."""
        return tuple(self._entries)

    def prefixes_in_country(self, country: str) -> tuple[Hashable, ...]:
        """Prefixes whose *reported* country matches ``country``."""
        return tuple(p for p, e in self._entries.items() if e.country == country)

    def entries(self) -> Iterable[tuple[Hashable, GeoIPEntry]]:
        """Iterate ``(prefix, entry)`` pairs."""
        return self._entries.items()

    def mean_error_km(self) -> float:
        """Average reported-vs-true distance over all records.

        Returns 0.0 for an empty database.
        """
        if not self._entries:
            return 0.0
        return sum(e.error_km for e in self._entries.values()) / len(self._entries)

    def fraction_within_km(self, radius_km: float) -> float:
        """Fraction of records whose error is within ``radius_km``.

        The study the paper cites found MaxMind located ~60% of prefixes
        within 100 km of truth; this metric lets tests assert the same kind
        of statement about the synthetic database.
        """
        if not self._entries:
            return 1.0
        hits = sum(1 for e in self._entries.values() if e.error_km <= radius_km)
        return hits / len(self._entries)
