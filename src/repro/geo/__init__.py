"""Geodesy, world regions, cities, and the synthetic GeoIP database.

The geo-based routing in the paper rests on two geographic primitives: the
great-circle distance between an egress PoP and a destination prefix, and a
GeoIP database that maps prefixes to coordinates.  This subpackage provides
both, plus the region taxonomy the paper uses (seven world regions for users,
four PoP regions for VNS) and the GeoIP error classes that produce the
outlier clusters in Fig. 3.
"""

from repro.geo.coords import (
    EARTH_RADIUS_KM,
    GeoPoint,
    destination_point,
    great_circle_km,
    initial_bearing_deg,
    midpoint,
)
from repro.geo.regions import (
    POP_REGION_FOR_WORLD_REGION,
    REGION_UTC_OFFSET_HOURS,
    PopRegion,
    WorldRegion,
)
from repro.geo.cities import (
    CITIES,
    City,
    cities_in_pop_region,
    cities_in_world_region,
    city_by_name,
    nearest_city,
    region_of_point,
)
from repro.geo.geoip import GeoIPDatabase, GeoIPEntry
from repro.geo.errors import (
    CountryCentroidError,
    GeoIPErrorModel,
    MissingEntryError,
    RandomNoiseError,
    StaleWhoisError,
    apply_error_models,
)

__all__ = [
    "EARTH_RADIUS_KM",
    "GeoPoint",
    "great_circle_km",
    "initial_bearing_deg",
    "destination_point",
    "midpoint",
    "PopRegion",
    "WorldRegion",
    "POP_REGION_FOR_WORLD_REGION",
    "REGION_UTC_OFFSET_HOURS",
    "City",
    "CITIES",
    "city_by_name",
    "cities_in_pop_region",
    "nearest_city",
    "region_of_point",
    "cities_in_world_region",
    "GeoIPDatabase",
    "GeoIPEntry",
    "GeoIPErrorModel",
    "CountryCentroidError",
    "StaleWhoisError",
    "RandomNoiseError",
    "MissingEntryError",
    "apply_error_models",
]
