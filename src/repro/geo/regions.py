"""Region taxonomy used throughout the paper's evaluation.

Two granularities appear in the paper:

* Section 4.4 / Fig. 7 divides the *world* into seven user regions:
  Oceania, Asia Pacific, Middle East, Africa, Europe, North and Central
  America, and South America.
* VNS *PoPs* fall into four regions: EU, US (NA), AP, and Oceania (OC).

Diurnal congestion profiles (Sec. 5.2.3 / Fig. 12) are expressed in CET; we
therefore also record a representative UTC offset per world region so that
"peak hours in region B" can be translated into the CET hour axis the paper
plots.
"""

from __future__ import annotations

import enum


class WorldRegion(enum.Enum):
    """The seven user regions of Sec. 4.4."""

    # Identity hashing for singleton members: C-level, unlike Enum's
    # Python ``__hash__``, which dominated region-keyed table lookups on
    # campaign profiles.
    __hash__ = object.__hash__

    OCEANIA = "Oceania"
    ASIA_PACIFIC = "Asia Pacific"
    MIDDLE_EAST = "Middle East"
    AFRICA = "Africa"
    EUROPE = "Europe"
    NORTH_CENTRAL_AMERICA = "North and Central America"
    SOUTH_AMERICA = "South America"

    def __str__(self) -> str:
        return self.value


class PopRegion(enum.Enum):
    """The four VNS PoP regions of Sec. 4.4."""

    __hash__ = object.__hash__  # identity hashing — see WorldRegion

    EU = "EU"
    NA = "US"
    AP = "AP"
    OC = "OC"

    def __str__(self) -> str:
        return self.value


#: Which PoP region geographically serves each world region.  This is the
#: "traffic follows geography" expectation behind Fig. 7: requests from a
#: world region should predominantly land on the PoP region listed here.
POP_REGION_FOR_WORLD_REGION: dict[WorldRegion, PopRegion] = {
    WorldRegion.OCEANIA: PopRegion.OC,
    WorldRegion.ASIA_PACIFIC: PopRegion.AP,
    WorldRegion.MIDDLE_EAST: PopRegion.EU,
    WorldRegion.AFRICA: PopRegion.EU,
    WorldRegion.EUROPE: PopRegion.EU,
    WorldRegion.NORTH_CENTRAL_AMERICA: PopRegion.NA,
    WorldRegion.SOUTH_AMERICA: PopRegion.NA,
}

#: Representative standard-time UTC offsets (hours) per world region, used to
#: convert local business/evening hours into the CET axis of Fig. 12.
REGION_UTC_OFFSET_HOURS: dict[WorldRegion, int] = {
    WorldRegion.OCEANIA: 10,
    WorldRegion.ASIA_PACIFIC: 8,
    WorldRegion.MIDDLE_EAST: 3,
    WorldRegion.AFRICA: 2,
    WorldRegion.EUROPE: 1,
    WorldRegion.NORTH_CENTRAL_AMERICA: -6,
    WorldRegion.SOUTH_AMERICA: -4,
}

#: CET is UTC+1 (the paper reports all times in CET and the measurement ran
#: in November/December, i.e. outside daylight saving).
CET_UTC_OFFSET_HOURS = 1


def local_hour_to_cet(hour_local: float, region: WorldRegion) -> float:
    """Convert an hour-of-day in ``region``'s local time to CET.

    >>> local_hour_to_cet(9, WorldRegion.ASIA_PACIFIC)  # 9am in AP
    2.0
    """
    offset = REGION_UTC_OFFSET_HOURS[region]
    return (hour_local - offset + CET_UTC_OFFSET_HOURS) % 24.0


def cet_to_local_hour(hour_cet: float, region: WorldRegion) -> float:
    """Convert a CET hour-of-day to ``region``'s local time."""
    offset = REGION_UTC_OFFSET_HOURS[region]
    return (hour_cet - CET_UTC_OFFSET_HOURS + offset) % 24.0


#: World regions whose hosts the last-mile study (Sec. 5.2) probes.  The
#: paper selects 600 hosts in NA, EU and AP.
LAST_MILE_STUDY_REGIONS = (
    WorldRegion.ASIA_PACIFIC,
    WorldRegion.EUROPE,
    WorldRegion.NORTH_CENTRAL_AMERICA,
)
