"""Fault injection and failover measurement for the VNS overlay.

The paper's network is engineered for steady-state quality — dedicated
circuits, cold-potato egress, anycast entry.  This subpackage asks what
happens when pieces of it break:

* :mod:`~repro.faults.events` — typed fault events (circuit cut, PoP
  loss, eBGP session flap, transit degradation) on a deterministic
  simulated timeline driven by a seeded generator,
* :mod:`~repro.faults.injector` — applies events to the live network:
  IGP re-runs SPF, border routers withdraw and re-advertise through the
  real BGP machinery, every fault has an exact inverse,
* :mod:`~repro.faults.recovery` — convergence cost, egress churn, the
  blackhole window, and the loss an in-flight media stream eats,
* :mod:`~repro.faults.scenarios` — canned scenarios: single long-haul
  cut, whole-PoP failure with anycast re-catchment, correlated regional
  failure, flapping upstream, pure data-plane transit degradation.
"""

from repro.faults.events import (
    EVENT_TYPES,
    FaultEvent,
    FaultTimeline,
    LinkDown,
    LinkUp,
    PopDown,
    PopUp,
    SessionDown,
    SessionUp,
    SimulatedClock,
    TransitDegrade,
    TransitRestore,
    event_from_dict,
    event_to_dict,
    events_from_json,
    events_to_json,
    random_flap_timeline,
)
from repro.faults.injector import FaultInjector
from repro.faults.recovery import (
    EventImpact,
    ImpactMeter,
    MediaImpact,
    RoutingSnapshot,
    failover_window_s,
    measure_event,
    overlay_outage,
    prefix_sample,
)
from repro.faults.scenarios import (
    ScenarioResult,
    flapping_upstream,
    pop_failure,
    regional_failure,
    resolve_corridor,
    single_link_cut,
    transit_degradation,
)

__all__ = [
    "EVENT_TYPES",
    "FaultEvent",
    "FaultTimeline",
    "event_from_dict",
    "event_to_dict",
    "events_from_json",
    "events_to_json",
    "LinkDown",
    "LinkUp",
    "PopDown",
    "PopUp",
    "SessionDown",
    "SessionUp",
    "SimulatedClock",
    "TransitDegrade",
    "TransitRestore",
    "random_flap_timeline",
    "FaultInjector",
    "EventImpact",
    "ImpactMeter",
    "MediaImpact",
    "RoutingSnapshot",
    "failover_window_s",
    "measure_event",
    "overlay_outage",
    "prefix_sample",
    "ScenarioResult",
    "flapping_upstream",
    "pop_failure",
    "regional_failure",
    "resolve_corridor",
    "single_link_cut",
    "transit_degradation",
]
