"""Convergence and impact metrics for fault scenarios.

Three lenses on one fault:

* **Control plane** — how many BGP messages until the network is quiet
  again, and which (entry PoP, prefix) decisions moved to a different
  egress.
* **Reachability** — the *blackhole window*: decisions that still name an
  egress while the fault is being digested, but whose traffic cannot be
  delivered (egress PoP down, internal path partitioned, or the external
  route gone).  Measured mid-failover (after the perturbation, before
  convergence) and again after convergence; a blackhole that survives
  convergence is permanent.
* **Media** — what an in-flight RTP stream experiences: the failover
  window maps to fully lost slots overlaid on the post-fault path's own
  loss process.

Everything here only reads the network; the perturbation itself is the
:class:`~repro.faults.injector.FaultInjector`'s job.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.dataplane.transmit import StreamResult
from repro.faults.events import FaultEvent
from repro.faults.injector import FaultInjector
from repro.net.addressing import Prefix
from repro.vns.service import VideoNetworkService

#: Seconds to *detect* a fault (BFD / hold-timer expiry) before BGP reacts.
DETECTION_S = 1.0

#: Seconds of propagation + processing per BGP message delivered.  The
#: engine counts messages, not time; this constant converts the count into
#: a simulated failover duration.  Real iBGP convergence is dominated by
#: MRAI/processing batches, so the per-message cost is small.
PER_MESSAGE_S = 0.005


@dataclass(frozen=True, slots=True)
class RouteState:
    """What one entry PoP believes about one prefix at snapshot time."""

    egress_pop: str | None  #: ``None`` when the entry has no route at all
    deliverable: bool  #: route exists *and* traffic actually arrives

    @property
    def blackholed(self) -> bool:
        """Routed on paper, undeliverable in practice."""
        return self.egress_pop is not None and not self.deliverable


@dataclass(slots=True)
class RoutingSnapshot:
    """Routing state over the meter's (entry PoP × prefix) sample."""

    states: dict[tuple[str, Prefix], RouteState] = field(default_factory=dict)

    @property
    def blackholes(self) -> frozenset[tuple[str, Prefix]]:
        return frozenset(k for k, s in self.states.items() if s.blackholed)

    @property
    def unrouted(self) -> frozenset[tuple[str, Prefix]]:
        return frozenset(
            k for k, s in self.states.items() if s.egress_pop is None
        )

    def shifted_from(self, other: "RoutingSnapshot") -> frozenset[tuple[str, Prefix]]:
        """Keys routed in both snapshots whose egress PoP differs."""
        return frozenset(
            key
            for key, state in self.states.items()
            if (before := other.states.get(key)) is not None
            and before.egress_pop is not None
            and state.egress_pop is not None
            and state.egress_pop != before.egress_pop
        )

    def lost_from(self, other: "RoutingSnapshot") -> frozenset[tuple[str, Prefix]]:
        """Keys routed in ``other`` but unrouted (or gone) here."""
        return frozenset(
            key
            for key, before in other.states.items()
            if before.egress_pop is not None
            and (
                key not in self.states or self.states[key].egress_pop is None
            )
        )


class ImpactMeter:
    """Samples forwarding state over a fixed (entry PoP × prefix) grid.

    The grid is fixed at construction so before/during/after snapshots
    line up key-for-key.  Entry PoPs that are down at snapshot time are
    skipped — no traffic enters there, so they cannot blackhole anything.
    """

    def __init__(
        self,
        service: VideoNetworkService,
        prefixes: tuple[Prefix, ...],
        entry_pops: tuple[str, ...] | None = None,
    ) -> None:
        if not prefixes:
            raise ValueError("need at least one prefix to meter")
        self.service = service
        self.prefixes = tuple(prefixes)
        self.entry_pops = (
            tuple(entry_pops)
            if entry_pops is not None
            else tuple(pop.code for pop in service.pops())
        )

    def snapshot(self) -> RoutingSnapshot:
        """The current forwarding state of every grid cell."""
        network = self.service.network
        snap = RoutingSnapshot()
        for entry in self.entry_pops:
            if not network.pop_is_up(entry):
                continue
            for prefix in self.prefixes:
                decision = network.egress_decision(entry, prefix)
                if decision is None:
                    snap.states[(entry, prefix)] = RouteState(None, False)
                    continue
                snap.states[(entry, prefix)] = RouteState(
                    decision.egress_pop,
                    self._deliverable(entry, decision.egress_pop, prefix),
                )
        return snap

    def _deliverable(self, entry: str, egress: str, prefix: Prefix) -> bool:
        """Would traffic actually make it out via this decision?"""
        network = self.service.network
        if not network.pop_is_up(egress):
            return False
        try:
            network.pop_l2_path(entry, egress)
        except ValueError:
            return False  # internal partition: routed but unreachable
        # The decision names an egress; the egress must still hold a live
        # external route (a failed session empties its Adj-RIB-In).
        return network.local_external_route(egress, prefix) is not None


@dataclass(slots=True)
class EventImpact:
    """Everything one fault event did to the sampled forwarding state."""

    event: FaultEvent
    messages: int  #: BGP messages delivered to reconverge
    shifted: frozenset[tuple[str, Prefix]]  #: egress PoP changed
    blackholes_during: frozenset[tuple[str, Prefix]]  #: mid-failover
    blackholes_after: frozenset[tuple[str, Prefix]]  #: survived convergence
    routes_lost: frozenset[tuple[str, Prefix]]  #: routed → unrouted

    @property
    def failover_window_s(self) -> float:
        """Simulated duration of the failover (see :func:`failover_window_s`)."""
        return failover_window_s(self.messages)

    def summary(self) -> str:
        return (
            f"{self.event.describe()}: {self.messages} msgs"
            f" ({self.failover_window_s:.2f}s), {len(self.shifted)} shifted,"
            f" {len(self.blackholes_during)} blackholed during,"
            f" {len(self.blackholes_after)} after,"
            f" {len(self.routes_lost)} lost"
        )


def measure_event(
    injector: FaultInjector, meter: ImpactMeter, event: FaultEvent
) -> EventImpact:
    """Apply one event in stages and measure each stage.

    Perturb (state applied, updates queued) → snapshot the mid-failover
    window → converge → snapshot the settled state.  The *during*
    snapshot is the interesting one: routers still forward on stale
    decisions whose machinery is already gone.
    """
    before = meter.snapshot()
    injector.perturb(event)
    during = meter.snapshot()
    messages = injector.converge()
    after = meter.snapshot()
    return EventImpact(
        event=event,
        messages=messages,
        shifted=after.shifted_from(before),
        blackholes_during=during.blackholes,
        blackholes_after=after.blackholes,
        routes_lost=after.lost_from(before),
    )


# --------------------------------------------------------------------- #
# media impact
# --------------------------------------------------------------------- #


def failover_window_s(
    messages: int,
    *,
    detection_s: float = DETECTION_S,
    per_message_s: float = PER_MESSAGE_S,
) -> float:
    """Simulated seconds a fault disrupts forwarding.

    Detection delay plus a per-message convergence cost — the engine is
    untimed, so the message count is the clock.
    """
    if messages < 0:
        raise ValueError(f"messages must be non-negative, got {messages!r}")
    return detection_s + per_message_s * messages


def overlay_outage(
    result: StreamResult, window_s: float, *, slot_s: float = 5.0
) -> StreamResult:
    """``result`` with the first ``window_s`` seconds fully blacked out.

    Models a stream in flight when the fault hits: until reconvergence
    every packet is lost, after which the stream rides the (already
    rerouted) path whose loss process ``result`` sampled.  Loss-free by
    construction if ``window_s`` is 0.

    Raises
    ------
    ValueError
        For a negative window or non-positive slot length.
    """
    if window_s < 0:
        raise ValueError(f"window_s must be non-negative, got {window_s!r}")
    if slot_s <= 0:
        raise ValueError(f"slot_s must be positive, got {slot_s!r}")
    n_slots = result.n_slots
    if n_slots == 0 or window_s == 0:
        return result
    packets_per_slot = result.packets_sent // n_slots
    blanked = min(n_slots, math.ceil(window_s / slot_s))
    slot_losses = result.slot_losses.copy()
    slot_losses[:blanked] = packets_per_slot
    return StreamResult(
        packets_sent=result.packets_sent,
        slot_losses=slot_losses,
        jitter_p95_ms=result.jitter_p95_ms,
        rtt_ms=result.rtt_ms,
    )


@dataclass(slots=True)
class MediaImpact:
    """Loss experienced by one media stream across a fault's lifetime."""

    steady: StreamResult  #: pre-fault path, no fault
    failover: StreamResult  #: post-fault path with the outage overlaid
    recovered: StreamResult  #: after repair, back on the original path
    window_s: float

    @property
    def steady_loss_percent(self) -> float:
        return self.steady.loss_percent

    @property
    def failover_loss_percent(self) -> float:
        return self.failover.loss_percent

    @property
    def recovered_loss_percent(self) -> float:
        return self.recovered.loss_percent

    @property
    def excess_loss_percent(self) -> float:
        """Loss attributable to the fault itself."""
        return self.failover_loss_percent - self.steady_loss_percent

    def summary(self) -> str:
        return (
            f"loss steady {self.steady_loss_percent:.2f}% ->"
            f" failover {self.failover_loss_percent:.2f}%"
            f" (window {self.window_s:.2f}s) ->"
            f" recovered {self.recovered_loss_percent:.2f}%"
        )


def stream_percentile_jitter_delta(
    impact: MediaImpact,
) -> float:
    """Jitter-p95 delta between failover and steady state (ms)."""
    return impact.failover.jitter_p95_ms - impact.steady.jitter_p95_ms


def prefix_sample(
    prefixes: tuple[Prefix, ...] | list[Prefix],
    *,
    limit: int,
) -> tuple[Prefix, ...]:
    """A deterministic, evenly strided sample of at most ``limit`` prefixes.

    Sorting first makes the sample a function of the prefix *set*, not of
    iteration order — two worlds built from the same seed meter the same
    cells.

    Raises
    ------
    ValueError
        For a non-positive limit.
    """
    if limit <= 0:
        raise ValueError(f"limit must be positive, got {limit!r}")
    ordered = sorted(prefixes)
    if len(ordered) <= limit:
        return tuple(ordered)
    indices = np.linspace(0, len(ordered) - 1, num=limit).astype(int)
    return tuple(ordered[i] for i in dict.fromkeys(indices))
