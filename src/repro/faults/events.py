"""Typed fault events on a deterministic simulated timeline.

The subsystem is a discrete-event perturbation layer: a timeline holds
timestamped fault events (circuit down/up, PoP failure/restore, eBGP
session flap, transit-path degradation), a :class:`SimulatedClock` tracks
simulated seconds (never wall time), and every stochastic choice is drawn
from a seeded ``numpy.random.Generator`` — two runs with the same seed
produce the identical event log.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from dataclasses import fields as dataclass_fields
from typing import Iterable, Iterator

import numpy as np


@dataclass(frozen=True, slots=True)
class FaultEvent:
    """Base class: something happens at ``time_s`` simulated seconds."""

    time_s: float

    def describe(self) -> str:
        """One event-log line; subclasses refine the tail."""
        return f"t={self.time_s:8.1f}s  {self._verb()}"

    def _verb(self) -> str:
        return type(self).__name__


@dataclass(frozen=True, slots=True)
class LinkDown(FaultEvent):
    """An inter-PoP L2 circuit fails (fibre cut, provider outage)."""

    a: str
    b: str

    def _verb(self) -> str:
        return f"link-down   {self.a}=={self.b}"


@dataclass(frozen=True, slots=True)
class LinkUp(FaultEvent):
    """A previously failed circuit is repaired."""

    a: str
    b: str

    def _verb(self) -> str:
        return f"link-up     {self.a}=={self.b}"


@dataclass(frozen=True, slots=True)
class PopDown(FaultEvent):
    """A whole PoP fails: circuits, eBGP sessions, and originations."""

    pop: str

    def _verb(self) -> str:
        return f"pop-down    {self.pop}"


@dataclass(frozen=True, slots=True)
class PopUp(FaultEvent):
    """A failed PoP is restored."""

    pop: str

    def _verb(self) -> str:
        return f"pop-up      {self.pop}"


@dataclass(frozen=True, slots=True)
class SessionDown(FaultEvent):
    """eBGP sessions to neighbour ``asn`` fail.

    ``router_id`` limits the failure to one session endpoint; ``None``
    takes down every session VNS has with that neighbour (the neighbour's
    side failed).
    """

    asn: int
    router_id: str | None = None

    def _verb(self) -> str:
        where = self.router_id or "all-sessions"
        return f"ebgp-down   AS{self.asn}@{where}"


@dataclass(frozen=True, slots=True)
class SessionUp(FaultEvent):
    """Failed eBGP sessions to ``asn`` re-establish (table replay)."""

    asn: int
    router_id: str | None = None

    def _verb(self) -> str:
        where = self.router_id or "all-sessions"
        return f"ebgp-up     AS{self.asn}@{where}"


@dataclass(frozen=True, slots=True)
class TransitDegrade(FaultEvent):
    """Loss/latency surge on Internet transit segments of one corridor.

    ``regions`` are :class:`~repro.geo.regions.WorldRegion` values (the
    two endpoint regions of the affected corridor; equal values mean an
    intra-region surge).  Purely a data-plane fault: BGP keeps the path,
    packets suffer — the failure mode VNS's circuits exist to avoid.
    """

    regions: tuple[str, str]
    extra_loss: float = 0.02
    extra_delay_ms: float = 0.0

    def _verb(self) -> str:
        return (
            f"degrade     {self.regions[0]}~{self.regions[1]} "
            f"(+{self.extra_loss * 100:.1f}% loss, +{self.extra_delay_ms:.0f} ms)"
        )


@dataclass(frozen=True, slots=True)
class TransitRestore(FaultEvent):
    """The corridor degradation clears."""

    regions: tuple[str, str]

    def _verb(self) -> str:
        return f"restore     {self.regions[0]}~{self.regions[1]}"


#: Every concrete event type, keyed by class name — the wire-format tag.
EVENT_TYPES: dict[str, type[FaultEvent]] = {
    cls.__name__: cls
    for cls in (
        LinkDown,
        LinkUp,
        PopDown,
        PopUp,
        SessionDown,
        SessionUp,
        TransitDegrade,
        TransitRestore,
    )
}


def event_to_dict(event: FaultEvent) -> dict:
    """A JSON-ready payload: ``{"type": <class name>, <fields...>}``.

    Tuples become lists (JSON has no tuple); :func:`event_from_dict`
    restores them, so the round trip is exact — applying a round-tripped
    event and its inverse leaves a service byte-for-byte as found.
    """
    name = type(event).__name__
    if EVENT_TYPES.get(name) is not type(event):
        raise TypeError(
            f"cannot serialise {name}: not a registered fault event "
            f"(known: {sorted(EVENT_TYPES)})"
        )
    payload: dict = {"type": name}
    for f in dataclass_fields(event):
        value = getattr(event, f.name)
        payload[f.name] = list(value) if isinstance(value, tuple) else value
    return payload


def event_from_dict(payload: dict) -> FaultEvent:
    """The inverse of :func:`event_to_dict`.

    Raises
    ------
    ValueError
        For a missing/unknown ``type`` tag or unknown fields — the
        message names the offender and lists what is accepted.
    """
    if not isinstance(payload, dict):
        raise ValueError(
            f"fault event payload must be a JSON object, got {type(payload).__name__}"
        )
    data = dict(payload)
    name = data.pop("type", None)
    if name is None:
        raise ValueError(
            f"fault event payload is missing its 'type' field "
            f"(known types: {sorted(EVENT_TYPES)})"
        )
    cls = EVENT_TYPES.get(name)
    if cls is None:
        raise ValueError(
            f"unknown fault event type {name!r} (known: {sorted(EVENT_TYPES)})"
        )
    known = {f.name for f in dataclass_fields(cls)}
    unknown = sorted(set(data) - known)
    if unknown:
        raise ValueError(
            f"unknown field(s) {unknown} for {name} (accepted: {sorted(known)})"
        )
    kwargs = {
        key: tuple(value) if isinstance(value, list) else value
        for key, value in data.items()
    }
    try:
        return cls(**kwargs)
    except TypeError as exc:  # missing required fields
        raise ValueError(f"bad {name} payload: {exc}") from None


def events_to_json(events: Iterable[FaultEvent], *, indent: int | None = 2) -> str:
    """A byte-stable JSON array of events (sorted keys, fixed order)."""
    return json.dumps(
        [event_to_dict(event) for event in events], indent=indent, sort_keys=True
    )


def events_from_json(text: str) -> tuple[FaultEvent, ...]:
    """Parse a JSON array written by :func:`events_to_json`."""
    payload = json.loads(text)
    if not isinstance(payload, list):
        raise ValueError(
            f"fault event JSON must be an array, got {type(payload).__name__}"
        )
    return tuple(event_from_dict(item) for item in payload)


@dataclass(slots=True)
class SimulatedClock:
    """Simulated seconds; strictly monotonic, never wall time."""

    now_s: float = 0.0

    def advance_to(self, time_s: float) -> None:
        """Move the clock forward.

        Raises
        ------
        ValueError
            If ``time_s`` is in the past.
        """
        if time_s < self.now_s:
            raise ValueError(
                f"clock cannot go backwards ({time_s} < {self.now_s})"
            )
        self.now_s = time_s


@dataclass(slots=True)
class FaultTimeline:
    """An ordered sequence of fault events.

    Events sort by time; ties keep insertion order (so a scenario that
    cuts two links "simultaneously" applies them in the order written).
    """

    _events: list[FaultEvent] = field(default_factory=list)

    def add(self, event: FaultEvent) -> "FaultTimeline":
        """Insert an event, keeping the timeline sorted (returns self)."""
        self._events.append(event)
        self._events.sort(key=lambda e: e.time_s)  # stable: ties keep order
        return self

    def extend(self, events: Iterable[FaultEvent]) -> "FaultTimeline":
        for event in events:
            self.add(event)
        return self

    def events(self) -> tuple[FaultEvent, ...]:
        return tuple(self._events)

    def __iter__(self) -> Iterator[FaultEvent]:
        return iter(self._events)

    def __len__(self) -> int:
        return len(self._events)

    @property
    def end_s(self) -> float:
        """Time of the last event (0 for an empty timeline)."""
        return self._events[-1].time_s if self._events else 0.0

    def describe(self) -> tuple[str, ...]:
        """The deterministic event log, one line per event."""
        return tuple(event.describe() for event in self._events)

    def to_json(self, *, indent: int | None = 2) -> str:
        """Byte-stable JSON; re-serialising the round trip is identical."""
        return events_to_json(self._events, indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "FaultTimeline":
        """Rebuild a timeline from :meth:`to_json` output.

        Events pass through :meth:`add`, so the result is sorted exactly
        as the original was (the serialised order is already sorted with
        ties in insertion order, and the sort is stable).
        """
        timeline = cls()
        for event in events_from_json(text):
            timeline.add(event)
        return timeline


def random_flap_timeline(
    rng: np.random.Generator,
    *,
    links: tuple[tuple[str, str], ...],
    duration_s: float = 3600.0,
    failures_per_hour: float = 2.0,
    mean_repair_s: float = 120.0,
    start_s: float = 0.0,
) -> FaultTimeline:
    """A random sequence of link failures with exponential repair times.

    Failures arrive as a Poisson process over the whole link set; each
    down event is paired with an up event after an exponential repair
    time (clamped so everything is repaired by ``duration_s``).  Only the
    seeded ``rng`` drives the draws, so the timeline is reproducible.

    Raises
    ------
    ValueError
        For an empty link set or non-positive duration.
    """
    if not links:
        raise ValueError("need at least one link to flap")
    if duration_s <= 0:
        raise ValueError(f"duration_s must be positive, got {duration_s!r}")
    timeline = FaultTimeline()
    mean_gap_s = 3600.0 / failures_per_hour
    t = start_s
    repaired_at: dict[frozenset[str], float] = {}
    while True:
        t += float(rng.exponential(mean_gap_s))
        if t >= start_s + duration_s:
            break
        index = int(rng.integers(len(links)))
        a, b = links[index]
        key = frozenset((a, b))
        if t < repaired_at.get(key, start_s):
            continue  # still down from an earlier failure; no double-fail
        repair = min(
            float(rng.exponential(mean_repair_s)),
            start_s + duration_s - t,
        )
        repaired_at[key] = t + repair
        timeline.add(LinkDown(time_s=t, a=a, b=b))
        timeline.add(LinkUp(time_s=t + repair, a=a, b=b))
    return timeline
