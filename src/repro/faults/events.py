"""Typed fault events on a deterministic simulated timeline.

The subsystem is a discrete-event perturbation layer: a timeline holds
timestamped fault events (circuit down/up, PoP failure/restore, eBGP
session flap, transit-path degradation), a :class:`SimulatedClock` tracks
simulated seconds (never wall time), and every stochastic choice is drawn
from a seeded ``numpy.random.Generator`` — two runs with the same seed
produce the identical event log.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

import numpy as np


@dataclass(frozen=True, slots=True)
class FaultEvent:
    """Base class: something happens at ``time_s`` simulated seconds."""

    time_s: float

    def describe(self) -> str:
        """One event-log line; subclasses refine the tail."""
        return f"t={self.time_s:8.1f}s  {self._verb()}"

    def _verb(self) -> str:
        return type(self).__name__


@dataclass(frozen=True, slots=True)
class LinkDown(FaultEvent):
    """An inter-PoP L2 circuit fails (fibre cut, provider outage)."""

    a: str
    b: str

    def _verb(self) -> str:
        return f"link-down   {self.a}=={self.b}"


@dataclass(frozen=True, slots=True)
class LinkUp(FaultEvent):
    """A previously failed circuit is repaired."""

    a: str
    b: str

    def _verb(self) -> str:
        return f"link-up     {self.a}=={self.b}"


@dataclass(frozen=True, slots=True)
class PopDown(FaultEvent):
    """A whole PoP fails: circuits, eBGP sessions, and originations."""

    pop: str

    def _verb(self) -> str:
        return f"pop-down    {self.pop}"


@dataclass(frozen=True, slots=True)
class PopUp(FaultEvent):
    """A failed PoP is restored."""

    pop: str

    def _verb(self) -> str:
        return f"pop-up      {self.pop}"


@dataclass(frozen=True, slots=True)
class SessionDown(FaultEvent):
    """eBGP sessions to neighbour ``asn`` fail.

    ``router_id`` limits the failure to one session endpoint; ``None``
    takes down every session VNS has with that neighbour (the neighbour's
    side failed).
    """

    asn: int
    router_id: str | None = None

    def _verb(self) -> str:
        where = self.router_id or "all-sessions"
        return f"ebgp-down   AS{self.asn}@{where}"


@dataclass(frozen=True, slots=True)
class SessionUp(FaultEvent):
    """Failed eBGP sessions to ``asn`` re-establish (table replay)."""

    asn: int
    router_id: str | None = None

    def _verb(self) -> str:
        where = self.router_id or "all-sessions"
        return f"ebgp-up     AS{self.asn}@{where}"


@dataclass(frozen=True, slots=True)
class TransitDegrade(FaultEvent):
    """Loss/latency surge on Internet transit segments of one corridor.

    ``regions`` are :class:`~repro.geo.regions.WorldRegion` values (the
    two endpoint regions of the affected corridor; equal values mean an
    intra-region surge).  Purely a data-plane fault: BGP keeps the path,
    packets suffer — the failure mode VNS's circuits exist to avoid.
    """

    regions: tuple[str, str]
    extra_loss: float = 0.02
    extra_delay_ms: float = 0.0

    def _verb(self) -> str:
        return (
            f"degrade     {self.regions[0]}~{self.regions[1]} "
            f"(+{self.extra_loss * 100:.1f}% loss, +{self.extra_delay_ms:.0f} ms)"
        )


@dataclass(frozen=True, slots=True)
class TransitRestore(FaultEvent):
    """The corridor degradation clears."""

    regions: tuple[str, str]

    def _verb(self) -> str:
        return f"restore     {self.regions[0]}~{self.regions[1]}"


@dataclass(slots=True)
class SimulatedClock:
    """Simulated seconds; strictly monotonic, never wall time."""

    now_s: float = 0.0

    def advance_to(self, time_s: float) -> None:
        """Move the clock forward.

        Raises
        ------
        ValueError
            If ``time_s`` is in the past.
        """
        if time_s < self.now_s:
            raise ValueError(
                f"clock cannot go backwards ({time_s} < {self.now_s})"
            )
        self.now_s = time_s


@dataclass(slots=True)
class FaultTimeline:
    """An ordered sequence of fault events.

    Events sort by time; ties keep insertion order (so a scenario that
    cuts two links "simultaneously" applies them in the order written).
    """

    _events: list[FaultEvent] = field(default_factory=list)

    def add(self, event: FaultEvent) -> "FaultTimeline":
        """Insert an event, keeping the timeline sorted (returns self)."""
        self._events.append(event)
        self._events.sort(key=lambda e: e.time_s)  # stable: ties keep order
        return self

    def extend(self, events: Iterable[FaultEvent]) -> "FaultTimeline":
        for event in events:
            self.add(event)
        return self

    def events(self) -> tuple[FaultEvent, ...]:
        return tuple(self._events)

    def __iter__(self) -> Iterator[FaultEvent]:
        return iter(self._events)

    def __len__(self) -> int:
        return len(self._events)

    @property
    def end_s(self) -> float:
        """Time of the last event (0 for an empty timeline)."""
        return self._events[-1].time_s if self._events else 0.0

    def describe(self) -> tuple[str, ...]:
        """The deterministic event log, one line per event."""
        return tuple(event.describe() for event in self._events)


def random_flap_timeline(
    rng: np.random.Generator,
    *,
    links: tuple[tuple[str, str], ...],
    duration_s: float = 3600.0,
    failures_per_hour: float = 2.0,
    mean_repair_s: float = 120.0,
    start_s: float = 0.0,
) -> FaultTimeline:
    """A random sequence of link failures with exponential repair times.

    Failures arrive as a Poisson process over the whole link set; each
    down event is paired with an up event after an exponential repair
    time (clamped so everything is repaired by ``duration_s``).  Only the
    seeded ``rng`` drives the draws, so the timeline is reproducible.

    Raises
    ------
    ValueError
        For an empty link set or non-positive duration.
    """
    if not links:
        raise ValueError("need at least one link to flap")
    if duration_s <= 0:
        raise ValueError(f"duration_s must be positive, got {duration_s!r}")
    timeline = FaultTimeline()
    mean_gap_s = 3600.0 / failures_per_hour
    t = start_s
    repaired_at: dict[frozenset[str], float] = {}
    while True:
        t += float(rng.exponential(mean_gap_s))
        if t >= start_s + duration_s:
            break
        index = int(rng.integers(len(links)))
        a, b = links[index]
        key = frozenset((a, b))
        if t < repaired_at.get(key, start_s):
            continue  # still down from an earlier failure; no double-fail
        repair = min(
            float(rng.exponential(mean_repair_s)),
            start_s + duration_s - t,
        )
        repaired_at[key] = t + repair
        timeline.add(LinkDown(time_s=t, a=a, b=b))
        timeline.add(LinkUp(time_s=t + repair, a=a, b=b))
    return timeline
