"""Canned failover scenarios on the VNS overlay.

Each scenario perturbs a converged :class:`VideoNetworkService` with a
deterministic fault timeline, measures control-plane reconvergence and
the blackhole window with an :class:`~repro.faults.recovery.ImpactMeter`,
rides a media stream through the failover, and then repairs everything —
a scenario leaves the service exactly as it found it, so scenarios can
run back to back on one world.

The canned set mirrors the failure modes the paper's design guards
against: a long-haul circuit cut (the L2 mesh reroutes), a whole-PoP loss
(anycast re-catchment moves users to surviving PoPs), a correlated
regional failure, a flapping upstream session, and a pure data-plane
transit degradation (the case VNS's dedicated circuits exist to absorb).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.dataplane.link import SegmentKind
from repro.dataplane.transmit import simulate_stream
from repro.faults.events import (
    LinkDown,
    LinkUp,
    PopDown,
    PopUp,
    SessionDown,
    SessionUp,
    TransitDegrade,
    TransitRestore,
)
from repro.faults.injector import FaultInjector
from repro.faults.recovery import (
    EventImpact,
    ImpactMeter,
    MediaImpact,
    failover_window_s,
    measure_event,
    overlay_outage,
    prefix_sample,
)
from repro.geo.cities import region_of_point
from repro.geo.regions import WorldRegion
from repro.net.addressing import Prefix
from repro.vns.service import VideoNetworkService

#: Default prefix-sample size for impact metering.
DEFAULT_PREFIX_LIMIT = 32


@dataclass(slots=True)
class ScenarioResult:
    """Everything one scenario measured."""

    name: str
    impacts: list[EventImpact]
    media: MediaImpact | None
    event_log: tuple[str, ...]
    notes: dict[str, object] = field(default_factory=dict)

    @property
    def total_messages(self) -> int:
        """BGP messages across every event (fail and repair)."""
        return sum(impact.messages for impact in self.impacts)

    @property
    def permanent_blackholes(self) -> frozenset[tuple[str, Prefix]]:
        """Blackholes still present after the *last* convergence."""
        return self.impacts[-1].blackholes_after if self.impacts else frozenset()

    def summary(self) -> list[str]:
        lines = [f"scenario {self.name}: {self.total_messages} msgs total"]
        lines.extend(impact.summary() for impact in self.impacts)
        if self.media is not None:
            lines.append(self.media.summary())
        return lines


def resolve_corridor(
    service: VideoNetworkService, a: str, b: str
) -> tuple[str, str]:
    """The circuit to cut so that ``a``→``b`` traffic must reroute.

    If a direct ``a``–``b`` circuit exists, that is the corridor.
    Otherwise (e.g. AMS→ASH rides the LON==ASH trans-Atlantic circuit)
    the corridor is the first long-haul link on the IGP shortest path —
    falling back to the first hop if the path is all-regional.

    Raises
    ------
    ValueError
        If ``a`` and ``b`` have no internal path at all.
    """
    network = service.network
    key = frozenset((a, b))
    if any(frozenset((link.a, link.b)) == key for link in network.l2_links):
        return (a, b)
    long_haul = {
        frozenset((link.a, link.b)) for link in network.l2_links if link.long_haul
    }
    path = network.pop_l2_path(a, b)
    for x, y in zip(path, path[1:]):
        if frozenset((x, y)) in long_haul:
            return (x, y)
    return (path[0], path[1])


def _meter(
    service: VideoNetworkService, prefix_limit: int
) -> ImpactMeter:
    prefixes = prefix_sample(
        tuple(service.topology.prefix_location), limit=prefix_limit
    )
    return ImpactMeter(service, prefixes)


def _stream(
    service: VideoNetworkService,
    src_pop: str,
    dst_pop: str,
    rng: np.random.Generator,
):
    return simulate_stream(service.vns_internal_path(src_pop, dst_pop), rng=rng)


def single_link_cut(
    service: VideoNetworkService,
    rng: np.random.Generator,
    *,
    corridor: tuple[str, str] = ("AMS", "ASH"),
    at_s: float = 60.0,
    repair_after_s: float = 600.0,
    prefix_limit: int = DEFAULT_PREFIX_LIMIT,
) -> ScenarioResult:
    """Cut the long-haul circuit carrying ``corridor`` traffic, then repair.

    The flagship scenario: a mid-call fibre cut on the corridor's
    long-haul circuit.  On the (biconnected) production mesh the IGP
    reroutes instantly, BGP re-shuffles hot-potato egresses, no prefix is
    left blackholed, and the in-flight stream eats a bounded outage.
    """
    src, dst = corridor
    a, b = resolve_corridor(service, src, dst)
    injector = FaultInjector(service)
    meter = _meter(service, prefix_limit)

    route_before = service.network.pop_l2_path(src, dst)
    steady = _stream(service, src, dst, rng)

    down = measure_event(injector, meter, LinkDown(time_s=at_s, a=a, b=b))
    window = failover_window_s(down.messages)
    try:
        route_during = tuple(service.network.pop_l2_path(src, dst))
        failover = overlay_outage(_stream(service, src, dst, rng), window)
    except ValueError:
        # The cut partitioned the corridor (SIN==SYD is Oceania's only
        # circuit): the stream is down for the whole measurement window.
        route_during = None
        window = 5.0 * steady.n_slots
        failover = overlay_outage(steady, window)

    up = measure_event(
        injector, meter, LinkUp(time_s=at_s + repair_after_s, a=a, b=b)
    )
    recovered = _stream(service, src, dst, rng)

    return ScenarioResult(
        name=f"single-link-cut:{a}=={b}",
        impacts=[down, up],
        media=MediaImpact(
            steady=steady, failover=failover, recovered=recovered, window_s=window
        ),
        event_log=tuple(injector.event_log),
        notes={
            "corridor": (a, b),
            "route_before": tuple(route_before),
            "route_during": route_during,
            "route_after": tuple(service.network.pop_l2_path(src, dst)),
        },
    )


def pop_failure(
    service: VideoNetworkService,
    rng: np.random.Generator,
    *,
    pop: str = "SIN",
    at_s: float = 60.0,
    repair_after_s: float = 1800.0,
    prefix_limit: int = DEFAULT_PREFIX_LIMIT,
    media_corridor: tuple[str, str] = ("AMS", "HK"),
    recatchment_users: int = 24,
) -> ScenarioResult:
    """Lose a whole PoP; anycast re-catchment moves its users elsewhere.

    Besides the routing impact, samples user ASes and records how many
    change entry PoP while the PoP is down (the anycast announcement from
    the failed site is gone, so its catchment drains to survivors).  The
    default media corridor AMS→HK normally rides AMS==SIN--HK and must
    fall back to the trans-Atlantic + trans-Pacific circuits.

    Note: losing SIN strands SYD (SIN–SYD is Oceania's only circuit), so
    SYD-entry cells stay blackholed until repair — the one cut vertex in
    the production topology, faithfully reported in the metrics.
    """
    injector = FaultInjector(service)
    meter = _meter(service, prefix_limit)
    src, dst = media_corridor

    users = _user_sample(service, recatchment_users)
    entry_before = _entries(service, users)
    steady = _stream(service, src, dst, rng)

    down = measure_event(injector, meter, PopDown(time_s=at_s, pop=pop))
    entry_during = _entries(service, users)
    window = failover_window_s(down.messages)
    failover = overlay_outage(_stream(service, src, dst, rng), window)

    up = measure_event(
        injector, meter, PopUp(time_s=at_s + repair_after_s, pop=pop)
    )
    recovered = _stream(service, src, dst, rng)

    moved = sum(
        1
        for asn in entry_before
        if entry_before[asn] is not None
        and entry_during.get(asn) != entry_before[asn]
    )
    served_by_failed = sum(1 for code in entry_before.values() if code == pop)
    return ScenarioResult(
        name=f"pop-failure:{pop}",
        impacts=[down, up],
        media=MediaImpact(
            steady=steady, failover=failover, recovered=recovered, window_s=window
        ),
        event_log=tuple(injector.event_log),
        notes={
            "pop": pop,
            "users_sampled": len(users),
            "users_served_by_failed_pop": served_by_failed,
            "users_recaught_elsewhere": moved,
            "entry_after_matches_before": _entries(service, users) == entry_before,
        },
    )


def regional_failure(
    service: VideoNetworkService,
    rng: np.random.Generator,
    *,
    links: tuple[tuple[str, str], ...] = (("SJS", "HK"), ("SJS", "TYO")),
    at_s: float = 60.0,
    stagger_s: float = 2.0,
    repair_after_s: float = 3600.0,
    prefix_limit: int = DEFAULT_PREFIX_LIMIT,
    media_corridor: tuple[str, str] = ("SJS", "TYO"),
) -> ScenarioResult:
    """Correlated failure of several circuits in quick succession.

    The default cuts both trans-Pacific circuits seconds apart (a shared
    seismic/cable event); AP traffic squeezes onto the remaining
    SIN==SJS circuit.  Repairs land in reverse order.
    """
    injector = FaultInjector(service)
    meter = _meter(service, prefix_limit)
    src, dst = media_corridor

    steady = _stream(service, src, dst, rng)
    impacts = [
        measure_event(
            injector, meter, LinkDown(time_s=at_s + i * stagger_s, a=a, b=b)
        )
        for i, (a, b) in enumerate(links)
    ]
    window = failover_window_s(sum(impact.messages for impact in impacts))
    failover = overlay_outage(_stream(service, src, dst, rng), window)

    repair_start = at_s + repair_after_s
    impacts.extend(
        measure_event(
            injector, meter, LinkUp(time_s=repair_start + i * stagger_s, a=a, b=b)
        )
        for i, (a, b) in enumerate(reversed(links))
    )
    recovered = _stream(service, src, dst, rng)

    return ScenarioResult(
        name="regional-failure:" + "+".join(f"{a}=={b}" for a, b in links),
        impacts=impacts,
        media=MediaImpact(
            steady=steady, failover=failover, recovered=recovered, window_s=window
        ),
        event_log=tuple(injector.event_log),
        notes={"links": links},
    )


def flapping_upstream(
    service: VideoNetworkService,
    rng: np.random.Generator,
    *,
    pop: str = "LON",
    flaps: int = 3,
    at_s: float = 60.0,
    down_s: float = 30.0,
    up_s: float = 90.0,
    prefix_limit: int = DEFAULT_PREFIX_LIMIT,
) -> ScenarioResult:
    """An eBGP upstream session flaps repeatedly at one PoP.

    Uses the PoP's designated main upstream (at LON: the US-based Tier-1
    of the Sec. 5.2.2 anomaly).  Each flap withdraws and then replays a
    full table — the repeated-convergence cost shows up as a per-flap
    message bill, and the final state must equal the initial one.
    """
    if flaps < 1:
        raise ValueError(f"flaps must be positive, got {flaps!r}")
    asn = service.deployment.main_upstream_at[pop]
    router_ids = [
        rid
        for rid in service.deployment.sessions.get(asn, [])
        if service.network.pop_of_router[rid] == pop
    ]
    if not router_ids:
        raise ValueError(f"upstream AS{asn} has no session at {pop}")
    router_id = router_ids[0]
    injector = FaultInjector(service)
    meter = _meter(service, prefix_limit)
    baseline = meter.snapshot()

    impacts: list[EventImpact] = []
    t = at_s
    for _ in range(flaps):
        impacts.append(
            measure_event(
                injector,
                meter,
                SessionDown(time_s=t, asn=asn, router_id=router_id),
            )
        )
        impacts.append(
            measure_event(
                injector,
                meter,
                SessionUp(time_s=t + down_s, asn=asn, router_id=router_id),
            )
        )
        t += down_s + up_s
    final = meter.snapshot()
    # rng is accepted for interface symmetry; the control-plane flap is
    # deterministic and carries no media stream.
    del rng
    return ScenarioResult(
        name=f"flapping-upstream:AS{asn}@{pop}",
        impacts=impacts,
        media=None,
        event_log=tuple(injector.event_log),
        notes={
            "asn": asn,
            "router_id": router_id,
            "messages_per_flap": tuple(
                impacts[2 * i].messages + impacts[2 * i + 1].messages
                for i in range(flaps)
            ),
            "state_restored": final.states == baseline.states,
        },
    )


def transit_degradation(
    service: VideoNetworkService,
    rng: np.random.Generator,
    *,
    regions: tuple[str, str] | None = None,
    extra_loss: float = 0.05,
    extra_delay_ms: float = 30.0,
    at_s: float = 60.0,
    repair_after_s: float = 1800.0,
    entry_pop: str = "AMS",
    prefix_limit: int = DEFAULT_PREFIX_LIMIT,
) -> ScenarioResult:
    """Sustained loss/latency on Internet transit of one corridor.

    A pure data-plane fault: BGP never reacts (zero messages — recorded
    in the notes), but streams whose egress tail crosses the degraded
    corridor suffer.  This is the failure mode the paper's dedicated
    circuits are bought to sidestep: only the Internet *tail* of the VNS
    path is exposed, not the long-haul middle.

    When ``regions`` is not given, the degraded corridor is read off the
    measured path itself (the endpoint regions of its first transit
    segment), so the fault is guaranteed to sit on the stream's route.

    Raises
    ------
    ValueError
        If the entry PoP has no route toward the chosen prefix, or the
        path has no transit segment to degrade (with ``regions`` unset).
    """
    prefix = _prefix_in_region(service, WorldRegion.NORTH_CENTRAL_AMERICA)
    path = service.path_via_vns(entry_pop, prefix)
    if path is None:
        raise ValueError(f"{entry_pop} has no route toward {prefix}")
    if regions is None:
        transit = [s for s in path.segments if s.kind is SegmentKind.TRANSIT]
        if not transit:
            raise ValueError(f"path {path.description} has no transit segment")
        # Degrade the corridor of the longest transit hop — the one a
        # sustained underlay problem would plausibly sit on.
        segment = max(transit, key=lambda s: s.distance_km)
        regions = (segment.start_region.value, segment.end_region.value)
    injector = FaultInjector(service)
    meter = _meter(service, prefix_limit)

    steady = simulate_stream(path, rng=rng)
    degrade = measure_event(
        injector,
        meter,
        TransitDegrade(
            time_s=at_s,
            regions=regions,
            extra_loss=extra_loss,
            extra_delay_ms=extra_delay_ms,
        ),
    )
    impaired = simulate_stream(injector.impaired_path(path), rng=rng)
    restore = measure_event(
        injector,
        meter,
        TransitRestore(time_s=at_s + repair_after_s, regions=regions),
    )
    recovered = simulate_stream(path, rng=rng)

    return ScenarioResult(
        name=f"transit-degradation:{regions[0]}~{regions[1]}",
        impacts=[degrade, restore],
        media=MediaImpact(
            steady=steady, failover=impaired, recovered=recovered, window_s=0.0
        ),
        event_log=tuple(injector.event_log),
        notes={
            "prefix": str(prefix),
            "entry_pop": entry_pop,
            "control_plane_quiet": degrade.messages == 0 and restore.messages == 0,
            "rtt_delta_ms": impaired.rtt_ms - steady.rtt_ms,
        },
    )


# --------------------------------------------------------------------- #
# helpers
# --------------------------------------------------------------------- #


def _user_sample(
    service: VideoNetworkService, limit: int
) -> dict[int, object]:
    """A deterministic sample of user ASes and their home locations."""
    asns = sorted(service.topology.ases)
    if len(asns) > limit:
        indices = np.linspace(0, len(asns) - 1, num=limit).astype(int)
        asns = [asns[i] for i in dict.fromkeys(indices)]
    return {
        asn: service.topology.autonomous_system(asn).home.location for asn in asns
    }


def _entries(
    service: VideoNetworkService, users: dict[int, object]
) -> dict[int, str | None]:
    """Entry PoP per sampled user AS under the current fault state."""
    entries: dict[int, str | None] = {}
    for asn, location in users.items():
        pop = service.anycast.entry_pop(asn, location)
        entries[asn] = None if pop is None else pop.code
    return entries


def _prefix_in_region(
    service: VideoNetworkService, region: WorldRegion
) -> Prefix:
    """The lowest prefix whose true location falls in ``region``.

    Raises
    ------
    ValueError
        If no prefix geolocates there (cannot happen at the standard
        world scales, which populate every study region).
    """
    for prefix in sorted(service.topology.prefix_location):
        if region_of_point(service.topology.prefix_location[prefix]) is region:
            return prefix
    raise ValueError(f"no prefix located in {region}")
