"""Applying fault events to a live, converged VNS.

Each event perturbs the real objects — the IGP graph loses the link and
SPF re-runs, border routers tear eBGP sessions down and issue the
resulting withdraws through the engine, originations are pulled — and
then BGP runs to convergence, message by message.  The injector separates
*perturbation* (state applied, updates enqueued) from *convergence* so a
meter can observe the mid-failover window where routers still forward on
stale decisions: that window is where blackholes and media loss live.

Every fault is reversible; applying a down/up pair returns the network to
its exact pre-fault routing state, which is what makes repeated scenario
runs on one world deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bgp.attributes import Route
from repro.bgp.messages import IgpNotification
from repro.dataplane.link import SegmentKind, degrade_segment
from repro.dataplane.path import DataPath
from repro.faults.events import (
    FaultEvent,
    LinkDown,
    LinkUp,
    PopDown,
    PopUp,
    SessionDown,
    SessionUp,
    SimulatedClock,
    TransitDegrade,
    TransitRestore,
)
from repro.net.addressing import Prefix
from repro.vns.network import external_peer_id
from repro.vns.service import VideoNetworkService


@dataclass(slots=True)
class _PopSnapshot:
    """What a failed PoP needs to come back: sessions and originations."""

    sessions: dict[tuple[str, str], dict[Prefix, Route]] = field(default_factory=dict)
    originated: dict[str, dict[Prefix, Route]] = field(default_factory=dict)


class FaultInjector:
    """Applies :mod:`repro.faults.events` to a :class:`VideoNetworkService`.

    Parameters
    ----------
    service:
        The converged service to perturb.  The injector mutates it in
        place; every supported event has an inverse that restores the
        original state.
    """

    def __init__(self, service: VideoNetworkService) -> None:
        self.service = service
        self.clock = SimulatedClock()
        self.event_log: list[str] = []
        self.degradations: list[TransitDegrade] = []
        self._session_snapshots: dict[tuple[str, str], dict[Prefix, Route]] = {}
        self._pop_snapshots: dict[str, _PopSnapshot] = {}

    # ----------------------------------------------------------------- #
    # event application
    # ----------------------------------------------------------------- #

    def perturb(self, event: FaultEvent) -> None:
        """Apply ``event``: mutate state and enqueue the triggered updates.

        Advances the simulated clock to the event time.  Does *not* run
        the BGP engine — call :meth:`converge` (or use :meth:`apply`)
        afterwards; in between, the network is mid-failover.

        Raises
        ------
        TypeError
            For an event kind the injector does not know.
        ValueError
            For impossible transitions (unknown link, clock regression).
        """
        self.clock.advance_to(event.time_s)
        self.event_log.append(event.describe())
        if isinstance(event, LinkDown):
            self._set_link(event.a, event.b, up=False)
        elif isinstance(event, LinkUp):
            self._set_link(event.a, event.b, up=True)
        elif isinstance(event, PopDown):
            self._pop_down(event.pop)
        elif isinstance(event, PopUp):
            self._pop_up(event.pop)
        elif isinstance(event, SessionDown):
            self._sessions_down(event.asn, event.router_id)
        elif isinstance(event, SessionUp):
            self._sessions_up(event.asn, event.router_id)
        elif isinstance(event, TransitDegrade):
            self.degradations.append(event)
        elif isinstance(event, TransitRestore):
            self.degradations = [
                d for d in self.degradations if d.regions != event.regions
            ]
        else:
            raise TypeError(f"unknown fault event {event!r}")

    def converge(self, max_messages: int = 10_000_000) -> int:
        """Run BGP to convergence; return messages delivered.

        Raises
        ------
        repro.bgp.engine.ConvergenceError
            If the engine exceeds its budget (diagnosable from the
            exception's queue snapshot).
        """
        return self.service.network.engine.run(max_messages=max_messages)

    def apply(self, event: FaultEvent) -> int:
        """Perturb and immediately converge; return messages delivered."""
        self.perturb(event)
        return self.converge()

    # ----------------------------------------------------------------- #
    # data-plane impairments
    # ----------------------------------------------------------------- #

    def impaired_path(self, path: DataPath) -> DataPath:
        """``path`` with all active transit degradations stacked on.

        Transit segments whose endpoint-region pair matches an active
        degradation get the extra loss/delay; other segments (and VNS's
        own circuits) pass through untouched.
        """
        if not self.degradations:
            return path
        segments = []
        for segment in path.segments:
            extra_loss = 0.0
            extra_delay = 0.0
            if segment.kind is SegmentKind.TRANSIT:
                corridor = {segment.start_region.value, segment.end_region.value}
                for d in self.degradations:
                    if corridor == set(d.regions):
                        extra_loss += d.extra_loss
                        extra_delay += d.extra_delay_ms
            if extra_loss or extra_delay:
                segments.append(
                    degrade_segment(
                        segment,
                        extra_loss=min(extra_loss, 0.95),
                        extra_delay_ms=extra_delay,
                    )
                )
            else:
                segments.append(segment)
        return DataPath(segments=segments, description=path.description)

    # ----------------------------------------------------------------- #
    # internals
    # ----------------------------------------------------------------- #

    def _refresh_all(self) -> None:
        """Queue an IGP-change notification for every speaker.

        Deliberately *not* synchronous: each router re-validates next hops
        only when its notification is delivered, so the snapshot taken
        between :meth:`perturb` and :meth:`converge` sees the stale
        forwarding decisions a real network forwards on mid-failover.
        """
        network = self.service.network
        network.engine.inject(
            [IgpNotification(receiver=rid) for rid in sorted(network.border_routers)]
        )
        network.engine.inject(
            [IgpNotification(receiver=rid) for rid in sorted(network.reflectors)]
        )

    def _set_link(self, a: str, b: str, *, up: bool) -> None:
        if self.service.network.set_link_state(a, b, up):
            # IGP metrics moved: hot-potato tie-breaks may flip anywhere.
            self._refresh_all()

    def _sessions_down(self, asn: int, router_id: str | None) -> None:
        network = self.service.network
        router_ids = self.service.deployment.sessions.get(asn, [])
        if router_id is not None:
            router_ids = [r for r in router_ids if r == router_id]
        for rid in router_ids:
            peer_id = external_peer_id(asn, rid)
            key = (rid, peer_id)
            if key in self._session_snapshots:
                continue  # already down
            router = network.border_routers[rid]
            snapshot, messages = router.fail_session(peer_id)
            self._session_snapshots[key] = snapshot
            network.engine.inject(messages)

    def _sessions_up(self, asn: int, router_id: str | None) -> None:
        network = self.service.network
        router_ids = self.service.deployment.sessions.get(asn, [])
        if router_id is not None:
            router_ids = [r for r in router_ids if r == router_id]
        for rid in router_ids:
            peer_id = external_peer_id(asn, rid)
            snapshot = self._session_snapshots.pop((rid, peer_id), None)
            if snapshot is None:
                continue  # was not down
            router = network.border_routers[rid]
            network.engine.inject(router.restore_session(peer_id, snapshot))

    def _pop_down(self, pop_code: str) -> None:
        network = self.service.network
        if not network.set_pop_state(pop_code, up=False):
            return
        snapshot = _PopSnapshot()
        for router in network.routers_at_pop(pop_code):
            originated = dict(router.originated)
            snapshot.originated[router.router_id] = originated
            for prefix in sorted(originated):
                network.engine.inject(router.withdraw_origination(prefix))
            for peer_id, session in sorted(router.sessions.items()):
                if not session.is_ebgp or peer_id in router.down_sessions:
                    continue
                peer_snapshot, messages = router.fail_session(peer_id)
                snapshot.sessions[(router.router_id, peer_id)] = peer_snapshot
                network.engine.inject(messages)
        self._pop_snapshots[pop_code] = snapshot
        self._refresh_all()

    def _pop_up(self, pop_code: str) -> None:
        network = self.service.network
        if not network.set_pop_state(pop_code, up=True):
            return
        snapshot = self._pop_snapshots.pop(pop_code, _PopSnapshot())
        for (rid, peer_id), peer_snapshot in sorted(snapshot.sessions.items()):
            router = network.border_routers[rid]
            network.engine.inject(router.restore_session(peer_id, peer_snapshot))
        for rid, originated in sorted(snapshot.originated.items()):
            router = network.border_routers[rid]
            for prefix, route in sorted(originated.items()):
                network.engine.inject(
                    router.originate(prefix, communities=route.communities)
                )
        self._refresh_all()
