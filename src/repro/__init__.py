"""Reproduction of "Geography Matters" (CoNEXT 2013).

This package implements, as a laptop-scale simulation, the Video Network
Service (VNS) described by Elmokashfi et al.: a network-layer overlay for
video conferencing that keeps traffic on well-provisioned dedicated links as
long as possible and hands it to the Internet at the PoP geographically
closest to the destination ("cold potato" routing), implemented through a
geo-aware BGP route reflector.

Subpackages
-----------
``repro.geo``
    Geodesy, world regions, city gazetteer, and a synthetic GeoIP database
    with the error classes the paper observed in MaxMind data.
``repro.net``
    IPv4 addressing, a longest-prefix-match radix trie, Autonomous System
    entities, and a synthetic AS-level Internet topology generator.
``repro.bgp``
    A BGP-4 implementation: path attributes, the RFC 4271 decision process,
    Gao-Rexford policies, speakers with full RIBs, route reflection, the
    best-external feature, and an AS-level propagation engine.
``repro.igp``
    Intra-AS link-state shortest-path routing (feeds BGP hot-potato).
``repro.dataplane``
    Delay, loss (Bernoulli / Gilbert-Elliott / congestion-coupled), diurnal
    utilisation profiles, and packet- and slot-level transmission simulators.
``repro.media``
    HD video codec model, RTP streams, SIP clients and echo servers, TURN
    relays, and the instrumented measurement client from Sec. 5.1.
``repro.vns``
    The paper's contribution: the overlay network of 11 PoPs, the geo-based
    route reflector, the management override interface, and anycast service
    addressing.
``repro.measurement``
    ICMP ping and back-to-back loss probes, schedulers, and statistics.
``repro.experiments``
    One module per paper figure/table; each returns the structured series
    that the corresponding plot shows.
"""

from repro.version import __version__

__all__ = ["WorldSpec", "__version__"]


def __getattr__(name: str) -> object:
    # Canonical re-export, resolved lazily so importing ``repro`` stays
    # cheap: ``repro.WorldSpec`` is the declarative scenarios world spec
    # (the sharded worker recipe formerly sharing the name is now
    # ``repro.workload.ShardWorldTransportSpec``).
    if name == "WorldSpec":
        from repro.scenarios.spec import WorldSpec

        return WorldSpec
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
