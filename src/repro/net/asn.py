"""Autonomous Systems and the Dhamdhere-Dovrolis type taxonomy.

Section 5.2 groups last-mile hosts "into the four types of ASes; Large
Transit Provider (LTP), Small Transit Provider (STP), Content Access
Hosting Provider (CAHP), and Enterprise Customer (EC)".  The same taxonomy
drives the synthetic topology: the type determines an AS's size, its place
in the customer-provider hierarchy, and (in the data plane) how congested
its access links are.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.geo.cities import City
from repro.geo.coords import GeoPoint
from repro.net.addressing import Prefix


class ASType(enum.Enum):
    """Dhamdhere-Dovrolis AS classes."""

    LTP = "LTP"  #: Large Transit Provider (Tier-1-like, global footprint)
    STP = "STP"  #: Small Transit Provider (regional transit)
    CAHP = "CAHP"  #: Content/Access/Hosting Provider (serves residential users)
    EC = "EC"  #: Enterprise Customer (stub network)

    def __str__(self) -> str:
        return self.value


#: Whether a type offers transit to customers.
TRANSIT_TYPES = frozenset({ASType.LTP, ASType.STP})


@dataclass(slots=True)
class PresencePoint:
    """One location where an AS has infrastructure (a provider PoP)."""

    city: City
    location: GeoPoint

    def __str__(self) -> str:
        return f"{self.city.name}"


@dataclass(slots=True)
class AutonomousSystem:
    """A synthetic AS.

    Parameters
    ----------
    asn:
        The AS number (unique).
    name:
        Human-readable label, e.g. ``"STP-1204 (Warsaw)"``.
    as_type:
        Dhamdhere-Dovrolis class.
    home:
        The AS's main presence point; stubs only have this one.
    presence:
        All presence points, ``home`` included.  Transit ASes have many.
    prefixes:
        Prefixes this AS originates, with each prefix's true location.
    """

    asn: int
    name: str
    as_type: ASType
    home: PresencePoint
    presence: list[PresencePoint] = field(default_factory=list)
    prefixes: list[Prefix] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.asn <= 0:
            raise ValueError(f"ASN must be positive, got {self.asn!r}")
        if not self.presence:
            self.presence = [self.home]

    @property
    def is_transit(self) -> bool:
        """Whether this AS sells transit (LTP or STP)."""
        return self.as_type in TRANSIT_TYPES

    @property
    def is_stub(self) -> bool:
        """Whether this AS only originates its own prefixes."""
        return not self.is_transit

    def presence_cities(self) -> list[City]:
        """Cities where the AS has a presence point."""
        return [point.city for point in self.presence]

    def nearest_presence(self, target: GeoPoint) -> PresencePoint:
        """The presence point geographically nearest to ``target``.

        Models hot-potato waypoint selection inside a transit AS when
        assembling data-plane paths.
        """
        return min(self.presence, key=lambda p: p.location.distance_km(target))

    def __str__(self) -> str:
        return f"AS{self.asn}({self.as_type}, {self.home.city.name})"

    def __hash__(self) -> int:
        return hash(self.asn)
