"""Autonomous Systems and the Dhamdhere-Dovrolis type taxonomy.

Section 5.2 groups last-mile hosts "into the four types of ASes; Large
Transit Provider (LTP), Small Transit Provider (STP), Content Access
Hosting Provider (CAHP), and Enterprise Customer (EC)".  The same taxonomy
drives the synthetic topology: the type determines an AS's size, its place
in the customer-provider hierarchy, and (in the data plane) how congested
its access links are.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from functools import lru_cache

from repro.geo.cities import City
from repro.geo.coords import GeoPoint
from repro.net.addressing import Prefix


class ASType(enum.Enum):
    """Dhamdhere-Dovrolis AS classes."""

    # Identity hashing: C-level, correct for singleton members, and far
    # cheaper than Enum's Python ``__hash__`` under the calibration-table
    # lookups the loss model performs per segment.
    __hash__ = object.__hash__

    LTP = "LTP"  #: Large Transit Provider (Tier-1-like, global footprint)
    STP = "STP"  #: Small Transit Provider (regional transit)
    CAHP = "CAHP"  #: Content/Access/Hosting Provider (serves residential users)
    EC = "EC"  #: Enterprise Customer (stub network)

    def __str__(self) -> str:
        return self.value


#: Whether a type offers transit to customers.
TRANSIT_TYPES = frozenset({ASType.LTP, ASType.STP})


@dataclass(slots=True)
class PresencePoint:
    """One location where an AS has infrastructure (a provider PoP)."""

    city: City
    location: GeoPoint

    def __str__(self) -> str:
        return f"{self.city.name}"


@dataclass(slots=True)
class AutonomousSystem:
    """A synthetic AS.

    Parameters
    ----------
    asn:
        The AS number (unique).
    name:
        Human-readable label, e.g. ``"STP-1204 (Warsaw)"``.
    as_type:
        Dhamdhere-Dovrolis class.
    home:
        The AS's main presence point; stubs only have this one.
    presence:
        All presence points, ``home`` included.  Transit ASes have many.
    prefixes:
        Prefixes this AS originates, with each prefix's true location.
    """

    asn: int
    name: str
    as_type: ASType
    home: PresencePoint
    presence: list[PresencePoint] = field(default_factory=list)
    prefixes: list[Prefix] = field(default_factory=list)
    #: lazily-built per-presence haversine terms (lat_rad, cos_lat, lon,
    #: point), computed on the first nearest-presence query.
    _presence_trig: list | None = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.asn <= 0:
            raise ValueError(f"ASN must be positive, got {self.asn!r}")
        if not self.presence:
            self.presence = [self.home]

    @property
    def is_transit(self) -> bool:
        """Whether this AS sells transit (LTP or STP)."""
        return self.as_type in TRANSIT_TYPES

    @property
    def is_stub(self) -> bool:
        """Whether this AS only originates its own prefixes."""
        return not self.is_transit

    def presence_cities(self) -> list[City]:
        """Cities where the AS has a presence point."""
        return [point.city for point in self.presence]

    @lru_cache(maxsize=None)
    def nearest_presence(self, target: GeoPoint) -> PresencePoint:
        """The presence point geographically nearest to ``target``.

        Models hot-potato waypoint selection inside a transit AS when
        assembling data-plane paths.  Memoised per ``(AS, target)``: path
        assembly asks the same transit ASes about the same prefix and
        PoP locations for every pair that crosses them.  On a miss the
        scan compares raw haversine terms (monotone in distance) with the
        per-presence trigonometry hoisted — same argmin as ranking by
        :func:`~repro.geo.coords.great_circle_km`, at a fraction of the
        per-candidate cost.
        """
        trig = self._presence_trig
        if trig is None:
            trig = self._presence_trig = [
                (
                    math.radians(p.location.lat),
                    math.cos(math.radians(p.location.lat)),
                    p.location.lon,
                    p,
                )
                for p in self.presence
            ]
        if len(trig) == 1:
            return trig[0][3]
        lat2 = math.radians(target.lat)
        cos_lat2 = math.cos(lat2)
        lon2 = target.lon
        best = trig[0][3]
        best_h = math.inf
        for lat1, cos_lat1, lon1, point in trig:
            dlat = lat2 - lat1
            dlon = math.radians(lon2 - lon1)
            h = (
                math.sin(dlat / 2.0) ** 2
                + cos_lat1 * cos_lat2 * math.sin(dlon / 2.0) ** 2
            )
            if h < best_h:
                best_h = h
                best = point
        return best

    def __str__(self) -> str:
        return f"AS{self.asn}({self.as_type}, {self.home.city.name})"

    def __hash__(self) -> int:
        return hash(self.asn)
