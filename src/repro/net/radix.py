"""A binary radix (Patricia-style) trie for longest-prefix matching.

Routers forward on the most specific matching prefix; the management
interface in Sec. 3.2 relies on this when it statically advertises
more-specific prefixes to pull remote subnets toward a different egress.
This trie backs every FIB in the simulation.
"""

from __future__ import annotations

from collections.abc import Iterator
from typing import Generic, TypeVar

from repro.net.addressing import IPv4Address, Prefix
from repro.perf import counters as perf

V = TypeVar("V")


class _Node(Generic[V]):
    __slots__ = ("zero", "one", "prefix", "value", "occupied")

    def __init__(self) -> None:
        self.zero: _Node[V] | None = None
        self.one: _Node[V] | None = None
        self.prefix: Prefix | None = None
        self.value: V | None = None
        self.occupied = False


def _bit(network: int, index: int) -> int:
    """The ``index``-th most significant bit of a 32-bit network value."""
    return (network >> (31 - index)) & 1


class RadixTree(Generic[V]):
    """Maps :class:`Prefix` keys to arbitrary values with LPM lookup."""

    def __init__(self) -> None:
        self._root: _Node[V] = _Node()
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def __contains__(self, prefix: Prefix) -> bool:
        return self.get(prefix) is not _MISSING

    def insert(self, prefix: Prefix, value: V) -> None:
        """Insert or replace the value stored at ``prefix``."""
        node = self._root
        for i in range(prefix.length):
            if _bit(prefix.network, i):
                if node.one is None:
                    node.one = _Node()
                node = node.one
            else:
                if node.zero is None:
                    node.zero = _Node()
                node = node.zero
        if not node.occupied:
            self._size += 1
        node.prefix = prefix
        node.value = value
        node.occupied = True

    def get(self, prefix: Prefix) -> V | object:
        """Exact-match lookup; returns the ``MISSING`` sentinel if absent."""
        node: _Node[V] | None = self._root
        for i in range(prefix.length):
            if node is None:
                return _MISSING
            node = node.one if _bit(prefix.network, i) else node.zero
        if node is None or not node.occupied:
            return _MISSING
        return node.value

    def exact(self, prefix: Prefix) -> V:
        """Exact-match lookup.

        Raises
        ------
        KeyError
            If the prefix is not in the tree.
        """
        value = self.get(prefix)
        if value is _MISSING:
            raise KeyError(str(prefix))
        return value  # type: ignore[return-value]

    def delete(self, prefix: Prefix) -> None:
        """Remove ``prefix``.

        Raises
        ------
        KeyError
            If the prefix is not in the tree.
        """
        path: list[_Node[V]] = [self._root]
        node: _Node[V] | None = self._root
        for i in range(prefix.length):
            node = node.one if _bit(prefix.network, i) else node.zero
            if node is None:
                raise KeyError(str(prefix))
            path.append(node)
        if not node.occupied:
            raise KeyError(str(prefix))
        node.occupied = False
        node.prefix = None
        node.value = None
        self._size -= 1
        # Prune now-empty leaf chains so lookups stay shallow.
        for depth in range(len(path) - 1, 0, -1):
            child = path[depth]
            if child.occupied or child.zero is not None or child.one is not None:
                break
            parent = path[depth - 1]
            if parent.one is child:
                parent.one = None
            else:
                parent.zero = None

    def longest_match(self, address: IPv4Address) -> tuple[Prefix, V] | None:
        """The most specific stored prefix containing ``address``.

        Returns ``None`` when no stored prefix matches (no default route).
        """
        if perf.enabled:
            perf.incr("net.radix.longest_match")
        best: tuple[Prefix, V] | None = None
        node: _Node[V] | None = self._root
        value = address.value
        depth = 0
        while node is not None:
            if node.occupied:
                assert node.prefix is not None
                best = (node.prefix, node.value)  # type: ignore[assignment]
            if depth == 32:
                break
            node = node.one if _bit(value, depth) else node.zero
            depth += 1
        return best

    def matches(self, address: IPv4Address) -> list[tuple[Prefix, V]]:
        """All stored prefixes containing ``address``, least specific first."""
        found: list[tuple[Prefix, V]] = []
        node: _Node[V] | None = self._root
        value = address.value
        depth = 0
        while node is not None:
            if node.occupied:
                assert node.prefix is not None
                found.append((node.prefix, node.value))  # type: ignore[arg-type]
            if depth == 32:
                break
            node = node.one if _bit(value, depth) else node.zero
            depth += 1
        return found

    def items(self) -> Iterator[tuple[Prefix, V]]:
        """Iterate all ``(prefix, value)`` pairs in depth-first order."""
        stack: list[_Node[V]] = [self._root]
        while stack:
            node = stack.pop()
            if node.occupied:
                assert node.prefix is not None
                yield node.prefix, node.value  # type: ignore[misc]
            if node.one is not None:
                stack.append(node.one)
            if node.zero is not None:
                stack.append(node.zero)

    def prefixes(self) -> list[Prefix]:
        """All stored prefixes."""
        return [prefix for prefix, _ in self.items()]


#: Sentinel distinguishing "stored None" from "absent".
_MISSING = object()
MISSING = _MISSING
