"""The Internet substrate: addressing, ASes, and synthetic topology.

VNS is evaluated against "the Internet" — transit providers, peers, and the
last mile.  This subpackage provides that substrate: IPv4 addressing with a
longest-prefix-match trie, Autonomous Systems typed per the
Dhamdhere-Dovrolis taxonomy the paper adopts (LTP / STP / CAHP / EC),
customer-provider and peering relationships, Internet exchange points, and a
generator that synthesises a geographically embedded AS-level Internet.
"""

from repro.net.addressing import IPv4Address, Prefix
from repro.net.radix import RadixTree
from repro.net.asn import ASType, AutonomousSystem
from repro.net.relationships import ASGraph, Relationship
from repro.net.ixp import IXP
from repro.net.topology import InternetTopology, TopologyConfig, generate_topology

__all__ = [
    "IPv4Address",
    "Prefix",
    "RadixTree",
    "ASType",
    "AutonomousSystem",
    "Relationship",
    "ASGraph",
    "IXP",
    "InternetTopology",
    "TopologyConfig",
    "generate_topology",
]
