"""AS business relationships: customer-provider and settlement-free peering.

The Gao-Rexford model underpins both the synthetic Internet's route
propagation (valley-free paths) and the "Transit vs Peer routes" analysis of
Fig. 5: a route's *type* at VNS is determined by the relationship with the
neighbour it was learned from.
"""

from __future__ import annotations

import enum
from collections.abc import Iterable


class Relationship(enum.Enum):
    """Relationship of a neighbour, seen from the local AS."""

    CUSTOMER = "customer"  #: the neighbour pays us
    PROVIDER = "provider"  #: we pay the neighbour (an "upstream")
    PEER = "peer"  #: settlement-free

    def inverse(self) -> "Relationship":
        """The same link seen from the other side."""
        if self is Relationship.CUSTOMER:
            return Relationship.PROVIDER
        if self is Relationship.PROVIDER:
            return Relationship.CUSTOMER
        return Relationship.PEER

    def __str__(self) -> str:
        return self.value


class ASGraph:
    """The AS-level relationship graph.

    Nodes are AS numbers; edges are typed.  The graph enforces consistency:
    a pair of ASes has at most one relationship, and querying from either
    side returns complementary types.
    """

    def __init__(self) -> None:
        self._neighbors: dict[int, dict[int, Relationship]] = {}

    def add_as(self, asn: int) -> None:
        """Register an AS with no links yet (idempotent)."""
        self._neighbors.setdefault(asn, {})

    def __contains__(self, asn: int) -> bool:
        return asn in self._neighbors

    def __len__(self) -> int:
        return len(self._neighbors)

    def asns(self) -> list[int]:
        """All registered AS numbers."""
        return list(self._neighbors)

    def num_links(self) -> int:
        """Number of undirected relationship edges."""
        return sum(len(nbrs) for nbrs in self._neighbors.values()) // 2

    def add_provider_customer(self, provider: int, customer: int) -> None:
        """Add a transit edge: ``customer`` buys transit from ``provider``."""
        self._add_edge(provider, customer, Relationship.CUSTOMER)

    def add_peering(self, a: int, b: int) -> None:
        """Add a settlement-free peering edge between ``a`` and ``b``."""
        self._add_edge(a, b, Relationship.PEER)

    def _add_edge(self, a: int, b: int, rel_of_b_to_a: Relationship) -> None:
        if a == b:
            raise ValueError(f"AS{a} cannot have a relationship with itself")
        self.add_as(a)
        self.add_as(b)
        if b in self._neighbors[a]:
            raise ValueError(f"AS{a} and AS{b} already have a relationship")
        self._neighbors[a][b] = rel_of_b_to_a
        self._neighbors[b][a] = rel_of_b_to_a.inverse()

    def relationship(self, local: int, neighbor: int) -> Relationship:
        """How ``local`` sees ``neighbor``.

        Raises
        ------
        KeyError
            If the two ASes are not directly connected.
        """
        return self._neighbors[local][neighbor]

    def neighbors(self, asn: int) -> dict[int, Relationship]:
        """All neighbours of ``asn`` with their relationship to it."""
        return dict(self._neighbors[asn])

    def customers_of(self, asn: int) -> list[int]:
        """ASes buying transit from ``asn``."""
        return self._filter(asn, Relationship.CUSTOMER)

    def providers_of(self, asn: int) -> list[int]:
        """ASes that ``asn`` buys transit from (its upstreams)."""
        return self._filter(asn, Relationship.PROVIDER)

    def peers_of(self, asn: int) -> list[int]:
        """Settlement-free peers of ``asn``."""
        return self._filter(asn, Relationship.PEER)

    def _filter(self, asn: int, rel: Relationship) -> list[int]:
        return [nbr for nbr, r in self._neighbors[asn].items() if r is rel]

    def customer_cone(self, asn: int) -> set[int]:
        """All ASes reachable from ``asn`` by walking customer edges.

        Includes ``asn`` itself.  The cone size is the usual proxy for an
        AS's importance in the transit market.
        """
        cone = {asn}
        frontier = [asn]
        while frontier:
            current = frontier.pop()
            for customer in self.customers_of(current):
                if customer not in cone:
                    cone.add(customer)
                    frontier.append(customer)
        return cone

    def has_provider_path_to_clique(self, asn: int, clique: Iterable[int]) -> bool:
        """Whether ``asn`` can reach the Tier-1 clique walking provider edges.

        Used by topology validation: every AS must be able to reach the top
        of the hierarchy or parts of the Internet would be unreachable.
        """
        clique_set = set(clique)
        if asn in clique_set:
            return True
        seen = {asn}
        frontier = [asn]
        while frontier:
            current = frontier.pop()
            for provider in self.providers_of(current):
                if provider in clique_set:
                    return True
                if provider not in seen:
                    seen.add(provider)
                    frontier.append(provider)
        return False
