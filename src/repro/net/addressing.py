"""IPv4 addresses and CIDR prefixes.

A tiny, fast re-implementation of the parts of IPv4 addressing the
simulation needs.  ``ipaddress`` from the standard library would work, but a
purpose-built value type with cheap hashing and ordering keeps routing-table
operations (the hot path of the BGP simulator) inexpensive.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache, total_ordering

_MAX_ADDRESS = (1 << 32) - 1


def _parse_dotted_quad(text: str) -> int:
    parts = text.split(".")
    if len(parts) != 4:
        raise ValueError(f"invalid IPv4 address {text!r}")
    value = 0
    for part in parts:
        if not part.isdigit():
            raise ValueError(f"invalid IPv4 address {text!r}")
        octet = int(part)
        if octet > 255:
            raise ValueError(f"invalid IPv4 address {text!r}")
        value = (value << 8) | octet
    return value


def _format_dotted_quad(value: int) -> str:
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


@lru_cache(maxsize=None)
def _render_prefix(network: int, length: int) -> str:
    """Memoised CIDR rendering — campaign reports stringify the same few
    thousand prefixes tens of thousands of times per run."""
    return f"{_format_dotted_quad(network)}/{length}"


@total_ordering
@dataclass(frozen=True, slots=True)
class IPv4Address:
    """A single IPv4 address, stored as an unsigned 32-bit integer."""

    value: int

    def __post_init__(self) -> None:
        if not 0 <= self.value <= _MAX_ADDRESS:
            raise ValueError(f"address value {self.value!r} outside 32-bit range")

    @classmethod
    def parse(cls, text: str) -> "IPv4Address":
        """Parse dotted-quad notation, e.g. ``"192.0.2.1"``."""
        return cls(_parse_dotted_quad(text))

    def __str__(self) -> str:
        return _format_dotted_quad(self.value)

    def __lt__(self, other: "IPv4Address") -> bool:
        if not isinstance(other, IPv4Address):
            return NotImplemented
        return self.value < other.value

    def __int__(self) -> int:
        return self.value


@total_ordering
@dataclass(frozen=True, slots=True)
class Prefix:
    """A CIDR prefix such as ``192.0.2.0/24``.

    ``network`` must have all host bits zero; the constructor enforces this
    so that two representations of the same prefix always compare equal.
    """

    network: int
    length: int

    def __post_init__(self) -> None:
        if not 0 <= self.length <= 32:
            raise ValueError(f"prefix length {self.length!r} outside [0, 32]")
        if not 0 <= self.network <= _MAX_ADDRESS:
            raise ValueError(f"network value {self.network!r} outside 32-bit range")
        if self.network & ~self.netmask():
            raise ValueError(
                f"network {_format_dotted_quad(self.network)} has host bits set "
                f"for /{self.length}"
            )

    @classmethod
    def parse(cls, text: str) -> "Prefix":
        """Parse CIDR notation, e.g. ``"10.0.0.0/8"``."""
        try:
            addr_text, length_text = text.split("/")
        except ValueError:
            raise ValueError(f"invalid prefix {text!r}: missing '/'") from None
        if not length_text.isdigit():
            raise ValueError(f"invalid prefix length in {text!r}")
        return cls(network=_parse_dotted_quad(addr_text), length=int(length_text))

    @classmethod
    def from_address(cls, address: IPv4Address, length: int) -> "Prefix":
        """The /``length`` prefix containing ``address``."""
        if not 0 <= length <= 32:
            raise ValueError(f"prefix length {length!r} outside [0, 32]")
        mask = 0xFFFFFFFF << (32 - length) & 0xFFFFFFFF if length else 0
        return cls(network=address.value & mask, length=length)

    def netmask(self) -> int:
        """The netmask as a 32-bit integer."""
        if self.length == 0:
            return 0
        return (0xFFFFFFFF << (32 - self.length)) & 0xFFFFFFFF

    def contains_address(self, address: IPv4Address) -> bool:
        """Whether ``address`` falls inside this prefix."""
        return (address.value & self.netmask()) == self.network

    def contains_prefix(self, other: "Prefix") -> bool:
        """Whether ``other`` is equal to or more specific than this prefix."""
        if other.length < self.length:
            return False
        return (other.network & self.netmask()) == self.network

    @property
    def first_address(self) -> IPv4Address:
        """The network address; the paper probes "the first IP address in
        each destination prefix", which in practice is network + 1."""
        return IPv4Address(self.network)

    @property
    def probe_address(self) -> IPv4Address:
        """First host address (network + 1), the paper's probe target."""
        if self.length == 32:
            return IPv4Address(self.network)
        return IPv4Address(self.network + 1)

    @property
    def num_addresses(self) -> int:
        """Number of addresses covered by the prefix."""
        return 1 << (32 - self.length)

    def address_at(self, offset: int) -> IPv4Address:
        """The address ``offset`` positions into the prefix.

        Raises
        ------
        ValueError
            If ``offset`` is outside the prefix.
        """
        if not 0 <= offset < self.num_addresses:
            raise ValueError(
                f"offset {offset} outside {self} ({self.num_addresses} addresses)"
            )
        return IPv4Address(self.network + offset)

    def subnets(self, new_length: int) -> tuple["Prefix", ...]:
        """All subnets of this prefix at ``new_length``.

        Raises
        ------
        ValueError
            If ``new_length`` is shorter than the current length.
        """
        if new_length < self.length:
            raise ValueError(
                f"cannot subnet /{self.length} into shorter /{new_length}"
            )
        if new_length > 32:
            raise ValueError(f"prefix length {new_length!r} outside [0, 32]")
        step = 1 << (32 - new_length)
        count = 1 << (new_length - self.length)
        return tuple(
            Prefix(network=self.network + i * step, length=new_length)
            for i in range(count)
        )

    def supernet(self) -> "Prefix":
        """The parent prefix one bit shorter.

        Raises
        ------
        ValueError
            For the default route /0, which has no parent.
        """
        if self.length == 0:
            raise ValueError("0.0.0.0/0 has no supernet")
        parent_length = self.length - 1
        mask = (0xFFFFFFFF << (32 - parent_length)) & 0xFFFFFFFF if parent_length else 0
        return Prefix(network=self.network & mask, length=parent_length)

    def __str__(self) -> str:
        return _render_prefix(self.network, self.length)

    def __lt__(self, other: "Prefix") -> bool:
        if not isinstance(other, Prefix):
            return NotImplemented
        return (self.network, self.length) < (other.network, other.length)


#: The IPv4 default route.
DEFAULT_ROUTE = Prefix(network=0, length=0)
