"""Synthetic AS-level Internet generator.

Builds a geographically embedded Internet in the spirit of the measured
topology the paper runs over: a Tier-1 clique of Large Transit Providers
with global footprints, regional Small Transit Providers, Content/Access/
Hosting Providers, and Enterprise Customer stubs, wired with Gao-Rexford
customer-provider and peering edges and originating prefixes whose true
locations are known (so a GeoIP database — perfect or degraded — can be
derived from ground truth).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.geo.cities import CITIES, City
from repro.geo.coords import GeoPoint, destination_point
from repro.geo.geoip import GeoIPDatabase
from repro.geo.regions import WorldRegion
from repro.net.addressing import IPv4Address, Prefix
from repro.net.asn import ASType, AutonomousSystem, PresencePoint
from repro.net.ixp import IXP, ixp_for_city
from repro.net.radix import RadixTree
from repro.net.relationships import ASGraph


@dataclass(slots=True)
class TopologyConfig:
    """Knobs for :func:`generate_topology`.

    The defaults produce a "medium" Internet (a few hundred ASes) suitable
    for benchmarks; tests shrink the counts.
    """

    n_ltp: int = 8
    n_stp: int = 60
    n_cahp: int = 120
    n_ec: int = 160
    #: (min, max) prefixes originated per AS, by type.
    prefixes_per_as: dict[ASType, tuple[int, int]] = field(
        default_factory=lambda: {
            ASType.LTP: (6, 14),
            ASType.STP: (3, 8),
            ASType.CAHP: (2, 6),
            ASType.EC: (1, 2),
        }
    )
    #: (min, max) providers per AS, by type (LTPs form a clique instead).
    providers_per_as: dict[ASType, tuple[int, int]] = field(
        default_factory=lambda: {
            ASType.STP: (2, 4),
            ASType.CAHP: (2, 3),
            ASType.EC: (1, 3),
        }
    )
    #: Presence-point counts per type.
    presence_per_as: dict[ASType, tuple[int, int]] = field(
        default_factory=lambda: {
            ASType.LTP: (8, 14),
            ASType.STP: (2, 5),
            ASType.CAHP: (1, 3),
            ASType.EC: (1, 1),
        }
    )
    #: Probability that two same-region transit/CAHP ASes present at a common
    #: IXP establish peering.
    regional_peering_prob: float = 0.12
    #: Fraction of STPs with one extra remote (trans-regional) presence point,
    #: modelling e.g. Asian providers hauling their own traffic to US west
    #: coast exchanges (Sec. 4.1 & 5.2.2).
    stp_remote_presence_prob: float = 0.25
    #: Mean jitter applied to prefix locations around their anchor city (km).
    prefix_jitter_mean_km: float = 40.0
    #: First /16 block index used by the address allocator (1 => 0.1.0.0/16
    #: is skipped; we start at 16 to stay clear of special-use space).
    first_block: int = 16 * 256  # 16.0.0.0

    def total_ases(self) -> int:
        """Total number of ASes the config will generate."""
        return self.n_ltp + self.n_stp + self.n_cahp + self.n_ec


class PrefixAllocator:
    """Sequentially carves /20 prefixes out of the unicast space."""

    def __init__(self, first_block: int = 16 * 256) -> None:
        # Each block is a /20: 4096 of them per /8.
        self._next = first_block << 4

    def allocate(self, length: int = 20) -> Prefix:
        """Allocate the next free prefix of the given length (>= /20)."""
        if length < 20:
            raise ValueError("allocator hands out /20 or longer prefixes")
        network = self._next << 12
        if network > 0xFFFFFFFF:
            raise RuntimeError("prefix space exhausted")
        self._next += 1
        base = Prefix(network=network, length=20)
        if length == 20:
            return base
        return base.subnets(length)[0]


@dataclass(slots=True)
class InternetTopology:
    """The generated Internet: ASes, relationships, prefixes, IXPs."""

    ases: dict[int, AutonomousSystem]
    graph: ASGraph
    clique: tuple[int, ...]
    origin_of: dict[Prefix, int]
    prefix_location: dict[Prefix, GeoPoint]
    prefix_country: dict[Prefix, str]
    ixps: dict[str, IXP]
    fib: RadixTree

    def autonomous_system(self, asn: int) -> AutonomousSystem:
        """Look up an AS by number.

        Raises
        ------
        KeyError
            For an unknown ASN.
        """
        return self.ases[asn]

    def ases_of_type(self, as_type: ASType) -> list[AutonomousSystem]:
        """All ASes of a given Dhamdhere-Dovrolis type."""
        return [a for a in self.ases.values() if a.as_type is as_type]

    def ases_in_region(self, region: WorldRegion) -> list[AutonomousSystem]:
        """All ASes whose home city lies in ``region``."""
        return [a for a in self.ases.values() if a.home.city.region is region]

    def prefixes(self) -> list[Prefix]:
        """Every originated prefix."""
        return list(self.origin_of)

    def prefixes_of(self, asn: int) -> list[Prefix]:
        """Prefixes originated by one AS."""
        return list(self.ases[asn].prefixes)

    def origin_as(self, prefix: Prefix) -> AutonomousSystem:
        """The AS originating ``prefix``.

        Raises
        ------
        KeyError
            For a prefix no AS originates.
        """
        return self.ases[self.origin_of[prefix]]

    def resolve_address(self, address: IPv4Address) -> tuple[Prefix, int] | None:
        """Longest-prefix match an address to ``(prefix, origin ASN)``."""
        hit = self.fib.longest_match(address)
        if hit is None:
            return None
        prefix, asn = hit
        return prefix, asn

    def build_geoip(self) -> GeoIPDatabase:
        """A perfect GeoIP database derived from prefix ground truth."""
        db = GeoIPDatabase()
        for prefix, location in self.prefix_location.items():
            db.register(prefix, location, self.prefix_country[prefix])
        return db

    def host_location(
        self, prefix: Prefix, rng: np.random.Generator, jitter_km: float = 15.0
    ) -> GeoPoint:
        """A host location near the prefix's true location."""
        anchor = self.prefix_location[prefix]
        distance = float(rng.exponential(jitter_km))
        bearing = float(rng.uniform(0.0, 360.0))
        return destination_point(anchor, bearing, distance)

    def host_address(self, prefix: Prefix, rng: np.random.Generator) -> IPv4Address:
        """A random host address inside ``prefix`` (not the network address)."""
        span = prefix.num_addresses
        offset = int(rng.integers(1, span)) if span > 1 else 0
        return prefix.address_at(offset)


def _weighted_city_choice(
    cities: list[City], rng: np.random.Generator, size: int = 1, replace: bool = False
) -> list[City]:
    weights = np.array([c.weight for c in cities], dtype=float)
    weights /= weights.sum()
    if not replace:
        size = min(size, len(cities))
    idx = rng.choice(len(cities), size=size, replace=replace, p=weights)
    return [cities[int(i)] for i in np.atleast_1d(idx)]


def _presence_points(
    home: City, count: int, rng: np.random.Generator, pool: list[City]
) -> list[PresencePoint]:
    """Presence points: the home city plus ``count - 1`` others from ``pool``."""
    points = [PresencePoint(city=home, location=home.location)]
    others = [c for c in pool if c.name != home.name]
    if count > 1 and others:
        for city in _weighted_city_choice(others, rng, size=count - 1):
            points.append(PresencePoint(city=city, location=city.location))
    return points


def _sample_count(bounds: tuple[int, int], rng: np.random.Generator) -> int:
    lo, hi = bounds
    if lo > hi:
        raise ValueError(f"invalid bounds {bounds!r}")
    return int(rng.integers(lo, hi + 1))


def generate_topology(
    config: TopologyConfig | None = None,
    rng: np.random.Generator | None = None,
) -> InternetTopology:
    """Generate a synthetic Internet.

    The construction is deterministic given ``rng``'s state.  All generated
    ASes can reach the Tier-1 clique over provider edges (asserted at the
    end), so valley-free routing reaches every prefix from everywhere.
    """
    if config is None:
        config = TopologyConfig()
    if rng is None:
        rng = np.random.default_rng(0)

    all_cities = list(CITIES)
    by_region: dict[WorldRegion, list[City]] = {}
    for city in all_cities:
        by_region.setdefault(city.region, []).append(city)
    regions = list(by_region)

    def home_for(index: int) -> City:
        """Home city for the ``index``-th AS of a type.

        The first ASes of each type cycle through the world regions so
        every region is guaranteed coverage by every type (the paper's
        host sample needs all four types in AP, EU and NA); the rest are
        weighted by Internet population.
        """
        if index < len(regions):
            return _weighted_city_choice(by_region[regions[index]], rng)[0]
        return _weighted_city_choice(all_cities, rng)[0]

    graph = ASGraph()
    ases: dict[int, AutonomousSystem] = {}
    allocator = PrefixAllocator(config.first_block)
    origin_of: dict[Prefix, int] = {}
    prefix_location: dict[Prefix, GeoPoint] = {}
    prefix_country: dict[Prefix, str] = {}

    next_asn = 100

    def make_as(as_type: ASType, home: City, presence_pool: list[City]) -> AutonomousSystem:
        nonlocal next_asn
        asn = next_asn
        next_asn += 1
        count = _sample_count(config.presence_per_as[as_type], rng)
        presence = _presence_points(home, count, rng, presence_pool)
        system = AutonomousSystem(
            asn=asn,
            name=f"{as_type}-{asn} ({home.name})",
            as_type=as_type,
            home=presence[0],
            presence=presence,
        )
        ases[asn] = system
        graph.add_as(asn)
        n_prefixes = _sample_count(config.prefixes_per_as[as_type], rng)
        for _ in range(n_prefixes):
            prefix = allocator.allocate()
            anchor_point = presence[int(rng.integers(0, len(presence)))]
            distance = float(rng.exponential(config.prefix_jitter_mean_km))
            bearing = float(rng.uniform(0.0, 360.0))
            location = destination_point(anchor_point.location, bearing, distance)
            system.prefixes.append(prefix)
            origin_of[prefix] = asn
            prefix_location[prefix] = location
            prefix_country[prefix] = anchor_point.city.country
        return system

    # ---- Tier-1 clique (LTPs) ------------------------------------------
    # Tier-1s are present at essentially every major exchange hub; their
    # presence starts from the high-weight cities (each included with high
    # probability) and is padded with random additional metros.
    hub_cities = [c for c in all_cities if c.weight >= 3.0]
    ltps: list[AutonomousSystem] = []
    for index in range(config.n_ltp):
        home = _weighted_city_choice(all_cities, rng)[0]
        system = make_as(ASType.LTP, home, all_cities)
        have = {point.city.name for point in system.presence}
        for hub in hub_cities:
            if hub.name not in have and rng.random() < 0.8:
                system.presence.append(PresencePoint(city=hub, location=hub.location))
                have.add(hub.name)
        ltps.append(system)
    for i, a in enumerate(ltps):
        for b in ltps[i + 1 :]:
            graph.add_peering(a.asn, b.asn)

    # ---- Regional small transit providers (STPs) ------------------------
    stps: list[AutonomousSystem] = []
    for index in range(config.n_stp):
        home = home_for(index)
        pool = list(by_region[home.region])
        if rng.random() < config.stp_remote_presence_prob:
            remote_pool = [c for c in all_cities if c.region is not home.region]
            pool = pool + _weighted_city_choice(remote_pool, rng, size=1)
        system = make_as(ASType.STP, home, pool)
        stps.append(system)
        n_providers = _sample_count(config.providers_per_as[ASType.STP], rng)
        for provider in rng.choice(len(ltps), size=min(n_providers, len(ltps)), replace=False):
            graph.add_provider_customer(ltps[int(provider)].asn, system.asn)

    # ---- Content / access / hosting providers (CAHPs) --------------------
    cahps: list[AutonomousSystem] = []
    for index in range(config.n_cahp):
        home = home_for(index)
        system = make_as(ASType.CAHP, home, list(by_region[home.region]))
        cahps.append(system)
        candidates = [s for s in stps if s.home.city.region is home.region] or stps
        providers: list[int] = []
        n_providers = _sample_count(config.providers_per_as[ASType.CAHP], rng)
        # First provider preferentially a regional STP; the rest regional
        # STPs or global Tier-1s (edge networks do not buy transit from
        # small providers on other continents).
        if candidates:
            providers.append(candidates[int(rng.integers(0, len(candidates)))].asn)
        while len(providers) < n_providers:
            pool = ltps + candidates
            choice = pool[int(rng.integers(0, len(pool)))].asn
            if choice not in providers:
                providers.append(choice)
        for provider_asn in providers:
            graph.add_provider_customer(provider_asn, system.asn)

    # ---- Enterprise customers (ECs) --------------------------------------
    for index in range(config.n_ec):
        home = home_for(index)
        system = make_as(ASType.EC, home, [home])
        candidates = [s for s in stps if s.home.city.region is home.region] or stps
        n_providers = _sample_count(config.providers_per_as[ASType.EC], rng)
        providers = set()
        for _attempt in range(8 * n_providers):
            if len(providers) >= n_providers:
                break
            pool = candidates if rng.random() < 0.8 else ltps
            providers.add(pool[int(rng.integers(0, len(pool)))].asn)
        for provider_asn in providers:
            graph.add_provider_customer(provider_asn, system.asn)

    # ---- IXPs and regional peering ---------------------------------------
    ixps: dict[str, IXP] = {}
    for city in all_cities:
        ixp = ixp_for_city(city)
        ixps[ixp.name] = ixp
    city_to_ixp = {ixp.city.name: ixp for ixp in ixps.values()}
    for system in ases.values():
        join_prob = {
            ASType.LTP: 1.0,
            ASType.STP: 0.9,
            ASType.CAHP: 0.5,
            ASType.EC: 0.05,
        }[system.as_type]
        for point in system.presence:
            if rng.random() < join_prob:
                city_to_ixp[point.city.name].add_member(system.asn)

    peer_candidates = stps + cahps
    for i, a in enumerate(peer_candidates):
        for b in peer_candidates[i + 1 :]:
            if a.home.city.region is not b.home.city.region:
                continue
            shared_ixp = any(
                a.asn in ixp.members and b.asn in ixp.members for ixp in ixps.values()
            )
            if not shared_ixp:
                continue
            if b.asn in graph.neighbors(a.asn):
                continue
            if rng.random() < config.regional_peering_prob:
                graph.add_peering(a.asn, b.asn)

    # ---- FIB and validation ----------------------------------------------
    fib: RadixTree = RadixTree()
    for prefix, asn in origin_of.items():
        fib.insert(prefix, asn)

    clique = tuple(system.asn for system in ltps)
    for asn in graph.asns():
        if not graph.has_provider_path_to_clique(asn, clique):
            raise RuntimeError(f"generated AS{asn} cannot reach the Tier-1 clique")

    return InternetTopology(
        ases=ases,
        graph=graph,
        clique=clique,
        origin_of=origin_of,
        prefix_location=prefix_location,
        prefix_country=prefix_country,
        ixps=ixps,
        fib=fib,
    )
