"""Internet exchange points.

VNS "peers openly with any other interested AS" and, "if a peer is present
with VNS at different IXPs, VNS always establishes peering at all sites if
possible" (Sec. 4.2.2).  IXPs are therefore the places where peering edges
and eBGP sessions are anchored geographically.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.geo.cities import City


@dataclass(slots=True)
class IXP:
    """An Internet exchange point located in a city.

    Parameters
    ----------
    name:
        Unique IXP name, e.g. ``"AMS-IX"``.
    city:
        Where the exchange fabric lives.
    members:
        ASNs present at the exchange.
    """

    name: str
    city: City
    members: set[int] = field(default_factory=set)

    def add_member(self, asn: int) -> None:
        """Register an AS at the exchange (idempotent)."""
        self.members.add(asn)

    def __contains__(self, asn: int) -> bool:
        return asn in self.members

    def common_members(self, other: "IXP") -> set[int]:
        """ASNs present at both exchanges."""
        return self.members & other.members

    def __str__(self) -> str:
        return f"{self.name} ({self.city.name})"


#: IXP names for the gazetteer cities that host major exchanges.
WELL_KNOWN_IXPS: dict[str, str] = {
    "Amsterdam": "AMS-IX",
    "Frankfurt": "DE-CIX",
    "London": "LINX",
    "Ashburn": "Equinix-ASH",
    "San Jose": "Equinix-SV",
    "Atlanta": "TIE-ATL",
    "Hong Kong": "HKIX",
    "Singapore": "SGIX",
    "Tokyo": "JPIX",
    "Sydney": "IX-AU",
    "Oslo": "NIX",
    "New York": "NYIIX",
    "Paris": "France-IX",
    "Seattle": "SIX",
    "Sao Paulo": "IX.br",
    "Johannesburg": "NAPAfrica",
    "Dubai": "UAE-IX",
}


def ixp_for_city(city: City) -> IXP:
    """Create the (empty) IXP for a city, using its well-known name if any."""
    name = WELL_KNOWN_IXPS.get(city.name, f"IX-{city.name.replace(' ', '')}")
    return IXP(name=name, city=city)
