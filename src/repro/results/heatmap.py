"""Region-pair QoE heatmap export (text grid and CSV).

The longitudinal analogue of the paper's per-corridor tables: pick one
corridor metric (``delay_ms.p50``, ``loss_pct.p95``,
``lossy_slot_fraction``, ``vns_delay_win_rate``, ...) on one transport
(``vns`` / ``internet`` / ``steering`` / ``""`` for pair-level columns)
and render the source-region x destination-region grid — from a live
:class:`~repro.workload.report.CampaignReport`, a report-shaped dict, or
a stored run's ``pair_metrics`` rows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.results.store import ResultsStore, flatten_metrics

#: Cells with no recorded calls render as this.
EMPTY_CELL = "-"


@dataclass(slots=True)
class HeatmapGrid:
    """One metric's corridor grid: sorted region codes, sparse values."""

    metric: str
    transport: str
    srcs: tuple[str, ...]
    dsts: tuple[str, ...]
    values: dict[tuple[str, str], float]

    def value(self, src: str, dst: str) -> float | None:
        return self.values.get((src, dst))

    def render(self, *, width: int = 9, digits: int = 2) -> str:
        """An aligned text grid, sources down, destinations across."""
        label = self.transport or "pair"
        lines = [f"QoE heatmap — {self.metric} ({label}), src \\ dst"]
        header = "  " + "src".ljust(6) + "".join(
            dst.rjust(width) for dst in self.dsts
        )
        lines.append(header)
        for src in self.srcs:
            cells = []
            for dst in self.dsts:
                value = self.values.get((src, dst))
                cells.append(
                    EMPTY_CELL.rjust(width)
                    if value is None
                    else f"{value:.{digits}f}".rjust(width)
                )
            lines.append("  " + src.ljust(6) + "".join(cells))
        return "\n".join(lines)

    def to_csv(self, *, digits: int = 6) -> str:
        """CSV with a ``src`` first column and one column per destination."""
        lines = [",".join(["src", *self.dsts])]
        for src in self.srcs:
            row = [src]
            for dst in self.dsts:
                value = self.values.get((src, dst))
                row.append("" if value is None else f"{value:.{digits}f}")
            lines.append(",".join(row))
        return "\n".join(lines) + "\n"


def heatmap_from_pairs(
    pairs: Mapping[str, Mapping],
    *,
    metric: str = "delay_ms.p50",
    transport: str = "vns",
) -> HeatmapGrid:
    """Build the grid from a report's ``pairs`` mapping (``"SRC->DST"``)."""
    values: dict[tuple[str, str], float] = {}
    for pair_key, summary in pairs.items():
        src, _, dst = str(pair_key).partition("->")
        if not dst:
            continue
        flat = flatten_metrics(summary)
        name = f"{transport}.{metric}" if transport else metric
        if name in flat:
            values[(src, dst)] = float(flat[name])
    return _grid(metric, transport, values)


def heatmap_from_report(
    report: object, *, metric: str = "delay_ms.p50", transport: str = "vns"
) -> HeatmapGrid:
    """Build the grid from a :class:`CampaignReport` or report dict."""
    if hasattr(report, "to_dict"):
        report = report.to_dict()  # type: ignore[union-attr]
    pairs = report.get("pairs", {}) if isinstance(report, Mapping) else {}
    return heatmap_from_pairs(pairs, metric=metric, transport=transport)


def heatmap_from_store(
    store: ResultsStore,
    run_id: int,
    *,
    report: str = "",
    metric: str = "delay_ms.p50",
    transport: str = "vns",
) -> HeatmapGrid:
    """Build the grid from a stored run's ``pair_metrics`` rows."""
    values = {
        (src, dst): value
        for (_, src, dst, _, _, value) in store.pair_metrics(
            run_id, report=report, transport=transport, metric=metric
        )
    }
    return _grid(metric, transport, values)


def _grid(
    metric: str, transport: str, values: dict[tuple[str, str], float]
) -> HeatmapGrid:
    return HeatmapGrid(
        metric=metric,
        transport=transport,
        srcs=tuple(sorted({src for src, _ in values})),
        dsts=tuple(sorted({dst for _, dst in values})),
        values=values,
    )
