"""The sqlite-backed persistent results store.

One store file accumulates every bench, campaign and experiment row the
repo produces, keyed by ``(git_rev, bench, scenario, scale, seed,
policy, recorded_at)`` — the longitudinal counterpart to the one-off
``BENCH_*.json`` snapshots.  Stdlib-only (``sqlite3`` + ``json``).

Normalised tables
-----------------
``runs``
    One row per recorded run: the full key plus the canonical JSON
    payload (sorted keys — re-export is byte-stable).
``metrics``
    Every numeric leaf of the payload, flattened to a dotted path
    (``scales.small.engine.calls_per_s``).  Integers keep their
    int-ness so the tolerance differ can compare counts exactly.
``pair_metrics``
    Per directed region pair QoE columns ingested from
    :class:`~repro.workload.report.CampaignReport`-shaped dicts:
    ``(report, src, dst, transport, metric) -> value`` — the table the
    corridor heatmap export reads.
``perf``
    Perf counters and timers from a
    :class:`~repro.perf.counters.PerfSnapshot`.

Query helpers
-------------
:meth:`ResultsStore.latest`, :meth:`ResultsStore.trajectory` (one
metric across recorded git revs) and :meth:`ResultsStore.regression`
(latest vs baseline through the shared tolerance differ,
:mod:`repro.tolerance` — no second float-comparison implementation).
"""

from __future__ import annotations

import json
import sqlite3
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, Mapping

from repro.tolerance import DEFAULT_ATOL, ToleranceDiff, diff_reports

#: Default relative tolerance for cross-commit regression checks.
#: Looser than the golden differ's 5%: trajectory rows cross hosts and
#: runner load, where throughput legitimately moves tens of percent.
REGRESSION_RTOL = 0.25

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS runs (
    id          INTEGER PRIMARY KEY AUTOINCREMENT,
    git_rev     TEXT NOT NULL,
    bench       TEXT NOT NULL,
    scenario    TEXT NOT NULL DEFAULT '',
    scale       TEXT NOT NULL DEFAULT '',
    seed        INTEGER NOT NULL DEFAULT 0,
    policy      TEXT NOT NULL DEFAULT '',
    recorded_at TEXT NOT NULL,
    payload     TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_runs_bench ON runs (bench, recorded_at, id);
CREATE TABLE IF NOT EXISTS metrics (
    run_id INTEGER NOT NULL REFERENCES runs (id) ON DELETE CASCADE,
    name   TEXT NOT NULL,
    value  REAL NOT NULL,
    is_int INTEGER NOT NULL DEFAULT 0,
    PRIMARY KEY (run_id, name)
) WITHOUT ROWID;
CREATE TABLE IF NOT EXISTS pair_metrics (
    run_id    INTEGER NOT NULL REFERENCES runs (id) ON DELETE CASCADE,
    report    TEXT NOT NULL DEFAULT '',
    src       TEXT NOT NULL,
    dst       TEXT NOT NULL,
    transport TEXT NOT NULL DEFAULT '',
    metric    TEXT NOT NULL,
    value     REAL NOT NULL,
    PRIMARY KEY (run_id, report, src, dst, transport, metric)
) WITHOUT ROWID;
CREATE TABLE IF NOT EXISTS perf (
    run_id  INTEGER NOT NULL REFERENCES runs (id) ON DELETE CASCADE,
    kind    TEXT NOT NULL,
    name    TEXT NOT NULL,
    count   REAL NOT NULL DEFAULT 0,
    total_s REAL NOT NULL DEFAULT 0.0,
    cpu_s   REAL NOT NULL DEFAULT 0.0,
    PRIMARY KEY (run_id, kind, name)
) WITHOUT ROWID;
"""

SCHEMA_VERSION = "1"

#: Pair-summary sub-blocks stored under their own transport label; every
#: other pair column lands under the empty transport.
_PAIR_TRANSPORTS = ("vns", "internet", "steering")


@dataclass(frozen=True, slots=True)
class RunKey:
    """The identity of one recorded run."""

    bench: str
    scenario: str = ""
    scale: str = ""
    seed: int = 0
    policy: str = ""
    git_rev: str = "unknown"
    recorded_at: str = ""

    def __post_init__(self) -> None:
        if not self.bench:
            raise ValueError("RunKey.bench must be a non-empty name")


@dataclass(frozen=True, slots=True)
class RunRow:
    """One stored run: key fields plus the parsed payload."""

    id: int
    key: RunKey
    payload: dict

    @property
    def bench(self) -> str:
        return self.key.bench

    @property
    def git_rev(self) -> str:
        return self.key.git_rev

    @property
    def recorded_at(self) -> str:
        return self.key.recorded_at


@dataclass(frozen=True, slots=True)
class TrajectoryPoint:
    """One metric sample along a bench's recorded history."""

    run_id: int
    git_rev: str
    recorded_at: str
    value: float


@dataclass(frozen=True, slots=True)
class Gate:
    """One regression-gated metric.

    ``metric`` may carry a direction prefix: ``+name`` tolerates any
    improvement and gates only a drop (higher is better), ``-name`` the
    reverse; a bare name is two-sided.  ``rtol``/``atol`` follow the
    shared differ's semantics.
    """

    metric: str
    rtol: float = REGRESSION_RTOL
    atol: float = DEFAULT_ATOL

    @property
    def direction(self) -> str:
        return self.metric[0] if self.metric[:1] in "+-" else ""

    @property
    def name(self) -> str:
        return self.metric.lstrip("+-")


@dataclass(slots=True)
class RegressionReport:
    """The outcome of one cross-commit regression check."""

    bench: str
    latest: RunRow | None
    baseline: RunRow | None
    diff: ToleranceDiff

    @property
    def ok(self) -> bool:
        """No regression.  A bench with fewer than two recorded runs is
        vacuously fine — there is nothing to regress against yet."""
        if self.latest is None or self.baseline is None:
            return True
        return self.diff.ok

    def render(self) -> str:
        if self.latest is None:
            return f"{self.bench}: no runs recorded"
        if self.baseline is None:
            return (
                f"{self.bench}: only {self.latest.git_rev} recorded — "
                "no baseline to compare against"
            )
        return self.diff.render()


def flatten_metrics(payload: object, prefix: str = "") -> dict[str, int | float]:
    """Every numeric leaf of ``payload`` as ``dotted.path -> value``.

    Bools, strings and ``None`` are skipped (they live in the payload
    itself); list elements are indexed ``name[i]``.
    """
    flat: dict[str, int | float] = {}
    _flatten_into(payload, prefix, flat)
    return flat


def _flatten_into(value: object, path: str, flat: dict[str, int | float]) -> None:
    if isinstance(value, bool) or value is None or isinstance(value, str):
        return
    if isinstance(value, (int, float)):
        if path:
            flat[path] = value
        return
    if isinstance(value, Mapping):
        for key in value:
            child = f"{path}.{key}" if path else str(key)
            _flatten_into(value[key], child, flat)
        return
    if isinstance(value, (list, tuple)):
        for index, item in enumerate(value):
            _flatten_into(item, f"{path}[{index}]", flat)


def canonical_json(payload: dict, *, indent: int | None = 2) -> str:
    """The store's one serialisation: sorted keys, fixed separators."""
    return json.dumps(payload, indent=indent, sort_keys=True)


def _pair_rows(
    report_name: str, report: Mapping
) -> Iterator[tuple[str, str, str, str, str, float]]:
    """Flatten one CampaignReport-shaped dict into pair_metrics rows."""
    pairs = report.get("pairs")
    if not isinstance(pairs, Mapping):
        return
    for pair_key, summary in pairs.items():
        src, _, dst = str(pair_key).partition("->")
        if not dst or not isinstance(summary, Mapping):
            continue
        for name, value in flatten_metrics(summary).items():
            head, _, rest = name.partition(".")
            if head in _PAIR_TRANSPORTS and rest:
                transport, metric = head, rest
            else:
                transport, metric = "", name
            yield report_name, src, dst, transport, metric, float(value)


class ResultsStore:
    """A sqlite results store (see module docstring for the schema).

    Usable as a context manager; ``path`` may be ``":memory:"`` for
    tests.  All writes are transactional per :meth:`record_run` /
    :meth:`import_jsonl` call.
    """

    def __init__(self, path: str | Path = ":memory:") -> None:
        self.path = str(path)
        if self.path != ":memory:":
            Path(self.path).parent.mkdir(parents=True, exist_ok=True)
        self._db = sqlite3.connect(self.path)
        self._db.execute("PRAGMA foreign_keys = ON")
        with self._db:
            self._db.executescript(_SCHEMA)
            self._db.execute(
                "INSERT OR IGNORE INTO meta (key, value) VALUES ('schema_version', ?)",
                (SCHEMA_VERSION,),
            )

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def close(self) -> None:
        self._db.close()

    def __enter__(self) -> "ResultsStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # writes
    # ------------------------------------------------------------------ #

    def record_run(
        self,
        key: RunKey,
        payload: dict,
        *,
        reports: Mapping[str, Mapping] | None = None,
        perf: Mapping | None = None,
    ) -> int:
        """Ingest one run; returns its ``run_id``.

        ``payload`` is stored canonically and flattened into the
        ``metrics`` table.  ``reports`` maps a label (a scale, a policy
        name, ...) to a CampaignReport-shaped dict whose per-pair QoE
        columns land in ``pair_metrics``.  ``perf`` is a
        :class:`~repro.perf.counters.PerfSnapshot` or its ``to_dict()``.
        """
        if not key.recorded_at:
            raise ValueError("RunKey.recorded_at must be set before recording")
        perf_dict = perf.to_dict() if hasattr(perf, "to_dict") else perf
        with self._db:
            cursor = self._db.execute(
                "INSERT INTO runs (git_rev, bench, scenario, scale, seed,"
                " policy, recorded_at, payload) VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    key.git_rev,
                    key.bench,
                    key.scenario,
                    key.scale,
                    key.seed,
                    key.policy,
                    key.recorded_at,
                    canonical_json(payload),
                ),
            )
            run_id = int(cursor.lastrowid)
            self._db.executemany(
                "INSERT INTO metrics (run_id, name, value, is_int)"
                " VALUES (?, ?, ?, ?)",
                (
                    (run_id, name, float(value), int(isinstance(value, int)))
                    for name, value in flatten_metrics(payload).items()
                ),
            )
            if reports:
                self._db.executemany(
                    "INSERT INTO pair_metrics (run_id, report, src, dst,"
                    " transport, metric, value) VALUES (?, ?, ?, ?, ?, ?, ?)",
                    (
                        (run_id, *row)
                        for name, report in reports.items()
                        for row in _pair_rows(name, report)
                    ),
                )
            if perf_dict:
                self._db.executemany(
                    "INSERT INTO perf (run_id, kind, name, count, total_s, cpu_s)"
                    " VALUES (?, ?, ?, ?, ?, ?)",
                    _perf_rows(run_id, perf_dict),
                )
        return run_id

    def delete_run(self, run_id: int) -> None:
        with self._db:
            self._db.execute("DELETE FROM runs WHERE id = ?", (run_id,))

    # ------------------------------------------------------------------ #
    # reads
    # ------------------------------------------------------------------ #

    def benches(self) -> tuple[str, ...]:
        rows = self._db.execute("SELECT DISTINCT bench FROM runs ORDER BY bench")
        return tuple(name for (name,) in rows)

    def runs(
        self,
        bench: str | None = None,
        *,
        scenario: str | None = None,
        scale: str | None = None,
        seed: int | None = None,
        policy: str | None = None,
        git_rev: str | None = None,
    ) -> list[RunRow]:
        """Matching runs, oldest first (``recorded_at`` then insert id)."""
        clauses, params = ["1=1"], []
        for column, value in (
            ("bench", bench),
            ("scenario", scenario),
            ("scale", scale),
            ("seed", seed),
            ("policy", policy),
            ("git_rev", git_rev),
        ):
            if value is not None:
                clauses.append(f"{column} = ?")
                params.append(value)
        rows = self._db.execute(
            "SELECT id, git_rev, bench, scenario, scale, seed, policy,"
            f" recorded_at, payload FROM runs WHERE {' AND '.join(clauses)}"
            " ORDER BY recorded_at, id",
            params,
        )
        return [_run_row(row) for row in rows]

    def latest(self, bench: str, **filters: object) -> RunRow | None:
        """The most recently recorded run of ``bench`` (or ``None``)."""
        rows = self.runs(bench, **filters)  # type: ignore[arg-type]
        return rows[-1] if rows else None

    def run(self, run_id: int) -> RunRow:
        row = self._db.execute(
            "SELECT id, git_rev, bench, scenario, scale, seed, policy,"
            " recorded_at, payload FROM runs WHERE id = ?",
            (run_id,),
        ).fetchone()
        if row is None:
            raise KeyError(f"no run {run_id}")
        return _run_row(row)

    def metrics(self, run_id: int) -> dict[str, int | float]:
        """One run's flattened metrics (ints restored to int)."""
        rows = self._db.execute(
            "SELECT name, value, is_int FROM metrics WHERE run_id = ?"
            " ORDER BY name",
            (run_id,),
        )
        return {
            name: int(value) if is_int else value for name, value, is_int in rows
        }

    def pair_metrics(
        self,
        run_id: int,
        *,
        report: str | None = None,
        transport: str | None = None,
        metric: str | None = None,
    ) -> list[tuple[str, str, str, str, str, float]]:
        """``(report, src, dst, transport, metric, value)`` rows."""
        clauses: list[str] = ["run_id = ?"]
        params: list[object] = [run_id]
        for column, value in (
            ("report", report),
            ("transport", transport),
            ("metric", metric),
        ):
            if value is not None:
                clauses.append(f"{column} = ?")
                params.append(value)
        rows = self._db.execute(
            "SELECT report, src, dst, transport, metric, value FROM pair_metrics"
            f" WHERE {' AND '.join(clauses)}"
            " ORDER BY report, src, dst, transport, metric",
            params,
        )
        return list(rows)

    def perf_rows(self, run_id: int) -> list[tuple[str, str, float, float, float]]:
        """``(kind, name, count, total_s, cpu_s)`` rows for one run."""
        rows = self._db.execute(
            "SELECT kind, name, count, total_s, cpu_s FROM perf"
            " WHERE run_id = ? ORDER BY kind, name",
            (run_id,),
        )
        return list(rows)

    def trajectory(
        self, bench: str, metric: str, **filters: object
    ) -> list[TrajectoryPoint]:
        """One metric's recorded history, oldest first.

        Runs that never recorded the metric are skipped — a trajectory
        crosses payload-shape changes without faking zeros.
        """
        points = []
        for row in self.runs(bench, **filters):  # type: ignore[arg-type]
            value = self._db.execute(
                "SELECT value, is_int FROM metrics WHERE run_id = ? AND name = ?",
                (row.id, metric),
            ).fetchone()
            if value is None:
                continue
            raw, is_int = value
            points.append(
                TrajectoryPoint(
                    run_id=row.id,
                    git_rev=row.git_rev,
                    recorded_at=row.recorded_at,
                    value=int(raw) if is_int else raw,
                )
            )
        return points

    # ------------------------------------------------------------------ #
    # regression
    # ------------------------------------------------------------------ #

    def regression(
        self,
        bench: str,
        *,
        metrics: Iterable[str | Gate] | None = None,
        rtol: float = REGRESSION_RTOL,
        atol: float = DEFAULT_ATOL,
        baseline_rev: str | None = None,
        **filters: object,
    ) -> RegressionReport:
        """Check the latest ``bench`` run against its baseline.

        The baseline is the newest earlier run recorded at a *different*
        git rev (so re-running a bench twice on one commit compares
        against history, not itself), falling back to the previous row;
        ``baseline_rev`` pins it explicitly.  ``metrics`` selects the
        gated columns — strings with an optional ``+``/``-`` direction
        prefix, or :class:`Gate` values carrying their own tolerance.
        ``None`` gates every metric the two runs share, two-sided at
        ``rtol`` (ints exact, the differ's contract).

        Directional gates never fail on improvement: when the latest
        value is at least as good as the baseline the comparison is
        satisfied before the differ runs.
        """
        rows = self.runs(bench, **filters)  # type: ignore[arg-type]
        if not rows:
            return RegressionReport(
                bench, None, None, ToleranceDiff(key=bench, missing=True)
            )
        latest = rows[-1]
        baseline = _pick_baseline(rows, baseline_rev)
        if baseline is None:
            return RegressionReport(
                bench, latest, None, ToleranceDiff(key=bench, missing=True)
            )
        base_metrics = self.metrics(baseline.id)
        new_metrics = self.metrics(latest.id)
        key = (
            f"{bench}: {baseline.git_rev} ({baseline.recorded_at})"
            f" -> {latest.git_rev} ({latest.recorded_at})"
        )
        diff = ToleranceDiff(key=key)
        if metrics is None:
            shared = sorted(base_metrics.keys() & new_metrics.keys())
            golden = {name: base_metrics[name] for name in shared}
            actual = {name: new_metrics[name] for name in shared}
            diff.mismatches.extend(
                diff_reports(golden, actual, key=key, rtol=rtol, atol=atol).mismatches
            )
            return RegressionReport(bench, latest, baseline, diff)
        for gate in metrics:
            if isinstance(gate, str):
                gate = Gate(gate, rtol=rtol, atol=atol)
            name = gate.name
            missing = name not in base_metrics, name not in new_metrics
            if all(missing):
                continue  # metric predates both runs — nothing to gate
            golden = {} if missing[0] else {name: base_metrics[name]}
            actual = {} if missing[1] else {name: new_metrics[name]}
            if golden and actual:
                actual = {name: _clamp_improvement(
                    gate.direction, base_metrics[name], new_metrics[name]
                )}
            diff.mismatches.extend(
                diff_reports(
                    golden, actual, key=key, rtol=gate.rtol, atol=gate.atol
                ).mismatches
            )
        return RegressionReport(bench, latest, baseline, diff)

    # ------------------------------------------------------------------ #
    # portable history (the committable text form)
    # ------------------------------------------------------------------ #

    def export_jsonl(self, path: str | Path | None = None) -> str:
        """Every run as one canonical JSON object per line, oldest first.

        The committable text form of the store: exporting, importing
        into a fresh store and exporting again is byte-identical.
        """
        lines = []
        for row in self.runs():
            key = row.key
            lines.append(
                json.dumps(
                    {
                        "bench": key.bench,
                        "git_rev": key.git_rev,
                        "payload": row.payload,
                        "policy": key.policy,
                        "recorded_at": key.recorded_at,
                        "scale": key.scale,
                        "scenario": key.scenario,
                        "seed": key.seed,
                    },
                    sort_keys=True,
                    separators=(",", ": "),
                )
            )
        text = "".join(line + "\n" for line in lines)
        if path is not None:
            Path(path).write_text(text, encoding="utf-8")
        return text

    def import_jsonl(self, source: str | Path) -> list[int]:
        """Append runs from a :meth:`export_jsonl` file; returns run ids.

        Pair/perf tables are not round-tripped (they are derived views;
        metrics are re-flattened from each payload).
        """
        text = Path(source).read_text(encoding="utf-8")
        run_ids = []
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            entry = json.loads(line)
            key = RunKey(
                bench=entry["bench"],
                scenario=entry.get("scenario", ""),
                scale=entry.get("scale", ""),
                seed=int(entry.get("seed", 0)),
                policy=entry.get("policy", ""),
                git_rev=entry.get("git_rev", "unknown"),
                recorded_at=entry["recorded_at"],
            )
            run_ids.append(self.record_run(key, entry["payload"]))
        return run_ids


def _pick_baseline(rows: list[RunRow], baseline_rev: str | None) -> RunRow | None:
    latest = rows[-1]
    if baseline_rev is not None:
        for row in reversed(rows[:-1]):
            if row.git_rev == baseline_rev:
                return row
        return None
    for row in reversed(rows[:-1]):
        if row.git_rev != latest.git_rev:
            return row
    return rows[-2] if len(rows) > 1 else None


def _clamp_improvement(
    direction: str, baseline: int | float, latest: int | float
) -> int | float:
    """For directional gates, an improvement compares as 'unchanged'."""
    if direction == "+" and latest >= baseline:
        return baseline
    if direction == "-" and latest <= baseline:
        return baseline
    return latest


def _run_row(row: tuple) -> RunRow:
    run_id, git_rev, bench, scenario, scale, seed, policy, recorded_at, payload = row
    return RunRow(
        id=int(run_id),
        key=RunKey(
            bench=bench,
            scenario=scenario,
            scale=scale,
            seed=int(seed),
            policy=policy,
            git_rev=git_rev,
            recorded_at=recorded_at,
        ),
        payload=json.loads(payload),
    )


def _perf_rows(
    run_id: int, perf_dict: Mapping
) -> Iterator[tuple[int, str, str, float, float, float]]:
    for name, count in sorted(perf_dict.get("counters", {}).items()):
        yield run_id, "counter", name, float(count), 0.0, 0.0
    for name, entry in sorted(perf_dict.get("timers", {}).items()):
        yield (
            run_id,
            "timer",
            name,
            float(entry.get("calls", 0)),
            float(entry.get("total_s", 0.0)),
            float(entry.get("cpu_s", 0.0)),
        )
