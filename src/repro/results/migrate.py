"""Migration of legacy ``BENCH_*.json`` snapshots into the store.

The four committed baselines predate the store; this module lifts any
``BENCH_<name>.json`` file into a run row so their numbers join the
longitudinal trajectory.  The bench name is the filename with the
``BENCH_`` prefix and ``.json`` suffix stripped; the payload's own
``seed`` (when present) keys the row.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.results.store import ResultsStore, RunKey

#: Filename shape a legacy snapshot must have.
LEGACY_PREFIX = "BENCH_"
LEGACY_SUFFIX = ".json"


def legacy_bench_name(path: str | Path) -> str:
    """``BENCH_workload.json`` → ``workload`` (raises on other names)."""
    name = Path(path).name
    if not (name.startswith(LEGACY_PREFIX) and name.endswith(LEGACY_SUFFIX)):
        raise ValueError(
            f"not a legacy bench snapshot: {name!r} "
            f"(expected {LEGACY_PREFIX}<bench>{LEGACY_SUFFIX})"
        )
    return name[len(LEGACY_PREFIX) : -len(LEGACY_SUFFIX)]


def find_legacy_snapshots(root: str | Path) -> tuple[Path, ...]:
    """Every ``BENCH_*.json`` directly under ``root``, sorted by name."""
    return tuple(sorted(Path(root).glob(f"{LEGACY_PREFIX}*{LEGACY_SUFFIX}")))


def migrate_bench_json(
    store: ResultsStore,
    path: str | Path,
    *,
    rev: str = "unknown",
    recorded_at: str | None = None,
) -> int:
    """Ingest one legacy snapshot as a store row; returns the run id."""
    from repro.results.api import utc_now_iso

    path = Path(path)
    payload = json.loads(path.read_text(encoding="utf-8"))
    if not isinstance(payload, dict):
        raise ValueError(f"{path}: legacy snapshot must be a JSON object")
    key = RunKey(
        bench=legacy_bench_name(path),
        seed=int(payload.get("seed", 0) or 0),
        git_rev=rev,
        recorded_at=recorded_at if recorded_at is not None else utc_now_iso(),
    )
    return store.record_run(key, payload)


def migrate_repo(
    store: ResultsStore,
    root: str | Path,
    *,
    rev: str = "unknown",
    recorded_at: str | None = None,
) -> dict[str, int]:
    """Ingest every legacy snapshot under ``root``; ``bench -> run id``."""
    return {
        legacy_bench_name(path): migrate_bench_json(
            store, path, rev=rev, recorded_at=recorded_at
        )
        for path in find_legacy_snapshots(root)
    }
