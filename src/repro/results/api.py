"""``repro.results.record`` — the one write path for results.

Every bench module and experiment driver that used to hand-roll a
``json.dumps(...)`` snapshot now records through here: one call writes
the legacy ``BENCH_*.json`` snapshot (byte-stable — exactly the bytes
the old writers produced) *and* a normalized row in the persistent
sqlite store, keyed by ``(git_rev, bench, scenario, scale, seed,
policy, recorded_at)``.

The default store lives at the repo root (``BENCH_results.sqlite``,
gitignored; CI uploads it as an artifact) and can be redirected with
the ``REPRO_RESULTS_STORE`` environment variable — set it to ``off``
to skip store writes entirely (the legacy snapshot still lands).
"""

from __future__ import annotations

import datetime as _datetime
import json
import os
import subprocess
from dataclasses import dataclass
from pathlib import Path
from typing import Mapping

from repro.results.store import Gate, ResultsStore, RunKey, canonical_json

#: Environment override for the store location (``off`` disables).
STORE_ENV = "REPRO_RESULTS_STORE"

#: Environment override for the recorded git rev (useful where the
#: ``.git`` directory is absent, e.g. an exported source tree).
GIT_REV_ENV = "REPRO_GIT_REV"

#: The repo root this source tree lives in (``src/repro/results`` → up 3).
REPO_ROOT = Path(__file__).resolve().parents[3]

#: Default store file, next to the ``BENCH_*.json`` baselines.
DEFAULT_STORE_NAME = "BENCH_results.sqlite"

#: The curated cross-commit gates CI enforces per bench (see
#: ``python -m repro.results check``).  Deliberately host-portable:
#: deterministic counts and rates tightly, wall-clock-derived
#: throughput only as a catastrophic-regression backstop.
CI_GATES: dict[str, tuple[Gate, ...]] = {
    "scale": (
        # Intrinsic ratio (optimised vs reference geo-LP path); the
        # bench itself asserts >= 2x, the trajectory guards drift.
        Gate("+scales.small.geo_lp.speedup", rtol=0.5),
        # Seed-deterministic convergence work: exact int compare.
        Gate("scales.small.engine.messages_delivered"),
    ),
    "workload": (
        Gate("scales.small.engine.onward_cache_hit_rate", rtol=0.10),
        Gate("+scales.small.engine.calls_per_s", rtol=0.85),
        Gate("scales.small.campaign.calls"),
        Gate("scales.small.campaign.calls_failed"),
    ),
    "steering": (
        Gate("scales.small.policies.threshold_offload.offload_rate", rtol=0.25),
        Gate(
            "scales.small.policies.cost_budgeted.backbone_saved_fraction",
            rtol=0.25,
        ),
        Gate("scales.small.campaign.calls"),
    ),
    "scenario_matrix": (
        # The golden gate distilled: any failed cell regresses the row.
        Gate("golden_failed"),
    ),
}


def default_store_path() -> Path | None:
    """Where :func:`record` writes, honouring ``REPRO_RESULTS_STORE``.

    ``None`` means store writes are disabled (``REPRO_RESULTS_STORE=off``).
    """
    override = os.environ.get(STORE_ENV, "").strip()
    if override.lower() in ("off", "none", "0"):
        return None
    if override:
        return Path(override)
    return REPO_ROOT / DEFAULT_STORE_NAME


def open_store(path: str | Path | None = None) -> ResultsStore:
    """Open a results store (the default one when ``path`` is omitted)."""
    if path is None:
        path = default_store_path()
        if path is None:
            raise RuntimeError(
                f"results store disabled via {STORE_ENV}; pass an explicit path"
            )
    return ResultsStore(path)


def git_rev() -> str:
    """The short git rev to key rows by (env override, then ``git``)."""
    override = os.environ.get(GIT_REV_ENV, "").strip()
    if override:
        return override
    try:
        out = subprocess.run(
            ["git", "-C", str(REPO_ROOT), "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else "unknown"


def utc_now_iso() -> str:
    """Second-resolution UTC timestamp (``2026-08-07T12:34:56Z``)."""
    return (
        _datetime.datetime.now(_datetime.timezone.utc)
        .replace(microsecond=0)
        .isoformat()
        .replace("+00:00", "Z")
    )


@dataclass(frozen=True, slots=True)
class RecordedRun:
    """What one :func:`record` call produced."""

    key: RunKey
    #: Store row id, or ``None`` when store writes were disabled.
    run_id: int | None
    store_path: Path | None
    json_path: Path | None


def record(
    bench: str,
    payload: dict,
    *,
    json_path: str | os.PathLike | None = None,
    store: ResultsStore | str | os.PathLike | None = None,
    scenario: str = "",
    scale: str = "",
    seed: int = 0,
    policy: str = "",
    rev: str | None = None,
    recorded_at: str | None = None,
    reports: Mapping[str, Mapping] | None = None,
    perf: Mapping | None = None,
    indent: int | None = 2,
) -> RecordedRun:
    """Record one result: legacy JSON snapshot + persistent store row.

    ``payload`` must be JSON-ready (the shape the old writers dumped).
    ``json_path`` writes the legacy snapshot byte-for-byte as before:
    ``json.dumps(payload, indent=2, sort_keys=True) + "\\n"``.  ``store``
    accepts an open :class:`ResultsStore`, a path, or ``None`` for the
    default store (skipped entirely when ``REPRO_RESULTS_STORE=off``).
    ``reports`` maps labels to CampaignReport-shaped dicts for the
    per-region-pair QoE tables; ``perf`` is a ``PerfSnapshot`` (or its
    ``to_dict()``) for the counter/timer tables.
    """
    key = RunKey(
        bench=bench,
        scenario=scenario,
        scale=scale,
        seed=seed,
        policy=policy,
        git_rev=rev if rev is not None else git_rev(),
        recorded_at=recorded_at if recorded_at is not None else utc_now_iso(),
    )
    snapshot_path: Path | None = None
    if json_path is not None:
        snapshot_path = Path(json_path)
        snapshot_path.write_text(
            canonical_json(payload, indent=indent) + "\n", encoding="utf-8"
        )

    run_id: int | None = None
    store_path: Path | None = None
    if isinstance(store, ResultsStore):
        run_id = store.record_run(key, payload, reports=reports, perf=perf)
        store_path = Path(store.path) if store.path != ":memory:" else None
    else:
        path = Path(store) if store is not None else default_store_path()
        if path is not None:
            with ResultsStore(path) as opened:
                run_id = opened.record_run(key, payload, reports=reports, perf=perf)
            store_path = path
    return RecordedRun(
        key=key, run_id=run_id, store_path=store_path, json_path=snapshot_path
    )


def record_experiment(
    bench: str,
    result: object,
    *,
    extra: Mapping[str, object] | None = None,
    **key_fields: object,
) -> RecordedRun:
    """Record any uniform-API experiment result through :func:`record`.

    ``result`` is an :class:`~repro.experiments.common.ExperimentResult`:
    its ``to_json()`` becomes the payload (so the stored row re-exports
    byte-stably) and its flat ``to_row()`` columns are merged in under
    ``"row"`` if the payload does not already carry them.  ``key_fields``
    pass through to :func:`record` (``scenario=``, ``scale=``, ...).
    """
    payload = json.loads(result.to_json())  # type: ignore[attr-defined]
    if "row" not in payload:
        payload["row"] = dict(result.to_row())  # type: ignore[attr-defined]
    if extra:
        payload.update(extra)
    reports = None
    report = payload.get("report")
    if isinstance(report, dict) and "pairs" in report:
        reports = {"": report}
    return record(bench, payload, reports=reports, **key_fields)  # type: ignore[arg-type]
