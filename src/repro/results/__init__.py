"""Persistent results store with longitudinal perf/QoE analytics.

Every campaign, steering comparison and bench run used to emit a
one-off JSON blob; this package lands them all in one sqlite store so
numbers compare across commits, seeds, scales and scenarios:

* :func:`record` — the single write path.  One call writes the legacy
  ``BENCH_*.json`` snapshot (byte-stable) *and* a normalized store row
  keyed by ``(git_rev, bench, scenario, scale, seed, policy,
  recorded_at)``;
* :class:`ResultsStore` — the store itself: ``runs`` / ``metrics`` /
  ``pair_metrics`` / ``perf`` tables, :meth:`~ResultsStore.latest`,
  :meth:`~ResultsStore.trajectory` and :meth:`~ResultsStore.regression`
  (through the shared tolerance differ, :mod:`repro.tolerance`), plus a
  committable JSONL text form (:meth:`~ResultsStore.export_jsonl`);
* :func:`heatmap_from_report` / :func:`heatmap_from_store` — per
  region-pair QoE heatmaps (text grid and CSV) for any corridor metric;
* :func:`perf_trajectory` — the cross-commit metric table;
* :func:`migrate_bench_json` — lifts legacy ``BENCH_*.json`` snapshots
  into trajectory rows;
* ``python -m repro.results`` — the CLI CI drives (``check`` gates on
  :data:`~repro.results.api.CI_GATES`, ``import``/``export`` move the
  committed history, ``trajectory``/``heatmap`` render reports).
"""

from repro.results.api import (
    CI_GATES,
    GIT_REV_ENV,
    STORE_ENV,
    RecordedRun,
    default_store_path,
    git_rev,
    open_store,
    record,
    record_experiment,
    utc_now_iso,
)
from repro.results.heatmap import (
    HeatmapGrid,
    heatmap_from_pairs,
    heatmap_from_report,
    heatmap_from_store,
)
from repro.results.migrate import (
    find_legacy_snapshots,
    legacy_bench_name,
    migrate_bench_json,
    migrate_repo,
)
from repro.results.store import (
    REGRESSION_RTOL,
    Gate,
    RegressionReport,
    ResultsStore,
    RunKey,
    RunRow,
    TrajectoryPoint,
    flatten_metrics,
)
from repro.results.trajectory import perf_trajectory, trajectory_metrics

__all__ = [
    "CI_GATES",
    "GIT_REV_ENV",
    "REGRESSION_RTOL",
    "STORE_ENV",
    "Gate",
    "HeatmapGrid",
    "RecordedRun",
    "RegressionReport",
    "ResultsStore",
    "RunKey",
    "RunRow",
    "TrajectoryPoint",
    "default_store_path",
    "find_legacy_snapshots",
    "flatten_metrics",
    "git_rev",
    "heatmap_from_pairs",
    "heatmap_from_report",
    "heatmap_from_store",
    "legacy_bench_name",
    "migrate_bench_json",
    "migrate_repo",
    "open_store",
    "perf_trajectory",
    "record",
    "record_experiment",
    "trajectory_metrics",
    "utc_now_iso",
]
