"""CLI for the persistent results store — what CI drives.

Subcommands
-----------
``list``
    Recorded runs (key columns), oldest first.
``check``
    Cross-commit regression gate: compares each bench's latest run
    against its baseline through the shared tolerance differ, using the
    curated :data:`~repro.results.api.CI_GATES` (or ``--metric``
    overrides).  Exit code 2 on regression — the CI failure signal.
``trajectory``
    The per-metric table across recorded commits.
``heatmap``
    Region-pair QoE heatmap for a stored run (text or ``--csv``).
``import`` / ``export``
    Move runs between the sqlite store and its committable JSONL form.
``migrate``
    Lift legacy ``BENCH_*.json`` snapshots into store rows.

Examples
--------
::

    python -m repro.results import benchmarks/results/history.jsonl
    python -m repro.results check --bench workload --bench scale
    python -m repro.results trajectory --bench workload
    python -m repro.results heatmap --bench workload --metric loss_pct.p95
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.results.api import CI_GATES, default_store_path, git_rev, open_store
from repro.results.heatmap import heatmap_from_store
from repro.results.migrate import migrate_bench_json, migrate_repo
from repro.results.store import Gate, ResultsStore
from repro.results.trajectory import perf_trajectory

#: ``check`` exit code on a detected regression.
EXIT_REGRESSION = 2


def _parse_gate(spec: str) -> Gate:
    """``+scales.small.engine.calls_per_s:0.5`` → a :class:`Gate`."""
    metric, _, rtol = spec.partition(":")
    if rtol:
        return Gate(metric, rtol=float(rtol))
    return Gate(metric)


def _add_store_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--store",
        default=None,
        help=f"store path (default: {default_store_path() or 'disabled'})",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.results",
        description="persistent results store: gates, trajectories, heatmaps",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    listing = sub.add_parser("list", help="recorded runs, oldest first")
    _add_store_arg(listing)
    listing.add_argument("--bench", default=None)

    check = sub.add_parser("check", help="cross-commit regression gate")
    _add_store_arg(check)
    check.add_argument(
        "--bench",
        action="append",
        default=None,
        help="bench to gate (repeatable; default: every bench with CI gates"
        " present in the store)",
    )
    check.add_argument(
        "--metric",
        action="append",
        default=None,
        help="override gates: [+|-]dotted.path[:rtol] (repeatable)",
    )
    check.add_argument(
        "--baseline-rev", default=None, help="pin the baseline git rev"
    )

    traj = sub.add_parser("trajectory", help="metric table across commits")
    _add_store_arg(traj)
    traj.add_argument("--bench", required=True)
    traj.add_argument("--metric", action="append", default=None)

    heat = sub.add_parser("heatmap", help="region-pair QoE heatmap")
    _add_store_arg(heat)
    heat.add_argument("--bench", required=True)
    heat.add_argument("--run-id", type=int, default=None, help="default: latest run")
    heat.add_argument("--report", default="", help="report label within the run")
    heat.add_argument("--transport", default="vns")
    heat.add_argument("--metric", default="delay_ms.p50")
    heat.add_argument("--csv", action="store_true")

    imp = sub.add_parser("import", help="append runs from a JSONL history file")
    _add_store_arg(imp)
    imp.add_argument("history", help="JSONL file produced by 'export'")

    exp = sub.add_parser("export", help="dump the store as JSONL")
    _add_store_arg(exp)
    exp.add_argument("--out", default=None, help="write here instead of stdout")

    mig = sub.add_parser("migrate", help="ingest legacy BENCH_*.json snapshots")
    _add_store_arg(mig)
    mig.add_argument("paths", nargs="*", help="snapshot files (default: repo root)")
    mig.add_argument("--rev", default=None, help="git rev to key rows by")
    mig.add_argument("--recorded-at", default=None, help="ISO timestamp for rows")
    return parser


def _open(args: argparse.Namespace) -> ResultsStore:
    return open_store(args.store)


def cmd_list(args: argparse.Namespace) -> int:
    with _open(args) as store:
        rows = store.runs(args.bench)
        if not rows:
            print("no runs recorded")
            return 0
        print(f"{'id':>5}  {'bench':<18} {'rev':<12} {'recorded_at':<22} key")
        for row in rows:
            key = row.key
            detail = ", ".join(
                f"{name}={value}"
                for name, value in (
                    ("scenario", key.scenario),
                    ("scale", key.scale),
                    ("seed", key.seed),
                    ("policy", key.policy),
                )
                if value not in ("", 0)
            )
            print(
                f"{row.id:>5}  {key.bench:<18} {key.git_rev:<12}"
                f" {key.recorded_at:<22} {detail}"
            )
    return 0


def cmd_check(args: argparse.Namespace) -> int:
    overrides = (
        tuple(_parse_gate(spec) for spec in args.metric) if args.metric else None
    )
    failed = False
    with _open(args) as store:
        benches = args.bench or [
            bench for bench in store.benches() if bench in CI_GATES
        ]
        if not benches:
            print("no benches to check (store empty or no CI gates match)")
            return 0
        for bench in benches:
            gates = overrides if overrides is not None else CI_GATES.get(bench)
            report = store.regression(
                bench, metrics=gates, baseline_rev=args.baseline_rev
            )
            print(report.render())
            failed |= not report.ok
    return EXIT_REGRESSION if failed else 0


def cmd_trajectory(args: argparse.Namespace) -> int:
    with _open(args) as store:
        print(perf_trajectory(store, args.bench, metrics=args.metric))
    return 0


def cmd_heatmap(args: argparse.Namespace) -> int:
    with _open(args) as store:
        if args.run_id is not None:
            run_id = args.run_id
        else:
            latest = store.latest(args.bench)
            if latest is None:
                print(f"no runs recorded for bench {args.bench!r}")
                return 1
            run_id = latest.id
        grid = heatmap_from_store(
            store,
            run_id,
            report=args.report,
            transport=args.transport,
            metric=args.metric,
        )
        if not grid.values:
            print(
                f"run {run_id} has no pair metrics for report={args.report!r}"
                f" transport={args.transport!r} metric={args.metric!r}"
            )
            return 1
        print(grid.to_csv() if args.csv else grid.render(), end="")
        if not args.csv:
            print()
    return 0


def cmd_import(args: argparse.Namespace) -> int:
    with _open(args) as store:
        run_ids = store.import_jsonl(args.history)
    print(f"imported {len(run_ids)} run(s) from {args.history}")
    return 0


def cmd_export(args: argparse.Namespace) -> int:
    with _open(args) as store:
        text = store.export_jsonl(args.out)
    if args.out:
        print(f"wrote {args.out}")
    else:
        sys.stdout.write(text)
    return 0


def cmd_migrate(args: argparse.Namespace) -> int:
    rev = args.rev if args.rev else git_rev()
    with _open(args) as store:
        if args.paths:
            migrated = {
                path: migrate_bench_json(
                    store, path, rev=rev, recorded_at=args.recorded_at
                )
                for path in args.paths
            }
        else:
            from repro.results.api import REPO_ROOT

            migrated = migrate_repo(
                store, REPO_ROOT, rev=rev, recorded_at=args.recorded_at
            )
    for name, run_id in migrated.items():
        print(f"migrated {name} -> run {run_id}")
    if not migrated:
        print("no legacy BENCH_*.json snapshots found")
    return 0


COMMANDS = {
    "list": cmd_list,
    "check": cmd_check,
    "trajectory": cmd_trajectory,
    "heatmap": cmd_heatmap,
    "import": cmd_import,
    "export": cmd_export,
    "migrate": cmd_migrate,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess in tests
    raise SystemExit(main())
