"""Perf-trajectory report: one bench's gated metrics across commits.

Turns the store's recorded history into the table a reviewer reads:
one row per metric, one column per recorded run (labelled by git rev),
with the relative move from the previous run annotated.
"""

from __future__ import annotations

from typing import Iterable

from repro.results.store import Gate, ResultsStore


def trajectory_metrics(
    store: ResultsStore, bench: str, metrics: Iterable[str | Gate] | None = None
) -> tuple[str, ...]:
    """Which metric names a trajectory report covers.

    Explicit ``metrics`` win; otherwise the bench's curated CI gates
    (:data:`repro.results.api.CI_GATES`); otherwise every metric the
    bench's recorded runs share (which can be wide — pass a selection
    for readable output).
    """
    if metrics is not None:
        return tuple(m.name if isinstance(m, Gate) else m.lstrip("+-") for m in metrics)
    from repro.results.api import CI_GATES

    gates = CI_GATES.get(bench)
    if gates:
        return tuple(gate.name for gate in gates)
    rows = store.runs(bench)
    if not rows:
        return ()
    shared: set[str] | None = None
    for row in rows:
        names = set(store.metrics(row.id))
        shared = names if shared is None else shared & names
    return tuple(sorted(shared or ()))


def perf_trajectory(
    store: ResultsStore,
    bench: str,
    *,
    metrics: Iterable[str | Gate] | None = None,
    **filters: object,
) -> str:
    """The trajectory table for one bench, oldest run first."""
    rows = store.runs(bench, **filters)  # type: ignore[arg-type]
    if not rows:
        return f"perf trajectory — bench '{bench}': no runs recorded"
    names = trajectory_metrics(store, bench, metrics)
    by_run = {row.id: store.metrics(row.id) for row in rows}
    lines = [
        f"perf trajectory — bench '{bench}', {len(rows)} run(s):"
        f" {rows[0].recorded_at} ({rows[0].git_rev})"
        f" -> {rows[-1].recorded_at} ({rows[-1].git_rev})"
    ]
    name_width = max((len(name) for name in names), default=6)
    header = "  " + "metric".ljust(name_width) + "".join(
        row.git_rev[:10].rjust(14) for row in rows
    )
    lines.append(header)
    for name in names:
        cells, previous = [], None
        for row in rows:
            value = by_run[row.id].get(name)
            if value is None:
                cells.append("-".rjust(14))
                continue
            cell = _format_value(value)
            if previous not in (None, 0):
                move = (value - previous) / abs(previous)
                if abs(move) >= 0.0005:
                    cell = f"{cell} {move:+.1%}"
            cells.append(cell.rjust(14))
            previous = value
        lines.append("  " + name.ljust(name_width) + "".join(cells))
    return "\n".join(lines)


def _format_value(value: int | float) -> str:
    if isinstance(value, int):
        return str(value)
    if value != 0 and abs(value) < 0.01:
        return f"{value:.2e}"
    return f"{value:,.2f}"
