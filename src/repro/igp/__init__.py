"""Intra-AS link-state routing (the paper: "IGP is used for internal routing").

Provides the weighted graph of a single AS's internal topology and
Dijkstra shortest-path-first computation.  BGP's hot-potato tie-break and
the data-plane path through VNS's L2 links both consume SPF results.
"""

from repro.igp.graph import IgpGraph, IgpLink
from repro.igp.spf import ShortestPaths, spf

__all__ = ["IgpGraph", "IgpLink", "spf", "ShortestPaths"]
