"""The internal (IGP) topology of one AS."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class IgpLink:
    """A bidirectional internal link between two nodes.

    Parameters
    ----------
    a, b:
        Node identifiers (router or PoP ids).
    metric:
        IGP cost, symmetric.  VNS derives metrics from link latency so SPF
        matches propagation delay ordering.
    """

    a: str
    b: str
    metric: float

    def __post_init__(self) -> None:
        if self.a == self.b:
            raise ValueError(f"self-loop on {self.a!r}")
        if self.metric <= 0:
            raise ValueError(f"IGP metric must be positive, got {self.metric!r}")

    def other(self, node: str) -> str:
        """The far end of the link as seen from ``node``.

        Raises
        ------
        ValueError
            If ``node`` is not an endpoint.
        """
        if node == self.a:
            return self.b
        if node == self.b:
            return self.a
        raise ValueError(f"{node!r} is not an endpoint of {self.a!r}-{self.b!r}")


class IgpGraph:
    """A weighted undirected graph of one AS's interior."""

    def __init__(self) -> None:
        self._adj: dict[str, dict[str, float]] = {}

    def add_node(self, node: str) -> None:
        """Register a node with no links yet (idempotent)."""
        self._adj.setdefault(node, {})

    def add_link(self, a: str, b: str, metric: float) -> None:
        """Add a bidirectional link.

        Raises
        ------
        ValueError
            On self-loops, non-positive metrics, or duplicate links.
        """
        link = IgpLink(a=a, b=b, metric=metric)  # validates
        self.add_node(a)
        self.add_node(b)
        if b in self._adj[a]:
            raise ValueError(f"link {a!r}-{b!r} already exists")
        self._adj[a][b] = link.metric
        self._adj[b][a] = link.metric

    def __contains__(self, node: str) -> bool:
        return node in self._adj

    def nodes(self) -> list[str]:
        return list(self._adj)

    def neighbors(self, node: str) -> dict[str, float]:
        """Adjacent nodes with link metrics.

        Raises
        ------
        KeyError
            For an unknown node.
        """
        return dict(self._adj[node])

    def metric(self, a: str, b: str) -> float:
        """The metric of the direct link a-b.

        Raises
        ------
        KeyError
            If no such link exists.
        """
        return self._adj[a][b]

    def num_links(self) -> int:
        return sum(len(nbrs) for nbrs in self._adj.values()) // 2

    def is_connected(self) -> bool:
        """Whether every node can reach every other node."""
        if not self._adj:
            return True
        start = next(iter(self._adj))
        seen = {start}
        frontier = [start]
        while frontier:
            node = frontier.pop()
            for nbr in self._adj[node]:
                if nbr not in seen:
                    seen.add(nbr)
                    frontier.append(nbr)
        return len(seen) == len(self._adj)
