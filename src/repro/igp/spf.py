"""Shortest-path-first (Dijkstra) over an IGP graph."""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.igp.graph import IgpGraph


@dataclass(slots=True)
class ShortestPaths:
    """SPF result from one source node.

    ``distance`` maps node → metric; ``previous`` maps node → predecessor
    on the shortest path (absent for the source and unreachable nodes).
    """

    source: str
    distance: dict[str, float] = field(default_factory=dict)
    previous: dict[str, str] = field(default_factory=dict)

    def metric_to(self, node: str) -> float:
        """Metric from the source to ``node`` (``inf`` if unreachable)."""
        return self.distance.get(node, float("inf"))

    def reachable(self, node: str) -> bool:
        return node in self.distance

    def path_to(self, node: str) -> list[str] | None:
        """The node sequence source..node, or ``None`` if unreachable."""
        if node not in self.distance:
            return None
        path = [node]
        while path[-1] != self.source:
            path.append(self.previous[path[-1]])
        path.reverse()
        return path


def spf(graph: IgpGraph, source: str) -> ShortestPaths:
    """Dijkstra from ``source``; deterministic tie-breaking by node id.

    Raises
    ------
    KeyError
        If ``source`` is not in the graph.
    """
    if source not in graph:
        raise KeyError(f"unknown node {source!r}")
    result = ShortestPaths(source=source)
    result.distance[source] = 0.0
    heap: list[tuple[float, str]] = [(0.0, source)]
    done: set[str] = set()
    while heap:
        dist, node = heapq.heappop(heap)
        if node in done:
            continue
        done.add(node)
        for nbr, metric in sorted(graph.neighbors(node).items()):
            candidate = dist + metric
            if candidate < result.distance.get(nbr, float("inf")) - 1e-12:
                result.distance[nbr] = candidate
                result.previous[nbr] = node
                heapq.heappush(heap, (candidate, nbr))
    return result


def all_pairs_spf(graph: IgpGraph) -> dict[str, ShortestPaths]:
    """SPF from every node (VNS has ~20 routers; this is cheap)."""
    return {node: spf(graph, node) for node in graph.nodes()}
