"""Transmission simulation over a :class:`~repro.dataplane.path.DataPath`.

Two granularities:

* :func:`simulate_stream` — slot-aggregated media-stream simulation: each
  segment contributes a per-slot loss-rate vector; slot losses are
  binomially drawn from the combined rate.  This reproduces the
  two-minute / 24×5-second-slot accounting of Sec. 5.1.2 at a tiny
  fraction of per-packet cost.
* :func:`simulate_ping` / :func:`simulate_probe_round` — ICMP-style
  probing for the routing-precision (Sec. 4) and last-mile (Sec. 5.2)
  experiments.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from functools import lru_cache

import numpy as np

from repro.dataplane import calibration as cal
from repro.dataplane.link import PathSegment, SegmentKind
from repro.dataplane.path import DataPath


@dataclass(slots=True)
class StreamResult:
    """Outcome of one simulated media stream.

    Attributes
    ----------
    packets_sent:
        Total packets in the stream.
    slot_losses:
        Lost-packet count per 5-second slot.
    jitter_p95_ms:
        95th-percentile interarrival jitter over the stream.
    rtt_ms:
        Path round-trip time (constant per stream in this model).
    """

    packets_sent: int
    slot_losses: np.ndarray
    jitter_p95_ms: float
    rtt_ms: float

    @property
    def packets_lost(self) -> int:
        return int(self.slot_losses.sum())

    @property
    def loss_percent(self) -> float:
        """Loss as a percentage of packets sent."""
        if self.packets_sent == 0:
            return 0.0
        return 100.0 * self.packets_lost / self.packets_sent

    @property
    def lossy_slots(self) -> int:
        """Number of 5-second slots with at least one lost packet."""
        return int((self.slot_losses > 0).sum())

    @property
    def n_slots(self) -> int:
        return len(self.slot_losses)


def slot_count(duration_s: float, slot_s: float) -> int:
    """Number of accounting slots covering ``duration_s`` entirely.

    Ceiling division with a tolerance for float ratios that are integral
    up to rounding (``120 / 5 -> 24``): a non-divisible duration gets a
    final *partial* slot instead of silently dropping its tail
    (``12 / 5 -> 3``, not 2).
    """
    ratio = duration_s / slot_s
    whole = round(ratio)
    if whole > 0 and abs(ratio - whole) < 1e-9:
        return int(whole)
    return max(1, math.ceil(ratio))


def combine_rates(per_segment: list[np.ndarray], n_slots: int | None = None) -> np.ndarray:
    """Combine independent per-segment loss rates into end-to-end rates.

    ``1 - prod(1 - r_i)`` per slot — a packet survives only if every
    segment passes it.  An empty segment list (a zero-length path, e.g.
    client and echo server at the same PoP) combines to all-zero rates,
    which is why ``n_slots`` can be supplied.
    """
    if not per_segment:
        return np.zeros(n_slots or 0)
    survival = np.ones_like(per_segment[0])
    for rates in per_segment:
        survival = survival * (1.0 - rates)
    return 1.0 - survival


@lru_cache(maxsize=None)
def _jitter_rate_factor(pps: float) -> float:
    """Memoised packet-rate jitter factor (one sqrt per distinct rate)."""
    return float(np.sqrt(cal.JITTER_REFERENCE_PPS / max(pps, 1.0)))


def _jitter_scale_from_traits(traits, pps: float) -> float:
    """Jitter scale from ``(kind, is_long_haul)`` segment traits.

    Shared between the scalar path (which reads traits off the
    :class:`DataPath`) and the columnar kernel (which reads them off
    cached :class:`~repro.dataplane.link.SegmentLossParams`), so the two
    cannot drift apart.
    """
    congestion_terms = 0.0
    for kind, long_haul in traits:
        if kind is SegmentKind.TRANSIT and long_haul:
            congestion_terms += 0.5
        elif kind is SegmentKind.ACCESS:
            congestion_terms += 0.3
        elif kind is SegmentKind.VNS_L2 and long_haul:
            congestion_terms += 0.1
    return cal.JITTER_BASE_SCALE_MS * (1.0 + congestion_terms) * _jitter_rate_factor(pps)


def _jitter_scale(path: DataPath, hour_cet: float, pps: float) -> float:
    """Jitter scale: grows with congested transit hops, shrinks with pps."""
    return _jitter_scale_from_traits(
        ((segment.kind, segment.is_long_haul) for segment in path.segments), pps
    )


def _stream_shape(
    duration_s: float, packets_per_second: float, slot_s: float
) -> tuple[int, int, int]:
    """``(n_slots, packets_per_slot, final_packets)`` of a stream.

    Guards degenerate shapes: a sub-packet-rate stream whose
    ``packets_per_slot`` rounds to zero would report loss-free slots it
    never carried a packet over (corrupting lossy-slot fractions), so it
    is rejected; a partial final slot is clamped to carry at least one
    packet for the same reason.
    """
    n_slots = slot_count(duration_s, slot_s)
    packets_per_slot = int(round(packets_per_second * slot_s))
    if packets_per_slot < 1:
        raise ValueError(
            "packets_per_second * slot_s rounds to zero packets per slot "
            f"(packets_per_second={packets_per_second!r}, slot_s={slot_s!r}); "
            "sub-packet-rate streams cannot be slot-accounted"
        )
    final_slot_s = duration_s - (n_slots - 1) * slot_s
    final_packets = max(1, int(round(packets_per_second * final_slot_s)))
    return n_slots, packets_per_slot, final_packets


def simulate_stream(
    path: DataPath,
    *,
    duration_s: float = 120.0,
    packets_per_second: float = 420.0,
    slot_s: float = 5.0,
    hour_cet: float = 12.0,
    rng: np.random.Generator,
) -> StreamResult:
    """Simulate one media stream over ``path``.

    Raises
    ------
    ValueError
        For non-positive duration, packet rate, or slot length, and for
        sub-packet-rate streams (``packets_per_second * slot_s`` rounding
        to zero packets per slot).
    """
    if duration_s <= 0 or packets_per_second <= 0 or slot_s <= 0:
        raise ValueError("duration, packet rate and slot length must be positive")
    n_slots, packets_per_slot, final_packets = _stream_shape(
        duration_s, packets_per_second, slot_s
    )
    per_segment = [
        segment.sample_slot_rates(n_slots, hour_cet, rng) for segment in path.segments
    ]
    rates = combine_rates(per_segment, n_slots)
    if final_packets == packets_per_slot:
        slot_losses = rng.binomial(packets_per_slot, rates)
    else:
        # Non-divisible duration: the final slot is partial and carries
        # fewer packets, but its tail seconds are still accounted.
        slot_packets = np.full(n_slots, packets_per_slot)
        slot_packets[-1] = final_packets
        slot_losses = rng.binomial(slot_packets, rates)
    jitter_samples = rng.gamma(
        cal.JITTER_GAMMA_SHAPE,
        _jitter_scale(path, hour_cet, packets_per_second),
        size=n_slots,
    )
    # Congestion inflates jitter: couple it to the slot loss rates.
    jitter_samples = jitter_samples * (1.0 + 40.0 * rates)
    jitter_p95 = float(np.percentile(jitter_samples, 95))
    return StreamResult(
        packets_sent=packets_per_slot * (n_slots - 1) + final_packets,
        slot_losses=slot_losses,
        jitter_p95_ms=jitter_p95,
        rtt_ms=path.rtt_ms(),
    )


def simulate_stream_batch(
    path: DataPath,
    n_streams: int,
    *,
    duration_s: float = 120.0,
    packets_per_second: float = 420.0,
    slot_s: float = 5.0,
    hour_cet: float = 12.0,
    rng: np.random.Generator,
) -> list[StreamResult]:
    """Simulate ``n_streams`` independent media streams over one path.

    The campaign engine's batched hot path: per segment one vectorised
    rate draw of shape ``(n_streams, n_slots)``, then one binomial and one
    jitter draw for the whole batch.  Each returned :class:`StreamResult`
    is distributed exactly as a :func:`simulate_stream` call with the same
    parameters — the batch changes the arithmetic, not the model.

    Raises
    ------
    ValueError
        For a non-positive stream count, duration, packet rate or slot
        length.
    """
    if n_streams <= 0:
        raise ValueError(f"n_streams must be positive, got {n_streams!r}")
    if duration_s <= 0 or packets_per_second <= 0 or slot_s <= 0:
        raise ValueError("duration, packet rate and slot length must be positive")
    n_slots, packets_per_slot, final_packets = _stream_shape(
        duration_s, packets_per_second, slot_s
    )
    per_segment = [
        segment.sample_slot_rates_batch(n_streams, n_slots, hour_cet, rng)
        for segment in path.segments
    ]
    if per_segment:
        rates = combine_rates(per_segment)
    else:
        rates = np.zeros((n_streams, n_slots))
    slot_packets = np.full(n_slots, packets_per_slot)
    slot_packets[-1] = final_packets
    slot_losses = rng.binomial(slot_packets[None, :], rates)
    jitter_samples = rng.gamma(
        cal.JITTER_GAMMA_SHAPE,
        _jitter_scale(path, hour_cet, packets_per_second),
        size=(n_streams, n_slots),
    )
    jitter_samples = jitter_samples * (1.0 + 40.0 * rates)
    jitter_p95 = np.percentile(jitter_samples, 95, axis=1)
    rtt = path.rtt_ms()
    packets_sent = packets_per_slot * (n_slots - 1) + final_packets
    return [
        StreamResult(
            packets_sent=packets_sent,
            slot_losses=slot_losses[i],
            jitter_p95_ms=float(jitter_p95[i]),
            rtt_ms=rtt,
        )
        for i in range(n_streams)
    ]


@dataclass(slots=True)
class PingResult:
    """Outcome of an ICMP probe burst."""

    sent: int
    lost: int
    rtts_ms: list[float] = field(default_factory=list)

    @property
    def received(self) -> int:
        return self.sent - self.lost

    @property
    def min_rtt_ms(self) -> float | None:
        """Lowest observed RTT (the paper records this), None if all lost."""
        return min(self.rtts_ms) if self.rtts_ms else None

    @property
    def loss_fraction(self) -> float:
        return self.lost / self.sent if self.sent else 0.0


def simulate_ping(
    path: DataPath,
    *,
    count: int = 5,
    hour_cet: float = 12.0,
    rng: np.random.Generator,
) -> PingResult:
    """Send ``count`` spaced ICMP echoes and collect RTTs.

    Each echo independently samples the loss state; RTT gets a small
    positive queueing perturbation on top of the path propagation time,
    so the min-RTT estimator behaves as in real measurements.

    Raises
    ------
    ValueError
        For a non-positive count.
    """
    if count <= 0:
        raise ValueError(f"count must be positive, got {count!r}")
    per_segment = [
        segment.sample_slot_rates(count, hour_cet, rng) for segment in path.segments
    ]
    rates = combine_rates(per_segment, count)
    base_rtt = path.rtt_ms()
    rtts: list[float] = []
    lost = 0
    jitter = rng.exponential(0.6, size=count)
    drops = rng.random(count)
    for i in range(count):
        if drops[i] < rates[i]:
            lost += 1
        else:
            rtts.append(base_rtt + float(jitter[i]))
    return PingResult(sent=count, lost=lost, rtts_ms=rtts)


def simulate_probe_round(
    path: DataPath,
    *,
    packets: int = 100,
    hour_cet: float = 12.0,
    rng: np.random.Generator,
) -> PingResult:
    """One back-to-back probe round (Sec. 5.2: 100 packets every 10 min).

    Back-to-back packets share the congestion state, so the round samples
    one rate and draws losses binomially.

    Raises
    ------
    ValueError
        For a non-positive packet count.
    """
    if packets <= 0:
        raise ValueError(f"packets must be positive, got {packets!r}")
    per_segment = []
    for segment in path.segments:
        # A 100-packet back-to-back round occupies the wire for ~2 s.
        if segment.kind is SegmentKind.TRANSIT:
            # Back-to-back bursts stress trunk queues far more than paced
            # traffic (this is how the Sec. 5.2 probe averages and the
            # Sec. 5.1 paced-stream CCDFs coexist on the same corridors).
            # The factor amplifies only the segment's own stochastic
            # congestion state: an injected DegradedSegment.extra_loss is
            # rate-independent path loss, so it stacks on top afterwards
            # instead of being multiplied by the burst factor.
            rates = PathSegment.sample_slot_rates(
                segment, 1, hour_cet, rng, duration_s=2.0
            )
            rates = np.minimum(rates * cal.PROBE_BURST_FACTOR, 0.95)
            extra = getattr(segment, "extra_loss", 0.0)
            if extra:
                rates = np.clip(rates + extra, 0.0, 0.95)
        else:
            rates = segment.sample_slot_rates(1, hour_cet, rng, duration_s=2.0)
        per_segment.append(rates)
    rate = float(combine_rates(per_segment, 1)[0])
    lost = int(rng.binomial(packets, rate))
    base_rtt = path.rtt_ms()
    received = packets - lost
    rtts = (base_rtt + rng.exponential(0.6, size=received)).tolist() if received else []
    return PingResult(sent=packets, lost=lost, rtts_ms=rtts)


def simulate_stream_columns(specs, **kwargs):
    """Campaign-level columnar stream simulation.

    Takes a list of :class:`~repro.dataplane.columnar.StreamColumnSpec`
    (one per ``(group, transport)``) and simulates *every* stream of
    *every* spec in a handful of wide numpy passes, returning one
    ``list[StreamResult]`` per spec.  Each stream is distributed exactly
    as a :func:`simulate_stream` call over the same path — the oracle
    the columnar distribution-identity tests compare against — and every
    draw is counter-keyed by ``(spec digest, salt, stream, purpose,
    slot)``, so results are independent of chunking and spec order.

    Thin facade over :func:`repro.dataplane.columnar.simulate_stream_columns`
    (imported lazily — the kernel pulls in scipy-backed inverse-CDF
    samplers that plain stream simulation does not need).
    """
    from repro.dataplane import columnar

    return columnar.simulate_stream_columns(specs, **kwargs)
