"""Calibration constants for the data-plane models.

Every number here encodes a *finding* of the paper (or a well-known
engineering constant) rather than an arbitrary choice; the experiment
benchmarks assert the shapes these constants produce.  They are collected
in one module so the model ↔ figure mapping stays auditable:

* ``REGION_CONGESTION`` — Sec. 5.1.2/5.2: "the Internet in the AP region
  seems to be far more congested"; NA moderate; EU best.
* ``ACCESS_BASE_LOSS`` — Table 1's AS-type ordering per region (AP:
  LTP < STP < EC < CAHP; EU: LTP < EC < STP < CAHP; NA: flat).
* ``TRANSIT_*`` — Fig. 9/10: long-haul transit shows a random-loss
  baseline that grows with distance, short bursty outliers (IGP/BGP
  convergence) and long bursty outliers (sustained congestion), while
  VNS's dedicated L2 links show at most tiny multiplexing loss.
* ``VNS_L2_*`` — Sec. 5.1.1: intra-region VNS loss ≈ 0; minor loss
  (<0.01%) on long-haul L2 links that "are likely to be multiplexed at a
  lower layer".
* ``DIURNAL_*`` — Fig. 12: business-hours and evening peaks, with AP
  showing the strongest swing.
"""

from __future__ import annotations

from repro.geo.regions import WorldRegion
from repro.net.asn import ASType

# --------------------------------------------------------------------- #
# Latency
# --------------------------------------------------------------------- #

#: One-way light-in-fibre propagation: ~4.9 µs/km ≈ 0.0049 ms/km.
FIBER_MS_PER_KM = 0.0049

#: Fibre paths are never great circles; measured RTTs over transit are
#: typically 1.3–2× the geodesic bound.  VNS leases direct L2 circuits,
#: so its inflation is lower.
TRANSIT_PATH_INFLATION = 1.55
VNS_PATH_INFLATION = 1.15
ACCESS_PATH_INFLATION = 2.0

#: Fixed per-AS-hop processing/queuing delay (ms, one way).
PER_HOP_DELAY_MS = 0.35

# --------------------------------------------------------------------- #
# Regional congestion multipliers (dimensionless)
# --------------------------------------------------------------------- #

REGION_CONGESTION: dict[WorldRegion, float] = {
    WorldRegion.ASIA_PACIFIC: 2.6,
    WorldRegion.EUROPE: 0.7,
    WorldRegion.NORTH_CENTRAL_AMERICA: 1.0,
    WorldRegion.OCEANIA: 1.4,
    WorldRegion.MIDDLE_EAST: 1.8,
    WorldRegion.AFRICA: 2.2,
    WorldRegion.SOUTH_AMERICA: 1.8,
}

# --------------------------------------------------------------------- #
# Access (last-mile) loss — drives Table 1, Fig. 11, Fig. 12
# --------------------------------------------------------------------- #

#: Mean access loss per AS type and destination region (probe-measured
#: scale), before the diurnal factor.  Calibrated so that the
#: Amsterdam-perspective averages land near Table 1 (AP:
#: 0.45/1.30/2.80/1.92; EU: 0.11/0.62/1.58/0.52; NA: ~0.5 flat) once the
#: corridor (transit) contribution along the path is added.
ACCESS_BASE_LOSS: dict[WorldRegion, dict[ASType, float]] = {
    WorldRegion.ASIA_PACIFIC: {
        ASType.LTP: 0.0008,
        ASType.STP: 0.0072,
        ASType.CAHP: 0.0180,
        ASType.EC: 0.0125,
    },
    WorldRegion.EUROPE: {
        ASType.LTP: 0.0008,
        ASType.STP: 0.0050,
        ASType.CAHP: 0.0135,
        ASType.EC: 0.0040,
    },
    WorldRegion.NORTH_CENTRAL_AMERICA: {
        # LTPs in NA also sell residential access, blurring the hierarchy
        # (Sec. 5.2.3) — the values are deliberately flat.
        ASType.LTP: 0.0040,
        ASType.STP: 0.0035,
        ASType.CAHP: 0.0033,
        ASType.EC: 0.0039,
    },
}

#: Fallback for regions outside the three studied ones.
ACCESS_BASE_LOSS_DEFAULT: dict[ASType, float] = {
    ASType.LTP: 0.004,
    ASType.STP: 0.008,
    ASType.CAHP: 0.016,
    ASType.EC: 0.010,
}

#: Access loss is *episodic*: most probe rounds see none, congested
#: episodes lose a lot.  This is the per-slot/per-round probability that
#: an access link is in a congestion episode (at diurnal factor 1); the
#: in-episode rate is scaled so the long-run mean matches
#: ``ACCESS_BASE_LOSS``.  Episodic loss is what makes Fig. 12's
#: lossy-round counts swing with local hours instead of saturating.
ACCESS_OCCURRENCE: dict[ASType, float] = {
    ASType.LTP: 0.05,
    ASType.STP: 0.12,
    ASType.CAHP: 0.20,
    ASType.EC: 0.15,
}
#: Log-normal sigma of the in-episode rate (mean-corrected).
ACCESS_EPISODE_SIGMA = 0.8

#: How strongly access loss follows the diurnal cycle, per AS type.  CAHPs
#: serve residential users (strong evening peak); LTP backbones swing the
#: least — but in AP even LTPs peak in local evening hours (Fig. 12).
ACCESS_DIURNAL_WEIGHT: dict[ASType, float] = {
    ASType.LTP: 0.45,
    ASType.STP: 0.7,
    ASType.CAHP: 1.0,
    ASType.EC: 0.8,
}

# --------------------------------------------------------------------- #
# Transit long-haul loss — drives Fig. 9 and Fig. 10
# --------------------------------------------------------------------- #

#: Distance (km) beyond which an inter-AS segment counts as long-haul.
LONG_HAUL_KM = 2500.0

#: Per-corridor (unordered region pair) spread-loss parameters: the
#: probability that a stream crossing one long-haul segment on that
#: corridor sees an always-on *spread* (random) loss component, and a
#: multiplier on the drawn rate.  These encode the paper's measured
#: ordering directly: AP transit is by far the most congested;
#: trans-Atlantic worse than intra-EU/intra-NA; the Oceania corridors
#: worst of all (43% of Sydney→AP transit streams exceeded 0.15% loss).
_EU = WorldRegion.EUROPE
_NA = WorldRegion.NORTH_CENTRAL_AMERICA
_AP = WorldRegion.ASIA_PACIFIC
_OC = WorldRegion.OCEANIA
TRANSIT_PAIR_SPREAD: dict[frozenset, tuple[float, float]] = {
    frozenset({_EU}): (0.045, 1.0),
    frozenset({_NA}): (0.065, 1.0),
    frozenset({_AP}): (0.30, 1.0),
    frozenset({_OC}): (0.18, 1.0),
    frozenset({_EU, _NA}): (0.22, 1.0),
    frozenset({_EU, _AP}): (0.35, 0.8),
    frozenset({_NA, _AP}): (0.26, 1.0),
    frozenset({_OC, _AP}): (0.90, 3.2),
    frozenset({_EU, _OC}): (0.35, 1.0),
    frozenset({_NA, _OC}): (0.32, 1.0),
}
#: Fallback spread probability per congestion unit for unlisted pairs
#: (Middle East / Africa / South America corridors).
TRANSIT_SPREAD_PROB_DEFAULT_PER_CONGESTION = 0.12

#: Log-normal parameters of the spread per-slot loss rate (natural log of
#: loss probability); median ≈ e^-6.9 ≈ 1.0e-3, mean ≈ 2.1e-3.
TRANSIT_SPREAD_LOG_MEAN = -6.9
TRANSIT_SPREAD_LOG_SIGMA = 1.2

#: Rate multiplier by the AS class that owns the segment.  VNS "purchases
#: transit from carefully selected large providers that are known to have
#: well engineered and over provisioned networks" (Sec. 5.1) — LTP-owned
#: trunks are premium; small-transit trunks run hotter.
OWNER_RATE_MULT: dict[ASType, float] = {
    ASType.LTP: 0.5,
    ASType.STP: 1.6,
    ASType.CAHP: 1.3,
    ASType.EC: 1.0,
}

#: Spread rates scale with segment length (longer trunks, more multiplexing
#: stages): ``clamp(km / 8000, DIST_RATE_MIN, DIST_RATE_MAX)``.
DIST_RATE_REF_KM = 8000.0
DIST_RATE_MIN = 0.35
DIST_RATE_MAX = 2.0

#: Sec. 5.2.2: "many operators from AP region are heavily present in the
#: US west coast IXPs" — NA↔AP corridors terminating on the west coast
#: run over dense short peering, discounting their spread probability.
WEST_COAST_LON_THRESHOLD = -100.0
WEST_COAST_DISCOUNT = 0.3

#: Back-to-back 100-packet probe bursts (Sec. 5.2) stress trunk queues
#: far more than paced RTP; transit rates are amplified by this factor
#: for burst probes.  Access bases need no amplification — they are
#: calibrated on the probe scale already.
PROBE_BURST_FACTOR = 8.0

#: Probability per stream of a *short burst* (1–2 lossy slots at high
#: rate; IGP convergence or transient congestion), per congestion unit.
TRANSIT_SHORT_BURST_PROB = 0.03
TRANSIT_SHORT_BURST_RATE = (0.05, 0.8)  # uniform range of in-burst loss

#: Probability per stream of a *long burst* (loss throughout the session;
#: sustained congestion or BGP convergence), per congestion unit.
TRANSIT_LONG_BURST_PROB = 0.004
TRANSIT_LONG_BURST_RATE = (0.01, 0.12)

#: Always-on floor of random loss on any transit segment (per-slot rate).
TRANSIT_FLOOR_RATE = 2.0e-6

# --------------------------------------------------------------------- #
# VNS dedicated L2 links — Sec. 5.1.1
# --------------------------------------------------------------------- #

#: Intra-region (metro/cluster) L2 links: effectively lossless.
VNS_L2_INTRA_SPREAD_PROB = 0.002
VNS_L2_INTRA_RATE = (1.0e-5, 8.0e-5)

#: Long-haul inter-cluster L2 links: "minor loss (<0.01%)" from low-layer
#: multiplexing/queuing.
VNS_L2_LONG_SPREAD_PROB = 0.05
VNS_L2_LONG_RATE = (2.0e-5, 2.5e-4)

# --------------------------------------------------------------------- #
# Jitter — Sec. 5.1.1 ("jitter is sub-10ms in 99% of 1080p streams")
# --------------------------------------------------------------------- #

#: Gamma-distribution shape for per-slot jitter; scale is congestion- and
#: packet-rate-dependent (fewer packets → noisier interarrival estimate,
#: which is why 720p shows more jitter than 1080p).
JITTER_GAMMA_SHAPE = 2.2
JITTER_BASE_SCALE_MS = 0.35
#: Reference packet rate for jitter scaling (1080p ≈ 420 pps).
JITTER_REFERENCE_PPS = 420.0

# --------------------------------------------------------------------- #
# Diurnal profile shapes — Fig. 12
# --------------------------------------------------------------------- #

#: Local business-hours peak (hour, weight) and evening residential peak.
DIURNAL_BUSINESS_PEAK_HOUR = 14.0
DIURNAL_EVENING_PEAK_HOUR = 20.5
DIURNAL_PEAK_WIDTH_H = 3.4

#: Regional amplitude of the diurnal swing (AP strongest — its local cycle
#: even masks remote-destination cycles, Sec. 5.2.3).
DIURNAL_REGION_AMPLITUDE: dict[WorldRegion, float] = {
    WorldRegion.ASIA_PACIFIC: 1.6,
    WorldRegion.EUROPE: 0.9,
    WorldRegion.NORTH_CENTRAL_AMERICA: 0.55,
    WorldRegion.OCEANIA: 0.9,
    WorldRegion.MIDDLE_EAST: 0.9,
    WorldRegion.AFRICA: 0.9,
    WorldRegion.SOUTH_AMERICA: 0.9,
}
