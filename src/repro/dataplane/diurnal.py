"""Diurnal congestion profiles.

Fig. 12 shows clear diurnal loss patterns: loss toward a destination region
peaks during *that region's* business/evening hours — except in AP, whose
local congestion is strong enough to mask remote cycles.  The profile here
is a baseline plus two Gaussian bumps (business hours and residential
evening) in the region's local time, with a region-specific amplitude.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.dataplane.calibration import (
    DIURNAL_BUSINESS_PEAK_HOUR,
    DIURNAL_EVENING_PEAK_HOUR,
    DIURNAL_PEAK_WIDTH_H,
    DIURNAL_REGION_AMPLITUDE,
)
from repro.geo.regions import WorldRegion, cet_to_local_hour
from repro.net.asn import ASType


def _bump(hour: float, centre: float, width: float) -> float:
    """A circular (24 h wrap-around) Gaussian bump, peak value 1."""
    delta = min(abs(hour - centre), 24.0 - abs(hour - centre))
    return math.exp(-0.5 * (delta / width) ** 2)


@dataclass(frozen=True, slots=True)
class DiurnalProfile:
    """A multiplicative congestion factor as a function of local hour.

    ``factor(hour_local)`` is >= ``floor`` and peaks at
    ``floor + amplitude`` around business/evening hours.  The business and
    evening weights let access networks (residential CAHPs) emphasise the
    evening bump while transit emphasises business hours.
    """

    amplitude: float
    business_weight: float = 1.0
    evening_weight: float = 0.7
    floor: float = 0.55

    def factor(self, hour_local: float) -> float:
        """The congestion multiplier at a local hour of day."""
        hour = hour_local % 24.0
        shape = (
            self.business_weight * _bump(hour, DIURNAL_BUSINESS_PEAK_HOUR, DIURNAL_PEAK_WIDTH_H)
            + self.evening_weight * _bump(hour, DIURNAL_EVENING_PEAK_HOUR, DIURNAL_PEAK_WIDTH_H)
        )
        max_shape = self.business_weight + self.evening_weight
        if max_shape <= 0:
            return self.floor
        return self.floor + self.amplitude * shape / max_shape

    def factor_cet(self, hour_cet: float, region: WorldRegion) -> float:
        """The multiplier at a CET hour, converting to the region's time."""
        return self.factor(cet_to_local_hour(hour_cet, region))


def access_profile(region: WorldRegion, as_type: ASType) -> DiurnalProfile:
    """The diurnal profile of last-mile loss in ``region`` for ``as_type``.

    CAHPs (residential) are evening-heavy; LTP backbones business-heavy;
    in AP, LTP loss peaks in local evening too because home users pull
    remote content through transit (Sec. 5.2.3).
    """
    amplitude = DIURNAL_REGION_AMPLITUDE[region]
    if as_type is ASType.CAHP:
        return DiurnalProfile(amplitude=amplitude, business_weight=0.5, evening_weight=1.0)
    if as_type is ASType.EC:
        return DiurnalProfile(amplitude=amplitude, business_weight=1.0, evening_weight=0.25)
    if as_type is ASType.LTP and region is WorldRegion.ASIA_PACIFIC:
        return DiurnalProfile(amplitude=amplitude, business_weight=0.45, evening_weight=1.0)
    if as_type is ASType.LTP:
        return DiurnalProfile(amplitude=amplitude * 0.8, business_weight=1.0, evening_weight=0.5)
    return DiurnalProfile(amplitude=amplitude, business_weight=1.0, evening_weight=0.6)


def transit_profile(region: WorldRegion) -> DiurnalProfile:
    """The diurnal profile of transit congestion anchored in ``region``."""
    amplitude = DIURNAL_REGION_AMPLITUDE[region]
    return DiurnalProfile(amplitude=amplitude * 0.8, business_weight=1.0, evening_weight=0.6)
