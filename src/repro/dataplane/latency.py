"""Propagation delay from geography."""

from __future__ import annotations

from collections.abc import Sequence

from repro.dataplane.calibration import FIBER_MS_PER_KM, TRANSIT_PATH_INFLATION
from repro.geo.coords import GeoPoint, great_circle_km


def propagation_delay_ms(
    distance_km: float, inflation: float = TRANSIT_PATH_INFLATION
) -> float:
    """One-way propagation delay over ``distance_km`` of (inflated) fibre.

    Raises
    ------
    ValueError
        For negative distance or inflation below 1.
    """
    if distance_km < 0:
        raise ValueError(f"distance must be non-negative, got {distance_km!r}")
    if inflation < 1.0:
        raise ValueError(f"inflation must be >= 1, got {inflation!r}")
    return distance_km * FIBER_MS_PER_KM * inflation


def path_propagation_ms(
    waypoints: Sequence[GeoPoint], inflation: float = TRANSIT_PATH_INFLATION
) -> float:
    """One-way propagation delay along a polyline of waypoints."""
    total = 0.0
    for a, b in zip(waypoints, waypoints[1:]):
        total += propagation_delay_ms(great_circle_km(a, b), inflation)
    return total
