"""Packet-loss models.

Three layers:

* :class:`BernoulliLoss` — independent (random) loss; what FEC handles.
* :class:`GilbertElliottLoss` — the classic two-state bursty-loss chain
  the paper's related work invokes ("loss in the Internet generally
  exhibits temporal dependency"); used by the per-packet simulator.
* :func:`congestion_loss_probability` — maps link utilisation to a loss
  probability with a knee, used to couple diurnal congestion to loss.
"""

from __future__ import annotations

import abc

import numpy as np


class LossModel(abc.ABC):
    """Per-packet loss process."""

    @abc.abstractmethod
    def sample(self, n_packets: int, rng: np.random.Generator) -> np.ndarray:
        """Boolean array of length ``n_packets``; True = lost."""

    def loss_count(self, n_packets: int, rng: np.random.Generator) -> int:
        """Number of lost packets out of ``n_packets``."""
        return int(self.sample(n_packets, rng).sum())


class BernoulliLoss(LossModel):
    """Independent loss with fixed probability."""

    def __init__(self, p: float) -> None:
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"loss probability must be in [0, 1], got {p!r}")
        self.p = p

    def sample(self, n_packets: int, rng: np.random.Generator) -> np.ndarray:
        if n_packets < 0:
            raise ValueError(f"n_packets must be non-negative, got {n_packets!r}")
        if self.p == 0.0:
            return np.zeros(n_packets, dtype=bool)
        return rng.random(n_packets) < self.p

    def loss_count(self, n_packets: int, rng: np.random.Generator) -> int:
        # Binomial shortcut avoids materialising the per-packet array.
        if n_packets < 0:
            raise ValueError(f"n_packets must be non-negative, got {n_packets!r}")
        return int(rng.binomial(n_packets, self.p))

    def mean_loss(self) -> float:
        """Expected loss fraction."""
        return self.p


class GilbertElliottLoss(LossModel):
    """Two-state Markov loss: a Good state and a Bad (bursty) state.

    Parameters
    ----------
    p_gb:
        Transition probability Good → Bad per packet.
    p_bg:
        Transition probability Bad → Good per packet.
    loss_good:
        Loss probability while in the Good state.
    loss_bad:
        Loss probability while in the Bad state.
    """

    def __init__(
        self,
        p_gb: float,
        p_bg: float,
        loss_good: float = 0.0,
        loss_bad: float = 0.5,
    ) -> None:
        for name, value in (
            ("p_gb", p_gb),
            ("p_bg", p_bg),
            ("loss_good", loss_good),
            ("loss_bad", loss_bad),
        ):
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value!r}")
        self.p_gb = p_gb
        self.p_bg = p_bg
        self.loss_good = loss_good
        self.loss_bad = loss_bad

    def stationary_bad(self) -> float:
        """Stationary probability of being in the Bad state."""
        denom = self.p_gb + self.p_bg
        if denom == 0.0:
            return 0.0
        return self.p_gb / denom

    def mean_loss(self) -> float:
        """Expected long-run loss fraction."""
        pi_bad = self.stationary_bad()
        return pi_bad * self.loss_bad + (1.0 - pi_bad) * self.loss_good

    def expected_burst_length(self) -> float:
        """Mean sojourn (packets) in the Bad state."""
        if self.p_bg == 0.0:
            return float("inf")
        return 1.0 / self.p_bg

    def sample(self, n_packets: int, rng: np.random.Generator) -> np.ndarray:
        """Simulate the chain packet by packet (vectorised in blocks)."""
        if n_packets < 0:
            raise ValueError(f"n_packets must be non-negative, got {n_packets!r}")
        lost = np.zeros(n_packets, dtype=bool)
        if n_packets == 0:
            return lost
        # Start in the stationary distribution.
        in_bad = bool(rng.random() < self.stationary_bad())
        uniforms = rng.random(n_packets)
        transitions = rng.random(n_packets)
        for i in range(n_packets):
            p_loss = self.loss_bad if in_bad else self.loss_good
            lost[i] = uniforms[i] < p_loss
            if in_bad:
                if transitions[i] < self.p_bg:
                    in_bad = False
            elif transitions[i] < self.p_gb:
                in_bad = True
        return lost


def congestion_loss_probability(
    utilization: float, knee: float = 0.82, steepness: float = 0.08
) -> float:
    """Loss probability of a queue at a given utilisation.

    Below the ``knee`` the queue absorbs bursts and loss is negligible;
    above it, loss rises quadratically, saturating at 1.  This is the
    standard M/M/1-with-finite-buffer shape reduced to two parameters.

    Raises
    ------
    ValueError
        For negative utilisation.
    """
    if utilization < 0:
        raise ValueError(f"utilization must be non-negative, got {utilization!r}")
    if utilization <= knee:
        return 0.0
    overload = utilization - knee
    return min(1.0, steepness * overload * overload / ((1.0 - knee) ** 2))
