"""Forwarding paths: assembling segments from control-plane decisions.

Given an AS-level path (from :mod:`repro.bgp.propagation`) and the
geography of every AS's presence points, this module lays out concrete
waypoints: traffic enters each transit AS at the presence point nearest to
where it currently is, is carried to the presence point nearest to the
destination (transit networks do carry traffic; their hot-potato economics
are already captured by *which* AS path was selected), and finally crosses
the destination's access network.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field
from functools import lru_cache

from repro.dataplane.link import PathSegment, SegmentKind
from repro.geo.coords import GeoPoint
from repro.net.asn import ASType
from repro.net.topology import InternetTopology


@dataclass(slots=True)
class DataPath:
    """An ordered list of segments between two endpoints."""

    segments: list[PathSegment]
    description: str = ""
    #: lazily-computed RTT (segments are fixed after construction; both
    #: the resolve and simulate phases ask for the same path's RTT).
    _rtt_ms: float | None = field(default=None, repr=False, compare=False)

    def one_way_delay_ms(self) -> float:
        """Total one-way delay."""
        return sum(segment.delay_ms() for segment in self.segments)

    def rtt_ms(self) -> float:
        """Round-trip time assuming a symmetric reverse path (memoised)."""
        rtt = self._rtt_ms
        if rtt is None:
            rtt = self._rtt_ms = 2.0 * self.one_way_delay_ms()
        return rtt

    def total_distance_km(self) -> float:
        """Sum of segment great-circle distances."""
        return sum(segment.distance_km for segment in self.segments)

    def __len__(self) -> int:
        return len(self.segments)

    def __iter__(self):
        return iter(self.segments)

    def concat(self, other: "DataPath") -> "DataPath":
        """This path followed by ``other`` (e.g. VNS leg + Internet leg)."""
        return DataPath(
            segments=self.segments + other.segments,
            description=f"{self.description}+{other.description}",
        )

    def __str__(self) -> str:
        inner = " | ".join(str(segment) for segment in self.segments)
        return f"DataPath({self.description}: {inner})"


@lru_cache(maxsize=None)
def _as_at(asn: int, city_name: str) -> str:
    """Memoised ``AS<n>@<city>`` waypoint label — a tiny, heavily reused set."""
    return f"AS{asn}@{city_name}"


def assemble_as_path_waypoints(
    topology: InternetTopology,
    as_path: Sequence[int],
    start: GeoPoint,
    destination: GeoPoint,
) -> list[tuple[GeoPoint, str]]:
    """Waypoints through the ASes of ``as_path``.

    For each AS: enter at the presence point nearest the current location,
    exit at the presence point nearest the destination (dropped when it is
    the same site).  Returns ``(location, label, owner AS type)`` tuples,
    excluding the start and final destination points.

    Raises
    ------
    KeyError
        If an AS on the path is unknown to the topology.
    """
    waypoints: list[tuple[GeoPoint, str, ASType]] = []
    current = start
    for asn in as_path:
        system = topology.autonomous_system(asn)
        entry = system.nearest_presence(current)
        waypoints.append((entry.location, _as_at(asn, entry.city.name), system.as_type))
        exit_point = system.nearest_presence(destination)
        if exit_point.city.name != entry.city.name:
            waypoints.append(
                (exit_point.location, _as_at(asn, exit_point.city.name), system.as_type)
            )
        current = exit_point.location
    return waypoints


def internet_path(
    topology: InternetTopology,
    as_path: Sequence[int],
    start: GeoPoint,
    destination: GeoPoint,
    *,
    destination_as_type: ASType | None = None,
    first_segment_kind: SegmentKind = SegmentKind.PEERING,
    final_access: bool = True,
    description: str = "",
) -> DataPath:
    """A concrete path along ``as_path`` from ``start`` to ``destination``.

    ``first_segment_kind`` describes the hop from ``start`` into the first
    AS: ``PEERING`` when the start is a router handing off at an exchange
    (VNS egress), ``ACCESS`` when the start is an end host behind its
    provider.  The final hop into ``destination`` is an ACCESS segment
    typed with ``destination_as_type`` — unless ``final_access`` is false,
    for destinations that are themselves infrastructure (e.g. the echo
    servers co-located in VNS PoPs in the Sec. 5.1 video experiment,
    which measures the long haul *without* a last mile).
    """
    waypoints = assemble_as_path_waypoints(topology, as_path, start, destination)
    segments: list[PathSegment] = []
    current, current_label = start, "start"
    last_owner: ASType | None = None
    for location, label, owner in waypoints:
        kind = first_segment_kind if not segments else SegmentKind.TRANSIT
        segments.append(
            PathSegment(
                kind=kind,
                start=current,
                end=location,
                owner_type=owner,
                label=f"{current_label}->{label}",
            )
        )
        current, current_label, last_owner = location, label, owner
    final_kind = SegmentKind.ACCESS if final_access else SegmentKind.TRANSIT
    segments.append(
        PathSegment(
            kind=final_kind,
            start=current,
            end=destination,
            as_type=destination_as_type if final_access else None,
            owner_type=None if final_access else last_owner,
            label=f"{current_label}->dst",
        )
    )
    return DataPath(segments=segments, description=description)


def access_path(
    start: GeoPoint,
    destination: GeoPoint,
    as_type: ASType | None = None,
    description: str = "access",
) -> DataPath:
    """A pure last-mile path (source and destination in the same AS)."""
    return DataPath(
        segments=[
            PathSegment(
                kind=SegmentKind.ACCESS,
                start=start,
                end=destination,
                as_type=as_type,
                label="direct",
            )
        ],
        description=description,
    )
