"""Campaign-level columnar stream simulation (struct-of-arrays kernel).

:func:`~repro.dataplane.transmit.simulate_stream_batch` vectorises *one*
path signature at a time, but a realistic campaign has ~1 call per
signature (``largest_batch: 3`` in ``BENCH_workload.json``), so the
engine still made one Python round-trip per group and the simulate phase
ate 96% of the campaign.  This module simulates **every stream of every
group in one shot**: calls are gathered into per-``n_slots`` buckets and
pushed through a handful of wide numpy passes over ``(streams, slots)``
arrays — per-segment-kind rate sampling, survival-product combination,
binomial slot losses, and gamma jitter with its p95 reduction.

Two properties make this safe to drop into the campaign engine:

**Determinism is counter-based, not sequential.**  The scalar and
grouped paths draw from a stateful per-group generator, so their results
depend on draw *order*.  Here every uniform is a pure function of
``(group digest, transport salt, stream index, purpose, slot)``, hashed
through a splitmix64-style finalizer.  Results are therefore bit-identical
no matter how specs are ordered, how rows are chunked across passes, or
which other groups share a pass — which is exactly what the
sequential-vs-sharded byte-identity contract needs (sharding never
splits a group, so every process sees the same per-stream keys).

**Distributions are inverted, not approximated.**  Each uniform is
mapped through the exact inverse CDF of the distribution the scalar
oracle draws from — lognormals via ``exp(mu + sigma * ndtri(u))``, gamma
jitter via ``gammaincinv``, slot losses via binomial quantile inversion
— so every stream is distributed exactly as one
:func:`~repro.dataplane.transmit.simulate_stream` call over the same
path.  ``simulate_stream`` stays the distribution-identity oracle (the
``assign_geo_preference_reference`` pattern); the identity tests live in
``tests/dataplane/test_columnar.py``.  The hot quantile functions run
through dense interpolation tables over the body of the distribution
(exact scipy evaluations for the outer 1/256 tails), with grid error
orders of magnitude below what any campaign statistic can resolve.

Requires scipy (already a repo dependency via the measurement stack);
:func:`available` lets callers gate on it and fall back to the grouped
path.
"""

from __future__ import annotations

from typing import NamedTuple

import numpy as np

try:  # pragma: no cover - exercised implicitly on import
    from scipy import special as _special
    from scipy import stats as _scipy_stats

    HAVE_SCIPY = True
except ImportError:  # pragma: no cover - CI image ships scipy
    _special = None
    _scipy_stats = None
    HAVE_SCIPY = False

from repro.dataplane import calibration as cal
from repro.dataplane.link import SegmentKind, SegmentLossParams
from repro.dataplane.path import DataPath
from repro.dataplane.transmit import (
    StreamResult,
    _jitter_scale_from_traits,
    _stream_shape,
)

__all__ = ["StreamColumnSpec", "simulate_stream_columns", "available"]


def available() -> bool:
    """Whether the columnar kernel can run (scipy importable)."""
    return HAVE_SCIPY




# --------------------------------------------------------------------- #
# counter-based uniforms
# --------------------------------------------------------------------- #
#
# splitmix64: walk a weyl sequence from a key, avalanche with the
# standard finalizer.  Every draw site below owns a distinct ``purpose``
# tag (and, for per-cell draws, the slot index), so no two logical draws
# ever share a counter.

_M64 = np.uint64(0xFFFFFFFFFFFFFFFF)
_GOLDEN = np.uint64(0x9E3779B97F4A7C15)
_MIX_A = np.uint64(0xBF58476D1CE4E5B9)
_MIX_B = np.uint64(0x94D049BB133111EB)

#: purpose tags — one per logical draw site of the loss/jitter model.
_P_ACCESS_EPISODE = 1
_P_ACCESS_RATE = 2
_P_SPREAD_OCC = 3
_P_SPREAD_RATE = 4
_P_SHORT_OCC = 5
_P_SHORT_RATE = 6
_P_SHORT_COUNT = 7
_P_SHORT_SLOT_A = 8
_P_SHORT_SLOT_B = 9
_P_LONG_OCC = 10
_P_LONG_RATE = 11
_P_VNS_OCC = 12
_P_VNS_RATE = 13
#: stream-level draws (no segment layer): keep purposes disjoint anyway.
_P_BINOMIAL = 14
_P_JITTER = 15
_PURPOSE_SPAN = 32  # > max purpose tag; layer j owns [j*32, (j+1)*32)


def _mix64(x: np.ndarray) -> np.ndarray:
    """The splitmix64 finalizer over a uint64 array (wrapping arithmetic)."""
    with np.errstate(over="ignore"):
        x = (x ^ (x >> np.uint64(30))) * _MIX_A
        x = (x ^ (x >> np.uint64(27))) * _MIX_B
        return x ^ (x >> np.uint64(31))


def _to_unit(z: np.ndarray) -> np.ndarray:
    """uint64 -> float64 uniform on the *open* interval (0, 1)."""
    return ((z >> np.uint64(11)).astype(np.float64) + 0.5) * (2.0**-53)


def _stream_keys(digest: tuple[int, int], salt: int, start: int, stop: int) -> np.ndarray:
    """One pseudo-random 64-bit key per stream of a spec slice.

    ``digest`` is the group's blake2b-128 split into two words — the same
    bytes :func:`repro.workload.engine.group_rng` seeds from — so the
    keyspace inherits the campaign's ``(seed, group signature)`` keying.
    ``salt`` separates transports sharing a group (vns / internet /
    detour): the baseline transports' draws are independent of whether a
    detour batch exists at all.
    """
    d0, d1 = digest
    with np.errstate(over="ignore"):
        base = _mix64(
            np.uint64(d0 & 0xFFFFFFFFFFFFFFFF)
            + np.uint64(salt & 0xFFFFFFFF) * _GOLDEN
        )
        idx = np.arange(start, stop, dtype=np.uint64)
        return _mix64(idx * _GOLDEN + np.uint64(d1 & 0xFFFFFFFFFFFFFFFF)) ^ base


def _draw(keys: np.ndarray, layer: int, purpose: int) -> np.ndarray:
    """One per-stream uniform: shape ``(len(keys),)``."""
    counter = np.uint64((layer * _PURPOSE_SPAN + purpose) << 32)
    with np.errstate(over="ignore"):
        return _to_unit(_mix64(keys + counter * _GOLDEN))


def _draw_slots(keys: np.ndarray, layer: int, purpose: int, n_slots: int) -> np.ndarray:
    """Per-cell uniforms: shape ``(len(keys), n_slots)``."""
    base = (layer * _PURPOSE_SPAN + purpose) << 32
    counters = np.uint64(base) + np.arange(n_slots, dtype=np.uint64)
    with np.errstate(over="ignore"):
        return _to_unit(_mix64(keys[:, None] + counters[None, :] * _GOLDEN))


# --------------------------------------------------------------------- #
# inverse-CDF samplers
# --------------------------------------------------------------------- #

_TAIL_P = 1.0 / 256.0
_TABLE_N = 16384


class _QuantileTable:
    """Dense linear-interpolation table for a quantile function's body.

    Exact evaluations outside ``[lo, hi]`` (the distribution tails, where
    quantiles curve fastest and samples are rarest).  With 16384 grid
    cells over the central 99.2% the interpolation error is ~1e-5 in
    quantile units — invisible to any moment or KS statistic at campaign
    sample sizes, while cutting the scipy special-function cost by ~100×.
    """

    __slots__ = ("lo", "hi", "inv_h", "values", "exact")

    def __init__(self, exact, lo: float = _TAIL_P, hi: float = 1.0 - _TAIL_P) -> None:
        self.lo = lo
        self.hi = hi
        self.inv_h = _TABLE_N / (hi - lo)
        self.values = np.asarray(exact(np.linspace(lo, hi, _TABLE_N + 1)))
        self.exact = exact

    def __call__(self, u: np.ndarray) -> np.ndarray:
        u = np.asarray(u, dtype=np.float64)
        out = np.empty(u.shape)
        body = (u >= self.lo) & (u <= self.hi)
        ub = u[body]
        t = (ub - self.lo) * self.inv_h
        i = t.astype(np.int64)
        np.minimum(i, _TABLE_N - 1, out=i)
        f = t - i
        v = self.values
        out[body] = v[i] * (1.0 - f) + v[i + 1] * f
        tail = ~body
        if tail.any():
            out[tail] = self.exact(u[tail])
        return out


_tables: dict[object, _QuantileTable] = {}


def _ndtri(u: np.ndarray) -> np.ndarray:
    """Standard-normal quantile (body via table, tails exact)."""
    table = _tables.get("ndtri")
    if table is None:
        table = _tables["ndtri"] = _QuantileTable(_special.ndtri)
    return table(u)


def _gamma_quantile(u: np.ndarray, shape: float) -> np.ndarray:
    """Unit-scale gamma quantile for a fixed shape."""
    key = ("gamma", shape)
    table = _tables.get(key)
    if table is None:
        table = _tables[key] = _QuantileTable(
            lambda grid: _special.gammaincinv(shape, grid)
        )
    return table(u)


#: mean n*p above which stepwise binomial-quantile recursion loses to
#: scipy's ``binom.ppf`` (iterations grow with the mean).
_BINOM_STEPWISE_MAX_MEAN = 64.0
_BINOM_STEPWISE_MAX_ITERS = 512


def _binom_quantile(u: np.ndarray, n: np.ndarray, p: np.ndarray) -> np.ndarray:
    """Vectorised binomial quantile: ``min {k : P(X <= k) >= u}``.

    Three regimes, exact in distribution in all of them:

    * ``u <= (1-p)^n`` — the overwhelmingly common no-loss cell — answers
      0 straight from one ``exp``/``log1p`` pass;
    * small mean: walk the pmf recursion
      ``pmf(k+1) = pmf(k) * (n-k)/(k+1) * p/(1-p)`` over the shrinking
      set of unresolved cells (a dozen tiny vector iterations);
    * large mean (rare burst cells): ``scipy.stats.binom.ppf``.
    """
    u = np.asarray(u, dtype=np.float64)
    n = np.asarray(n, dtype=np.int64)
    p = np.asarray(p, dtype=np.float64)
    k_out = np.zeros(u.shape, dtype=np.int64)
    with np.errstate(divide="ignore"):
        log_q = np.log1p(-p)
    p_zero = np.exp(n * log_q)
    need = np.nonzero(u > p_zero)[0]
    if need.size == 0:
        return k_out
    ui, ni, pi = u[need], n[need], p[need]
    mean = ni * pi
    small = mean <= _BINOM_STEPWISE_MAX_MEAN
    if small.any():
        idx = need[small]
        k_out[idx] = _binom_stepwise(u[idx], n[idx], p[idx])
    large = ~small
    if large.any():
        idx = need[large]
        k_out[idx] = _scipy_stats.binom.ppf(ui[large], ni[large], pi[large]).astype(
            np.int64
        )
    return k_out


def _binom_stepwise(u: np.ndarray, n: np.ndarray, p: np.ndarray) -> np.ndarray:
    """pmf-recursion quantile walk; all inputs already have ``u > (1-p)^n``."""
    q = 1.0 - p
    pmf = np.exp(n * np.log1p(-p))
    cdf = pmf.copy()
    ratio = p / q
    k = np.zeros(u.shape, dtype=np.int64)
    active = np.arange(u.size)
    step = 0
    while active.size and step < _BINOM_STEPWISE_MAX_ITERS:
        pmf_a = pmf[active] * ((n[active] - step) / (step + 1.0)) * ratio[active]
        cdf_a = cdf[active] + pmf_a
        pmf[active] = pmf_a
        cdf[active] = cdf_a
        step += 1
        k[active] = step
        active = active[u[active] > cdf_a]
    if active.size:  # pragma: no cover - numerically unreachable backstop
        k[active] = _scipy_stats.binom.ppf(u[active], n[active], p[active]).astype(
            np.int64
        )
    return k


# --------------------------------------------------------------------- #
# the kernel
# --------------------------------------------------------------------- #


class StreamColumnSpec(NamedTuple):
    """One homogeneous column of streams: a (group, transport) batch.

    ``digest`` is the group's 128-bit signature split into two 64-bit
    words (:func:`repro.workload.engine.group_digest`); ``salt`` tags the
    transport within the group.  Together with a stream's index they key
    every random draw — see the module docstring.
    """

    path: DataPath
    n_streams: int
    duration_s: float
    hour_cet: float
    digest: tuple[int, int]
    salt: int = 0


class _SpecState(NamedTuple):
    """Per-spec precomputation shared by every chunk the spec lands in."""

    params: list[SegmentLossParams]
    n_slots: int
    packets_per_slot: int
    final_packets: int
    packets_sent: int
    rtt_ms: float
    jitter_scale: float
    digest: tuple[int, int]
    salt: int


def simulate_stream_columns(
    specs: list[StreamColumnSpec],
    *,
    packets_per_second: float = 420.0,
    slot_s: float = 5.0,
    max_rows_per_pass: int = 65536,
) -> list[list[StreamResult]]:
    """Simulate every stream of every spec; one result list per spec.

    Specs are bucketed by slot count (the campaign's quantized durations
    make these buckets huge) and processed in row chunks of at most
    ``max_rows_per_pass`` streams; neither the bucketing nor the chunk
    boundary affects any result (counter-based draws).

    Raises
    ------
    RuntimeError
        If scipy is unavailable (see :func:`available`).
    ValueError
        For non-positive stream counts, durations, packet rates or slot
        lengths, and for sub-packet-rate streams.
    """
    if not HAVE_SCIPY:  # pragma: no cover - CI image ships scipy
        raise RuntimeError(
            "the columnar kernel needs scipy for inverse-CDF sampling; "
            "use simulate_stream_batch (kernel='grouped') instead"
        )
    if packets_per_second <= 0 or slot_s <= 0:
        raise ValueError("packet rate and slot length must be positive")
    if max_rows_per_pass < 1:
        raise ValueError(f"max_rows_per_pass must be >= 1, got {max_rows_per_pass!r}")
    out: list[list[StreamResult]] = [[] for _ in specs]
    if not specs:
        return out

    # Per-invocation caches, keyed by path identity — ``specs`` keeps
    # every path alive for the whole invocation, so ids are stable, and
    # identity lookups skip deep dataclass hashing.  Per-segment
    # parameter resolution is memoised by value inside
    # :meth:`PathSegment.loss_params` (paths do not share segment
    # objects, but thousands of paths cross value-equal segments).
    path_cache: dict[tuple[int, float], list[SegmentLossParams]] = {}
    # Jitter traits (kind, long-haul) are hour-independent: key by path.
    scale_cache: dict[int, float] = {}
    states: list[_SpecState] = []
    buckets: dict[int, list[int]] = {}
    for index, spec in enumerate(specs):
        if spec.n_streams <= 0:
            raise ValueError(f"n_streams must be positive, got {spec.n_streams!r}")
        if spec.duration_s <= 0:
            raise ValueError(f"duration_s must be positive, got {spec.duration_s!r}")
        n_slots, packets_per_slot, final_packets = _stream_shape(
            spec.duration_s, packets_per_second, slot_s
        )
        path_id = id(spec.path)
        path_key = (path_id, spec.hour_cet)
        params = path_cache.get(path_key)
        if params is None:
            params = [
                segment.loss_params(spec.hour_cet) for segment in spec.path.segments
            ]
            path_cache[path_key] = params
        scale = scale_cache.get(path_id)
        if scale is None:
            scale = _jitter_scale_from_traits(
                ((p.kind, p.long_haul) for p in params), packets_per_second
            )
            scale_cache[path_id] = scale
        states.append(
            _SpecState(
                params=params,
                n_slots=n_slots,
                packets_per_slot=packets_per_slot,
                final_packets=final_packets,
                packets_sent=packets_per_slot * (n_slots - 1) + final_packets,
                rtt_ms=spec.path.rtt_ms(),
                jitter_scale=scale,
                digest=spec.digest,
                salt=spec.salt,
            )
        )
        out[index] = [None] * spec.n_streams  # type: ignore[list-item]
        buckets.setdefault(n_slots, []).append(index)

    for n_slots in sorted(buckets):
        # Split the bucket into row runs of at most max_rows_per_pass
        # streams; a spec larger than the cap spans several chunks.
        chunk: list[tuple[int, int, int]] = []  # (spec index, start, stop)
        rows = 0
        for index in buckets[n_slots]:
            start = 0
            remaining = specs[index].n_streams
            while remaining:
                take = min(remaining, max_rows_per_pass - rows)
                chunk.append((index, start, start + take))
                start += take
                remaining -= take
                rows += take
                if rows == max_rows_per_pass:
                    _simulate_chunk(chunk, n_slots, states, out)
                    chunk, rows = [], 0
        if chunk:
            _simulate_chunk(chunk, n_slots, states, out)
    return out


def _repeat(values: list[float], lens: np.ndarray) -> np.ndarray:
    """Broadcast one per-run value across that run's rows."""
    return np.repeat(np.asarray(values, dtype=np.float64), lens)


def _group_rows(run_starts: np.ndarray, run_lens: np.ndarray) -> np.ndarray:
    """Concatenated ``arange(start, start + len)`` per run, vectorised.

    Equivalent to ``np.concatenate([np.arange(s, s + l) ...])`` without
    materialising thousands of tiny arrays (campaign runs average ~1 row).
    """
    total = int(run_lens.sum())
    shift = run_starts - (np.cumsum(run_lens) - run_lens)
    return np.repeat(shift, run_lens) + np.arange(total, dtype=np.int64)


def _apply_extra(rates: np.ndarray, extras: np.ndarray) -> np.ndarray:
    """Degraded-segment impairment: add after the stochastic draw, clip."""
    if not np.any(extras > 0.0):
        return rates
    e = extras[:, None]
    return np.where(e > 0.0, np.clip(rates + e, 0.0, 0.95), rates)


def _simulate_chunk(
    chunk: list[tuple[int, int, int]],
    n_slots: int,
    states: list[_SpecState],
    out: list[list[StreamResult]],
) -> None:
    """Simulate one ``(rows, n_slots)`` pass and scatter the results."""
    lens = np.array([stop - start for _, start, stop in chunk], dtype=np.int64)
    offsets = np.concatenate(([0], np.cumsum(lens)))
    m = int(offsets[-1])
    # Per-stream keys, vectorised across runs — bit-identical to calling
    # _stream_keys(digest, salt, start, stop) per run and concatenating.
    mask64 = 0xFFFFFFFFFFFFFFFF
    d0s = np.array([states[i].digest[0] & mask64 for i, _, _ in chunk], dtype=np.uint64)
    d1s = np.array([states[i].digest[1] & mask64 for i, _, _ in chunk], dtype=np.uint64)
    salts = np.array([states[i].salt & 0xFFFFFFFF for i, _, _ in chunk], dtype=np.uint64)
    starts = np.array([start for _, start, _ in chunk], dtype=np.int64)
    with np.errstate(over="ignore"):
        base = _mix64(d0s + salts * _GOLDEN)
        idx = _group_rows(starts, lens).astype(np.uint64)
        keys = _mix64(idx * _GOLDEN + np.repeat(d1s, lens)) ^ np.repeat(base, lens)
    survival = np.ones((m, n_slots))
    run_starts = offsets[:-1]
    max_layers = max(len(states[index].params) for index, _, _ in chunk)
    for layer in range(max_layers):
        by_kind: dict[SegmentKind, list[int]] = {}
        for run, (index, _, _) in enumerate(chunk):
            params = states[index].params
            if layer < len(params):
                by_kind.setdefault(params[layer].kind, []).append(run)
        for kind, runs in by_kind.items():
            if kind is SegmentKind.PEERING and all(
                states[chunk[run][0]].params[layer].extra_loss == 0.0 for run in runs
            ):
                continue  # loss-free hand-off: survival unchanged
            run_lens = lens[runs]
            rows = _group_rows(run_starts[runs], run_lens)
            run_params = [states[chunk[run][0]].params[layer] for run in runs]
            sub_keys = keys[rows]
            if kind is SegmentKind.ACCESS:
                rates = _access_rates(sub_keys, layer, n_slots, run_params, run_lens)
            elif kind is SegmentKind.TRANSIT:
                rates = _transit_rates(sub_keys, layer, n_slots, run_params, run_lens)
            elif kind is SegmentKind.VNS_L2:
                rates = _vns_rates(sub_keys, layer, n_slots, run_params, run_lens)
            else:
                rates = np.zeros((rows.size, n_slots))
            rates = _apply_extra(rates, _repeat([p.extra_loss for p in run_params], run_lens))
            survival[rows] *= 1.0 - rates
    rates = 1.0 - survival

    packets = np.full(
        (m, n_slots),
        states[chunk[0][0]].packets_per_slot,
        dtype=np.int64,
    )
    packets[:, -1] = np.repeat(
        [states[index].final_packets for index, _, _ in chunk], lens
    )
    u_binom = _draw_slots(keys, 0, _P_BINOMIAL, n_slots)
    losses = _binom_quantile(u_binom.ravel(), packets.ravel(), rates.ravel()).reshape(
        m, n_slots
    )

    u_jitter = _draw_slots(keys, 0, _P_JITTER, n_slots)
    scale = _repeat([states[index].jitter_scale for index, _, _ in chunk], lens)
    jitter = _gamma_quantile(u_jitter, cal.JITTER_GAMMA_SHAPE) * scale[:, None]
    jitter *= 1.0 + 40.0 * rates
    jitter_p95 = np.percentile(jitter, 95, axis=1)

    row = 0
    for index, start, stop in chunk:
        state = states[index]
        results = out[index]
        for stream in range(start, stop):
            results[stream] = StreamResult(
                packets_sent=state.packets_sent,
                slot_losses=losses[row],
                jitter_p95_ms=float(jitter_p95[row]),
                rtt_ms=state.rtt_ms,
            )
            row += 1


# --------------------------------------------------------------------- #
# per-kind rate columns (each mirrors one PathSegment sampler exactly)
# --------------------------------------------------------------------- #


def _access_rates(
    keys: np.ndarray,
    layer: int,
    n_slots: int,
    run_params: list[SegmentLossParams],
    run_lens: np.ndarray,
) -> np.ndarray:
    """Episodic access loss — mirrors ``PathSegment._access_rates``."""
    occurrence = _repeat([p.occurrence for p in run_params], run_lens)[:, None]
    mean_rate = _repeat([p.mean_rate for p in run_params], run_lens)[:, None]
    episodes = _draw_slots(keys, layer, _P_ACCESS_EPISODE, n_slots) < occurrence
    rates = np.zeros(episodes.shape)
    if episodes.any():
        sigma = cal.ACCESS_EPISODE_SIGMA
        u = _draw_slots(keys, layer, _P_ACCESS_RATE, n_slots)[episodes]
        draws = np.exp(-0.5 * sigma * sigma + sigma * _ndtri(u))
        rates[episodes] = np.clip(
            np.broadcast_to(mean_rate, episodes.shape)[episodes] * draws, 0.0, 0.5
        )
    return rates


def _transit_rates(
    keys: np.ndarray,
    layer: int,
    n_slots: int,
    run_params: list[SegmentLossParams],
    run_lens: np.ndarray,
) -> np.ndarray:
    """Floor + spread + bursts — mirrors ``PathSegment._transit_rates``.

    Burst exposure matches the scalar default observation window of
    ``5.0 * n_slots`` seconds (the samplers' calibration window, not the
    call's wall-clock duration).
    """
    rates = np.full((keys.size, n_slots), cal.TRANSIT_FLOOR_RATE)
    long_haul = np.repeat([p.long_haul for p in run_params], run_lens)
    if long_haul.any():
        lh_rows = np.nonzero(long_haul)[0]
        spread_prob = _repeat([p.spread_prob for p in run_params], run_lens)[lh_rows]
        occ = _draw(keys[lh_rows], layer, _P_SPREAD_OCC) < spread_prob
        if occ.any():
            hit = lh_rows[occ]
            mult = _repeat([p.rate_mult for p in run_params], run_lens)[hit]
            u = _draw(keys[hit], layer, _P_SPREAD_RATE)
            draws = np.exp(
                cal.TRANSIT_SPREAD_LOG_MEAN + cal.TRANSIT_SPREAD_LOG_SIGMA * _ndtri(u)
            )
            rates[hit] += np.minimum(draws * mult, 0.05)[:, None]
    exposure = (5.0 * n_slots) / 120.0
    burst_scale = _repeat([p.burst_scale_120s for p in run_params], run_lens) * exposure

    short = (
        _draw(keys, layer, _P_SHORT_OCC) < cal.TRANSIT_SHORT_BURST_PROB * burst_scale
    )
    if short.any():
        rows = np.nonzero(short)[0]
        lo, hi = cal.TRANSIT_SHORT_BURST_RATE
        burst_rate = lo + (hi - lo) * _draw(keys[rows], layer, _P_SHORT_RATE)
        # rng.integers(1, 3) slots, placed without replacement: the second
        # slot is uniform over the n_slots - 1 others (shift past the first).
        n_burst = 1 + (2.0 * _draw(keys[rows], layer, _P_SHORT_COUNT)).astype(np.int64)
        first = (n_slots * _draw(keys[rows], layer, _P_SHORT_SLOT_A)).astype(np.int64)
        np.minimum(first, n_slots - 1, out=first)
        rates[rows, first] += burst_rate
        if n_slots >= 2:
            two = n_burst >= 2
            if two.any():
                rows2 = rows[two]
                second = (
                    (n_slots - 1) * _draw(keys[rows2], layer, _P_SHORT_SLOT_B)
                ).astype(np.int64)
                np.minimum(second, n_slots - 2, out=second)
                second += second >= first[two]
                rates[rows2, second] += burst_rate[two]

    long = _draw(keys, layer, _P_LONG_OCC) < cal.TRANSIT_LONG_BURST_PROB * burst_scale
    if long.any():
        rows = np.nonzero(long)[0]
        lo, hi = cal.TRANSIT_LONG_BURST_RATE
        rates[rows] += (lo + (hi - lo) * _draw(keys[rows], layer, _P_LONG_RATE))[:, None]
    return np.clip(rates, 0.0, 0.95)


def _vns_rates(
    keys: np.ndarray,
    layer: int,
    n_slots: int,
    run_params: list[SegmentLossParams],
    run_lens: np.ndarray,
) -> np.ndarray:
    """Dedicated-L2 spread loss — mirrors ``PathSegment._vns_rates``."""
    rates = np.zeros((keys.size, n_slots))
    spread_prob = _repeat([p.spread_prob for p in run_params], run_lens)
    hit = _draw(keys, layer, _P_VNS_OCC) < spread_prob
    if hit.any():
        rows = np.nonzero(hit)[0]
        lo = _repeat([p.uniform_lo for p in run_params], run_lens)[rows]
        hi = _repeat([p.uniform_hi for p in run_params], run_lens)[rows]
        rates[rows] += (lo + (hi - lo) * _draw(keys[rows], layer, _P_VNS_RATE))[:, None]
    return rates
