"""Data-plane models: delay, loss, jitter, and transmission simulation.

The paper measures real packets over a real network; this subpackage is
the substitute substrate.  Delay comes from great-circle propagation with
an inflation factor; loss comes from calibrated stochastic models whose
parameters (see :mod:`repro.dataplane.calibration`) encode the paper's
*findings* — congested AP transit, distance-dependent loss, residential
diurnal cycles, well-provisioned VNS L2 links — so the experiment harness
reproduces the shape of every loss figure.
"""

from repro.dataplane.latency import (
    FIBER_MS_PER_KM,
    path_propagation_ms,
    propagation_delay_ms,
)
from repro.dataplane.diurnal import DiurnalProfile, access_profile, transit_profile
from repro.dataplane.loss import (
    BernoulliLoss,
    GilbertElliottLoss,
    LossModel,
    congestion_loss_probability,
)
from repro.dataplane.columnar import StreamColumnSpec, simulate_stream_columns
from repro.dataplane.link import SegmentKind, SegmentLossParams, PathSegment
from repro.dataplane.path import (
    DataPath,
    access_path,
    assemble_as_path_waypoints,
    internet_path,
)
from repro.dataplane.transmit import (
    PingResult,
    StreamResult,
    simulate_ping,
    simulate_probe_round,
    simulate_stream,
    simulate_stream_batch,
)

__all__ = [
    "FIBER_MS_PER_KM",
    "propagation_delay_ms",
    "path_propagation_ms",
    "DiurnalProfile",
    "access_profile",
    "transit_profile",
    "LossModel",
    "BernoulliLoss",
    "GilbertElliottLoss",
    "congestion_loss_probability",
    "SegmentKind",
    "SegmentLossParams",
    "PathSegment",
    "StreamColumnSpec",
    "simulate_stream_columns",
    "DataPath",
    "access_path",
    "assemble_as_path_waypoints",
    "internet_path",
    "PingResult",
    "StreamResult",
    "simulate_ping",
    "simulate_stream",
    "simulate_stream_batch",
    "simulate_probe_round",
]
