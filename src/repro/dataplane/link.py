"""Path segments: the unit of delay and loss in the data plane.

A forwarding path decomposes into segments — last-mile access, transit
hops (intra- or inter-AS), VNS dedicated L2 links, and IXP peering hops.
Each segment knows its geography and can sample a per-slot loss-rate
vector for a media stream (or a single-round rate for probes).  The
sampling implements the loss regimes of Fig. 10: an always-on *spread*
(random) component, *short bursts* (transient congestion / IGP events),
and *long bursts* (sustained congestion / BGP convergence), with regional
weights from :mod:`repro.dataplane.calibration`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from functools import lru_cache
from typing import NamedTuple

import numpy as np

from repro.dataplane import calibration as cal
from repro.dataplane.diurnal import access_profile, transit_profile
from repro.dataplane.latency import propagation_delay_ms
from repro.geo.cities import region_of_point
from repro.geo.coords import GeoPoint, great_circle_km
from repro.geo.regions import WorldRegion
from repro.net.asn import ASType


@lru_cache(maxsize=None)
def _segment_distance_km(start: GeoPoint, end: GeoPoint) -> float:
    """Memoised great-circle distance between segment endpoints.

    Segment endpoints are a small, heavily-reused set (PoPs, cities,
    prefix locations), and every delay/loss parameter derivation starts
    from this distance — the haversine was a top-3 campaign hotspot
    before caching.
    """
    return great_circle_km(start, end)


@lru_cache(maxsize=None)
def _transit_diurnal(region: WorldRegion, hour_cet: float) -> float:
    """Memoised transit diurnal factor — tiny (region, hour-bin) keyspace."""
    return transit_profile(region).factor_cet(hour_cet, region)


@lru_cache(maxsize=None)
def _access_diurnal(region: WorldRegion, as_type: ASType, hour_cet: float) -> float:
    """Memoised access diurnal factor — tiny (region, type, hour) keyspace."""
    return access_profile(region, as_type).factor_cet(hour_cet, region)


class SegmentKind(enum.Enum):
    """What kind of infrastructure a segment crosses."""

    # Members are singletons, so identity hashing is sound — and C-level,
    # unlike Enum's Python ``__hash__``, which showed up on campaign
    # profiles under every calibration-table and memo-cache lookup.
    __hash__ = object.__hash__

    ACCESS = "access"  #: last mile into the destination/source AS
    TRANSIT = "transit"  #: a transit provider's infrastructure
    VNS_L2 = "vns-l2"  #: a VNS dedicated layer-2 link
    PEERING = "peering"  #: an IXP/PNI hand-off (same metro)

    def __str__(self) -> str:
        return self.value


#: Per-kind path-inflation factors (hoisted — ``delay_ms`` is hot).
_PATH_INFLATION: dict[SegmentKind, float] = {
    SegmentKind.ACCESS: cal.ACCESS_PATH_INFLATION,
    SegmentKind.TRANSIT: cal.TRANSIT_PATH_INFLATION,
    SegmentKind.VNS_L2: cal.VNS_PATH_INFLATION,
    SegmentKind.PEERING: cal.TRANSIT_PATH_INFLATION,
}


@lru_cache(maxsize=None)
def _segment_delay_ms(segment: "PathSegment") -> float:
    """Base (impairment-free) one-way delay of a segment, memoised by value."""
    inflation = _PATH_INFLATION[segment.kind]
    return propagation_delay_ms(segment.distance_km, inflation) + cal.PER_HOP_DELAY_MS


class SegmentLossParams(NamedTuple):
    """The resolved loss-distribution parameters of one segment at one hour.

    This is the columnar kernel's view of a segment: everything the
    stochastic loss model needs, with geography, AS classes and diurnal
    profiles already folded in.  Produced by
    :meth:`PathSegment.loss_params`; consumed by
    :mod:`repro.dataplane.columnar`, which samples the *same*
    distributions as :meth:`PathSegment.sample_slot_rates` from these
    numbers alone (no further topology lookups in the hot loop).

    Field use by kind:

    * ACCESS — ``occurrence`` (episode probability) and ``mean_rate``
      (in-episode mean, lognormal-corrected).
    * TRANSIT — ``spread_prob``/``rate_mult`` (long-haul spread
      component) and ``burst_scale_120s`` (burst occurrence scale per
      120 s of exposure, congestion- and haul-weighted).
    * VNS_L2 — ``spread_prob`` and the ``uniform_lo``/``uniform_hi``
      in-spread rate range.
    * PEERING — loss-free; only ``extra_loss`` can apply.

    ``extra_loss`` is the :class:`DegradedSegment` impairment (0.0 for a
    healthy segment), added after the stochastic draw and clipped to
    0.95 exactly as the scalar sampler does.
    """

    kind: SegmentKind
    long_haul: bool = False
    extra_loss: float = 0.0
    occurrence: float = 0.0
    mean_rate: float = 0.0
    spread_prob: float = 0.0
    rate_mult: float = 0.0
    burst_scale_120s: float = 0.0
    uniform_lo: float = 0.0
    uniform_hi: float = 0.0


class _SegmentStatic(NamedTuple):
    """Hour-independent loss-model constants of one segment.

    Everything in :meth:`PathSegment.loss_params` that does not depend on
    the hour — geography, corridor spread, rate multipliers, the static
    congestion mean, and the access base-loss table entry — resolved once
    per segment (memoised by :func:`_segment_static`).  The hour-dependent
    remainder is just a couple of memoised diurnal-factor lookups and
    scalar arithmetic, which is what keeps parameter resolution off the
    campaign profile.
    """

    long_haul: bool
    end_region: WorldRegion
    congestion_static: float
    anchor: WorldRegion
    corridor_prob: float
    rate_mult: float
    access_base: float


@lru_cache(maxsize=None)
def _segment_static(segment: "PathSegment") -> _SegmentStatic:
    """The hour-independent constants of ``segment`` (memoised)."""
    start_region = region_of_point(segment.start)
    end_region = region_of_point(segment.end)
    regions = (start_region, end_region)
    # Two-element mean, spelled out (same bits as np.mean: sum then halve).
    static = (cal.REGION_CONGESTION[start_region] + cal.REGION_CONGESTION[end_region]) / 2.0
    anchor = max(regions, key=lambda region: cal.REGION_CONGESTION[region])
    corridor_prob, corridor_mult = segment._corridor()
    distance_mult = min(
        cal.DIST_RATE_MAX,
        max(cal.DIST_RATE_MIN, segment.distance_km / cal.DIST_RATE_REF_KM),
    )
    owner_mult = cal.OWNER_RATE_MULT.get(segment.owner_type, 1.0)
    as_type = segment.as_type or ASType.EC
    base_table = cal.ACCESS_BASE_LOSS.get(end_region, cal.ACCESS_BASE_LOSS_DEFAULT)
    return _SegmentStatic(
        long_haul=segment.distance_km > cal.LONG_HAUL_KM,
        end_region=end_region,
        congestion_static=static,
        anchor=anchor,
        corridor_prob=corridor_prob,
        rate_mult=corridor_mult * distance_mult * owner_mult,
        access_base=base_table[as_type],
    )


@dataclass(frozen=True, slots=True)
class PathSegment:
    """One segment of a forwarding path.

    Parameters
    ----------
    kind:
        Infrastructure type; selects the loss model.
    start, end:
        Segment endpoints.
    as_type:
        For ACCESS segments: the destination AS's type (drives base loss).
    owner_type:
        For TRANSIT segments: the class of the AS whose infrastructure
        this is (premium LTP trunks lose less than small-transit trunks).
    label:
        Human-readable annotation, e.g. ``"AS702"`` or ``"LON-AMS"``.
    """

    kind: SegmentKind
    start: GeoPoint
    end: GeoPoint
    as_type: ASType | None = None
    owner_type: ASType | None = None
    label: str = ""
    #: value hash, precomputed once — segments key the loss-param and
    #: delay memo caches, and the generated dataclass hash (two points
    #: plus three enum members, all Python-level) dominated those lookups.
    _hash: int = field(init=False, repr=False, compare=False, default=0)

    # Unannotated on purpose: a plain class attribute, not a field.  A
    # healthy segment has no impairment; :class:`DegradedSegment`'s
    # ``extra_loss`` field shadows this, so ``self.extra_loss`` reads
    # without the exception-driven ``getattr(..., 0.0)`` dance.
    extra_loss = 0.0

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "_hash",
            hash(
                (self.kind, self.start, self.end, self.as_type, self.owner_type, self.label)
            ),
        )

    def __hash__(self) -> int:
        return self._hash

    @property
    def distance_km(self) -> float:
        return _segment_distance_km(self.start, self.end)

    @property
    def is_long_haul(self) -> bool:
        return self.distance_km > cal.LONG_HAUL_KM

    @property
    def start_region(self) -> WorldRegion:
        return region_of_point(self.start)

    @property
    def end_region(self) -> WorldRegion:
        return region_of_point(self.end)

    def delay_ms(self) -> float:
        """One-way delay contribution, including a per-hop constant."""
        return _segment_delay_ms(self)

    # -------------------------------------------------------------- #
    # loss sampling
    # -------------------------------------------------------------- #

    def sample_slot_rates(
        self,
        n_slots: int,
        hour_cet: float,
        rng: np.random.Generator,
        duration_s: float | None = None,
    ) -> np.ndarray:
        """Per-slot loss-probability contributions of this segment.

        The returned vector has length ``n_slots``; entries are loss
        probabilities to be combined across segments as independent drops.
        ``duration_s`` is the observation window (default: 5 s per slot);
        burst events arrive in time, so a 2-second probe round is far less
        likely to witness one than a 2-minute stream.

        Raises
        ------
        ValueError
            For a non-positive slot count or duration.
        """
        if n_slots <= 0:
            raise ValueError(f"n_slots must be positive, got {n_slots!r}")
        if duration_s is None:
            duration_s = 5.0 * n_slots
        if duration_s <= 0:
            raise ValueError(f"duration_s must be positive, got {duration_s!r}")
        if self.kind is SegmentKind.ACCESS:
            return self._access_rates(n_slots, hour_cet, rng)
        if self.kind is SegmentKind.TRANSIT:
            return self._transit_rates(n_slots, hour_cet, rng, duration_s)
        if self.kind is SegmentKind.VNS_L2:
            return self._vns_rates(n_slots, rng)
        return np.zeros(n_slots)  # PEERING hand-offs are loss-free

    def sample_slot_rates_batch(
        self,
        n_streams: int,
        n_slots: int,
        hour_cet: float,
        rng: np.random.Generator,
        duration_s: float | None = None,
    ) -> np.ndarray:
        """Per-slot loss rates for ``n_streams`` concurrent streams at once.

        Returns a ``(n_streams, n_slots)`` matrix; row ``i`` is distributed
        exactly as one :meth:`sample_slot_rates` call (streams are
        independent — per-stream events like spread/burst occurrence are
        drawn per row).  This is the campaign engine's vectorised path:
        one numpy pass per segment instead of a Python call per call.

        Raises
        ------
        ValueError
            For a non-positive stream count, slot count or duration.
        """
        if n_streams <= 0:
            raise ValueError(f"n_streams must be positive, got {n_streams!r}")
        if n_slots <= 0:
            raise ValueError(f"n_slots must be positive, got {n_slots!r}")
        if duration_s is None:
            duration_s = 5.0 * n_slots
        if duration_s <= 0:
            raise ValueError(f"duration_s must be positive, got {duration_s!r}")
        if self.kind is SegmentKind.ACCESS:
            return self._access_rates_batch(n_streams, n_slots, hour_cet, rng)
        if self.kind is SegmentKind.TRANSIT:
            return self._transit_rates_batch(
                n_streams, n_slots, hour_cet, rng, duration_s
            )
        if self.kind is SegmentKind.VNS_L2:
            return self._vns_rates_batch(n_streams, n_slots, rng)
        return np.zeros((n_streams, n_slots))  # PEERING hand-offs are loss-free

    @lru_cache(maxsize=None)
    def loss_params(self, hour_cet: float) -> SegmentLossParams:
        """The loss-distribution parameters this segment samples from.

        One call per (segment, hour) replaces the per-draw geography /
        diurnal lookups; the returned struct is what the columnar kernel
        (:mod:`repro.dataplane.columnar`) vectorises over.  Kept in
        lock-step with :meth:`sample_slot_rates` by sharing the memoised
        statics and diurnal factors — the distribution-identity tests pin
        the equivalence.  Memoised by value: paths do not share segment
        objects, but thousands of paths cross value-equal segments.
        """
        extra = self.extra_loss
        static = _segment_static(self)
        long_haul = static.long_haul
        if self.kind is SegmentKind.ACCESS:
            as_type = self.as_type or ASType.EC
            weight = cal.ACCESS_DIURNAL_WEIGHT[as_type]
            diurnal = _access_diurnal(static.end_region, as_type, hour_cet)
            factor = (1.0 - weight) + weight * diurnal
            occurrence = min(0.9, cal.ACCESS_OCCURRENCE[as_type] * factor)
            return SegmentLossParams(
                kind=self.kind,
                long_haul=long_haul,
                extra_loss=extra,
                occurrence=occurrence,
                mean_rate=static.access_base * factor / max(occurrence, 1e-9),
            )
        if self.kind is SegmentKind.TRANSIT:
            diurnal = _transit_diurnal(static.anchor, hour_cet)
            congestion = static.congestion_static * diurnal
            return SegmentLossParams(
                kind=self.kind,
                long_haul=long_haul,
                extra_loss=extra,
                spread_prob=(
                    min(0.95, static.corridor_prob * diurnal) if long_haul else 0.0
                ),
                rate_mult=static.rate_mult if long_haul else 0.0,
                burst_scale_120s=congestion if long_haul else 0.3 * congestion,
            )
        if self.kind is SegmentKind.VNS_L2:
            if long_haul:
                spread_prob = cal.VNS_L2_LONG_SPREAD_PROB
                lo, hi = cal.VNS_L2_LONG_RATE
            else:
                spread_prob = cal.VNS_L2_INTRA_SPREAD_PROB
                lo, hi = cal.VNS_L2_INTRA_RATE
            return SegmentLossParams(
                kind=self.kind,
                long_haul=long_haul,
                extra_loss=extra,
                spread_prob=spread_prob,
                uniform_lo=lo,
                uniform_hi=hi,
            )
        return SegmentLossParams(kind=self.kind, long_haul=long_haul, extra_loss=extra)

    def _access_params(self, hour_cet: float) -> tuple[float, float]:
        """(episode occurrence probability, in-episode mean rate)."""
        static = _segment_static(self)
        as_type = self.as_type or ASType.EC
        weight = cal.ACCESS_DIURNAL_WEIGHT[as_type]
        diurnal = _access_diurnal(static.end_region, as_type, hour_cet)
        factor = (1.0 - weight) + weight * diurnal
        occurrence = min(0.9, cal.ACCESS_OCCURRENCE[as_type] * factor)
        mean_rate = static.access_base * factor / max(occurrence, 1e-9)
        return occurrence, mean_rate

    def _access_rates(
        self, n_slots: int, hour_cet: float, rng: np.random.Generator
    ) -> np.ndarray:
        """Episodic access loss.

        Each slot/round is in a congestion episode with a (diurnal)
        probability; in-episode rates are scaled so the long-run mean
        matches the calibrated base.  Outside episodes the link is clean
        — which is what keeps the Fig. 12 lossy-round counts swinging
        with local hours instead of saturating.
        """
        occurrence, mean_rate = self._access_params(hour_cet)
        episodes = rng.random(n_slots) < occurrence
        sigma = cal.ACCESS_EPISODE_SIGMA
        draws = rng.lognormal(-0.5 * sigma * sigma, sigma, size=n_slots)
        return np.where(episodes, np.clip(mean_rate * draws, 0.0, 0.5), 0.0)

    def _access_rates_batch(
        self, n_streams: int, n_slots: int, hour_cet: float, rng: np.random.Generator
    ) -> np.ndarray:
        """Episodic access loss for a stream batch — one draw per cell."""
        occurrence, mean_rate = self._access_params(hour_cet)
        shape = (n_streams, n_slots)
        episodes = rng.random(shape) < occurrence
        sigma = cal.ACCESS_EPISODE_SIGMA
        draws = rng.lognormal(-0.5 * sigma * sigma, sigma, size=shape)
        return np.where(episodes, np.clip(mean_rate * draws, 0.0, 0.5), 0.0)

    def _congestion(self, hour_cet: float) -> float:
        """Mean regional congestion across the segment's endpoints.

        The static mean and the diurnal anchor (the more congested end)
        come from :func:`_segment_static`; only the diurnal factor varies
        with the hour.
        """
        static = _segment_static(self)
        return static.congestion_static * _transit_diurnal(static.anchor, hour_cet)

    def _corridor(self) -> tuple[float, float]:
        """(spread probability, rate multiplier) of this segment's corridor.

        Includes the Sec. 5.2.2 west-coast discount: NA↔AP corridors
        terminating on the US west coast run over dense IXP peering.
        """
        regions = {self.start_region, self.end_region}
        key = frozenset(regions)
        entry = cal.TRANSIT_PAIR_SPREAD.get(key)
        if entry is None:
            return (
                min(0.95, cal.TRANSIT_SPREAD_PROB_DEFAULT_PER_CONGESTION * 1.5),
                1.0,
            )
        prob, rate_mult = entry
        if regions == {WorldRegion.NORTH_CENTRAL_AMERICA, WorldRegion.ASIA_PACIFIC}:
            na_point = (
                self.start
                if self.start_region is WorldRegion.NORTH_CENTRAL_AMERICA
                else self.end
            )
            if na_point.lon < cal.WEST_COAST_LON_THRESHOLD:
                prob *= cal.WEST_COAST_DISCOUNT
        return prob, rate_mult

    def _spread_probability(self, hour_cet: float) -> float:
        """Per-stream probability of an always-on random-loss component."""
        static = _segment_static(self)
        diurnal = _transit_diurnal(static.anchor, hour_cet)
        return min(0.95, static.corridor_prob * diurnal)

    def _rate_multiplier(self) -> float:
        """Distance, corridor, and trunk-owner scaling of spread rates."""
        return _segment_static(self).rate_mult

    def _transit_rates(
        self,
        n_slots: int,
        hour_cet: float,
        rng: np.random.Generator,
        duration_s: float,
    ) -> np.ndarray:
        rates = np.full(n_slots, cal.TRANSIT_FLOOR_RATE)
        congestion = self._congestion(hour_cet)
        if self.is_long_haul and rng.random() < self._spread_probability(hour_cet):
            rate = float(
                rng.lognormal(cal.TRANSIT_SPREAD_LOG_MEAN, cal.TRANSIT_SPREAD_LOG_SIGMA)
            )
            rates += min(rate * self._rate_multiplier(), 0.05)
        # Burst events arrive in time: calibrated per 120 s of exposure.
        exposure = duration_s / 120.0
        burst_scale = congestion if self.is_long_haul else 0.3 * congestion
        burst_scale *= exposure
        if rng.random() < cal.TRANSIT_SHORT_BURST_PROB * burst_scale:
            lo, hi = cal.TRANSIT_SHORT_BURST_RATE
            burst_rate = float(rng.uniform(lo, hi))
            n_burst = int(rng.integers(1, 3))
            slots = rng.choice(n_slots, size=min(n_burst, n_slots), replace=False)
            rates[slots] += burst_rate
        if rng.random() < cal.TRANSIT_LONG_BURST_PROB * burst_scale:
            lo, hi = cal.TRANSIT_LONG_BURST_RATE
            rates += float(rng.uniform(lo, hi))
        return np.clip(rates, 0.0, 0.95)

    def _transit_rates_batch(
        self,
        n_streams: int,
        n_slots: int,
        hour_cet: float,
        rng: np.random.Generator,
        duration_s: float,
    ) -> np.ndarray:
        """Transit loss for a stream batch.

        Spread and long-burst occurrence vectorise per stream (one mask
        draw each); short bursts touch only the rare masked rows, so the
        per-row slot placement loop stays negligible.
        """
        rates = np.full((n_streams, n_slots), cal.TRANSIT_FLOOR_RATE)
        congestion = self._congestion(hour_cet)
        if self.is_long_haul:
            spread = rng.random(n_streams) < self._spread_probability(hour_cet)
            n_spread = int(spread.sum())
            if n_spread:
                draws = rng.lognormal(
                    cal.TRANSIT_SPREAD_LOG_MEAN,
                    cal.TRANSIT_SPREAD_LOG_SIGMA,
                    size=n_spread,
                )
                rates[spread] += np.minimum(draws * self._rate_multiplier(), 0.05)[
                    :, None
                ]
        exposure = duration_s / 120.0
        burst_scale = congestion if self.is_long_haul else 0.3 * congestion
        burst_scale *= exposure
        short = rng.random(n_streams) < cal.TRANSIT_SHORT_BURST_PROB * burst_scale
        lo_s, hi_s = cal.TRANSIT_SHORT_BURST_RATE
        for row in np.nonzero(short)[0]:
            burst_rate = float(rng.uniform(lo_s, hi_s))
            n_burst = int(rng.integers(1, 3))
            slots = rng.choice(n_slots, size=min(n_burst, n_slots), replace=False)
            rates[row, slots] += burst_rate
        long = rng.random(n_streams) < cal.TRANSIT_LONG_BURST_PROB * burst_scale
        n_long = int(long.sum())
        if n_long:
            lo_l, hi_l = cal.TRANSIT_LONG_BURST_RATE
            rates[long] += rng.uniform(lo_l, hi_l, size=n_long)[:, None]
        return np.clip(rates, 0.0, 0.95)

    def _vns_rates(self, n_slots: int, rng: np.random.Generator) -> np.ndarray:
        rates = np.zeros(n_slots)
        if self.is_long_haul:
            spread_prob = cal.VNS_L2_LONG_SPREAD_PROB
            lo, hi = cal.VNS_L2_LONG_RATE
        else:
            spread_prob = cal.VNS_L2_INTRA_SPREAD_PROB
            lo, hi = cal.VNS_L2_INTRA_RATE
        if rng.random() < spread_prob:
            rates += float(rng.uniform(lo, hi))
        return rates

    def _vns_rates_batch(
        self, n_streams: int, n_slots: int, rng: np.random.Generator
    ) -> np.ndarray:
        rates = np.zeros((n_streams, n_slots))
        if self.is_long_haul:
            spread_prob = cal.VNS_L2_LONG_SPREAD_PROB
            lo, hi = cal.VNS_L2_LONG_RATE
        else:
            spread_prob = cal.VNS_L2_INTRA_SPREAD_PROB
            lo, hi = cal.VNS_L2_INTRA_RATE
        spread = rng.random(n_streams) < spread_prob
        n_spread = int(spread.sum())
        if n_spread:
            rates[spread] += rng.uniform(lo, hi, size=n_spread)[:, None]
        return rates

    def __str__(self) -> str:
        suffix = f" [{self.label}]" if self.label else ""
        return f"{self.kind}:{self.distance_km:.0f}km{suffix}"


@dataclass(frozen=True, slots=True)
class DegradedSegment(PathSegment):
    """A segment under an injected impairment (``repro.faults``).

    Adds a constant loss probability and delay penalty on top of the
    segment's own stochastic model — the "transit-path degradation"
    fault: sustained congestion or a flapping underlay on an Internet
    segment, which VNS's dedicated circuits are supposed to shield
    users from.
    """

    extra_loss: float = 0.0
    extra_delay_ms: float = 0.0

    def __post_init__(self) -> None:
        PathSegment.__post_init__(self)
        if not 0.0 <= self.extra_loss < 1.0:
            raise ValueError(f"extra_loss must be in [0, 1), got {self.extra_loss!r}")
        if self.extra_delay_ms < 0.0:
            raise ValueError(
                f"extra_delay_ms must be non-negative, got {self.extra_delay_ms!r}"
            )

    # NB: explicit parent calls — ``slots=True`` dataclasses are re-created
    # by the decorator, which breaks zero-argument ``super()``.
    def delay_ms(self) -> float:
        return PathSegment.delay_ms(self) + self.extra_delay_ms

    def sample_slot_rates(
        self,
        n_slots: int,
        hour_cet: float,
        rng: np.random.Generator,
        duration_s: float | None = None,
    ) -> np.ndarray:
        base = PathSegment.sample_slot_rates(self, n_slots, hour_cet, rng, duration_s)
        return np.clip(base + self.extra_loss, 0.0, 0.95)

    def sample_slot_rates_batch(
        self,
        n_streams: int,
        n_slots: int,
        hour_cet: float,
        rng: np.random.Generator,
        duration_s: float | None = None,
    ) -> np.ndarray:
        base = PathSegment.sample_slot_rates_batch(
            self, n_streams, n_slots, hour_cet, rng, duration_s
        )
        return np.clip(base + self.extra_loss, 0.0, 0.95)


def degrade_segment(
    segment: PathSegment, *, extra_loss: float = 0.0, extra_delay_ms: float = 0.0
) -> DegradedSegment:
    """A copy of ``segment`` with an impairment stacked on top."""
    return DegradedSegment(
        kind=segment.kind,
        start=segment.start,
        end=segment.end,
        as_type=segment.as_type,
        owner_type=segment.owner_type,
        label=segment.label,
        extra_loss=extra_loss,
        extra_delay_ms=extra_delay_ms,
    )


#: One-way GEO bounce: ~35 786 km up + down at light speed in vacuum plus
#: gateway processing — the ~270 ms that makes satellite last miles the
#: worst case for interactive video ("Watching Stars in Pixels").
GEO_SATELLITE_DELAY_MS = 270.0

#: Constant loss from the shaper/PEP a consumer GEO service runs at the
#: gateway: bursty drops under traffic shaping, folded to a flat rate.
GEO_SHAPING_LOSS = 0.012


def satellite_segment(
    segment: PathSegment,
    *,
    one_way_delay_ms: float = GEO_SATELLITE_DELAY_MS,
    shaping_loss: float = GEO_SHAPING_LOSS,
) -> DegradedSegment:
    """``segment``'s last mile re-homed onto a GEO satellite service.

    The terrestrial access segment keeps its endpoints and stochastic
    loss model (the gateway still reaches the PoP over ground
    infrastructure) and gains the satellite hop's constant one-way delay
    plus the traffic shaper's constant loss.  Stacks on an already
    degraded segment by summing the impairments.
    """
    return DegradedSegment(
        kind=segment.kind,
        start=segment.start,
        end=segment.end,
        as_type=segment.as_type,
        owner_type=segment.owner_type,
        label=f"{segment.label}+geo-sat" if segment.label else "geo-sat",
        extra_loss=min(segment.extra_loss + shaping_loss, 0.95),
        extra_delay_ms=getattr(segment, "extra_delay_ms", 0.0) + one_way_delay_ms,
    )
