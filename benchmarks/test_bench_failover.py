"""Benchmarks the failover suite: fault injection across the VNS overlay.

Not a paper figure — the paper measures the steady state its circuits buy
— but the stress companion to it: cut every long-haul circuit, kill a
PoP, flap an upstream, degrade transit, and check the overlay heals.

Shape criteria (ISSUE acceptance): every scenario converges with zero
ConvergenceError; after each scenario's final repair no prefix is left
permanently blackholed (the production mesh is biconnected except for
SYD behind SIN, and even that restores on repair); media loss during
failover is bounded and returns to the steady-state level.
"""

import pytest

from repro.experiments import failover
from repro.experiments.common import World, build_world

from .conftest import BENCH_SEED, record_row, run_once


@pytest.fixture(scope="module")
def failover_world() -> World:
    """A private world: fault scenarios mutate (and repair) the service.

    Kept separate from the session-scoped ``medium_world`` so a failure
    mid-scenario can never leak fault state into the figure benchmarks.
    """
    return build_world("medium", seed=BENCH_SEED)


def test_bench_failover_suite(benchmark, failover_world, show):
    # Zero ConvergenceError: run() raising would fail the test here.
    result = run_once(benchmark, failover.run, failover_world)
    show(failover.render(result))

    # --- shape assertions (ISSUE acceptance criteria) --------------------
    assert result.scenarios, "suite ran no scenarios"

    # (b) After every scenario's repair, no prefix stays blackholed.
    for scenario in result.scenarios:
        assert not scenario.permanent_blackholes, scenario.name
    assert result.permanent_blackhole_count() == 0

    # Reconvergence is bounded: no event needs a runaway message storm.
    message_cdf = result.message_cdf()
    assert message_cdf.quantile(1.0) < 100_000

    # (c) Media loss during failover is bounded and recovers.
    for scenario in result.scenarios:
        media = scenario.media
        if media is None:
            continue
        assert media.failover_loss_percent <= 100.0
        assert media.recovered_loss_percent < media.failover_loss_percent + 1.0
        assert abs(media.recovered_loss_percent - media.steady_loss_percent) < 2.0

    # The whole-PoP failure visibly opens a blackhole window mid-failover
    # and anycast re-catchment moves that PoP's users elsewhere.
    pop = next(s for s in result.scenarios if s.name.startswith("pop-failure"))
    assert any(impact.blackholes_during for impact in pop.impacts)
    assert pop.notes["users_recaught_elsewhere"] > 0
    assert pop.notes["entry_after_matches_before"] is True

    # Transit degradation is pure data plane: zero BGP messages.
    quiet = next(
        s for s in result.scenarios if s.name.startswith("transit-degradation")
    )
    assert quiet.total_messages == 0
    assert quiet.notes["control_plane_quiet"] is True
    assert quiet.media.failover_loss_percent > quiet.media.steady_loss_percent
    record_row("failover", **result.to_row())
