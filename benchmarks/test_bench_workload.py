"""Workload benchmark: population-scale campaign throughput baseline.

Runs a seeded call campaign at SMALL and MEDIUM world scale through the
batched :class:`~repro.workload.engine.CampaignEngine` and writes
``BENCH_workload.json`` next to the repo root, so later campaign-path
PRs are judged against recorded numbers:

* campaign throughput — resolved calls per second end to end (resolve +
  simulate + aggregate), plus the per-phase split off the perf timers;
* path-cache effectiveness — the ``(entry_pop, dst_prefix)`` onward
  cache hit rate, the number that makes population scale affordable;
* batching — how many vectorised groups the campaign collapsed into;
* sharding — the same campaign through
  :class:`~repro.workload.sharded.ShardedCampaignRunner` at several
  worker counts, with the simulate-phase speedup on the CPU critical
  path (sequential simulate CPU seconds / the slowest shard's simulate
  CPU seconds).  CPU seconds, not wall clock: the speedup is then the
  fan-out's intrinsic scaling, unpolluted by how many physical cores the
  benchmark host happens to have free.

The MEDIUM campaign must clear 10k calls and be deterministic: the same
seed reproduces the identical ``CampaignReport.to_json()`` — sequential
and sharded alike, which every sharded row re-asserts byte for byte.

Scales can be restricted for smoke runs (CI) with the
``BENCH_WORKLOAD_SCALES`` environment variable, e.g.
``BENCH_WORKLOAD_SCALES=small``.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro import perf
from repro.experiments.common import build_world
from repro.workload import (
    CallArrivalProcess,
    CampaignConfig,
    CampaignEngine,
    ShardedCampaignRunner,
    ShardPlan,
    UserPopulation,
)

BENCH_SEED = 7
ALL_SCALES = ("small", "medium")
JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_workload.json"

#: Campaign sizing per scale.  MEDIUM is the headline: ~1200 users at 9
#: calls/user/day is a >=10k-call day, big enough for the caches and the
#: batching to carry the run.
CAMPAIGNS: dict[str, dict] = {
    "small": {"n_users": 300, "calls_per_user_day": 5.0},
    "medium": {"n_users": 1200, "calls_per_user_day": 9.0},
}

#: Worker counts the sharded runner is benchmarked at.  MEDIUM carries
#: the headline 1/2/4 sweep; SMALL keeps one 2-worker row so the smoke
#: run (CI) still exercises a real spawn pool end to end.
SHARD_WORKERS: dict[str, tuple[int, ...]] = {
    "small": (2,),
    "medium": (1, 2, 4),
}

#: The acceptance bar for the fan-out: at 2 workers on MEDIUM, the
#: simulate-phase CPU critical path must shrink at least this much.
MIN_SPEEDUP_CPU_AT_2 = 1.5

#: Sequential-throughput floors (cold process, one run).  MEDIUM pins
#: the columnar-kernel win: >=10x the recorded grouped-kernel baseline
#: of 254 calls/s (see ``trajectory`` in the emitted JSON).  SMALL is
#: the CI smoke floor — above the old full-scale baseline even on a
#: loaded runner.
MIN_CALLS_PER_S = {"small": 400.0, "medium": 2540.0}

#: MEDIUM sequential calls/s before the campaign-wide columnar kernel
#: (grouped kernel: one simulate_stream_batch round-trip per signature,
#: simulate phase = 96% of the run).  Kept as a literal so the emitted
#: JSON carries the before/after trajectory next to the current number.
GROUPED_BASELINE_CALLS_PER_S = 254.0

#: Results accumulated across the parametrized scale tests, then emitted
#: as BENCH_workload.json by the final test in this module.
_results: dict[str, dict] = {}


def enabled_scales() -> tuple[str, ...]:
    requested = os.environ.get("BENCH_WORKLOAD_SCALES", "")
    if not requested.strip():
        return ALL_SCALES
    chosen = tuple(
        scale.strip().lower() for scale in requested.split(",") if scale.strip()
    )
    unknown = set(chosen) - set(ALL_SCALES)
    if unknown:
        raise ValueError(f"unknown BENCH_WORKLOAD_SCALES entries: {sorted(unknown)}")
    return chosen


def build_campaign(world, sizing: dict):
    population = UserPopulation.sample(
        world.topology, sizing["n_users"], seed=BENCH_SEED
    )
    arrivals = CallArrivalProcess(
        population,
        calls_per_user_day=sizing["calls_per_user_day"],
        seed=BENCH_SEED,
    )
    return arrivals.generate(days=1)


@pytest.mark.parametrize("scale", ALL_SCALES)
def test_bench_workload(scale: str, show) -> None:
    if scale not in enabled_scales():
        pytest.skip(f"scale {scale!r} excluded by BENCH_WORKLOAD_SCALES")
    sizing = CAMPAIGNS[scale]
    start = time.perf_counter()
    world = build_world(scale, seed=BENCH_SEED)
    build_s = time.perf_counter() - start
    calls = build_campaign(world, sizing)

    perf.reset()
    perf.enable()
    try:
        run = CampaignEngine(world.service, CampaignConfig(seed=BENCH_SEED)).run(calls)
        snap = perf.snapshot()
    finally:
        perf.disable()
        perf.reset()
    stats = run.stats

    phase_s = {
        phase: round(snap["timers"][f"workload.{phase}"]["total_s"], 4)
        for phase in ("resolve", "simulate", "aggregate")
    }
    sequential_json = run.report.to_json()
    sequential_simulate_cpu = snap["timers"]["workload.simulate"]["cpu_s"]

    shard_rows: dict[str, dict] = {}
    for workers in SHARD_WORKERS[scale]:
        plan = ShardPlan(n_workers=workers)
        shard_start = time.perf_counter()
        sharded = ShardedCampaignRunner(
            world.service, CampaignConfig(seed=BENCH_SEED), plan
        ).run(calls)
        wall_s = time.perf_counter() - shard_start
        # The contract the whole subsystem hangs on: byte-identical output.
        assert sharded.report.to_json() == sequential_json, (scale, workers)
        critical_cpu = sharded.simulate_critical_path_s(cpu=True)
        speedup_cpu = sequential_simulate_cpu / critical_cpu if critical_cpu else 0.0
        shard_rows[str(workers)] = {
            "workers": workers,
            "elapsed_s": round(wall_s, 4),
            "report_byte_identical": True,
            "simulate_critical_path_cpu_s": round(critical_cpu, 4),
            "speedup_cpu": round(speedup_cpu, 2),
            "per_shard": [
                {
                    "shard": outcome.index,
                    "calls": outcome.n_calls,
                    "in_process": outcome.in_process,
                    "elapsed_s": round(outcome.elapsed_s, 4),
                    "phase_s": {
                        phase: {
                            "total_s": round(entry["total_s"], 4),
                            "cpu_s": round(entry["cpu_s"], 4),
                        }
                        for phase, entry in outcome.phase_s.items()
                    },
                }
                for outcome in sharded.shards
            ],
        }
        show(
            f"scale={scale} shards@{workers}w: wall {wall_s:.2f}s,"
            f" simulate critical path {critical_cpu:.2f}s cpu"
            f" ({speedup_cpu:.2f}x vs sequential {sequential_simulate_cpu:.2f}s)"
        )
        if scale == "medium" and workers >= 2:
            assert speedup_cpu >= MIN_SPEEDUP_CPU_AT_2, (workers, speedup_cpu)

    _results[scale] = {
        "shards": {
            "sequential_simulate_cpu_s": round(sequential_simulate_cpu, 4),
            "by_workers": shard_rows,
        },
        "world_build_s": round(build_s, 4),
        "campaign": {
            "users": sizing["n_users"],
            "calls": stats.calls_resolved,
            "calls_failed": stats.calls_failed,
            "turn_allocations": stats.turn_allocations,
        },
        "engine": {
            "elapsed_s": round(stats.elapsed_s, 4),
            "calls_per_s": round(stats.calls_per_second, 1),
            "onward_cache_hit_rate": round(stats.onward_hit_rate, 4),
            "batches": stats.batches,
            "largest_batch": stats.largest_batch,
            "phase_s": phase_s,
        },
    }
    show(
        f"scale={scale}: {stats.calls_resolved} calls in {stats.elapsed_s:.2f}s"
        f" ({stats.calls_per_second:,.0f} calls/s) | onward cache"
        f" {stats.onward_hit_rate:.1%} | {stats.batches} batches"
        f" (largest {stats.largest_batch}) | phases r/s/a ="
        f" {phase_s['resolve']}/{phase_s['simulate']}/{phase_s['aggregate']}s"
    )

    assert stats.calls_resolved > 0
    assert stats.calls_per_second > MIN_CALLS_PER_S[scale], (
        scale,
        stats.calls_per_second,
    )
    assert 0.0 < stats.onward_hit_rate <= 1.0
    if scale == "medium":
        # The acceptance bar: a population-scale day, cache-dominated.
        assert stats.calls_resolved >= 10_000
        assert stats.onward_hit_rate > 0.5
        # And reproducible bit for bit under the seed.
        rerun = CampaignEngine(world.service, CampaignConfig(seed=BENCH_SEED)).run(calls)
        assert rerun.report.to_json() == run.report.to_json()


def test_emit_bench_workload_json(show) -> None:
    assert _results, "no scale ran — check BENCH_WORKLOAD_SCALES"
    payload = {
        "seed": BENCH_SEED,
        "campaigns": {
            scale: CAMPAIGNS[scale] for scale in _results
        },
        "scales": _results,
    }
    medium = _results.get("medium")
    if medium is not None:
        after = medium["engine"]["calls_per_s"]
        payload["trajectory"] = {
            "medium_sequential_calls_per_s": {
                "grouped_kernel": GROUPED_BASELINE_CALLS_PER_S,
                "columnar_kernel": after,
                "speedup": round(after / GROUPED_BASELINE_CALLS_PER_S, 2),
            },
            "note": (
                "cold-process sequential throughput at MEDIUM scale before "
                "and after replacing the per-group simulate_stream_batch "
                "loop with the campaign-wide columnar kernel "
                "(repro.dataplane.columnar)"
            ),
        }
    JSON_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    show(f"wrote {JSON_PATH}")
    for scale, record in _results.items():
        assert record["engine"]["calls_per_s"] > MIN_CALLS_PER_S[scale], scale
