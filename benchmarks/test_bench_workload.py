"""Workload benchmark: population-scale campaign throughput baseline.

Runs a seeded call campaign at SMALL and MEDIUM world scale through the
batched :class:`~repro.workload.engine.CampaignEngine` and writes
``BENCH_workload.json`` next to the repo root, so later campaign-path
PRs are judged against recorded numbers:

* campaign throughput — resolved calls per second end to end (resolve +
  simulate + aggregate), plus the per-phase split off the perf timers;
* path-cache effectiveness — the ``(entry_pop, dst_prefix)`` onward
  cache hit rate, the number that makes population scale affordable;
* batching — how many vectorised groups the campaign collapsed into;
* sharding — the same campaign through
  :class:`~repro.workload.sharded.ShardedCampaignRunner` on a persistent
  :class:`~repro.workload.sharded.CampaignWorkerPool` at several worker
  counts.  Each worker count is measured twice: a **cold** run that pays
  pool spawn, frozen-world shipping and cache warmup, and a **warm** run
  on the already-live pool — the steady state a long campaign sees.
  Both the simulate-phase CPU critical-path speedup (intrinsic scaling,
  immune to host core count) and the **elapsed wall-clock speedup** are
  recorded; the wall-clock floor is host-gated (see
  ``wallclock_floor``) because a container pinned to one core cannot
  parallelise anything, only avoid losing.

The MEDIUM campaign must clear 10k calls and be deterministic: the same
seed reproduces the identical ``CampaignReport.to_json()`` — sequential
and sharded alike, which every sharded row re-asserts byte for byte.

Scales can be restricted for smoke runs (CI) with the
``BENCH_WORKLOAD_SCALES`` environment variable, e.g.
``BENCH_WORKLOAD_SCALES=small``.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro import perf
from repro.experiments.common import build_world
from repro.results import record
from repro.workload import (
    CallArrivalProcess,
    CampaignConfig,
    CampaignEngine,
    CampaignWorkerPool,
    ShardedCampaignRunner,
    ShardPlan,
    UserPopulation,
)
from repro.workload.sharded import (
    OVERHEAD_COLUMNS,
    PHASES,
    partition_calls,
    predicted_shard_cost,
)

BENCH_SEED = 7
ALL_SCALES = ("small", "medium")
JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_workload.json"

#: Campaign sizing per scale.  MEDIUM is the headline: ~1200 users at 9
#: calls/user/day is a >=10k-call day, big enough for the caches and the
#: batching to carry the run.
CAMPAIGNS: dict[str, dict] = {
    "small": {"n_users": 300, "calls_per_user_day": 5.0},
    "medium": {"n_users": 1200, "calls_per_user_day": 9.0},
}

#: Worker counts the sharded runner is benchmarked at.  MEDIUM carries
#: the headline 1/2/4 sweep; SMALL keeps one 2-worker row so the smoke
#: run (CI) still exercises a real persistent pool end to end.
SHARD_WORKERS: dict[str, tuple[int, ...]] = {
    "small": (2,),
    "medium": (1, 2, 4),
}

#: The intrinsic-scaling bar: at >=2 workers on MEDIUM, the simulate
#: CPU critical path must shrink at least this much.
MIN_SPEEDUP_CPU_AT_2 = 1.5

#: The wall-clock bar at 4 workers on MEDIUM when the host actually has
#: four cores to run them on.
MIN_WALLCLOCK_SPEEDUP_AT_4 = 1.4

#: The wall-clock bar everywhere else when the host has a core per
#: worker: a warm pool must never *lose* more than 25% vs the
#: sequential engine (speedup >= 1/1.25).  This is also the CI
#: regression gate at SMALL.
MIN_WALLCLOCK_NOT_WORSE = 0.8

#: The bar when the pool is oversubscribed (more workers than host
#: cores): every extra worker is pure context-switch and IPC cost with
#: no core to run on, so the row only has to stay within 2x sequential.
MIN_WALLCLOCK_OVERSUBSCRIBED = 0.5

#: Absolute slack on the wall-clock floor.  Sub-second campaigns are
#: dominated by fixed IPC/scheduling cost and single-run scheduler noise
#: swings the ratio +-40% on a shared host; a row passes if it clears
#: the ratio floor *or* loses less than this many absolute seconds.
WALLCLOCK_ABS_SLACK_S = 0.6

#: Shard balance: max/min predicted shard cost (what the cost-balanced
#: partitioner controls, asserted always) and max/min per-shard busy CPU
#: on the warm MEDIUM run (asserted when the host has a core per worker;
#: on a core-starved host per-shard ``process_time`` attribution carries
#: GC and contention noise larger than the bound itself).
MAX_SHARD_CPU_RATIO = 1.3

#: Sequential-throughput floors (cold process, one run).  MEDIUM pins
#: the columnar-kernel win: >=10x the recorded grouped-kernel baseline
#: of 254 calls/s (see ``trajectory`` in the emitted JSON).  SMALL is
#: the CI smoke floor — above the old full-scale baseline even on a
#: loaded runner.
MIN_CALLS_PER_S = {"small": 400.0, "medium": 2540.0}

#: MEDIUM sequential calls/s before the campaign-wide columnar kernel
#: (grouped kernel: one simulate_stream_batch round-trip per signature,
#: simulate phase = 96% of the run).  Kept as a literal so the emitted
#: JSON carries the before/after trajectory next to the current number.
GROUPED_BASELINE_CALLS_PER_S = 254.0

#: Results accumulated across the parametrized scale tests, then emitted
#: as BENCH_workload.json by the final test in this module.
_results: dict[str, dict] = {}

#: Per-scale campaign reports (for the store's pair_metrics rows) and
#: perf snapshots, captured by the scale tests for the final record.
_reports: dict[str, dict] = {}
_perf: dict[str, dict] = {}


def enabled_scales() -> tuple[str, ...]:
    requested = os.environ.get("BENCH_WORKLOAD_SCALES", "")
    if not requested.strip():
        return ALL_SCALES
    chosen = tuple(
        scale.strip().lower() for scale in requested.split(",") if scale.strip()
    )
    unknown = set(chosen) - set(ALL_SCALES)
    if unknown:
        raise ValueError(f"unknown BENCH_WORKLOAD_SCALES entries: {sorted(unknown)}")
    return chosen


def wallclock_floor(scale: str, workers: int, host_cpus: int) -> float:
    """The elapsed-speedup floor a (scale, workers) row must clear.

    The 1.4x headline floor needs the cores to exist: a host with fewer
    CPUs than workers serialises the pool, so the bound degrades to
    "don't lose wall-clock" (>= 0.8x) at parity and "stay within 2x"
    when workers outnumber cores outright.
    """
    if scale == "medium" and workers >= 4 and host_cpus >= 4:
        return MIN_WALLCLOCK_SPEEDUP_AT_4
    if workers > host_cpus:
        return MIN_WALLCLOCK_OVERSUBSCRIBED
    return MIN_WALLCLOCK_NOT_WORSE


def shard_busy_cpu_s(outcome) -> float:
    """One shard's busy CPU seconds (engine phases, overheads excluded)."""
    return sum(
        outcome.phase_s.get(phase, {}).get("cpu_s", 0.0) for phase in PHASES
    )


def build_campaign(world, sizing: dict):
    population = UserPopulation.sample(
        world.topology, sizing["n_users"], seed=BENCH_SEED
    )
    arrivals = CallArrivalProcess(
        population,
        calls_per_user_day=sizing["calls_per_user_day"],
        seed=BENCH_SEED,
    )
    return arrivals.generate(days=1)


def _shard_detail(outcome) -> dict:
    return {
        "shard": outcome.index,
        "calls": outcome.n_calls,
        "in_process": outcome.in_process,
        "elapsed_s": round(outcome.elapsed_s, 4),
        "phase_s": {
            phase: {
                "total_s": round(entry["total_s"], 4),
                "cpu_s": round(entry["cpu_s"], 4),
            }
            for phase, entry in outcome.phase_s.items()
        },
    }


@pytest.mark.parametrize("scale", ALL_SCALES)
def test_bench_workload(scale: str, show) -> None:
    if scale not in enabled_scales():
        pytest.skip(f"scale {scale!r} excluded by BENCH_WORKLOAD_SCALES")
    sizing = CAMPAIGNS[scale]
    host_cpus = os.cpu_count() or 1
    start = time.perf_counter()
    world = build_world(scale, seed=BENCH_SEED)
    build_s = time.perf_counter() - start
    calls = build_campaign(world, sizing)

    perf.reset()
    perf.enable()
    try:
        run = CampaignEngine(world.service, CampaignConfig(seed=BENCH_SEED)).run(calls)
        snap = perf.snapshot()
    finally:
        perf.disable()
        perf.reset()
    stats = run.stats

    phase_s = {
        phase: round(snap["timers"][f"workload.{phase}"]["total_s"], 4)
        for phase in ("resolve", "simulate", "aggregate")
    }
    sequential_json = run.report.to_json()
    _reports[scale] = json.loads(sequential_json)
    _perf[scale] = snap.to_dict()
    sequential_simulate_cpu = snap["timers"]["workload.simulate"]["cpu_s"]
    # Best of two for the wall-clock comparison base: single runs on a
    # shared host carry +-20% scheduler noise, and the determinism
    # contract needs a rerun anyway.
    rerun = CampaignEngine(world.service, CampaignConfig(seed=BENCH_SEED)).run(calls)
    assert rerun.report.to_json() == sequential_json
    sequential_elapsed = min(stats.elapsed_s, rerun.stats.elapsed_s)

    shard_rows: dict[str, dict] = {}
    wallclock_rows: dict[str, dict] = {}
    for workers in SHARD_WORKERS[scale]:
        # keep_results=False is the population-scale configuration: the
        # report and stats are complete without shipping every CallResult
        # back over the pipe.  Byte-identity is asserted regardless.
        plan = ShardPlan(n_workers=workers, keep_results=False)
        config = CampaignConfig(seed=BENCH_SEED)
        pool = (
            CampaignWorkerPool(world.service, workers=workers)
            if workers > 1
            else None
        )
        try:
            runner = ShardedCampaignRunner(world.service, config, plan, pool=pool)
            cold_start = time.perf_counter()
            cold = runner.run(calls)
            cold_wall = time.perf_counter() - cold_start
            assert cold.report.to_json() == sequential_json, (scale, workers)
            # Best of two warm runs, mirroring the sequential base.
            warm, warm_wall = None, float("inf")
            for _ in range(2):
                warm_start = time.perf_counter()
                candidate = ShardedCampaignRunner(
                    world.service, config, plan, pool=pool
                ).run(calls)
                candidate_wall = time.perf_counter() - warm_start
                assert candidate.report.to_json() == sequential_json, (scale, workers)
                if candidate_wall < warm_wall:
                    warm, warm_wall = candidate, candidate_wall
            pool_record = None
            if pool is not None:
                pool_record = {
                    "workers": pool.stats.workers,
                    "world_transport": pool.stats.world_transport,
                    "world_bytes": pool.stats.world_bytes,
                    "world_dump_s": round(pool.stats.world_dump_s, 4),
                    "setup_s": round(pool.stats.setup_s, 4),
                    "warmed_pairs": pool.stats.warmed_pairs,
                    "runs": pool.stats.runs,
                }
        finally:
            if pool is not None:
                pool.shutdown(wait=True)

        critical_cpu = warm.simulate_critical_path_s(cpu=True)
        speedup_cpu = sequential_simulate_cpu / critical_cpu if critical_cpu else 0.0
        speedup_wall = sequential_elapsed / warm_wall if warm_wall else 0.0
        floor = wallclock_floor(scale, workers, host_cpus)
        shard_rows[str(workers)] = {
            "workers": workers,
            "cold_elapsed_s": round(cold_wall, 4),
            "elapsed_s": round(warm_wall, 4),
            "report_byte_identical": True,
            "simulate_critical_path_cpu_s": round(critical_cpu, 4),
            "speedup_cpu": round(speedup_cpu, 2),
            "overhead_s": {
                column: round(
                    cold.overhead_s(column) + warm.overhead_s(column), 4
                )
                for column in OVERHEAD_COLUMNS
            },
            "pool": pool_record,
            "per_shard": [_shard_detail(outcome) for outcome in warm.shards],
        }
        wallclock_rows[str(workers)] = {
            "workers": workers,
            "warm_elapsed_s": round(warm_wall, 4),
            "cold_elapsed_s": round(cold_wall, 4),
            "speedup_wallclock": round(speedup_wall, 2),
            "floor": floor,
        }
        show(
            f"scale={scale} shards@{workers}w: warm wall {warm_wall:.2f}s"
            f" ({speedup_wall:.2f}x vs sequential {sequential_elapsed:.2f}s,"
            f" floor {floor}x; cold {cold_wall:.2f}s) | simulate critical"
            f" path {critical_cpu:.2f}s cpu ({speedup_cpu:.2f}x)"
        )
        lost_s = warm_wall - sequential_elapsed
        assert speedup_wall >= floor or lost_s <= WALLCLOCK_ABS_SLACK_S, (
            scale,
            workers,
            speedup_wall,
            floor,
            lost_s,
        )
        if scale == "medium" and workers >= 2:
            assert speedup_cpu >= MIN_SPEEDUP_CPU_AT_2, (workers, speedup_cpu)
            predicted = [
                predicted_shard_cost(slice_)
                for slice_ in partition_calls(calls, len(warm.shards))
            ]
            predicted_ratio = max(predicted) / min(predicted)
            busy = [shard_busy_cpu_s(outcome) for outcome in warm.shards]
            ratio = max(busy) / min(busy) if min(busy) > 0 else float("inf")
            shard_rows[str(workers)]["shard_cost_ratio"] = round(predicted_ratio, 3)
            shard_rows[str(workers)]["shard_cpu_ratio"] = round(ratio, 3)
            assert predicted_ratio <= MAX_SHARD_CPU_RATIO, (
                workers,
                predicted_ratio,
                predicted,
            )
            if host_cpus >= workers:
                assert ratio <= MAX_SHARD_CPU_RATIO, (workers, ratio, busy)

    _results[scale] = {
        "shards": {
            "sequential_simulate_cpu_s": round(sequential_simulate_cpu, 4),
            "by_workers": shard_rows,
            "wallclock": {
                "host_cpus": host_cpus,
                "sequential_elapsed_s": round(sequential_elapsed, 4),
                "note": (
                    "warm_elapsed_s is a run on an already-live pool (spawn, "
                    "world ship and cache warmup amortised); the floor is "
                    "host-gated — the 1.4x headline requires >= 4 CPUs, "
                    "core-starved hosts assert the not-worse bound instead, "
                    "with 0.6s absolute slack for sub-second campaigns"
                ),
                "by_workers": wallclock_rows,
            },
        },
        "world_build_s": round(build_s, 4),
        "campaign": {
            "users": sizing["n_users"],
            "calls": stats.calls_resolved,
            "calls_failed": stats.calls_failed,
            "turn_allocations": stats.turn_allocations,
        },
        "engine": {
            "elapsed_s": round(stats.elapsed_s, 4),
            "calls_per_s": round(stats.calls_per_second, 1),
            "onward_cache_hit_rate": round(stats.onward_hit_rate, 4),
            "batches": stats.batches,
            "largest_batch": stats.largest_batch,
            "phase_s": phase_s,
        },
    }
    show(
        f"scale={scale}: {stats.calls_resolved} calls in {stats.elapsed_s:.2f}s"
        f" ({stats.calls_per_second:,.0f} calls/s) | onward cache"
        f" {stats.onward_hit_rate:.1%} | {stats.batches} batches"
        f" (largest {stats.largest_batch}) | phases r/s/a ="
        f" {phase_s['resolve']}/{phase_s['simulate']}/{phase_s['aggregate']}s"
    )

    assert stats.calls_resolved > 0
    assert stats.calls_per_second > MIN_CALLS_PER_S[scale], (
        scale,
        stats.calls_per_second,
    )
    assert 0.0 < stats.onward_hit_rate <= 1.0
    if scale == "medium":
        # The acceptance bar: a population-scale day, cache-dominated.
        assert stats.calls_resolved >= 10_000
        assert stats.onward_hit_rate > 0.5


def test_emit_bench_workload_json(show) -> None:
    assert _results, "no scale ran — check BENCH_WORKLOAD_SCALES"
    payload = {
        "seed": BENCH_SEED,
        "campaigns": {
            scale: CAMPAIGNS[scale] for scale in _results
        },
        "scales": _results,
    }
    medium = _results.get("medium")
    if medium is not None:
        after = medium["engine"]["calls_per_s"]
        payload["trajectory"] = {
            "medium_sequential_calls_per_s": {
                "grouped_kernel": GROUPED_BASELINE_CALLS_PER_S,
                "columnar_kernel": after,
                "speedup": round(after / GROUPED_BASELINE_CALLS_PER_S, 2),
            },
            "note": (
                "cold-process sequential throughput at MEDIUM scale before "
                "and after replacing the per-group simulate_stream_batch "
                "loop with the campaign-wide columnar kernel "
                "(repro.dataplane.columnar)"
            ),
        }
    merged_perf = {
        "counters": {
            f"{scale}.{name}": value
            for scale, snap in sorted(_perf.items())
            for name, value in snap.get("counters", {}).items()
        },
        "timers": {
            f"{scale}.{name}": row
            for scale, snap in sorted(_perf.items())
            for name, row in snap.get("timers", {}).items()
        },
    }
    recorded = record(
        "workload",
        payload,
        json_path=JSON_PATH,
        seed=BENCH_SEED,
        reports=_reports,
        perf=merged_perf,
    )
    show(f"wrote {JSON_PATH} (store run {recorded.run_id})")
    for scale, row in _results.items():
        assert row["engine"]["calls_per_s"] > MIN_CALLS_PER_S[scale], scale
