"""Regenerates Fig. 12: diurnal loss patterns from San Jose (Sec. 5.2.3).

Paper shape: loss toward EU/NA destinations peaks during those regions'
local busy hours; loss toward AP follows AP's *local* cycle; CAHPs (and
in AP even LTPs) show the home-user evening signature.
"""

import pytest

from repro.experiments import fig12_diurnal
from repro.experiments.lastmile import run_lastmile_campaign
from repro.geo.regions import WorldRegion
from repro.net.asn import ASType

from .conftest import record_row, run_once

AP = WorldRegion.ASIA_PACIFIC
EU = WorldRegion.EUROPE
NA = WorldRegion.NORTH_CENTRAL_AMERICA


@pytest.fixture(scope="module")
def campaign(medium_world):
    return run_lastmile_campaign(
        medium_world,
        hosts_per_type_per_region=10,
        days=4,
        minutes_between_rounds=30.0,
        pop_codes=("SJS",),
    )


def test_bench_fig12_diurnal(benchmark, medium_world, campaign, show):
    result = run_once(benchmark, fig12_diurnal.run, medium_world, data=campaign)
    show(fig12_diurnal.render(result))

    # --- shape assertions -----------------------------------------------
    # Clear diurnal swings for the residential-heavy types.
    assert result.peak_to_trough(ASType.CAHP, AP) > 1.5
    assert result.peak_to_trough(ASType.CAHP, EU) > 1.3
    # Peaks land in destination-local waking windows for most curves.
    hits = 0
    total = 0
    for as_type in (ASType.STP, ASType.CAHP, ASType.EC):
        for region in (AP, EU, NA):
            total += 1
            hits += result.peak_within_local_window(as_type, region)
    assert hits >= total - 2
    # AP's local day dominates: most AP-destination loss occurs while AP
    # is awake (00-16 CET; "drops as it ends around 3PM CET").
    counts = result.hourly(ASType.CAHP, AP)
    assert sum(counts[0:16]) > sum(counts[16:24])
    record_row(
        "fig12",
        cahp_ap_peak_to_trough=result.peak_to_trough(ASType.CAHP, AP),
        cahp_eu_peak_to_trough=result.peak_to_trough(ASType.CAHP, EU),
        peaks_in_local_window=hits,
    )
