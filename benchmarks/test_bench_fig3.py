"""Regenerates Fig. 3: geo-based routing precision (Sec. 4.1).

Paper shape: 90/84/82% of EU/NA/AP prefixes displaced ≤10 ms; 90% of all
prefixes ≤20 ms; EU best, AP worst; scatter outlier clusters caused by
GeoIP errors (Russian centroid / stale Indian WHOIS).  Includes the
in-text AS-congruence statistic.
"""

from repro.experiments import fig3_precision
from repro.geo.regions import PopRegion

from .conftest import record_row, run_once


def test_bench_fig3_precision(benchmark, medium_world_with_errors, show):
    world = medium_world_with_errors
    result = run_once(benchmark, fig3_precision.run, world)
    congruence = fig3_precision.as_congruence(world, result)
    record_row(
        "fig3",
        records=len(result.records),
        frac_within_20ms=result.fraction_within(20.0),
        outliers_80ms=len(result.outliers(min_excess_ms=80.0)),
        as_congruence_25=congruence.fraction_of_ases_with_agreement(0.25),
    )

    show(
        fig3_precision.render(result)
        + f"\n  AS congruence: >=25% agree in "
        f"{congruence.fraction_of_ases_with_agreement(0.25) * 100:.0f}% of ASes; "
        f">=90% agree in "
        f"{congruence.fraction_of_ases_with_agreement(0.9) * 100:.0f}%"
    )

    # --- shape assertions (DESIGN.md §4, fig3) -------------------------
    assert len(result.records) > 0.75 * len(world.topology.prefixes())
    # Overall: the bulk of prefixes land within 20 ms.
    assert result.fraction_within(20.0) > 0.70
    # Per-region precision is high everywhere.
    for region in (PopRegion.EU, PopRegion.NA, PopRegion.AP):
        assert result.fraction_within(20.0, region) > 0.55, region
    # Outlier clusters exist when GeoIP errors are injected.
    outliers = result.outliers(min_excess_ms=80.0)
    assert len(outliers) >= 5
    # AS congruence: prefixes of one AS are delay-closest to one PoP.
    assert congruence.fraction_of_ases_with_agreement(0.25) > 0.9
    assert congruence.fraction_of_ases_with_agreement(0.9) > 0.45


def test_bench_fig3_scatter_clusters(benchmark, medium_world_with_errors, show):
    """The right panel: y≈x clustering plus off-diagonal error clusters."""
    world = medium_world_with_errors
    result = run_once(benchmark, fig3_precision.run, world, max_prefixes=400)
    scatter = result.scatter()
    on_diagonal = sum(1 for best, geo in scatter if geo - best < 20.0)
    show(
        f"Fig 3 (right) — scatter: {len(scatter)} points, "
        f"{on_diagonal} within 20ms of y=x, "
        f"{len(result.outliers(80.0))} outlier-cluster points"
    )
    assert on_diagonal / len(scatter) > 0.7
    assert len(result.outliers(80.0)) >= 3
