"""Scenario-matrix benchmark: the canned-regime regression gate.

Runs the scenario matrix — canned operating regimes x campaign seeds —
sharded over a persistent 2-worker :class:`CampaignWorkerPool`, and
holds the results to two bars:

* **Golden regression** — every cell's ``CampaignReport`` must match
  its committed golden under ``benchmarks/goldens/scenario_matrix/``
  (floats within 5%, counts and strings exact).  Regenerate after an
  intentional behaviour change with ``GOLDEN_REGEN=1``.
* **Determinism** — a sequential in-process re-run of the same grid
  must reproduce every sharded cell byte for byte.

The run summary (per-cell calls/golden verdicts/timing) is written to
``BENCH_scenario_matrix.json`` at the repo root — the CI artifact.

The grid can be restricted for smoke runs with
``BENCH_SCENARIO_GRID=NxM`` (N scenarios, M seeds), e.g. ``2x2`` in CI.
"""

from __future__ import annotations

import json
import os
from dataclasses import replace
from pathlib import Path

from repro.results import record
from repro.scenarios import GoldenStore, canned_scenario, run_matrix

JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_scenario_matrix.json"
GOLDEN_DIR = Path(__file__).resolve().parent / "goldens" / "scenario_matrix"

#: Scenario-major grid order (regional_outage is exercised in tier-1
#: tests; its per-group BGP fault replay would dominate smoke runtime).
SCENARIO_NAMES = ("baseline", "geo_satellite", "flash_crowd", "pop_exhaustion")
SEEDS = (0, 1)

#: Scaled-down workload shared by every cell — part of the golden
#: contract: changing these knobs means regenerating the goldens.
CELL_KNOBS = dict(n_users=60, calls_per_user_day=2.0)

WORKERS = 2


def grid_axes() -> tuple[tuple[str, ...], tuple[int, ...]]:
    """The full grid, or the ``BENCH_SCENARIO_GRID=NxM`` smoke cut."""
    requested = os.environ.get("BENCH_SCENARIO_GRID", "")
    if not requested:
        return SCENARIO_NAMES, SEEDS
    try:
        n_scenarios, n_seeds = (int(part) for part in requested.split("x"))
    except ValueError:
        raise ValueError(
            f"BENCH_SCENARIO_GRID must look like '2x2', got {requested!r}"
        ) from None
    if not 1 <= n_scenarios <= len(SCENARIO_NAMES) or not 1 <= n_seeds <= len(SEEDS):
        raise ValueError(
            f"BENCH_SCENARIO_GRID {requested!r} outside "
            f"{len(SCENARIO_NAMES)}x{len(SEEDS)}"
        )
    return SCENARIO_NAMES[:n_scenarios], SEEDS[:n_seeds]


def test_bench_scenario_matrix(show):
    names, seeds = grid_axes()
    grid = [replace(canned_scenario(name), **CELL_KNOBS) for name in names]
    store = GoldenStore(GOLDEN_DIR)

    sharded = run_matrix(
        grid, seeds=seeds, workers=WORKERS, sharded=True, golden=store
    )
    show(sharded.render())
    assert len(sharded.cells) == len(names) * len(seeds)
    assert all(cell.n_calls > 0 for cell in sharded.cells)

    # Determinism: the sequential grid reproduces every cell byte for byte.
    sequential = run_matrix(grid, seeds=seeds, sharded=False)
    for cell, reference in zip(sharded.cells, sequential.cells):
        assert cell.key == reference.key
        assert json.dumps(cell.report, sort_keys=True) == json.dumps(
            reference.report, sort_keys=True
        ), f"{cell.key}: sharded report differs from sequential"

    recorded = record(
        "scenario_matrix", json.loads(sharded.to_json()), json_path=JSON_PATH
    )
    show(f"wrote {JSON_PATH} (store run {recorded.run_id})")

    # Golden gate last, so the summary artifact exists even on failure.
    regressions = sharded.regressions()
    assert not regressions, "golden regressions:\n" + "\n".join(
        cell.golden.render() for cell in regressions
    )
