"""Benchmark fixtures: medium-scale worlds, built once per session.

Each benchmark regenerates one paper table/figure: it runs the experiment
(timed via pytest-benchmark), prints the same rows/series the paper
reports, and asserts the *shape* criteria from DESIGN.md §4.  Absolute
numbers come from a calibrated simulation, not the authors' testbed; the
comparisons (who wins, by what factor, where crossovers fall) are the
reproduced result.
"""

from __future__ import annotations

import pytest

from repro.experiments.common import World, build_world
from repro.results import default_store_path, record

#: One shared seed so every figure is regenerated from the same world.
BENCH_SEED = 7

#: Store-only shape rows accumulated by :func:`record_row` across the
#: figure/table/ablation benches, flushed once per bench at session end.
_STORE_ROWS: dict[str, dict] = {}


def record_row(bench: str, **metrics: int | float) -> None:
    """Accumulate shape metrics for ``bench``'s store-only run row.

    The figure/table/ablation benches have no legacy ``BENCH_*.json``
    snapshot; this is their path into the results store — each call
    merges scalars into the bench's row, and the session-end hook
    records one run per bench through :func:`repro.results.record`
    (no-op when the store is disabled via ``REPRO_RESULTS_STORE=off``).
    """
    _STORE_ROWS.setdefault(bench, {}).update(metrics)


@pytest.fixture(scope="session", autouse=True)
def _flush_store_rows():
    yield
    rows = dict(_STORE_ROWS)
    _STORE_ROWS.clear()
    if not rows or default_store_path() is None:
        return
    for bench in sorted(rows):
        record(
            bench,
            {"seed": BENCH_SEED, **rows[bench]},
            seed=BENCH_SEED,
            scale="medium",
        )


@pytest.fixture(scope="session")
def medium_world() -> World:
    """Medium Internet, geo routing on, exact GeoIP."""
    return build_world("medium", seed=BENCH_SEED)


@pytest.fixture(scope="session")
def medium_world_pair(medium_world: World) -> World:
    """Medium world plus the hot-potato "before" deployment."""
    medium_world.require_before()
    return medium_world


@pytest.fixture(scope="session")
def medium_world_with_errors() -> World:
    """Medium world with the paper's GeoIP error models injected."""
    return build_world("medium", seed=BENCH_SEED, geoip_errors=True)


@pytest.fixture
def show(capsys):
    """Print experiment rows to the real terminal despite capture."""

    def _show(text: str) -> None:
        with capsys.disabled():
            print()
            print(text)

    return _show


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
