"""Benchmark fixtures: medium-scale worlds, built once per session.

Each benchmark regenerates one paper table/figure: it runs the experiment
(timed via pytest-benchmark), prints the same rows/series the paper
reports, and asserts the *shape* criteria from DESIGN.md §4.  Absolute
numbers come from a calibrated simulation, not the authors' testbed; the
comparisons (who wins, by what factor, where crossovers fall) are the
reproduced result.
"""

from __future__ import annotations

import pytest

from repro.experiments.common import World, build_world

#: One shared seed so every figure is regenerated from the same world.
BENCH_SEED = 7


@pytest.fixture(scope="session")
def medium_world() -> World:
    """Medium Internet, geo routing on, exact GeoIP."""
    return build_world("medium", seed=BENCH_SEED)


@pytest.fixture(scope="session")
def medium_world_pair(medium_world: World) -> World:
    """Medium world plus the hot-potato "before" deployment."""
    medium_world.require_before()
    return medium_world


@pytest.fixture(scope="session")
def medium_world_with_errors() -> World:
    """Medium world with the paper's GeoIP error models injected."""
    return build_world("medium", seed=BENCH_SEED, geoip_errors=True)


@pytest.fixture
def show(capsys):
    """Print experiment rows to the real terminal despite capture."""

    def _show(text: str) -> None:
        with capsys.disabled():
            print()
            print(text)

    return _show


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
