"""Regenerates Fig. 4: egress PoP selection before/after (Sec. 4.2.1).

Paper shape: before geo-routing, PoP 10 (London) exits ~70% of routes
locally; after, routes spread across all PoPs with no single egress
dominating.
"""

from repro.experiments import fig4_egress

from .conftest import record_row, run_once


def test_bench_fig4_egress_distribution(benchmark, medium_world_pair, show):
    result = run_once(benchmark, fig4_egress.run, medium_world_pair)
    show(fig4_egress.render(result))
    record_row(
        "fig4",
        local_exit_pct_before=result.local_exit_pct("before"),
        local_exit_pct_after=result.local_exit_pct("after"),
        max_share_pct_after=result.max_share_pct("after"),
    )

    # --- shape assertions -----------------------------------------------
    # Hot potato keeps most traffic local at London.
    assert result.local_exit_pct("before") > 50.0
    # Geo routing spreads egresses out.
    assert result.local_exit_pct("after") < 25.0
    assert result.max_share_pct("after") < 40.0
    assert result.max_share_pct("after") < result.max_share_pct("before")
    # All eleven PoPs participate after the change.
    used_after = [pct for pct in result.after_pct.values() if pct > 0.5]
    assert len(used_after) >= 9
