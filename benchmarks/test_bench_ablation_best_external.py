"""Ablation: the hidden-routes problem and the best-external fix
(Sec. 3.2, "Hidden routes").

Builds the same world twice — border routers with and without "advertise
best external" — and measures how often the converged egress is NOT the
geographically closest PoP.  Without the feature, externally learned
routes get hidden behind reflected ones and the network can converge to a
suboptimal egress, depending on route arrival order.
"""

import numpy as np
import pytest

from repro.experiments.common import build_world
from repro.geo.coords import great_circle_km
from repro.vns.builder import VnsConfig
from repro.vns.pop import POPS
from repro.vns.service import VideoNetworkService

from .conftest import BENCH_SEED, record_row, run_once


def _geo_mismatch_fraction(service: VideoNetworkService) -> float:
    """Fraction of prefixes whose egress is not the geo-nearest PoP."""
    mismatches = 0
    total = 0
    for prefix in service.topology.prefixes():
        decision = service.egress_decision("AMS", prefix)
        location = service.geoip.reported_location(prefix)
        if decision is None or location is None:
            continue
        nearest = min(POPS, key=lambda pop: great_circle_km(pop.location, location))
        total += 1
        mismatches += nearest.code != decision.egress_pop
    return mismatches / total if total else 0.0


def test_bench_ablation_best_external(benchmark, show):
    world = build_world("small", seed=BENCH_SEED + 1)
    with_fix = world.service

    def build_without_fix() -> VideoNetworkService:
        return VideoNetworkService.build(
            vns_config=VnsConfig(max_peers=8, enable_best_external=False),
            seed=BENCH_SEED + 1,
            topology=world.topology,
            routing=world.routing,
        )

    without_fix = run_once(benchmark, build_without_fix)

    mismatch_with = _geo_mismatch_fraction(with_fix)
    mismatch_without = _geo_mismatch_fraction(without_fix)
    show(
        "Ablation — best external (hidden routes):\n"
        f"  geo-egress mismatch with fix:    {mismatch_with * 100:5.1f}%\n"
        f"  geo-egress mismatch without fix: {mismatch_without * 100:5.1f}%"
    )

    # The fix keeps egress selection essentially geo-optimal; dropping it
    # must not *improve* things and typically hides routes.
    assert mismatch_with < 0.05
    assert mismatch_without >= mismatch_with
    record_row(
        "ablation_best_external",
        geo_mismatch_with_fix=mismatch_with,
        geo_mismatch_without_fix=mismatch_without,
    )
