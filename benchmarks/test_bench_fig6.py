"""Regenerates Fig. 6: delay difference VNS vs upstreams (Sec. 4.3).

Paper shape: in 10-65% of cases VNS is similar or better; Singapore is
the best vantage (~65%, direct dedicated links); 87-93% of destinations
are not stretched by more than 50 ms.
"""

from repro.experiments import fig6_delay

from .conftest import record_row, run_once


def test_bench_fig6_delay(benchmark, medium_world, show):
    result = run_once(benchmark, fig6_delay.run, medium_world)
    show(fig6_delay.render(result))
    record_row("fig6", **result.to_row())

    # --- shape assertions -----------------------------------------------
    for code in ("SIN", "AMS", "SJS"):
        assert result.measured(code) > 50
        fraction_ok = result.fraction_vns_not_worse(code)
        # "In 10 to 65% of the cases ... VNS is similar or better"; our
        # dedicated circuits are competitive, so allow a generous band.
        assert 0.10 <= fraction_ok <= 0.97, code
        # Cold potato does not stretch delay much.
        assert result.fraction_within(code, 50.0) > 0.70, code
    # Singapore's direct links keep it at least as competitive as AMS.
    assert result.fraction_vns_not_worse("SIN") >= result.fraction_vns_not_worse("AMS") - 0.05
