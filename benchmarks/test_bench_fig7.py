"""Regenerates Fig. 7: incoming anycast traffic by region (Sec. 4.4).

Paper shape: each world region's TURN requests land predominantly on the
geographically matching PoP region ("the incoming traffic follows
geography to a large extent").
"""

from repro.experiments import fig7_incoming
from repro.geo.regions import POP_REGION_FOR_WORLD_REGION, WorldRegion

from .conftest import record_row, run_once


def test_bench_fig7_incoming(benchmark, medium_world, show):
    result = run_once(benchmark, fig7_incoming.run, medium_world, requests=6000)
    show(fig7_incoming.render(result))
    record_row(
        "fig7",
        regions=len(result.matrix),
        regions_following_geography=sum(
            result.follows_geography(region) for region in WorldRegion
        ),
    )

    # --- shape assertions -----------------------------------------------
    core_regions = (
        WorldRegion.EUROPE,
        WorldRegion.NORTH_CENTRAL_AMERICA,
        WorldRegion.ASIA_PACIFIC,
        WorldRegion.OCEANIA,
    )
    for region in core_regions:
        assert result.follows_geography(region), region
        dominant = POP_REGION_FOR_WORLD_REGION[region]
        assert result.fraction(region, dominant) > 0.5, region
    # Every world region produced traffic and was served somewhere.
    assert len(result.matrix) == len(WorldRegion)
    # Geography is followed for the majority of ALL regions.
    follows = sum(result.follows_geography(region) for region in WorldRegion)
    assert follows >= 5
