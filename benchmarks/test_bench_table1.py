"""Regenerates Table 1: last-mile loss by AS type, from Amsterdam
(Sec. 5.2.3).

Paper values (percent):

    Region   LTP     STP     CAHP    EC
    AP       0.45    1.30    2.80    1.92
    EU       0.11    0.62    1.58    0.52
    NA       0.57    0.49    0.46    0.55

Reproduced shape: orderings per region (AP: LTP < STP < EC < CAHP; EU:
LTP lowest, CAHP highest) and a blurred, flat NA column.
"""

import pytest

from repro.experiments import table1_astype
from repro.experiments.lastmile import run_lastmile_campaign
from repro.geo.regions import WorldRegion
from repro.net.asn import ASType

from .conftest import record_row, run_once

AP = WorldRegion.ASIA_PACIFIC
EU = WorldRegion.EUROPE
NA = WorldRegion.NORTH_CENTRAL_AMERICA


@pytest.fixture(scope="module")
def campaign(medium_world):
    return run_lastmile_campaign(
        medium_world,
        hosts_per_type_per_region=12,
        days=2,
        minutes_between_rounds=30.0,
        pop_codes=("AMS",),
    )


def test_bench_table1_as_types(benchmark, medium_world, campaign, show):
    result = run_once(benchmark, table1_astype.run, medium_world, data=campaign)
    show(table1_astype.render(result))

    # --- shape assertions -----------------------------------------------
    # AP: clear transit-market hierarchy, LTP best, CAHP worst.
    assert result.ordering(AP)[0] is ASType.LTP
    assert result.ordering(AP)[-1] is ASType.CAHP
    # EU: LTP lowest, CAHP highest.
    assert result.ordering(EU)[0] is ASType.LTP
    assert result.ordering(EU)[-1] is ASType.CAHP
    # NA: the hierarchy is blurred — far flatter than AP.
    assert result.spread(NA) < result.spread(AP)
    assert result.spread(NA) < 3.5
    # Every AP cell exceeds its EU counterpart.
    for as_type in ASType:
        assert result.loss(AP, as_type) > result.loss(EU, as_type)
    # Magnitudes within a small factor of the paper's cells.
    for region, row in table1_astype.PAPER_TABLE1.items():
        for as_type, paper_value in row.items():
            measured = result.loss(region, as_type)
            assert paper_value / 4 < measured < paper_value * 4, (region, as_type)
    record_row(
        "table1",
        ap_spread=result.spread(AP),
        na_spread=result.spread(NA),
        ap_cahp_loss_pct=result.loss(AP, ASType.CAHP),
        eu_ltp_loss_pct=result.loss(EU, ASType.LTP),
    )
