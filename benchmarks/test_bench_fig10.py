"""Regenerates Fig. 10: the nature of loss (Sec. 5.1.2).

Paper shape (Amsterdam client, 1080p, all six echo servers): through
upstreams there is a random-loss baseline (loss grows with the number of
lossy 5-second slots) plus two bursty outlier populations — upper-left
(large loss, few slots) and upper-right (large loss throughout).  VNS
eliminates multi-slot loss and both outlier sets.
"""

import numpy as np

from repro.experiments import fig10_loss_nature
from repro.experiments.fig10_loss_nature import LossClass

from .conftest import record_row, run_once


def test_bench_fig10_loss_nature(benchmark, medium_world, show):
    result = run_once(
        benchmark,
        fig10_loss_nature.run,
        medium_world,
        days=3,
        minutes_between_rounds=30.0,
    )
    show(fig10_loss_nature.render(result))

    # --- shape assertions -----------------------------------------------
    # Transit shows all three loss populations.
    assert result.count("T", LossClass.RANDOM_BASELINE) > 0
    assert result.count("T", LossClass.SHORT_BURST) > 0
    assert result.count("T", LossClass.LONG_BURST) > 0
    # The random baseline is roughly linear: more lossy slots, more loss.
    baseline = [
        (slots, loss)
        for slots, loss in result.scatter("T")
        if 0 < slots and loss < 0.15
    ]
    if len(baseline) >= 10:
        slots = np.array([s for s, _ in baseline], dtype=float)
        loss = np.array([l for _, l in baseline])
        correlation = np.corrcoef(slots, loss)[0, 1]
        assert correlation > 0.4
    # VNS eliminates bursty outliers entirely and multi-slot loss mostly.
    assert result.count("I", LossClass.SHORT_BURST) == 0
    assert result.count("I", LossClass.LONG_BURST) == 0
    assert result.multi_slot_loss_fraction("I") < 0.5 * result.multi_slot_loss_fraction("T")
    assert result.count("I", LossClass.NO_LOSS) / result.sessions("I") > 0.85
    record_row(
        "fig10",
        transit_short_bursts=result.count("T", LossClass.SHORT_BURST),
        transit_long_bursts=result.count("T", LossClass.LONG_BURST),
        vns_no_loss_fraction=result.count("I", LossClass.NO_LOSS)
        / result.sessions("I"),
    )
