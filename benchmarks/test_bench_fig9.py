"""Regenerates Fig. 9: video-loss CCDFs, VNS vs transit (Sec. 5.1.1).

Paper shape: VNS ("I-") curves sit below transit ("T-") everywhere; to AP
destinations 10/5/43% of transit streams from Amsterdam/San Jose/Sydney
exceed 0.15% loss while VNS stays below ~1%; jitter ≤10 ms for 99% of
1080p and 97% of 720p streams.

Scale note: the paper ran 576 videos/client/definition/day for two weeks;
this bench runs a deterministic half-hourly schedule for 2 simulated days
(~2300 sessions), preserving full diurnal coverage.
"""

from repro.experiments import fig9_video_loss
from repro.geo.regions import PopRegion

from .conftest import record_row, run_once


def test_bench_fig9_video_loss(benchmark, medium_world, show):
    result = run_once(
        benchmark,
        fig9_video_loss.run,
        medium_world,
        days=2,
        minutes_between_rounds=30.0,
        include_720p=True,
    )
    show(fig9_video_loss.render(result))

    # --- shape assertions (DESIGN.md §4, fig9) ---------------------------
    # VNS stochastically dominates transit for every measured pair.
    for client in ("AMS", "SJS", "SYD"):
        for region in (PopRegion.AP, PopRegion.EU, PopRegion.NA):
            transit = result.fraction_over(client, region, "T")
            vns = result.fraction_over(client, region, "I")
            assert vns <= transit, (client, region)
    # Transit to AP is bad; Sydney worst (paper: 10/5/43%).
    assert result.fraction_over("AMS", PopRegion.AP, "T") > 0.04
    assert result.fraction_over("SYD", PopRegion.AP, "T") > 0.20
    assert result.fraction_over("SYD", PopRegion.AP, "T") > result.fraction_over(
        "AMS", PopRegion.AP, "T"
    )
    # VNS keeps complaint-level loss below ~1% of streams everywhere.
    for client in ("AMS", "SJS", "SYD"):
        for region in PopRegion:
            assert result.fraction_over(client, region, "I") < 0.03
    # Intra-region VNS loss ~ zero.
    assert result.fraction_over("AMS", PopRegion.EU, "I") < 0.01
    # Jitter summary (Sec. 5.1.1).
    from repro.media.codec import PROFILE_1080P, PROFILE_720P

    assert result.jitter_fraction_below(PROFILE_1080P, 10.0) > 0.95
    assert result.jitter_fraction_below(PROFILE_720P, 10.0) > 0.90
    assert result.jitter_fraction_below(PROFILE_1080P, 20.0) > 0.99
    record_row(
        "fig9",
        syd_ap_transit_frac_over=result.fraction_over("SYD", PopRegion.AP, "T"),
        ams_ap_transit_frac_over=result.fraction_over("AMS", PopRegion.AP, "T"),
        jitter_1080p_frac_below_10ms=result.jitter_fraction_below(
            PROFILE_1080P, 10.0
        ),
    )
