"""Regenerates Fig. 5: transit vs peer routes (Sec. 4.2.2).

Paper shape: the transit share stays ~80% before and after; the first
seven neighbours are upstreams; after geo-routing one upstream (strong NA
footprint) pulls ahead.
"""

from repro.experiments import fig5_neighbors

from .conftest import record_row, run_once


def test_bench_fig5_neighbors(benchmark, medium_world_pair, show):
    result = run_once(benchmark, fig5_neighbors.run, medium_world_pair)
    show(fig5_neighbors.render(result))
    record_row(
        "fig5",
        transit_share_before_pct=result.transit_share_before_pct,
        transit_share_after_pct=result.transit_share_after_pct,
        upstreams=len(result.upstream_rows()),
        peers=len(result.peer_rows()),
    )

    # --- shape assertions -----------------------------------------------
    # Inset: transit share stable around 80%.
    assert 55.0 < result.transit_share_before_pct < 95.0
    assert 60.0 < result.transit_share_after_pct < 95.0
    assert (
        abs(result.transit_share_after_pct - result.transit_share_before_pct) < 30.0
    )
    # Outer plot: upstreams first, peers after, both present.
    assert len(result.upstream_rows()) >= 5
    assert len(result.peer_rows()) >= 5
    kinds = [row.is_upstream for row in result.neighbors]
    assert kinds == sorted(kinds, reverse=True)
    # A clear top upstream exists after the change.
    shift = result.top_upstream_shift()
    assert shift is not None
    first, second = shift
    assert first.after_pct > 0.0
