"""Ablation: Fig. 3 precision as a function of GeoIP database quality.

The paper relies on "information from a single commercial GeoIP database"
being good enough.  This ablation sweeps database quality — exact, mild
noise, paper-level errors (centroid collapse + stale WHOIS + noise) — and
reports the precision metric of Fig. 3 for each.  The reflectors are
rebuilt per level: database quality matters at route-import time.
"""

from repro.experiments import fig3_precision
from repro.experiments.common import World, WorldScale, build_world, paper_geoip_errors
from repro.geo.errors import RandomNoiseError
from repro.vns.builder import VnsConfig
from repro.vns.service import VideoNetworkService

from .conftest import BENCH_SEED, record_row, run_once


def test_bench_ablation_geoip_error(benchmark, show):
    base = build_world("small", seed=BENCH_SEED + 2)

    def sweep():
        results = {"exact": fig3_precision.run(base)}
        for label, errors in (
            ("noise-60pct-35km", [RandomNoiseError(mean_km=35.0, fraction=0.6)]),
            ("paper-errors", paper_geoip_errors()),
        ):
            service = VideoNetworkService.build(
                vns_config=VnsConfig(max_peers=8),
                seed=BENCH_SEED + 2,
                geoip_errors=errors,
                topology=base.topology,
                routing=base.routing,
            )
            world = World(
                scale=WorldScale.SMALL, seed=BENCH_SEED + 2, service=service
            )
            results[label] = fig3_precision.run(world)
        return results

    results = run_once(benchmark, sweep)

    lines = ["Ablation — GeoIP error level vs geo-routing precision:"]
    for label, result in results.items():
        lines.append(
            f"  {label:<18} <=10ms: {result.fraction_within(10.0) * 100:5.1f}%"
            f"  <=20ms: {result.fraction_within(20.0) * 100:5.1f}%"
            f"  outliers: {len(result.outliers(80.0))}"
        )
    show("\n".join(lines))

    exact = results["exact"]
    noisy = results["noise-60pct-35km"]
    paper = results["paper-errors"]
    # Precision degrades as the database degrades.
    assert exact.fraction_within(20.0) >= noisy.fraction_within(20.0) - 0.02
    assert noisy.fraction_within(20.0) >= paper.fraction_within(20.0) - 0.05
    # The big error classes, not the mild noise, create the outliers.
    assert len(paper.outliers(80.0)) > len(noisy.outliers(80.0))
    record_row(
        "ablation_geoip_error",
        exact_frac_within_20ms=exact.fraction_within(20.0),
        paper_frac_within_20ms=paper.fraction_within(20.0),
        paper_outliers_80ms=len(paper.outliers(80.0)),
    )
