"""Ablation: the shape of ``lp = f(d)`` (Sec. 3.2).

The paper's reflector maps distance to LOCAL_PREF with some function f;
this ablation compares a fine-grained linear mapping against coarse
stepped bucketings.  Coarse buckets create preference ties among
near-equidistant egresses, which the later (hot-potato) decision stages
then break — trading geo-optimality for tie-level traffic engineering
freedom.
"""

import functools

from repro.experiments.common import World, WorldScale, build_world
from repro.geo.coords import great_circle_km
from repro.vns.builder import VnsConfig
from repro.vns.geo_rr import linear_lp, stepped_lp
from repro.vns.pop import POPS
from repro.vns.service import VideoNetworkService

from .conftest import BENCH_SEED, record_row, run_once


def _geo_match_fraction(service: VideoNetworkService) -> float:
    matches = 0
    total = 0
    for prefix in service.topology.prefixes():
        decision = service.egress_decision("AMS", prefix)
        location = service.geoip.reported_location(prefix)
        if decision is None or location is None:
            continue
        nearest = min(POPS, key=lambda pop: great_circle_km(pop.location, location))
        total += 1
        matches += nearest.code == decision.egress_pop
    return matches / total if total else 0.0


def test_bench_ablation_lp_function(benchmark, show):
    base = build_world("small", seed=BENCH_SEED + 3)

    def sweep():
        results = {"linear (10km)": _geo_match_fraction(base.service)}
        for label, fn in (
            ("stepped 500km", functools.partial(stepped_lp, step_km=500.0)),
            ("stepped 3000km", functools.partial(stepped_lp, step_km=3000.0)),
        ):
            service = VideoNetworkService.build(
                vns_config=VnsConfig(max_peers=8, lp_function=fn),
                seed=BENCH_SEED + 3,
                topology=base.topology,
                routing=base.routing,
            )
            results[label] = _geo_match_fraction(service)
        return results

    results = run_once(benchmark, sweep)

    lines = ["Ablation — lp = f(d) shape vs geo-optimal egress match:"]
    for label, fraction in results.items():
        lines.append(f"  {label:<16} nearest-PoP match: {fraction * 100:5.1f}%")
    show("\n".join(lines))

    # Fine-grained f(d) is geo-optimal; very coarse bucketing loses
    # precision (ties decided by hot potato instead of geography).
    assert results["linear (10km)"] > 0.95
    assert results["stepped 500km"] >= results["stepped 3000km"] - 0.02
    assert results["linear (10km)"] >= results["stepped 3000km"]
    record_row(
        "ablation_lp_function",
        linear_match_fraction=results["linear (10km)"],
        stepped_500km_match_fraction=results["stepped 500km"],
        stepped_3000km_match_fraction=results["stepped 3000km"],
    )
