"""Ablation: the management overrides of Sec. 3.2 ("Overriding
Geo-routing").

Demonstrates all three mechanisms on prefixes that defeat pure
geo-routing:

* force-exit — pins a prefix whose geographic nearest PoP is not the best
  data-plane exit;
* geo-exempt — reverts a globally spread prefix to default BGP behaviour;
* static more-specific — pulls one remote subnet of a regional prefix to
  its own PoP, tagged no-export.
"""

from repro.experiments.common import build_world
from repro.vns.builder import VnsConfig
from repro.vns.service import VideoNetworkService

from .conftest import BENCH_SEED, record_row, run_once


def test_bench_ablation_overrides(benchmark, show):
    def scenario():
        world = build_world("small", seed=BENCH_SEED + 4)
        service = world.service
        report = {}

        # --- force-exit ---------------------------------------------------
        target = service.topology.prefixes()[5]
        before = service.egress_decision("LON", target).egress_pop
        forced_pop = "SJS" if before != "SJS" else "SIN"
        service.management.force_exit(target, forced_pop)
        # Overrides apply at import; re-import by refreshing reflectors.
        rebuilt = VideoNetworkService.build(
            vns_config=VnsConfig(max_peers=8),
            seed=BENCH_SEED + 4,
            topology=world.topology,
            routing=world.routing,
            management=service.management,
        )
        report["force_exit"] = (
            before,
            forced_pop,
            rebuilt.egress_decision("LON", target).egress_pop,
        )

        # --- geo-exempt ----------------------------------------------------
        spread = world.topology.prefixes()[10]
        service.management.clear_forced_exit(target)
        service.management.exempt_from_geo(spread)
        exempted = VideoNetworkService.build(
            vns_config=VnsConfig(max_peers=8),
            seed=BENCH_SEED + 4,
            topology=world.topology,
            routing=world.routing,
            management=service.management,
        )
        decision = exempted.egress_decision("LON", spread)
        report["geo_exempt"] = (decision.egress_pop, decision.local_pref)

        # --- static more-specific -------------------------------------------
        parent = world.topology.prefixes()[0]
        sub = parent.subnets(parent.length + 2)[3]
        exempted.apply_static_more_specific(sub, "SYD")
        report["static_more_specific"] = (
            exempted.egress_decision("LON", sub).egress_pop,
            exempted.egress_decision("LON", parent).egress_pop,
        )
        return report

    report = run_once(benchmark, scenario)
    before, forced, after = report["force_exit"]
    exempt_pop, exempt_lp = report["geo_exempt"]
    sub_pop, parent_pop = report["static_more_specific"]
    show(
        "Ablation — management overrides:\n"
        f"  force-exit:         {before} -> pinned {forced} -> got {after}\n"
        f"  geo-exempt:         egress {exempt_pop}, local_pref {exempt_lp}\n"
        f"  static /22 at SYD:  subnet exits {sub_pop}, parent exits {parent_pop}"
    )

    # force-exit actually moved the egress.
    assert after == forced
    # exempted prefix fell back to relationship-level preferences
    # (<= 300), no geo values (>= 1000).
    assert exempt_lp <= 300
    # the more-specific is steered to SYD while the parent is untouched.
    assert sub_pop == "SYD"
    assert parent_pop != "SYD" or parent_pop == report["force_exit"][0]
    record_row(
        "ablation_overrides",
        force_exit_moved=int(after == forced),
        geo_exempt_local_pref=exempt_lp,
        static_more_specific_at_syd=int(sub_pop == "SYD"),
    )
