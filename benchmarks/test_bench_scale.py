"""Scale benchmark: the repo's first performance baseline.

Times the three system-level hot paths at SMALL / MEDIUM / LARGE world
scale and writes ``BENCH_scale.json`` next to the repo root so later
scaling PRs are judged against recorded numbers:

* world build — synthetic Internet generation + VNS convergence,
  wall-clock (also captured by the ``experiments.build_world.*`` perf
  timer);
* BGP engine throughput — messages/sec through :class:`BgpEngine`
  during the build's convergence runs, read off the perf layer;
* geo-LP assignment throughput — a microbenchmark of
  ``GeoRouteReflector.assign_geo_preference`` (optimised hot path)
  against ``assign_geo_preference_reference`` (the pre-optimisation
  implementation), over every (egress, prefix) pair with the repeat
  pattern convergence actually exhibits.

The optimised path must be decision-identical to the reference — the
MEDIUM world assertion below checks every prefix picks the same egress —
and at least 2x faster on the microbenchmark.

Scales can be restricted for smoke runs (CI) with the ``BENCH_SCALES``
environment variable, e.g. ``BENCH_SCALES=small``.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

import pytest

from repro import perf
from repro.bgp.attributes import AsPath, Route
from repro.experiments.common import World, build_world
from repro.results import record
from repro.vns.geo_rr import GeoRouteReflector

BENCH_SEED = 7
ALL_SCALES = ("small", "medium", "large")
JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_scale.json"

#: Each (egress, prefix) pair is assigned this many times in the
#: microbenchmark — convergence re-imports the same pair many times
#: (reflection, refreshes, IGP notifications), so repeats are the
#: representative workload, not a flattering one.
MICROBENCH_REPEATS = 5

#: Results accumulated across the parametrized scale tests, then emitted
#: as BENCH_scale.json by the final test in this module.
_results: dict[str, dict] = {}


def enabled_scales() -> tuple[str, ...]:
    requested = os.environ.get("BENCH_SCALES", "")
    if not requested.strip():
        return ALL_SCALES
    chosen = tuple(
        scale.strip().lower() for scale in requested.split(",") if scale.strip()
    )
    unknown = set(chosen) - set(ALL_SCALES)
    if unknown:
        raise ValueError(f"unknown BENCH_SCALES entries: {sorted(unknown)}")
    return chosen


def geo_reflector(world: World) -> GeoRouteReflector:
    for reflector in world.service.network.reflectors.values():
        if isinstance(reflector, GeoRouteReflector):
            return reflector
    raise AssertionError("world has no geo route reflector")


def assignment_workload(reflector: GeoRouteReflector) -> list[Route]:
    """One route per (egress router, prefix) pair known to the reflector."""
    path = AsPath((64500,))
    return [
        Route(prefix=prefix, as_path=path, next_hop=router_id)
        for router_id in sorted(reflector.router_locations)
        for prefix in reflector.geoip.prefixes()
    ]


def time_assignments(assign, routes: list[Route], repeats: int) -> float:
    """Total seconds for ``repeats`` passes of ``assign`` over ``routes``.

    Pass 1 sees wire routes (default LOCAL_PREF); later passes feed each
    route's previous output back in, mirroring reflection re-import where
    the assigned preference already rides on the iBGP wire.
    """
    current = list(routes)
    start = time.perf_counter()
    for _ in range(repeats):
        current = [assign(route) for route in current]
    return time.perf_counter() - start


@pytest.mark.parametrize("scale", ALL_SCALES)
def test_bench_scale(scale: str, show) -> None:
    if scale not in enabled_scales():
        pytest.skip(f"scale {scale!r} excluded by BENCH_SCALES")
    perf.reset()
    perf.enable()
    try:
        start = time.perf_counter()
        world = build_world(scale, seed=BENCH_SEED)
        build_s = time.perf_counter() - start
        snap = perf.snapshot()
    finally:
        perf.disable()

    engine = world.service.network.engine
    engine_run_s = snap["timers"]["bgp.engine.run"]["total_s"]
    delivered = snap["counters"]["bgp.engine.delivered"]
    assert delivered == engine.delivered
    engine_msgs_per_s = delivered / engine_run_s if engine_run_s else 0.0

    reflector = geo_reflector(world)
    routes = assignment_workload(reflector)
    baseline_s = time_assignments(
        reflector.assign_geo_preference_reference, routes, MICROBENCH_REPEATS
    )
    reflector.invalidate_geo_cache()  # cold memo: the fast path earns its cache
    optimised_s = time_assignments(
        reflector.assign_geo_preference, routes, MICROBENCH_REPEATS
    )
    assignments = len(routes) * MICROBENCH_REPEATS
    baseline_per_s = assignments / baseline_s
    optimised_per_s = assignments / optimised_s
    speedup = optimised_per_s / baseline_per_s

    _results[scale] = {
        "world_build_s": round(build_s, 4),
        "engine": {
            "messages_delivered": int(delivered),
            "run_s": round(engine_run_s, 4),
            "messages_per_s": round(engine_msgs_per_s, 1),
        },
        "geo_lp": {
            "assignments": assignments,
            "baseline_per_s": round(baseline_per_s, 1),
            "optimized_per_s": round(optimised_per_s, 1),
            "speedup": round(speedup, 2),
        },
        "perf_counters": snap["counters"],
    }
    show(
        f"scale={scale}: build {build_s:.2f}s | engine "
        f"{engine_msgs_per_s:,.0f} msg/s ({delivered} delivered) | geo-LP "
        f"{optimised_per_s:,.0f}/s vs {baseline_per_s:,.0f}/s baseline "
        f"({speedup:.1f}x)"
    )

    assert build_s > 0 and delivered > 0
    # The acceptance bar for this PR: the optimised assignment path must
    # at least double throughput over the pre-PR implementation.
    assert speedup >= 2.0, f"geo-LP speedup {speedup:.2f}x below 2x at {scale}"


def test_geo_decisions_identical_on_medium_world() -> None:
    """Optimised vs reference: same egress for every MEDIUM-world prefix."""
    if "medium" not in enabled_scales():
        pytest.skip("medium scale excluded by BENCH_SCALES")
    world = build_world("medium", seed=BENCH_SEED)
    reflector = geo_reflector(world)
    egresses = sorted(reflector.router_locations)
    path = AsPath((64500,))
    checked = 0
    for prefix in reflector.geoip.prefixes():
        fast_lps = {}
        slow_lps = {}
        for router_id in egresses:
            route = Route(prefix=prefix, as_path=path, next_hop=router_id)
            fast_lps[router_id] = reflector.assign_geo_preference(route).local_pref
            slow_lps[router_id] = reflector.assign_geo_preference_reference(
                route
            ).local_pref
        assert fast_lps == slow_lps, f"LOCAL_PREF mismatch for {prefix}"
        fast_best = max(egresses, key=lambda rid: (fast_lps[rid], rid))
        slow_best = max(egresses, key=lambda rid: (slow_lps[rid], rid))
        assert fast_best == slow_best, f"egress flip for {prefix}"
        checked += 1
    assert checked > 500  # the medium world carries ~700 prefixes


def test_emit_bench_scale_json(show) -> None:
    assert _results, "no scale ran — check BENCH_SCALES"
    payload = {
        "seed": BENCH_SEED,
        "microbench_repeats": MICROBENCH_REPEATS,
        "scales": _results,
    }
    recorded = record("scale", payload, json_path=JSON_PATH, seed=BENCH_SEED)
    show(f"wrote {JSON_PATH} (store run {recorded.run_id})")
    for scale, row in _results.items():
        assert row["geo_lp"]["speedup"] >= 2.0, scale
