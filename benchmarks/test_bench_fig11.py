"""Regenerates Fig. 11: last-mile loss and geography (Sec. 5.2.2).

Paper shape: loss grows with geographic distance (EU→AP well above
AP→AP; AP→EU well above EU→EU); SJS→AP is on par with AP-local probing
(west-coast IXP peering); London→EU is anomalously high because its main
upstream is US-based.

Scale note: the paper probed 600 hosts every 10 min for 3 weeks; this
bench probes 10 hosts/type/region every 30 min for 2 simulated days.
"""

import pytest

from repro.experiments import fig11_lastmile
from repro.experiments.lastmile import run_lastmile_campaign
from repro.geo.regions import WorldRegion

from .conftest import record_row, run_once

AP = WorldRegion.ASIA_PACIFIC
EU = WorldRegion.EUROPE
NA = WorldRegion.NORTH_CENTRAL_AMERICA


@pytest.fixture(scope="module")
def campaign(medium_world):
    return run_lastmile_campaign(
        medium_world,
        hosts_per_type_per_region=10,
        days=2,
        minutes_between_rounds=30.0,
    )


def test_bench_fig11_lastmile(benchmark, medium_world, campaign, show):
    result = run_once(benchmark, fig11_lastmile.run, medium_world, data=campaign)
    show(fig11_lastmile.render(result))

    # --- shape assertions -----------------------------------------------
    # AP destinations lose the most from everywhere.
    from repro.experiments.lastmile import LASTMILE_POPS

    for pop_code in LASTMILE_POPS:
        assert result.loss(pop_code, AP) > result.loss(pop_code, EU), pop_code
    # Distance effect toward EU: AP vantage ≫ EU vantage (paper 2.1-14.2x).
    assert result.region_average("AP", EU) > 1.4 * result.region_average("EU", EU)
    # Distance effect toward AP (paper 1.6-3.3x, EU vs AP-local).
    ap_local = (result.loss("HK", AP) + result.loss("SIN", AP)) / 2
    assert result.region_average("EU", AP) > 1.05 * ap_local
    # SJS→AP comparable to AP-local probing (west coast peering).
    assert result.loss("SJS", AP) < 2.0 * ap_local
    # London anomaly: LON→EU above the other EU PoPs (paper >2x).
    assert result.london_eu_ratio() > 1.15
    record_row(
        "fig11",
        ap_to_eu_over_eu_local=result.region_average("AP", EU)
        / result.region_average("EU", EU),
        london_eu_ratio=result.london_eu_ratio(),
    )
