"""Steering benchmark: policy comparison cost and effect baseline.

Runs the :mod:`repro.experiments.steering` comparison (one seeded
campaign per policy over a shared telemetry table) at SMALL and MEDIUM
world scale and writes ``BENCH_steering.json`` next to the repo root, so
later steering-path PRs are judged against recorded numbers:

* decision throughput — steering decisions per second across the
  campaign (the hot path :meth:`SteeringEngine.decide` adds to every
  resolved call);
* telemetry cost — probe rounds and probes behind the health table;
* policy effect — per policy: offload rate, detour calls, backbone
  bytes saved and the mean QoE delta vs the always-VNS stance.

The MEDIUM run must show the threshold policy offloading a nonzero
share of calls while its mean QoE regression stays inside the
configured deltas, and the budget policy saving at least its budget
fraction's worth of backbone bytes.

Scales can be restricted for smoke runs (CI) with the
``BENCH_STEERING_SCALES`` environment variable, e.g.
``BENCH_STEERING_SCALES=small``.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

import pytest

from repro import perf
from repro.experiments import steering
from repro.experiments.common import build_world
from repro.results import record

BENCH_SEED = 7
ALL_SCALES = ("small", "medium")
JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_steering.json"

#: Comparison sizing per scale.  Each scale runs the full three-policy
#: line-up over the same campaign, so the decision counter sees
#: ~3x the calls.
CAMPAIGNS: dict[str, dict] = {
    "small": {"n_users": 300, "calls_per_user_day": 5.0, "telemetry_hosts": 2},
    "medium": {"n_users": 800, "calls_per_user_day": 6.0, "telemetry_hosts": 2},
}

#: The thresholds the MEDIUM acceptance asserts against (defaults of
#: ThresholdOffloadPolicy, restated so a default drift fails loudly).
RTT_DELTA_MS = 15.0
LOSS_DELTA_PCT = 0.25
BUDGET_FRACTION = 0.5

#: Results accumulated across the parametrized scale tests, then emitted
#: as BENCH_steering.json by the final test in this module.
_results: dict[str, dict] = {}


def enabled_scales() -> tuple[str, ...]:
    requested = os.environ.get("BENCH_STEERING_SCALES", "")
    if not requested.strip():
        return ALL_SCALES
    chosen = tuple(
        scale.strip().lower() for scale in requested.split(",") if scale.strip()
    )
    unknown = set(chosen) - set(ALL_SCALES)
    if unknown:
        raise ValueError(f"unknown BENCH_STEERING_SCALES entries: {sorted(unknown)}")
    return chosen


@pytest.mark.parametrize("scale", ALL_SCALES)
def test_bench_steering(scale: str, show) -> None:
    if scale not in enabled_scales():
        pytest.skip(f"scale {scale!r} excluded by BENCH_STEERING_SCALES")
    sizing = CAMPAIGNS[scale]
    start = time.perf_counter()
    world = build_world(scale, seed=BENCH_SEED)
    build_s = time.perf_counter() - start

    perf.reset()
    perf.enable()
    run_start = time.perf_counter()
    try:
        comparison = steering.run(
            world,
            n_users=sizing["n_users"],
            calls_per_user_day=sizing["calls_per_user_day"],
            seed=BENCH_SEED,
            rtt_delta_ms=RTT_DELTA_MS,
            loss_delta_pct=LOSS_DELTA_PCT,
            budget_fraction=BUDGET_FRACTION,
            telemetry_hosts=sizing["telemetry_hosts"],
        )
        elapsed_s = time.perf_counter() - run_start
        snap = perf.snapshot()
    finally:
        perf.disable()
        perf.reset()

    decisions = snap["counters"].get("steering.decide", 0)
    policy_rows: dict[str, dict] = {}
    for name, campaign_run in comparison.runs.items():
        block = campaign_run.report.steering
        assert block is not None, name
        policy_rows[name] = {
            "offload_rate": round(block["offload_rate"], 4),
            "detour_calls": block["detour_calls"],
            "backbone_bytes_saved": block["backbone_bytes_saved"],
            "backbone_saved_fraction": round(block["backbone_saved_fraction"], 4),
            "qoe_delta_vs_vns": {
                "delay_ms_mean": round(block["qoe_delta_vs_vns"]["delay_ms_mean"], 4),
                "loss_pct_mean": round(block["qoe_delta_vs_vns"]["loss_pct_mean"], 4),
            },
        }
    threshold = comparison.report("threshold_offload")
    budgeted = comparison.report("cost_budgeted")

    _results[scale] = {
        "world_build_s": round(build_s, 4),
        "elapsed_s": round(elapsed_s, 4),
        "campaign": {
            "users": sizing["n_users"],
            "calls": comparison.runs["always_vns"].report.n_calls,
        },
        "decisions": {
            "total": decisions,
            "per_s": round(decisions / elapsed_s, 1) if elapsed_s else 0.0,
        },
        "policies": policy_rows,
    }
    show(
        f"scale={scale}: {decisions} decisions in {elapsed_s:.2f}s | threshold"
        f" offload {threshold['offload_rate']:.1%}"
        f" (dQoE {threshold['qoe_delta_vs_vns']['delay_ms_mean']:+.2f} ms)"
        f" | budgeted saves {budgeted['backbone_saved_fraction']:.1%} of backbone"
    )

    assert decisions > 0
    assert comparison.report("always_vns")["offload_rate"] == 0.0
    assert threshold["offload_rate"] > 0.0
    assert threshold["qoe_delta_vs_vns"]["delay_ms_mean"] <= RTT_DELTA_MS
    assert threshold["qoe_delta_vs_vns"]["loss_pct_mean"] <= LOSS_DELTA_PCT
    if scale == "medium":
        # The budget plan targets offloading half the projected backbone
        # bytes; the realised share must land in its neighbourhood.
        assert budgeted["backbone_saved_fraction"] >= BUDGET_FRACTION * 0.8


def test_emit_bench_steering_json(show) -> None:
    assert _results, "no scale ran — check BENCH_STEERING_SCALES"
    payload = {
        "seed": BENCH_SEED,
        "thresholds": {
            "rtt_delta_ms": RTT_DELTA_MS,
            "loss_delta_pct": LOSS_DELTA_PCT,
            "budget_fraction": BUDGET_FRACTION,
        },
        "campaigns": {scale: CAMPAIGNS[scale] for scale in _results},
        "scales": _results,
    }
    recorded = record("steering", payload, json_path=JSON_PATH, seed=BENCH_SEED)
    show(f"wrote {JSON_PATH} (store run {recorded.run_id})")
    for scale, row in _results.items():
        assert row["decisions"]["total"] > 0, scale
