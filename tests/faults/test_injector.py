"""Tests for the fault injector: reversibility, idempotence, dispatch."""

import pytest

from repro.dataplane.link import SegmentKind
from repro.faults.events import (
    FaultEvent,
    LinkDown,
    LinkUp,
    PopDown,
    PopUp,
    SessionDown,
    SessionUp,
    TransitDegrade,
    TransitRestore,
)
from repro.faults.injector import FaultInjector
from repro.faults.recovery import ImpactMeter, prefix_sample


def make_meter(service, limit=16) -> ImpactMeter:
    return ImpactMeter(
        service, prefix_sample(tuple(service.topology.prefix_location), limit=limit)
    )


class TestDispatch:
    def test_unknown_event_kind_rejected(self, fault_world):
        injector = FaultInjector(fault_world.service)
        with pytest.raises(TypeError):
            injector.perturb(FaultEvent(time_s=1.0))

    def test_unknown_link_rejected(self, fault_world):
        injector = FaultInjector(fault_world.service)
        with pytest.raises(ValueError):
            injector.perturb(LinkDown(time_s=1.0, a="AMS", b="NOPE"))

    def test_clock_regression_rejected(self, fault_world):
        injector = FaultInjector(fault_world.service)
        injector.apply(TransitDegrade(time_s=60.0, regions=("Europe", "Europe")))
        with pytest.raises(ValueError):
            injector.perturb(TransitRestore(time_s=30.0, regions=("Europe", "Europe")))
        injector.apply(TransitRestore(time_s=90.0, regions=("Europe", "Europe")))

    def test_events_are_logged(self, fault_world):
        injector = FaultInjector(fault_world.service)
        injector.apply(LinkDown(time_s=10.0, a="LON", b="ASH"))
        injector.apply(LinkUp(time_s=20.0, a="LON", b="ASH"))
        assert len(injector.event_log) == 2
        assert "link-down" in injector.event_log[0]
        assert "link-up" in injector.event_log[1]


class TestReversibility:
    def test_link_cut_and_repair_restores_state(self, fault_world):
        service = fault_world.service
        injector = FaultInjector(service)
        meter = make_meter(service)
        before = meter.snapshot()
        route_before = service.network.pop_l2_path("LON", "ASH")

        injector.apply(LinkDown(time_s=10.0, a="LON", b="ASH"))
        assert not service.network.link_is_up("LON", "ASH")
        # The IGP routed around the cut (egress choices may or may not move).
        assert service.network.pop_l2_path("LON", "ASH") != route_before

        injector.apply(LinkUp(time_s=20.0, a="LON", b="ASH"))
        assert service.network.link_is_up("LON", "ASH")
        assert service.network.pop_l2_path("LON", "ASH") == route_before
        assert meter.snapshot().states == before.states
        assert service.network.engine.converged

    def test_pop_failure_and_restore_round_trips(self, fault_world):
        service = fault_world.service
        injector = FaultInjector(service)
        meter = make_meter(service)
        before = meter.snapshot()

        injector.apply(PopDown(time_s=10.0, pop="TYO"))
        assert not service.network.pop_is_up("TYO")
        assert "TYO" not in service.network.active_pops()

        injector.apply(PopUp(time_s=20.0, pop="TYO"))
        assert service.network.pop_is_up("TYO")
        assert meter.snapshot().states == before.states

    def test_session_flap_round_trips_and_is_idempotent(self, fault_world):
        service = fault_world.service
        injector = FaultInjector(service)
        meter = make_meter(service)
        before = meter.snapshot()
        asn = sorted(service.deployment.sessions)[0]

        injector.apply(SessionDown(time_s=10.0, asn=asn))
        mid = meter.snapshot()
        # Downing an already-down session set is a no-op.
        injector.apply(SessionDown(time_s=15.0, asn=asn))
        assert meter.snapshot().states == mid.states

        injector.apply(SessionUp(time_s=20.0, asn=asn))
        assert meter.snapshot().states == before.states
        # Restoring an already-up session set is also a no-op.
        injector.apply(SessionUp(time_s=25.0, asn=asn))
        assert meter.snapshot().states == before.states


class TestImpairedPath:
    def _transit_path(self, service):
        for prefix in sorted(service.topology.prefix_location):
            path = service.path_via_vns("AMS", prefix)
            if path is None:
                continue
            if any(s.kind is SegmentKind.TRANSIT for s in path.segments):
                return path
        pytest.skip("no path with a transit segment in this world")

    def test_no_degradations_returns_path_unchanged(self, fault_world):
        injector = FaultInjector(fault_world.service)
        path = self._transit_path(fault_world.service)
        assert injector.impaired_path(path) is path

    def test_degradation_hits_matching_transit_segments_only(self, fault_world):
        service = fault_world.service
        injector = FaultInjector(service)
        path = self._transit_path(service)
        segment = max(
            (s for s in path.segments if s.kind is SegmentKind.TRANSIT),
            key=lambda s: s.distance_km,
        )
        regions = (segment.start_region.value, segment.end_region.value)

        injector.perturb(
            TransitDegrade(
                time_s=5.0, regions=regions, extra_loss=0.1, extra_delay_ms=25.0
            )
        )
        impaired = injector.impaired_path(path)
        assert impaired.rtt_ms() > path.rtt_ms()
        # VNS's own circuits are never degraded.
        for original, new in zip(path.segments, impaired.segments):
            if original.kind is not SegmentKind.TRANSIT:
                assert new is original

        injector.perturb(TransitRestore(time_s=6.0, regions=regions))
        assert injector.impaired_path(path) is path
