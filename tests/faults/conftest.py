"""Fault-test fixtures: a private world the injector may mutate.

The session-scoped ``small_world`` is shared and must stay pristine;
fault tests perturb the live network (and repair it), so they get their
own module-scoped copy built from the same seed.
"""

from __future__ import annotations

import pytest

from repro.experiments.common import World, build_world


@pytest.fixture(scope="module")
def fault_world() -> World:
    """A small world this module's tests may perturb (and must repair)."""
    return build_world("small", seed=42)
